//! Fleet serving, end to end: compile five replicas of one classifier
//! from five distinct variation seeds (five different simulated physical
//! chips), put them behind a router, and serve traffic while one replica
//! is drained, healed and returned to rotation — then show the ensemble
//! read beating every single chip by majority-voting across them.
//!
//! ```text
//! cargo run --release --example fleet_serving
//! ```

use std::sync::Arc;

use vortex_core::amp::greedy::RowMapping;
use vortex_core::error::Error;
use vortex_core::pipeline::HardwareEnv;
use vortex_device::drift::RetentionModel;
use vortex_fleet::ensemble::ensemble_accuracy;
use vortex_fleet::prelude::*;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_nn::dataset::{DatasetConfig, SynthDigits};
use vortex_nn::gdt::GdtTrainer;
use vortex_nn::split::stratified_split;
use vortex_serve::HealthConfig;

const REPLICAS: usize = 5;
const SIGMA: f64 = 0.4;

fn main() -> Result<(), Error> {
    // 1. One trained model, five chips: each replica is compiled from
    //    its own variation seed, so each carries different conductance
    //    errors — and different per-sample mistakes.
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(31);
    let data = SynthDigits::generate(
        &DatasetConfig {
            samples_per_class: 40,
            ..DatasetConfig::paper()
        },
        31,
    )?
    .downsample(4)?;
    let split = stratified_split(&data, 260, 130, &mut rng)?;
    let (train, test) = (split.train, split.test);
    let weights = GdtTrainer {
        epochs: 12,
        ..Default::default()
    }
    .train(&train)?;
    let mapping = RowMapping::identity(weights.rows());
    let env = HardwareEnv::with_sigma(SIGMA)?.with_ir_drop(5.0);
    let compiler = env.compiler().with_calibration(&test.mean_input());
    let canaries: Vec<Vec<f64>> = (0..16).map(|k| test.image(k).to_vec()).collect();

    let compile_chip = {
        let (compiler, weights, mapping) = (compiler.clone(), weights.clone(), mapping.clone());
        let canaries = canaries.clone();
        move |seed: u64| -> Result<CompiledModel, Error> {
            Ok(compiler
                .compile_seeded(&weights, &mapping, seed)?
                .with_canary_inputs(canaries.clone())?)
        }
    };
    let seeds: Vec<u64> = (0..REPLICAS as u64).map(|i| 0xC419 + i).collect();
    let mut models = Vec::new();
    for &seed in &seeds {
        let model = compile_chip(seed)?;
        println!(
            "chip seed {seed:#06x}: accuracy {:.3}",
            model.accuracy(&test)?
        );
        models.push((seed, Arc::new(model)));
    }
    let singles: Vec<f64> = models
        .iter()
        .map(|(_, m)| m.accuracy(&test))
        .collect::<Result<_, _>>()?;
    let best_single = singles.iter().cloned().fold(f64::MIN, f64::max);
    let model_refs: Vec<&CompiledModel> = models.iter().map(|(_, m)| m.as_ref()).collect();
    let voted = ensemble_accuracy(&model_refs, &test)?;
    println!("best single chip {best_single:.3}, 5-chip majority vote {voted:.3}\n");

    // 2. The fleet: five schedulers on the shared pool, consistent-hash
    //    routing so a request key always lands on the same chip.
    let fleet = Fleet::new(
        models.clone(),
        FleetConfig::new(RoutingPolicy::ConsistentHash)
            .with_scheduler(SchedulerConfig::deterministic().with_queue_capacity(512)),
    )
    .expect("replicas share one shape");
    let mut routed = vec![0usize; fleet.len()];
    for k in 0..test.len() {
        let (replica, ticket) = fleet
            .submit(k as u64, test.image(k).to_vec(), None)
            .expect("queue sized for the trace");
        routed[replica] += 1;
        ticket.wait().expect("routed request answers");
    }
    println!(
        "consistent-hash spread over {} requests: {routed:?}",
        test.len()
    );

    // 3. Break chip 0 the way hardware breaks (retention drift), then
    //    heal it: drain → canary breach → same-seed recompile → hot swap
    //    → back in rotation. The other four replicas serve throughout.
    let retention = RetentionModel::new(0.6, 0.3, 1e-3)?;
    let aged = fleet.scheduler(0).primary().age_with(&retention, 1e8, 99)?;
    fleet
        .swap_replica(0, Arc::new(aged))
        .expect("same logical shape");
    println!(
        "chip 0 drifted: canary accuracy {:.3}",
        fleet.scheduler(0).primary().canary_accuracy()?
    );
    let outcome = fleet
        .heal_replica(
            0,
            HealthConfig::new(1.0, std::time::Duration::from_millis(50)).expect("valid floor"),
            {
                let compile_chip = compile_chip.clone();
                move || {
                    compile_chip(0xC419)
                        .map(Arc::new)
                        .map_err(|e| Box::new(e) as Box<dyn std::error::Error + Send + Sync>)
                }
            },
        )
        .expect("probe runs on a canary-carrying model");
    match outcome {
        ProbeOutcome::Recovered { before, after } => {
            println!("healed: canary accuracy {before:.3} -> {after:.3} (drained, swapped, back in rotation)")
        }
        other => println!("unexpected probe outcome: {other:?}"),
    }

    // 4. The ensemble read: fan one request to all five chips and take
    //    the majority — redundancy across whole crossbars.
    let mut split_verdicts = 0usize;
    let mut correct = 0usize;
    for k in 0..test.len() {
        let verdict = fleet
            .ensemble_submit(test.image(k).to_vec(), REPLICAS)
            .expect("every leg admits")
            .wait()
            .expect("every leg answers");
        if !verdict.unanimous {
            split_verdicts += 1;
        }
        if verdict.class == test.label(k) {
            correct += 1;
        }
    }
    println!(
        "ensemble reads: {}/{} correct ({} split verdicts rescued by voting)",
        correct,
        test.len(),
        split_verdicts
    );
    fleet.shutdown();
    Ok(())
}
