//! Self-tuning walkthrough (Fig. 5 of the paper): scan the VAT penalty
//! scale γ on a held-out validation split with injected variation, print
//! the full curve, and show the selected optimum.
//!
//! ```text
//! cargo run --release --example self_tuning
//! ```

use vortex_core::report::{fixed, pct, Table};
use vortex_core::tuning::SelfTuner;
use vortex_core::vat::VatTrainer;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_nn::dataset::{DatasetConfig, SynthDigits};
use vortex_nn::split::stratified_split;

fn main() -> Result<(), vortex_core::error::Error> {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
    let data = SynthDigits::generate(
        &DatasetConfig {
            side: 14,
            samples_per_class: 80,
            ..DatasetConfig::paper()
        },
        11,
    )?;
    let split = stratified_split(&data, 600, 200, &mut rng)?;

    let sigma = 0.8;
    let base = VatTrainer {
        sigma,
        ..VatTrainer::default()
    };
    let tuner = SelfTuner::default(); // γ ∈ {0.0, 0.1, …, 1.0}
    println!(
        "self-tuning VAT on {} training samples (validation fraction {}, σ = {sigma}) …",
        split.train.len(),
        tuner.validation_fraction
    );
    let outcome = tuner.tune(&base, &split.train)?;

    let mut table = Table::new(
        "gamma scan (validation split, variation injected into W)",
        &[
            "gamma",
            "training rate",
            "valid (w/ var)",
            "valid (w/o var)",
        ],
    );
    for p in &outcome.curve {
        table.add_row([
            fixed(p.gamma, 1),
            pct(p.training_rate),
            pct(p.validation_with_variation),
            pct(p.validation_without_variation),
        ]);
    }
    println!("{table}");
    println!("selected gamma: {:.2}", outcome.best_gamma);

    // Final check on the untouched test split.
    let test_acc = vortex_nn::metrics::accuracy_of_weights(&outcome.weights, &split.test);
    println!(
        "software test accuracy of the tuned weights: {}",
        pct(test_acc)
    );
    Ok(())
}
