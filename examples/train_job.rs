//! Fault-tolerant on-device training, end to end: a delta-rule training
//! job runs next to live inference traffic on the shared worker pool,
//! checkpoints on a deterministic cadence, gets killed mid-run by a
//! seeded chaos plan — which then flips bits in the newest checkpoint —
//! and still recovers to **exactly** the weights of an undisturbed run.
//! On convergence the job compiles its weights through the
//! `CompileRequest` builder and hot-swaps the degraded serving primary
//! through the `HealthMonitor` acceptance path.
//!
//! ```text
//! cargo run --release --example train_job
//! ```

use std::sync::Arc;
use std::time::Duration;

use vortex_core::amp::greedy::RowMapping;
use vortex_core::pipeline::HardwareEnv;
use vortex_device::drift::RetentionModel;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_nn::dataset::{DatasetConfig, SynthDigits};
use vortex_nn::gdt::GdtTrainer;
use vortex_nn::pool::WorkerPool;
use vortex_serve::chaos::{ChaosConfig, ChaosPlan};
use vortex_serve::health::ProbeOutcome;
use vortex_serve::scheduler::{Scheduler, SchedulerConfig};
use vortex_train::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A serving stack: a GDT-compiled classifier with a frozen canary
    //    set, degraded by retention drift and stuck cells — the incumbent
    //    a training job will eventually replace.
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(17);
    let data = SynthDigits::generate(
        &DatasetConfig {
            side: 7,
            samples_per_class: 60,
            ..DatasetConfig::paper()
        },
        7,
    )?;
    let split = vortex_nn::split::stratified_split(&data, 400, 200, &mut rng)?;
    let weights = GdtTrainer::default().train(&split.train)?;
    let mapping = RowMapping::identity(weights.rows());
    let env = HardwareEnv::with_sigma(0.3)?;
    let canaries: Vec<Vec<f64>> = (0..24).map(|k| split.test.image(k).to_vec()).collect();
    let fresh = env
        .compiler()
        .with_calibration(&split.test.mean_input())
        .compile(&weights, &mapping, &mut rng)?
        .with_canary_inputs(canaries.clone())?;
    let serve_plan = ChaosPlan::generate(
        &ChaosConfig::new(2024, fresh.rows(), fresh.classes())
            .with_stuck_cells(10, 0.0)
            .with_drift(1e8),
    );
    let (t_s, drift_seed) = serve_plan.drift().expect("plan carries drift");
    let retention = RetentionModel::new(0.6, 0.3, 1e-3)?;
    let aged = fresh
        .age_with(&retention, t_s, drift_seed)?
        .with_cell_faults(serve_plan.cell_faults())?;
    println!(
        "serving : incumbent canary accuracy {:.3} (drift {t_s:.0e}s + {} stuck cells)",
        aged.canary_accuracy()?,
        serve_plan.cell_faults().len()
    );
    let pool = Arc::new(WorkerPool::new(4));
    let scheduler = Arc::new(Scheduler::on_pool(
        Arc::clone(&pool),
        Arc::new(aged),
        None,
        SchedulerConfig::deterministic(),
        None,
    )?);

    // 2. A training job on the same pool, with kills and checkpoint
    //    corruption injected from a seeded chaos plan.
    let ckpt_dir = std::env::temp_dir().join(format!("vortex-train-job-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let config = JobConfig {
        max_epochs: 15,
        checkpoint_every: 3,
        restart_base: Duration::from_millis(1),
        restart_cap: Duration::from_millis(8),
        ..JobConfig::new(
            TrainerConfig {
                seed: 21,
                ..TrainerConfig::default()
            },
            &ckpt_dir,
        )
    };
    let train_plan = ChaosPlan::generate(
        &ChaosConfig::new(7, 4, 4)
            .with_train_kills(2, 12)
            .with_checkpoint_bit_flips(4),
    );
    println!(
        "chaos   : kills planned at epochs {:?}, 4 checkpoint bit flips armed",
        train_plan.train_kill_epochs()
    );
    let train_set = Arc::new(split.train.clone());
    let job = TrainingJob::new(config.clone(), Arc::clone(&train_set), env)?
        .with_scheduler(Arc::clone(&scheduler))
        .with_chaos(train_plan)
        .with_pool(Arc::clone(&pool));

    // 3. Run it while inference traffic flows through the shared pool.
    let trainer = std::thread::spawn(move || job.run());
    let mut served = 0usize;
    while !trainer.is_finished() {
        for k in 0..split.test.len().min(32) {
            scheduler
                .submit_wait(split.test.image(k).to_vec())
                .expect("serving must never observe a training fault");
            served += 1;
        }
    }
    let report = trainer.join().expect("trainer thread")?;
    println!(
        "trained : {} epochs, final MSE {:.5}, {} kills survived, {} restarts, \
         {} corrupt checkpoints rejected, {served} predictions served alongside",
        report.epochs, report.final_mse, report.kills, report.restarts, report.rejected_checkpoints
    );

    // 4. Recovery is exact: an undisturbed job lands on the same bits.
    let clean_dir = ckpt_dir.with_extension("clean");
    let _ = std::fs::remove_dir_all(&clean_dir);
    let clean = TrainingJob::new(
        JobConfig {
            checkpoint_dir: clean_dir.clone(),
            ..config
        },
        train_set,
        env,
    )?
    .run()?;
    assert_eq!(clean.epochs, report.epochs);
    let identical = clean
        .weights
        .as_slice()
        .iter()
        .zip(report.weights.as_slice())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(identical, "recovered weights must match the clean run");
    println!("verify  : chaos-battered weights == undisturbed weights, bit for bit");

    // 5. Promote: compile the trained weights (seeded, with canaries)
    //    and offer them to the live scheduler through the HealthMonitor.
    let job = TrainingJob::new(
        JobConfig {
            checkpoint_dir: ckpt_dir.clone(),
            ..JobConfig::new(
                TrainerConfig {
                    seed: 21,
                    ..TrainerConfig::default()
                },
                &ckpt_dir,
            )
        },
        Arc::new(split.train.clone()),
        env,
    )?;
    match job.promote(&report.weights, &scheduler, canaries, 0.9)? {
        ProbeOutcome::Recovered { before, after } => {
            println!("promote : hot-swapped — canary accuracy {before:.3} -> {after:.3}")
        }
        other => println!("promote : not swapped ({other:?})"),
    }

    // 6. The obs registry saw the whole story.
    let snapshot = vortex_obs::snapshot();
    for name in [
        "train.epochs",
        "train.checkpoints",
        "train.kills",
        "train.restarts",
        "train.checkpoint.rejected",
        "train.yields",
        "train.promotions",
        "pool.job_panics",
    ] {
        println!("metrics : {name} = {}", snapshot.counter(name).unwrap_or(0));
    }
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let _ = std::fs::remove_dir_all(&clean_dir);
    Ok(())
}
