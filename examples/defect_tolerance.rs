//! Defect tolerance: fabricate crossbars with stuck-at cells, let AMP's
//! pre-testing flag the defective rows, and show how redundancy restores
//! the hardware test rate (§4.2.2 / §5.3 of the paper).
//!
//! ```text
//! cargo run --release --example defect_tolerance
//! ```

use vortex_core::amp::sensitivity::mean_abs_inputs;
use vortex_core::pipeline::HardwareEnv;
use vortex_core::report::{pct, Table};
use vortex_core::vortex::{amp_evaluate, AmpChipOptions};
use vortex_device::defects::DefectModel;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_nn::dataset::{DatasetConfig, SynthDigits};
use vortex_nn::gdt::GdtTrainer;
use vortex_nn::split::stratified_split;

fn main() -> Result<(), vortex_core::error::Error> {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(13);
    let data = SynthDigits::generate(
        &DatasetConfig {
            side: 14,
            samples_per_class: 80,
            ..DatasetConfig::paper()
        },
        23,
    )?;
    let split = stratified_split(&data, 600, 200, &mut rng)?;
    let weights = GdtTrainer::default().train(&split.train)?;
    let mean_abs = mean_abs_inputs(&split.train);

    // 2 % of cells stuck at HRS, 1 % stuck at LRS, plus σ = 0.5 variation.
    let mut env = HardwareEnv::with_sigma(0.5)?;
    env.defects = DefectModel::new(0.01, 0.02)?;

    let mut table = Table::new(
        "defective chip (1% stuck-LRS + 2% stuck-HRS cells, sigma = 0.5)",
        &["redundant rows", "hardware test rate"],
    );
    for redundancy in [0usize, 10, 25, 50] {
        let opts = AmpChipOptions {
            redundant_rows: redundancy,
            ..AmpChipOptions::default()
        };
        let eval = amp_evaluate(&weights, &mean_abs, &opts, &env, &split.test, 3, &mut rng)?;
        table.add_row([redundancy.to_string(), pct(eval.mean_test_rate)]);
    }
    println!("{table}");
    println!(
        "note: pre-testing reads every device once per chip; rows with |θ̂| > {} are\n\
         treated as defective and, redundancy permitting, never mapped.",
        AmpChipOptions::default().defect_theta_threshold
    );
    Ok(())
}
