//! Serving under load: train a digit classifier, compile it twice (an
//! `Exact` primary and a `Calibrated` fallback sharing the same
//! programmed crossbar pair), then push a traffic burst through the
//! batched scheduler and watch backpressure and the degradation ladder
//! work: early requests are served exact, requests admitted above the
//! high-water mark are downgraded to the calibrated read, overflow is
//! rejected with `QueueFull`, and after the queue drains the scheduler
//! recovers to exact fidelity on its own.
//!
//! ```text
//! cargo run --release --example serve_traffic
//! ```

use std::sync::Arc;
use std::time::Duration;

use vortex_core::amp::greedy::RowMapping;
use vortex_core::error::Error;
use vortex_core::pipeline::{HardwareEnv, ReadFidelity};
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_nn::dataset::{DatasetConfig, SynthDigits};
use vortex_nn::gdt::GdtTrainer;
use vortex_nn::split::stratified_split;
use vortex_serve::prelude::*;

fn main() -> Result<(), Error> {
    // 1. Train a small digit classifier.
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(17);
    let data = SynthDigits::generate(
        &DatasetConfig {
            side: 7,
            samples_per_class: 60,
            ..DatasetConfig::paper()
        },
        7,
    )?;
    let split = stratified_split(&data, 400, 200, &mut rng)?;
    let weights = GdtTrainer {
        epochs: 12,
        ..Default::default()
    }
    .train(&split.train)?;
    let mapping = RowMapping::identity(weights.rows());

    // 2. Program one crossbar pair, then freeze it twice: an exact
    //    (per-sample IR-drop solve) primary and a calibrated fallback.
    let mut env = HardwareEnv::with_sigma(0.3)?.with_ir_drop(4.0);
    env.compensate_program_irdrop = true;
    let compiler = env.compiler().with_calibration(&split.test.mean_input());
    let pair = compiler.program(&weights, &mapping, &mut rng)?;
    let mut exact_env = env;
    exact_env.read_fidelity = ReadFidelity::ExactIrDrop;
    let primary = Arc::new(
        exact_env
            .compiler()
            .with_calibration(&split.test.mean_input())
            .freeze(&pair, &mapping)?,
    );
    let fallback = Arc::new(compiler.freeze(&pair, &mapping)?);
    println!(
        "compiled: {}x{} pair as {:?} primary + {:?} fallback",
        primary.rows(),
        primary.classes(),
        primary.fidelity(),
        fallback.fidelity()
    );

    // 3. A scheduler with a deliberately tight queue so a burst engages
    //    both backpressure and the degradation ladder.
    let config = SchedulerConfig::new(Parallelism::Fixed(4))
        .with_queue_capacity(96)
        .with_batching(32, Duration::from_micros(200))
        .with_watermarks(48, 12)
        .paused();
    let scheduler = Scheduler::new(Arc::clone(&primary), Some(Arc::clone(&fallback)), config)
        .expect("scheduler config is valid");

    // 4. Burst the whole test set at the paused scheduler, then release
    //    the workers and collect every response.
    let mut tickets = Vec::new();
    let mut rejected = 0usize;
    for k in 0..split.test.len() {
        match scheduler.try_submit(split.test.image(k).to_vec(), None) {
            Ok(ticket) => tickets.push((k, ticket)),
            Err(ServeError::QueueFull { .. }) => rejected += 1,
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    println!(
        "burst   : {} submitted, {} admitted, {} rejected (backpressure), ladder engaged: {}",
        split.test.len(),
        tickets.len(),
        rejected,
        scheduler.is_degraded()
    );

    scheduler.resume();
    let mut exact_served = 0usize;
    let mut degraded_served = 0usize;
    let mut correct = 0usize;
    for (k, ticket) in tickets {
        let p = ticket.wait().expect("admitted requests are answered");
        if p.downgraded {
            degraded_served += 1;
        } else {
            exact_served += 1;
        }
        if p.class == split.test.label(k) {
            correct += 1;
        }
    }
    let served = exact_served + degraded_served;
    println!(
        "served  : {served} answered — {exact_served} exact, {degraded_served} degraded, \
         test rate {:.1}%",
        100.0 * correct as f64 / served as f64
    );

    // 5. The queue drained past the low-water mark, so the ladder has
    //    released: a fresh request is served exact again.
    let probe = scheduler
        .submit_wait(split.test.image(0).to_vec())
        .expect("probe after drain");
    println!(
        "recover : ladder engaged: {}, probe served {:?} (downgraded: {})",
        scheduler.is_degraded(),
        probe.fidelity,
        probe.downgraded
    );
    assert!(!probe.downgraded, "scheduler should have recovered");

    // 6. The obs registry saw every admit/reject/downgrade.
    let snapshot = vortex_obs::snapshot();
    for name in [
        "serve.admitted",
        "serve.completed",
        "serve.rejected_full",
        "serve.rejected_timeout",
        "serve.downgraded",
        "serve.degradation_entered",
        "serve.degradation_exited",
    ] {
        println!("metrics : {name} = {}", snapshot.counter(name).unwrap_or(0));
    }
    Ok(())
}
