//! Self-healing serving, end to end: train and compile a classifier
//! with a frozen canary set, break it the way hardware breaks
//! (retention drift + stuck-at devices) while a chaos plan panics a
//! worker mid-drain, then watch the stack heal itself — the supervisor
//! requeues the crashed batch and respawns the worker, the health
//! monitor catches the canary-accuracy breach, recompiles with the same
//! seed and hot-swaps the fresh replica into the running scheduler. No
//! accepted request is lost, and accuracy returns to the fresh value
//! exactly.
//!
//! ```text
//! cargo run --release --example self_healing
//! ```

use std::sync::Arc;
use std::time::Duration;

use vortex_core::amp::greedy::RowMapping;
use vortex_core::error::Error;
use vortex_core::pipeline::HardwareEnv;
use vortex_device::drift::RetentionModel;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_nn::dataset::{Dataset, DatasetConfig, SynthDigits};
use vortex_nn::gdt::GdtTrainer;
use vortex_nn::split::stratified_split;
use vortex_serve::prelude::*;

/// Drains `test` through the scheduler and returns (answered, errors,
/// fraction correct).
fn drain(scheduler: &Scheduler, test: &Dataset) -> (usize, usize, f64) {
    scheduler.pause();
    let tickets: Vec<(usize, Ticket)> = (0..test.len())
        .map(|k| {
            let t = scheduler
                .try_submit(test.image(k).to_vec(), None)
                .expect("queue sized for the whole set");
            (k, t)
        })
        .collect();
    scheduler.resume();
    let (mut answered, mut errors, mut correct) = (0usize, 0usize, 0usize);
    for (k, ticket) in tickets {
        match ticket.wait() {
            Ok(p) => {
                answered += 1;
                if p.class == test.label(k) {
                    correct += 1;
                }
            }
            Err(_) => errors += 1,
        }
    }
    (answered, errors, correct as f64 / test.len() as f64)
}

fn main() -> Result<(), Error> {
    // 1. Train a small digit classifier and freeze it with a canary set:
    //    24 probe inputs whose fresh predictions become golden answers.
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(17);
    let data = SynthDigits::generate(
        &DatasetConfig {
            side: 7,
            samples_per_class: 60,
            ..DatasetConfig::paper()
        },
        7,
    )?;
    let split = stratified_split(&data, 400, 200, &mut rng)?;
    let weights = GdtTrainer {
        epochs: 12,
        ..Default::default()
    }
    .train(&split.train)?;
    let mapping = RowMapping::identity(weights.rows());
    let env = HardwareEnv::with_sigma(0.3)?.with_ir_drop(4.0);
    let canaries: Vec<Vec<f64>> = (0..24).map(|k| split.test.image(k).to_vec()).collect();
    let compile_fresh = {
        let (test, canaries) = (split.test.clone(), canaries);
        move || -> CompiledModel {
            let mut rng = Xoshiro256PlusPlus::seed_from_u64(99);
            env.compiler()
                .with_calibration(&test.mean_input())
                .compile(&weights, &mapping, &mut rng)
                .expect("compile")
                .with_canary_inputs(canaries.clone())
                .expect("canary freeze")
        }
    };
    let fresh = compile_fresh();
    let fresh_accuracy = fresh.accuracy(&split.test)?;
    println!(
        "fresh   : {}x{} model, test accuracy {:.1}%, canary accuracy {:.3}",
        fresh.rows(),
        fresh.classes(),
        100.0 * fresh_accuracy,
        fresh.canary_accuracy()?
    );

    // 2. One seed, one reproducible disaster: two worker panics in the
    //    first drain, stuck-off devices, and 10^8 s of retention drift.
    let plan = ChaosPlan::generate(
        &ChaosConfig::new(2024, fresh.rows(), fresh.classes())
            .with_horizon((split.test.len() / 16) as u64)
            .with_worker_panics(2)
            .with_stuck_cells(8, 0.0)
            .with_drift(1e8),
    );
    let (t_s, drift_seed) = plan.drift().expect("plan carries drift");
    let retention = RetentionModel::new(0.6, 0.3, 1e-3).expect("retention model");
    let aged = fresh
        .age_with(&retention, t_s, drift_seed)
        .expect("aging")
        .with_cell_faults(plan.cell_faults())
        .expect("stuck cells");
    println!(
        "aged    : drift {t_s:.0e}s + {} stuck cells, test accuracy {:.1}%, canary accuracy {:.3}",
        plan.cell_faults().len(),
        100.0 * aged.accuracy(&split.test)?,
        aged.canary_accuracy()?
    );

    // 3. Serve the degraded model through the storm: the plan panics two
    //    batch dispatches, the supervisor requeues and respawns.
    let scheduler = Arc::new(
        Scheduler::with_chaos(
            Arc::new(aged),
            None,
            SchedulerConfig::new(Parallelism::Fixed(2))
                .with_queue_capacity(split.test.len())
                .with_batching(16, Duration::ZERO)
                .paused(),
            Some(plan.clone()),
        )
        .expect("scheduler config is valid"),
    );
    let (answered, errors, rate) = drain(&scheduler, &split.test);
    println!(
        "storm   : {answered} answered + {errors} typed errors = {} accepted (0 lost), \
         test rate {:.1}%, panics planned {:?}",
        answered + errors,
        100.0 * rate,
        plan.panic_batches()
    );
    assert_eq!(answered + errors, split.test.len(), "nothing may be lost");

    // 4. Heal: the canary probe breaches the floor, the monitor
    //    recompiles with the same seed and hot-swaps — queue not drained,
    //    scheduler not restarted.
    let monitor = HealthMonitor::new(
        Arc::clone(&scheduler),
        HealthConfig::new(1.0, Duration::from_millis(50)).expect("valid floor"),
        move || Ok(Arc::new(compile_fresh())),
    );
    match monitor.probe().expect("probe") {
        ProbeOutcome::Recovered { before, after } => {
            println!("healed  : canary accuracy {before:.3} -> {after:.3} after hot swap");
        }
        other => panic!("expected a recovery, got {other:?}"),
    }

    // 5. The same traffic now serves at fresh accuracy — bit-exactly,
    //    because the recompile used the same seed.
    let (answered, errors, rate) = drain(&scheduler, &split.test);
    println!(
        "after   : {answered} answered, {errors} errors, test rate {:.1}% \
         (fresh was {:.1}%)",
        100.0 * rate,
        100.0 * fresh_accuracy
    );
    assert_eq!(errors, 0, "the storm is over");
    assert!(
        (rate - fresh_accuracy).abs() < 1e-12,
        "recovered accuracy must match the fresh compile"
    );

    // 6. The whole episode is on the record.
    let snapshot = vortex_obs::snapshot();
    for name in [
        "serve.worker_panics",
        "serve.supervisor.requeued",
        "serve.supervisor.respawns",
        "serve.supervisor.crashed",
        "serve.health.probes",
        "serve.health.floor_breaches",
        "serve.health.swaps",
    ] {
        println!("metrics : {name} = {}", snapshot.counter(name).unwrap_or(0));
    }
    Ok(())
}
