//! Serving a compiled model: train a digit classifier, compile it onto
//! fabricated hardware exactly once, save the frozen model to a versioned
//! artifact, reload it, and batch-infer the test set — with identical
//! predictions before and after the round-trip.
//!
//! ```text
//! cargo run --release --example serve_model
//! ```

use vortex_core::amp::greedy::RowMapping;
use vortex_core::error::Error;
use vortex_core::pipeline::HardwareEnv;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_nn::dataset::{DatasetConfig, SynthDigits};
use vortex_nn::executor::Parallelism;
use vortex_nn::gdt::GdtTrainer;
use vortex_nn::split::stratified_split;
use vortex_runtime::CompiledModel;

fn main() -> Result<(), Error> {
    // 1. Train a conventional classifier on the 14×14 digit benchmark.
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(11);
    let data_cfg = DatasetConfig {
        side: 14,
        samples_per_class: 90,
        ..DatasetConfig::paper()
    };
    let data = SynthDigits::generate(&data_cfg, 7)?;
    let split = stratified_split(&data, 600, 300, &mut rng)?;
    let weights = GdtTrainer {
        epochs: 15,
        ..Default::default()
    }
    .train(&split.train)?;

    // 2. Compile once: fabricate a varying crossbar pair, program the
    //    weights, calibrate the IR-drop read path, and freeze the result.
    let mut env = HardwareEnv::with_sigma(0.4)?.with_ir_drop(5.0);
    env.compensate_program_irdrop = true;
    let model = env
        .compiler()
        .with_calibration(&split.test.mean_input())
        .compile(&weights, &RowMapping::identity(weights.rows()), &mut rng)?;
    println!(
        "compiled: {}x{} crossbar pair, {:?} read path",
        model.rows(),
        model.classes(),
        model.fidelity()
    );

    // 3. Save the frozen model to a self-contained versioned artifact,
    //    then reload it — no retraining, no refabrication.
    let path = std::env::temp_dir().join(format!("vortex-model-{}.vxrt", std::process::id()));
    model.save(&path)?;
    let artifact_bytes = std::fs::metadata(&path)?.len();
    let served = CompiledModel::load(&path)?;
    std::fs::remove_file(&path).ok();
    println!("artifact: {artifact_bytes} bytes at {}", path.display());

    // 4. Batch-infer the test set on both instances. Predictions are
    //    bit-identical: the artifact round-trip preserves every frozen
    //    conductance and calibration value exactly.
    let samples: Vec<&[f64]> = (0..split.test.len()).map(|i| split.test.image(i)).collect();
    let before = model.infer_batch(&samples, Parallelism::Serial)?;
    let after = served.infer_batch(&samples, Parallelism::Auto)?;
    assert_eq!(before, after, "artifact round-trip changed predictions");

    let accuracy = served.accuracy(&split.test)?;
    println!(
        "served  : {} samples batch-inferred, test rate {:.1}%, predictions identical",
        samples.len(),
        100.0 * accuracy
    );
    Ok(())
}
