//! Quickstart: train a digit classifier with Vortex, program it onto a
//! simulated memristor crossbar pair, and compare the hardware test rate
//! against the naive open-loop baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vortex_core::old::OldPipeline;
use vortex_core::pipeline::HardwareEnv;
use vortex_core::vortex::{VortexConfig, VortexPipeline};
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_nn::dataset::{DatasetConfig, SynthDigits};
use vortex_nn::split::stratified_split;

fn main() -> Result<(), vortex_core::error::Error> {
    // 1. A 14×14 synthetic digit benchmark: 600 training / 300 test
    //    samples (use `DatasetConfig::paper()` for the full 28×28 setup).
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
    let data_cfg = DatasetConfig {
        side: 14,
        samples_per_class: 90,
        ..DatasetConfig::paper()
    };
    let data = SynthDigits::generate(&data_cfg, 7)?;
    let split = stratified_split(&data, 600, 300, &mut rng)?;
    println!(
        "dataset: {} train / {} test samples, {} features",
        split.train.len(),
        split.test.len(),
        split.train.num_features()
    );

    // 2. The hardware: memristors with lognormal variation σ = 0.8 —
    //    a hostile chip for open-loop programming.
    let env = HardwareEnv::with_sigma(0.8)?;

    // 3. Baseline: conventional software training + blind programming.
    let old = OldPipeline::default().run(&split.train, &split.test, &env, &mut rng)?;
    println!(
        "OLD    : training rate {:5.1}%, hardware test rate {:5.1}%",
        100.0 * old.rates.training_rate,
        100.0 * old.rates.test_rate
    );

    // 4. Vortex: variation-aware training with self-tuned γ plus per-chip
    //    adaptive mapping over 20 redundant rows.
    let config = VortexConfig {
        redundant_rows: 20,
        ..VortexConfig::default()
    };
    let vortex = VortexPipeline::new(config).run(&split.train, &split.test, &env, &mut rng)?;
    println!(
        "Vortex : training rate {:5.1}%, hardware test rate {:5.1}% (tuned gamma = {:.2})",
        100.0 * vortex.rates.training_rate,
        100.0 * vortex.rates.test_rate,
        vortex.best_gamma
    );
    println!(
        "gain   : {:+.1} percentage points of hardware test rate",
        100.0 * (vortex.rates.test_rate - old.rates.test_rate)
    );
    Ok(())
}
