//! ADC design-space exploration (Fig. 8 of the paper): how much pre-test
//! sensing resolution does adaptive mapping actually need? Sweeps the
//! pre-test ADC from 3 to 10 bits at two variation corners and prints the
//! resulting hardware test rates — the knee at ~6 bits is the paper's
//! design takeaway.
//!
//! ```text
//! cargo run --release --example adc_design
//! ```

use vortex_core::amp::sensitivity::mean_abs_inputs;
use vortex_core::pipeline::HardwareEnv;
use vortex_core::report::{pct, Table};
use vortex_core::vat::VatTrainer;
use vortex_core::vortex::{amp_evaluate, AmpChipOptions};
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_nn::dataset::{DatasetConfig, SynthDigits};
use vortex_nn::split::stratified_split;

fn main() -> Result<(), vortex_core::error::Error> {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(31);
    let data = SynthDigits::generate(
        &DatasetConfig {
            side: 14,
            samples_per_class: 80,
            ..DatasetConfig::paper()
        },
        37,
    )?;
    let split = stratified_split(&data, 600, 200, &mut rng)?;
    let mean_abs = mean_abs_inputs(&split.train);

    let sigmas = [0.4, 0.8];
    let mut table = Table::new(
        "pre-test ADC resolution vs hardware test rate",
        &["ADC bits", "sigma=0.4", "sigma=0.8"],
    );
    // Train one robust weight set per σ (fixed γ = 0.2, the paper's
    // post-AMP optimum).
    let mut weight_sets = Vec::new();
    for &sigma in &sigmas {
        let trainer = VatTrainer {
            sigma,
            gamma: 0.2,
            ..VatTrainer::default()
        };
        weight_sets.push(trainer.train(&split.train)?);
    }
    for bits in 3..=10u32 {
        let mut row = vec![format!("{bits}")];
        for (i, &sigma) in sigmas.iter().enumerate() {
            let env = HardwareEnv::with_sigma(sigma)?;
            let opts = AmpChipOptions {
                pretest_bits: bits,
                ..AmpChipOptions::default()
            };
            let eval = amp_evaluate(
                &weight_sets[i],
                &mean_abs,
                &opts,
                &env,
                &split.test,
                3,
                &mut rng,
            )?;
            row.push(pct(eval.mean_test_rate));
        }
        table.add_row(row);
    }
    println!("{table}");
    println!("expected shape: 4–5 bit pre-testing limits AMP; ~6 bits saturates.");
    Ok(())
}
