//! Tiled-accelerator design study (extension beyond the paper): compare a
//! monolithic crossbar against row-tiled layouts under IR-drop, and print
//! the hardware-overhead ledger of each training scheme.
//!
//! ```text
//! cargo run --release --example tiled_accelerator
//! ```

use vortex_core::amp::greedy::RowMapping;
use vortex_core::amp::sensitivity::mean_abs_inputs;
use vortex_core::pipeline::{evaluate_hardware, HardwareEnv};
use vortex_core::report::{pct, Table};
use vortex_core::tiling::TiledEvaluator;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_nn::dataset::{DatasetConfig, SynthDigits};
use vortex_nn::gdt::GdtTrainer;
use vortex_nn::split::stratified_split;
use vortex_xbar::cost::SchemeCostModel;

fn main() -> Result<(), vortex_core::error::Error> {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(77);
    let data = SynthDigits::generate(
        &DatasetConfig {
            side: 14,
            samples_per_class: 80,
            ..DatasetConfig::paper()
        },
        71,
    )?;
    let split = stratified_split(&data, 600, 200, &mut rng)?;
    let weights = GdtTrainer::default().train(&split.train)?;
    let mean_abs = mean_abs_inputs(&split.train);

    // Aggressive wires, no programming compensation: the regime where
    // Table 1 shows monolithic arrays failing.
    let env = HardwareEnv::ideal().with_ir_drop(10.0);

    let mut table = Table::new(
        "monolithic vs tiled under r_wire = 10 ohm (uncompensated)",
        &["layout", "hardware test rate"],
    );
    let mono = evaluate_hardware(
        &weights,
        &RowMapping::identity(weights.rows()),
        &env,
        &split.test,
        3,
        &mut rng,
    )?;
    table.add_row(["monolithic 196-row".to_string(), pct(mono.mean_test_rate)]);
    for tile_rows in [98usize, 49, 28] {
        let tiled = TiledEvaluator::new(tile_rows)?.evaluate(
            &weights,
            &mean_abs,
            &env,
            &split.test,
            3,
            &mut rng,
        )?;
        table.add_row([format!("{tile_rows}-row tiles"), pct(tiled.mean_test_rate)]);
    }
    println!("{table}");

    // What does each training scheme cost in peripheral activity?
    let cost = SchemeCostModel {
        rows: weights.rows(),
        cols: weights.cols(),
        redundant_rows: 0,
        mean_pulse_width_s: 1e-6,
        pretest_repeats: 3,
        samples: split.train.len(),
        epochs: 25,
    };
    let mut ledger = Table::new(
        "scheme overhead (closed form)",
        &["scheme", "pulses", "ADC conversions"],
    );
    for (name, c) in [
        ("OLD", cost.old_cost()?),
        ("Vortex", cost.vortex_cost()?),
        ("CLD", cost.cld_cost()?),
    ] {
        ledger.add_row([
            name.to_string(),
            c.pulse_count.to_string(),
            c.adc_conversions.to_string(),
        ]);
    }
    println!("{ledger}");
    println!(
        "takeaway: small tiles keep every current path short (Fig. 3's skew never\n\
         develops), and open-loop schemes need orders of magnitude fewer ADC\n\
         conversions than close-loop training."
    );
    Ok(())
}
