//! Scheduler edge cases: backpressure, deadlines, the degradation
//! ladder, shutdown, and pool-size invariance of predictions.
//!
//! Every test that needs an exact queue shape uses a paused scheduler:
//! admissions land while the workers sleep, so queue depths — and with
//! them every admission decision and ladder transition — are fully
//! deterministic.

use std::sync::Arc;
use std::time::{Duration, Instant};

use vortex_device::DeviceParams;
use vortex_linalg::{Matrix, Xoshiro256PlusPlus};
use vortex_runtime::{CompiledModel, Fidelity, ReadOptions};
use vortex_serve::prelude::*;
use vortex_xbar::crossbar::CrossbarConfig;
use vortex_xbar::pair::{DifferentialPair, WeightMapping};

const ROWS: usize = 6;
const COLS: usize = 3;

fn compiled(fidelity: Fidelity) -> Arc<CompiledModel> {
    let device = DeviceParams::default();
    let config = CrossbarConfig {
        r_wire: 8.0,
        ..CrossbarConfig::ideal(ROWS, COLS, device)
    };
    let mapping = WeightMapping::new(&device, 1.0).unwrap();
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
    let mut pair = DifferentialPair::fabricate(config, mapping, &mut rng).unwrap();
    let w = Matrix::from_fn(ROWS, COLS, |i, j| {
        ((i * COLS + j) as f64 * 0.53).sin() * 0.8
    });
    pair.program_open_loop(&w, None, &mut rng).unwrap();
    let assignment: Vec<usize> = (0..ROWS).collect();
    let calibration = vec![0.5; ROWS];
    Arc::new(
        CompiledModel::compile(
            &pair.freeze(),
            &assignment,
            &ReadOptions::new(fidelity),
            Some(&calibration),
        )
        .unwrap(),
    )
}

fn input(k: usize) -> Vec<f64> {
    (0..ROWS)
        .map(|i| ((i * 7 + k) as f64 * 0.37).sin().abs())
        .collect()
}

#[test]
fn zero_capacity_queue_rejects_immediately() {
    let scheduler = Scheduler::new(
        compiled(Fidelity::Calibrated),
        None,
        SchedulerConfig::deterministic().with_queue_capacity(0),
    )
    .unwrap();
    match scheduler.try_submit(input(0), None) {
        Err(ServeError::QueueFull { capacity: 0 }) => {}
        other => panic!("expected QueueFull, got {other:?}"),
    }
}

#[test]
fn expired_deadline_is_rejected_at_submit() {
    let scheduler = Scheduler::new(
        compiled(Fidelity::Calibrated),
        None,
        SchedulerConfig::deterministic(),
    )
    .unwrap();
    match scheduler.try_submit(input(0), Some(Instant::now())) {
        Err(ServeError::Timeout { stage: "submit" }) => {}
        other => panic!("expected submit-stage Timeout, got {other:?}"),
    }
}

#[test]
fn deadline_can_expire_while_queued() {
    let scheduler = Scheduler::new(
        compiled(Fidelity::Calibrated),
        None,
        SchedulerConfig::deterministic().paused(),
    )
    .unwrap();
    let ticket = scheduler
        .try_submit(input(0), Some(Instant::now() + Duration::from_millis(5)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(20));
    scheduler.resume();
    match ticket.wait() {
        Err(ServeError::Timeout { stage: "queue" }) => {}
        other => panic!("expected queue-stage Timeout, got {other:?}"),
    }
}

#[test]
fn wrong_input_length_is_rejected() {
    let scheduler = Scheduler::new(
        compiled(Fidelity::Calibrated),
        None,
        SchedulerConfig::deterministic(),
    )
    .unwrap();
    match scheduler.try_submit(vec![0.0; ROWS + 1], None) {
        Err(ServeError::InvalidParameter { name: "input", .. }) => {}
        other => panic!("expected InvalidParameter, got {other:?}"),
    }
}

#[test]
fn backpressure_engages_at_capacity_and_admits_after_drain() {
    let scheduler = Scheduler::new(
        compiled(Fidelity::Calibrated),
        None,
        SchedulerConfig::deterministic()
            .with_queue_capacity(4)
            .paused(),
    )
    .unwrap();
    let tickets: Vec<Ticket> = (0..4)
        .map(|k| scheduler.try_submit(input(k), None).unwrap())
        .collect();
    assert_eq!(scheduler.queue_depth(), 4);
    match scheduler.try_submit(input(4), None) {
        Err(ServeError::QueueFull { capacity: 4 }) => {}
        other => panic!("expected QueueFull, got {other:?}"),
    }
    scheduler.resume();
    for ticket in tickets {
        assert!(ticket.wait().is_ok());
    }
    // Queue drained: admission works again.
    assert!(scheduler.submit_wait(input(5)).is_ok());
}

#[test]
fn degradation_engages_under_overload_and_recovers() {
    let downgraded = vortex_obs::counter!("serve.downgraded");
    let entered = vortex_obs::counter!("serve.degradation_entered");
    let exited = vortex_obs::counter!("serve.degradation_exited");
    let (downgraded0, entered0, exited0) = (downgraded.get(), entered.get(), exited.get());

    let scheduler = Scheduler::new(
        compiled(Fidelity::Exact),
        Some(compiled(Fidelity::Calibrated)),
        SchedulerConfig::new(Parallelism::Fixed(1))
            .with_queue_capacity(32)
            .with_batching(64, Duration::ZERO)
            .with_watermarks(8, 2)
            .paused(),
    )
    .unwrap();

    // Burst 12 requests into the paused queue: depths 1..=12. The ladder
    // engages on the push that reaches depth 8, so requests 8..=12 (five
    // of them) are admitted degraded.
    let tickets: Vec<Ticket> = (0..12)
        .map(|k| scheduler.try_submit(input(k), None).unwrap())
        .collect();
    assert!(scheduler.is_degraded());

    scheduler.resume();
    let predictions: Vec<Prediction> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
    for (k, p) in predictions.iter().enumerate() {
        if k < 7 {
            assert!(!p.downgraded, "request {k} should have stayed exact");
            assert_eq!(p.fidelity, Fidelity::Exact);
        } else {
            assert!(p.downgraded, "request {k} should have been downgraded");
            assert_eq!(p.fidelity, Fidelity::Calibrated);
        }
        // The whole burst dispatched as one micro-batch.
        assert_eq!(p.batch_size, 12);
    }

    // Draining the burst crossed the low-water mark: the ladder released
    // and new admissions are exact again.
    assert!(!scheduler.is_degraded());
    let probe = scheduler.submit_wait(input(99)).unwrap();
    assert!(!probe.downgraded);
    assert_eq!(probe.fidelity, Fidelity::Exact);

    // This test is the only one with watermarks enabled, so the ladder
    // counters moved by exactly this test's transitions.
    assert_eq!(downgraded.get() - downgraded0, 5);
    assert_eq!(entered.get() - entered0, 1);
    assert_eq!(exited.get() - exited0, 1);
}

#[test]
fn predictions_are_bit_identical_across_pool_sizes() {
    let model = compiled(Fidelity::Calibrated);
    let trace: Vec<Vec<f64>> = (0..40).map(input).collect();
    let direct: Vec<u8> = trace.iter().map(|x| model.infer(x).unwrap()).collect();

    for pool in [Parallelism::Fixed(1), Parallelism::Fixed(4)] {
        let scheduler = Scheduler::new(
            Arc::clone(&model),
            None,
            SchedulerConfig::new(pool)
                .with_queue_capacity(64)
                .with_batching(8, Duration::from_micros(100)),
        )
        .unwrap();
        let tickets: Vec<Ticket> = trace
            .iter()
            .map(|x| scheduler.try_submit(x.clone(), None).unwrap())
            .collect();
        let served: Vec<u8> = tickets
            .into_iter()
            .map(|t| t.wait().unwrap().class)
            .collect();
        assert_eq!(
            served, direct,
            "pool {pool:?} diverged from direct inference"
        );
    }
}

#[test]
fn shutdown_answers_queued_requests_and_closes_admission() {
    let scheduler = Scheduler::new(
        compiled(Fidelity::Calibrated),
        None,
        SchedulerConfig::deterministic().paused(),
    )
    .unwrap();
    let tickets: Vec<Ticket> = (0..3)
        .map(|k| scheduler.try_submit(input(k), None).unwrap())
        .collect();
    scheduler.shutdown();
    for ticket in tickets {
        match ticket.wait() {
            Err(ServeError::ShuttingDown) => {}
            other => panic!("expected ShuttingDown, got {other:?}"),
        }
    }
    match scheduler.try_submit(input(9), None) {
        Err(ServeError::ShuttingDown) => {}
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
}

#[test]
fn shutdown_rejection_outranks_backpressure() {
    // Regression: a closed scheduler must reject with the typed
    // ShuttingDown error even when the queue was at capacity at close —
    // QueueFull would invite pointless retries against a dead scheduler.
    let scheduler = Scheduler::new(
        compiled(Fidelity::Calibrated),
        None,
        SchedulerConfig::deterministic()
            .with_queue_capacity(2)
            .paused(),
    )
    .unwrap();
    let tickets: Vec<Ticket> = (0..2)
        .map(|k| scheduler.try_submit(input(k), None).unwrap())
        .collect();
    match scheduler.try_submit(input(2), None) {
        Err(ServeError::QueueFull { capacity: 2 }) => {}
        other => panic!("expected QueueFull before shutdown, got {other:?}"),
    }
    scheduler.shutdown();
    match scheduler.try_submit(input(3), None) {
        Err(ServeError::ShuttingDown) => {}
        other => panic!("expected ShuttingDown after shutdown, got {other:?}"),
    }
    for ticket in tickets {
        match ticket.wait() {
            Err(ServeError::ShuttingDown) => {}
            other => panic!("expected ShuttingDown for drained requests, got {other:?}"),
        }
    }
}

#[test]
fn invalid_configurations_are_rejected() {
    let model = compiled(Fidelity::Exact);
    let fallback = compiled(Fidelity::Calibrated);

    let zero_batch = SchedulerConfig::deterministic().with_batching(0, Duration::ZERO);
    assert!(matches!(
        Scheduler::new(Arc::clone(&model), None, zero_batch),
        Err(ServeError::InvalidParameter {
            name: "max_batch",
            ..
        })
    ));

    let no_fallback = SchedulerConfig::deterministic().with_watermarks(8, 2);
    assert!(matches!(
        Scheduler::new(Arc::clone(&model), None, no_fallback),
        Err(ServeError::InvalidParameter {
            name: "fallback",
            ..
        })
    ));

    let inverted = SchedulerConfig::deterministic().with_watermarks(2, 8);
    assert!(matches!(
        Scheduler::new(Arc::clone(&model), Some(Arc::clone(&fallback)), inverted),
        Err(ServeError::InvalidParameter {
            name: "high_water",
            ..
        })
    ));
}
