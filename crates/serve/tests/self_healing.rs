//! Self-healing serving under injected faults: supervised workers,
//! exactly-once requeue, submit retries, canary-triggered recompiles and
//! hot swaps — all driven by deterministic [`ChaosPlan`]s so every run
//! is assertable.
//!
//! Obs counters are asserted with `>=` deltas: the registry is global
//! and tests in this binary run concurrently.

use std::sync::Arc;
use std::time::{Duration, Instant};

use vortex_device::drift::RetentionModel;
use vortex_device::DeviceParams;
use vortex_linalg::{Matrix, Xoshiro256PlusPlus};
use vortex_runtime::{CompiledModel, ReadOptions};
use vortex_serve::prelude::*;
use vortex_serve::ServeError;
use vortex_xbar::crossbar::CrossbarConfig;
use vortex_xbar::pair::{DifferentialPair, WeightMapping};

const ROWS: usize = 6;
const COLS: usize = 3;

/// A freshly compiled 6×3 model with a 24-probe canary set frozen in.
/// Pure function of its arguments — calling it twice yields bit-identical
/// models, which is what makes the recompile hook deterministic.
fn fresh_model() -> CompiledModel {
    let device = DeviceParams::default();
    let config = CrossbarConfig {
        r_wire: 8.0,
        ..CrossbarConfig::ideal(ROWS, COLS, device)
    };
    let mapping = WeightMapping::new(&device, 1.0).unwrap();
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
    let mut pair = DifferentialPair::fabricate(config, mapping, &mut rng).unwrap();
    let w = Matrix::from_fn(ROWS, COLS, |i, j| {
        ((i * COLS + j) as f64 * 0.53).sin() * 0.8
    });
    pair.program_open_loop(&w, None, &mut rng).unwrap();
    let assignment: Vec<usize> = (0..ROWS).collect();
    let calibration = vec![0.5; ROWS];
    CompiledModel::compile(
        &pair.freeze(),
        &assignment,
        &ReadOptions::new(Fidelity::Calibrated),
        Some(&calibration),
    )
    .unwrap()
    .with_canary_inputs((0..24).map(input).collect())
    .unwrap()
}

/// The drift-aged variant the healing tests start from: canary accuracy
/// is below 1.0, so a floor of 1.0 always breaches.
fn aged_model() -> CompiledModel {
    let retention = RetentionModel::new(0.6, 0.3, 1e-3).unwrap();
    fresh_model().age_with(&retention, 1e8, 7).unwrap()
}

fn input(k: usize) -> Vec<f64> {
    (0..ROWS)
        .map(|i| ((i * 7 + k) as f64 * 0.37).sin().abs())
        .collect()
}

#[test]
fn injected_panic_loses_no_accepted_request() {
    let panics = vortex_obs::counter!("serve.worker_panics");
    let respawns = vortex_obs::counter!("serve.supervisor.respawns");
    let requeued = vortex_obs::counter!("serve.supervisor.requeued");
    let (panics0, respawns0, requeued0) = (panics.get(), respawns.get(), requeued.get());

    let model = Arc::new(fresh_model());
    let direct: Vec<u8> = (0..8).map(|k| model.infer(&input(k)).unwrap()).collect();

    // One panic somewhere in the first four batches; eight requests at
    // max_batch 2 dispatch exactly four, so the panic always fires.
    let plan = ChaosPlan::generate(
        &ChaosConfig::new(11, ROWS, COLS)
            .with_horizon(4)
            .with_worker_panics(1),
    );
    assert_eq!(plan.panic_batches().len(), 1);
    let scheduler = vortex_serve::Scheduler::with_chaos(
        Arc::clone(&model),
        None,
        SchedulerConfig::deterministic()
            .with_batching(2, Duration::ZERO)
            .with_queue_capacity(16)
            .paused(),
        Some(plan),
    )
    .unwrap();

    let tickets: Vec<Ticket> = (0..8)
        .map(|k| scheduler.try_submit(input(k), None).unwrap())
        .collect();
    scheduler.resume();
    let served: Vec<u8> = tickets
        .into_iter()
        .map(|t| t.wait().expect("requeued requests still answer").class)
        .collect();
    assert_eq!(served, direct, "healing changed a prediction");

    assert!(panics.get() - panics0 >= 1);
    assert!(respawns.get() - respawns0 >= 1);
    assert!(
        requeued.get() - requeued0 >= 2,
        "the crashed batch requeues"
    );
}

#[test]
fn second_crash_answers_with_typed_error_not_a_hang() {
    let crashed = vortex_obs::counter!("serve.supervisor.crashed");
    let crashed0 = crashed.get();

    // Horizon 2 with two panics pins the schedule: batch 0 panics, its
    // requeued retry (batch 1) panics again.
    let plan = ChaosPlan::generate(
        &ChaosConfig::new(3, ROWS, COLS)
            .with_horizon(2)
            .with_worker_panics(2),
    );
    assert_eq!(plan.panic_batches(), vec![0, 1]);
    let model = Arc::new(fresh_model());
    let scheduler = vortex_serve::Scheduler::with_chaos(
        Arc::clone(&model),
        None,
        SchedulerConfig::deterministic()
            .with_batching(2, Duration::ZERO)
            .with_queue_capacity(16)
            .paused(),
        Some(plan),
    )
    .unwrap();

    let tickets: Vec<Ticket> = (0..2)
        .map(|k| scheduler.try_submit(input(k), None).unwrap())
        .collect();
    scheduler.resume();
    for ticket in tickets {
        match ticket.wait() {
            Err(ServeError::WorkerCrashed) => {}
            other => panic!("expected WorkerCrashed, got {other:?}"),
        }
    }
    assert!(crashed.get() - crashed0 >= 2);

    // The pool healed: batch 2 is past the panic horizon and serves.
    assert!(scheduler.submit_wait(input(5)).is_ok());
}

#[test]
fn slow_batches_delay_but_still_answer() {
    let slow = vortex_obs::counter!("serve.chaos.slow_batches");
    let slow0 = slow.get();
    let plan = ChaosPlan::generate(
        &ChaosConfig::new(5, ROWS, COLS)
            .with_horizon(1)
            .with_slow_batches(1, Duration::from_millis(5)),
    );
    let scheduler = vortex_serve::Scheduler::with_chaos(
        Arc::new(fresh_model()),
        None,
        SchedulerConfig::deterministic(),
        Some(plan),
    )
    .unwrap();
    assert!(scheduler.submit_wait(input(0)).is_ok());
    assert!(slow.get() - slow0 >= 1);
}

#[test]
fn submit_retry_backs_off_then_exhausts_or_admits() {
    let exhausted = vortex_obs::counter!("serve.retry.exhausted");
    let attempts = vortex_obs::counter!("serve.retry.attempts");
    let (exhausted0, attempts0) = (exhausted.get(), attempts.get());

    let scheduler = Arc::new(
        Scheduler::new(
            Arc::new(fresh_model()),
            None,
            SchedulerConfig::deterministic()
                .with_queue_capacity(1)
                .paused(),
        )
        .unwrap(),
    );
    let _held = scheduler.try_submit(input(0), None).unwrap();

    // Paused and full: the policy runs dry and the last QueueFull surfaces.
    let policy = RetryPolicy::new(3, Duration::from_millis(1), Duration::from_millis(2)).unwrap();
    match scheduler.submit_with_retry(input(1), None, &policy) {
        Err(ServeError::QueueFull { capacity: 1 }) => {}
        other => panic!("expected QueueFull after exhaustion, got {other:?}"),
    }
    assert!(exhausted.get() - exhausted0 >= 1);
    assert!(attempts.get() - attempts0 >= 2);

    // A deadline that cannot survive the next backoff fails fast.
    let slow_policy = RetryPolicy::new(5, Duration::from_secs(1), Duration::from_secs(1)).unwrap();
    match scheduler.submit_with_retry(
        input(2),
        Some(Instant::now() + Duration::from_millis(5)),
        &slow_policy,
    ) {
        Err(ServeError::Timeout { stage: "submit" }) => {}
        other => panic!("expected fast-fail Timeout, got {other:?}"),
    }

    // Seeded jitter must not weaken the fast-fail: the jittered delay is
    // still bounded below by the base, which outlives this deadline.
    match scheduler.submit_with_retry(
        input(2),
        Some(Instant::now() + Duration::from_millis(5)),
        &slow_policy.with_jitter(9),
    ) {
        Err(ServeError::Timeout { stage: "submit" }) => {}
        other => panic!("expected fast-fail Timeout with jitter, got {other:?}"),
    }

    // Resume mid-retry: the backlog drains and a retried submit lands.
    let resumer = {
        let scheduler = Arc::clone(&scheduler);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            scheduler.resume();
        })
    };
    let patient =
        RetryPolicy::new(200, Duration::from_millis(1), Duration::from_millis(4)).unwrap();
    let ticket = scheduler
        .submit_with_retry(input(3), None, &patient)
        .expect("retry admits once the queue drains");
    assert!(ticket.wait().is_ok());
    resumer.join().unwrap();
}

#[test]
fn canary_breach_recompiles_and_hot_swaps_without_draining() {
    let swaps = vortex_obs::counter!("serve.health.swaps");
    let breaches = vortex_obs::counter!("serve.health.floor_breaches");
    let (swaps0, breaches0) = (swaps.get(), breaches.get());

    let fresh = fresh_model();
    let aged = aged_model();
    let before_expected = aged.canary_accuracy().unwrap();
    assert!(
        before_expected < 1.0,
        "drift must degrade the canaries for this test to bite"
    );
    let fresh_direct: Vec<u8> = (0..8).map(|k| fresh.infer(&input(k)).unwrap()).collect();

    let scheduler =
        Arc::new(Scheduler::new(Arc::new(aged), None, SchedulerConfig::deterministic()).unwrap());
    // Traffic against the degraded model is served (degraded), not shed.
    assert!(scheduler.submit_wait(input(0)).is_ok());

    let monitor = HealthMonitor::new(
        Arc::clone(&scheduler),
        HealthConfig::new(1.0, Duration::from_millis(50)).unwrap(),
        move || Ok::<_, Box<dyn std::error::Error + Send + Sync>>(Arc::new(fresh_model())),
    );
    match monitor.probe().unwrap() {
        ProbeOutcome::Recovered { before, after } => {
            assert_eq!(
                before, before_expected,
                "probe must measure the aged canaries"
            );
            assert_eq!(
                after, 1.0,
                "a fixed-seed recompile answers its own canaries"
            );
        }
        other => panic!("expected Recovered, got {other:?}"),
    }
    assert!(swaps.get() - swaps0 >= 1);
    assert!(breaches.get() - breaches0 >= 1);

    // The running scheduler now serves the fresh replica, bit for bit,
    // with no restart in between.
    assert_eq!(scheduler.primary().canary_accuracy().unwrap(), 1.0);
    let served: Vec<u8> = (0..8)
        .map(|k| scheduler.submit_wait(input(k)).unwrap().class)
        .collect();
    assert_eq!(served, fresh_direct);

    // A healthy model re-probes as healthy — no swap loop.
    match monitor.probe().unwrap() {
        ProbeOutcome::Healthy { canary_accuracy } => assert_eq!(canary_accuracy, 1.0),
        other => panic!("expected Healthy after the swap, got {other:?}"),
    }
}

#[test]
fn background_health_loop_heals_and_stops_promptly() {
    let scheduler = Arc::new(
        Scheduler::new(
            Arc::new(aged_model()),
            None,
            SchedulerConfig::deterministic(),
        )
        .unwrap(),
    );
    let monitor = HealthMonitor::new(
        Arc::clone(&scheduler),
        HealthConfig::new(1.0, Duration::from_millis(2)).unwrap(),
        move || Ok::<_, Box<dyn std::error::Error + Send + Sync>>(Arc::new(fresh_model())),
    );
    let mut handle = monitor.run_background();
    let deadline = Instant::now() + Duration::from_secs(5);
    while scheduler.primary().canary_accuracy().unwrap() < 1.0 {
        assert!(Instant::now() < deadline, "background probe never healed");
        std::thread::sleep(Duration::from_millis(2));
    }
    handle.stop();
    // Stop is idempotent and the scheduler keeps serving afterwards.
    handle.stop();
    assert!(scheduler.submit_wait(input(1)).is_ok());
}

#[test]
fn failed_recompile_leaves_the_degraded_model_serving() {
    let scheduler = Arc::new(
        Scheduler::new(
            Arc::new(aged_model()),
            None,
            SchedulerConfig::deterministic(),
        )
        .unwrap(),
    );
    let monitor = HealthMonitor::new(
        Arc::clone(&scheduler),
        HealthConfig::new(1.0, Duration::from_millis(50)).unwrap(),
        move || {
            Err::<Arc<CompiledModel>, Box<dyn std::error::Error + Send + Sync>>(
                "pipeline unavailable".into(),
            )
        },
    );
    match monitor.probe().unwrap() {
        ProbeOutcome::RecompileFailed {
            canary_accuracy,
            error,
        } => {
            assert!(canary_accuracy < 1.0);
            assert!(error.contains("pipeline unavailable"));
        }
        other => panic!("expected RecompileFailed, got {other:?}"),
    }
    // Degraded but alive beats dead: requests still serve.
    assert!(scheduler.submit_wait(input(0)).is_ok());
}

#[test]
fn swap_primary_rejects_a_shape_mismatch() {
    let scheduler = Scheduler::new(
        Arc::new(fresh_model()),
        None,
        SchedulerConfig::deterministic(),
    )
    .unwrap();
    let device = DeviceParams::default();
    let config = CrossbarConfig {
        r_wire: 8.0,
        ..CrossbarConfig::ideal(4, COLS, device)
    };
    let mapping = WeightMapping::new(&device, 1.0).unwrap();
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
    let mut pair = DifferentialPair::fabricate(config, mapping, &mut rng).unwrap();
    let w = Matrix::from_fn(4, COLS, |i, j| ((i + j) as f64 * 0.3).cos() * 0.5);
    pair.program_open_loop(&w, None, &mut rng).unwrap();
    let wrong_shape = CompiledModel::compile(
        &pair.freeze(),
        &[0, 1, 2, 3],
        &ReadOptions::new(Fidelity::Calibrated),
        Some(&[0.5; 4]),
    )
    .unwrap();
    match scheduler.swap_primary(Arc::new(wrong_shape)) {
        Err(ServeError::InvalidParameter { name: "model", .. }) => {}
        other => panic!("expected InvalidParameter, got {other:?}"),
    }
}

#[test]
fn panicked_pool_task_poisons_nothing_and_the_slot_is_reusable() {
    use vortex_nn::executor::run_trials;
    use vortex_nn::pool::WorkerPool;

    let job_panics = vortex_obs::counter!("pool.job_panics");
    let job_panics0 = job_panics.get();

    // Baselines before any fault: the model's own labels and a serial
    // Monte-Carlo run.
    let model = Arc::new(fresh_model());
    let direct: Vec<u8> = (0..6).map(|k| model.infer(&input(k)).unwrap()).collect();
    let f = |_: usize, r: &mut Xoshiro256PlusPlus| r.next_u64();
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(23);
    let want_mc = run_trials(&mut rng, 31, Parallelism::Serial, f);

    // Fault 1: a chaos-injected pump panic on the shared global pool.
    let plan = ChaosPlan::generate(
        &ChaosConfig::new(29, ROWS, COLS)
            .with_horizon(3)
            .with_worker_panics(1),
    );
    let scheduler = vortex_serve::Scheduler::with_chaos(
        Arc::clone(&model),
        None,
        SchedulerConfig::deterministic()
            .with_batching(2, Duration::ZERO)
            .with_queue_capacity(16)
            .paused(),
        Some(plan),
    )
    .unwrap();
    let tickets: Vec<Ticket> = (0..6)
        .map(|k| scheduler.try_submit(input(k), None).unwrap())
        .collect();
    scheduler.resume();
    let served: Vec<u8> = tickets
        .into_iter()
        .map(|t| t.wait().expect("pump panic must not lose requests").class)
        .collect();
    assert_eq!(served, direct);

    // Fault 2: detached jobs that panic *inside the pool itself* — the
    // worker's catch_unwind must absorb them without killing the thread.
    for _ in 0..3 {
        WorkerPool::global().submit(|| panic!("poison attempt"));
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while job_panics.get() - job_panics0 < 3 {
        assert!(Instant::now() < deadline, "pool never absorbed the panics");
        std::thread::sleep(Duration::from_millis(1));
    }

    // Nothing is poisoned and every slot is reusable: the same pool still
    // runs a bit-exact executor fan-out and keeps serving the scheduler.
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(23);
    let got_mc = run_trials(&mut rng, 31, Parallelism::Fixed(8), f);
    assert_eq!(want_mc, got_mc, "executor drifted after pool panics");
    for (k, want) in direct.iter().enumerate() {
        assert_eq!(scheduler.submit_wait(input(k)).unwrap().class, *want);
    }
}

#[test]
fn policy_monitor_refreshes_a_healthy_model_without_failing() {
    use vortex_serve::lifetime::{Periodic, PolicyObservation, RecalibrationPolicy};

    // A healthy primary (canary accuracy 1.0). The classic monitor never
    // recompiles it; a periodic policy with a zero interval refreshes it
    // on every probe — and the equal-accuracy replacement is accepted,
    // because a scheduled refresh only demands "no worse", not the
    // strict improvement a floor breach does.
    let scheduler = Arc::new(
        Scheduler::new(
            Arc::new(fresh_model()),
            None,
            SchedulerConfig::deterministic(),
        )
        .unwrap(),
    );
    let classic = HealthMonitor::new(
        Arc::clone(&scheduler),
        HealthConfig::new(0.9, Duration::from_millis(50)).unwrap(),
        move || Ok::<_, Box<dyn std::error::Error + Send + Sync>>(Arc::new(fresh_model())),
    );
    assert!(matches!(
        classic.probe().unwrap(),
        ProbeOutcome::Healthy { .. }
    ));

    struct EveryProbe;
    impl RecalibrationPolicy for EveryProbe {
        fn name(&self) -> &'static str {
            "every-probe"
        }
        fn decide(&mut self, _obs: &PolicyObservation) -> bool {
            true
        }
    }
    let refresher = HealthMonitor::with_policy(
        Arc::clone(&scheduler),
        HealthConfig::new(0.9, Duration::from_millis(50)).unwrap(),
        move || Ok::<_, Box<dyn std::error::Error + Send + Sync>>(Arc::new(fresh_model())),
        EveryProbe,
    );
    match refresher.probe().unwrap() {
        ProbeOutcome::Recovered { before, after } => {
            assert_eq!(before, 1.0);
            assert_eq!(after, 1.0, "equal accuracy is an accepted refresh");
        }
        other => panic!("expected a scheduled refresh to swap, got {other:?}"),
    }
    // The interval-based policy exists end to end too: a huge interval
    // never fires on a young chip.
    let lazy = HealthMonitor::with_policy(
        Arc::clone(&scheduler),
        HealthConfig::new(0.9, Duration::from_millis(50)).unwrap(),
        move || Ok::<_, Box<dyn std::error::Error + Send + Sync>>(Arc::new(fresh_model())),
        Periodic::new(3600.0).unwrap(),
    );
    assert!(matches!(
        lazy.probe().unwrap(),
        ProbeOutcome::Healthy { .. }
    ));
    assert!(scheduler.submit_wait(input(2)).is_ok());
}

#[test]
fn predictions_are_bit_identical_across_pool_sizes_under_chaos() {
    let model = Arc::new(fresh_model());
    let trace: Vec<Vec<f64>> = (0..40).map(input).collect();
    let direct: Vec<u8> = trace.iter().map(|x| model.infer(x).unwrap()).collect();

    // One panic plus one slowdown in the first eight batches: enough to
    // exercise the healing path in every pool without risking a
    // double-crash (a single planned panic can never fire twice).
    let config = ChaosConfig::new(17, ROWS, COLS)
        .with_horizon(8)
        .with_worker_panics(1)
        .with_slow_batches(1, Duration::from_millis(1));

    for pool in [Parallelism::Fixed(1), Parallelism::Fixed(4)] {
        let scheduler = vortex_serve::Scheduler::with_chaos(
            Arc::clone(&model),
            None,
            SchedulerConfig::new(pool)
                .with_queue_capacity(64)
                .with_batching(8, Duration::from_micros(100))
                .with_respawn_backoff(Duration::ZERO, Duration::ZERO),
            Some(ChaosPlan::generate(&config)),
        )
        .unwrap();
        let tickets: Vec<Ticket> = trace
            .iter()
            .map(|x| scheduler.try_submit(x.clone(), None).unwrap())
            .collect();
        let served: Vec<u8> = tickets
            .into_iter()
            .map(|t| t.wait().expect("chaos must not lose requests").class)
            .collect();
        assert_eq!(served, direct, "pool {pool:?} diverged under chaos");
    }
}
