//! The device timeline against a real compiled model: bit-determinism
//! of replayed lifetimes, mechanism composition, and the policy trait
//! driving an actual reprogram loop.

use vortex_device::drift::RetentionModel;
use vortex_device::DeviceParams;
use vortex_linalg::{Matrix, Xoshiro256PlusPlus};
use vortex_runtime::{CompiledModel, Fidelity, ReadOptions};
use vortex_serve::lifetime::{
    CanaryTriggered, DeviceTimeline, DriftPredictive, LifetimeConfig, Periodic, PolicyObservation,
    RecalibrationPolicy, TemperatureProfile, ThermalModel, WearModel, REFERENCE_C,
};
use vortex_xbar::crossbar::CrossbarConfig;
use vortex_xbar::pair::{DifferentialPair, WeightMapping};

const ROWS: usize = 6;
const COLS: usize = 3;

/// A freshly compiled 6×3 model with a canary set — the same recipe as
/// the self-healing tests, pure in its arguments.
fn fresh_model() -> CompiledModel {
    let device = DeviceParams::default();
    let config = CrossbarConfig {
        r_wire: 8.0,
        ..CrossbarConfig::ideal(ROWS, COLS, device)
    };
    let mapping = WeightMapping::new(&device, 1.0).unwrap();
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
    let mut pair = DifferentialPair::fabricate(config, mapping, &mut rng).unwrap();
    let w = Matrix::from_fn(ROWS, COLS, |i, j| {
        ((i * COLS + j) as f64 * 0.53).sin() * 0.8
    });
    pair.program_open_loop(&w, None, &mut rng).unwrap();
    let assignment: Vec<usize> = (0..ROWS).collect();
    let calibration = vec![0.5; ROWS];
    CompiledModel::compile(
        &pair.freeze(),
        &assignment,
        &ReadOptions::new(Fidelity::Calibrated),
        Some(&calibration),
    )
    .unwrap()
    .with_canary_inputs((0..24).map(input).collect())
    .unwrap()
}

fn input(k: usize) -> Vec<f64> {
    (0..ROWS)
        .map(|i| ((i * 7 + k) as f64 * 0.37).sin().abs())
        .collect()
}

/// A full-mechanism configuration: drift, wear, diurnal heat, thermal
/// coupling.
fn config(seed: u64) -> LifetimeConfig {
    LifetimeConfig::new(seed, RetentionModel::new(0.08, 0.05, 60.0).unwrap())
        .unwrap()
        .with_wear(WearModel::new(0.05, 50.0, 1.0).unwrap())
        .with_temperature(TemperatureProfile::Diurnal {
            base_c: 20.0,
            peak_c: 45.0,
            period_s: 86_400.0,
        })
        .unwrap()
        .with_thermal(ThermalModel::new(2e-3, 1e-3, 0.04).unwrap())
        .with_reprogram_window(300.0)
        .unwrap()
}

fn bits(m: &CompiledModel) -> Vec<u64> {
    m.realized_weights()
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

#[test]
fn equal_timelines_replay_bit_identically() {
    let mut a = DeviceTimeline::new(config(7), fresh_model());
    let mut b = DeviceTimeline::new(config(7), fresh_model());
    // Interleave materialization and reprogramming; every materialized
    // model must agree to the bit.
    let schedule = [
        (3_600.0, false),
        (40_000.0, false),
        (50_000.0, true),
        (55_000.0, false),
        (172_800.0, true),
        (200_000.0, false),
    ];
    for &(t, reprogram) in &schedule {
        if reprogram {
            a.reprogram(t).unwrap();
            b.reprogram(t).unwrap();
        }
        let (ma, mb) = (a.model_at(t).unwrap(), b.model_at(t).unwrap());
        assert_eq!(bits(&ma), bits(&mb), "replay diverged at t = {t}");
    }
    assert_eq!(a.reprograms(), 2);
    // A different seed is a different chip.
    let c = DeviceTimeline::new(config(8), fresh_model());
    assert_ne!(
        bits(&a.model_at(200_000.0).unwrap()),
        bits(&c.model_at(200_000.0).unwrap())
    );
}

#[test]
fn a_benign_timeline_is_the_identity_at_t_zero() {
    // No wear yet, reference ambient, t = 0: the materialized model is
    // the fresh compile, bit for bit.
    let retention = RetentionModel::new(0.08, 0.05, 60.0).unwrap();
    let cfg = LifetimeConfig::new(9, retention).unwrap();
    let fresh = fresh_model();
    let timeline = DeviceTimeline::new(cfg, fresh.clone());
    let at_zero = timeline.model_at(0.0).unwrap();
    assert_eq!(bits(&fresh), bits(&at_zero));
    assert_eq!(at_zero.canary_accuracy().unwrap(), 1.0);
}

#[test]
fn drift_degrades_canaries_and_reprogram_restores_them() {
    // Aggressive retention so the canaries visibly break within the
    // horizon.
    let retention = RetentionModel::new(0.6, 0.3, 1e-3).unwrap();
    let cfg = LifetimeConfig::new(11, retention).unwrap();
    let mut timeline = DeviceTimeline::new(cfg, fresh_model());
    let aged = timeline.model_at(1e8).unwrap();
    let broken = aged.canary_accuracy().unwrap();
    assert!(broken < 1.0, "heavy drift must break the canaries");
    timeline.reprogram(1e8).unwrap();
    let healed = timeline.model_at(1e8).unwrap();
    assert!(
        healed.canary_accuracy().unwrap() > broken,
        "reprogramming must recover canary accuracy"
    );
    // The drift clock restarted: right after reprogramming, decay is
    // negligible again.
    assert_eq!(timeline.last_program_s(), 1e8);
    assert_eq!(timeline.effective_age_s(1e8), 0.0);
}

#[test]
fn wear_makes_late_reprograms_worse_in_expectation() {
    let wear = WearModel::new(0.02, 10.0, 1.0).unwrap();
    assert!(wear.sigma_at(100) > wear.sigma_at(1));
    let retention = RetentionModel::new(0.01, 0.0, 1e6).unwrap();
    let cfg = LifetimeConfig::new(13, retention).unwrap().with_wear(wear);
    let fresh = fresh_model();
    let mut timeline = DeviceTimeline::new(cfg, fresh.clone());
    let target = fresh.realized_weights();
    let mut last_err = 0.0;
    // Reprogram error (rms versus the fresh target) grows with wear over
    // many cycles; compare cycle 1 to cycle 120 well past endurance.
    for n in [1u64, 120] {
        while timeline.reprograms() < n {
            let t = 10.0 * (timeline.reprograms() + 1) as f64;
            timeline.reprogram(t).unwrap();
        }
        let worn = timeline.model_at(timeline.last_program_s()).unwrap();
        let got = worn.realized_weights();
        let rms = got
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(rms > last_err, "wear must widen the reprogram error");
        last_err = rms;
    }
    assert!(timeline.next_wear_sigma() > 0.02);
}

#[test]
fn temperature_swing_moves_the_read_and_reference_is_identity() {
    let retention = RetentionModel::new(0.0, 0.0, 1.0).unwrap(); // no drift
    let cfg = LifetimeConfig::new(17, retention)
        .unwrap()
        .with_temperature(TemperatureProfile::Constant(60.0))
        .unwrap()
        .with_thermal(ThermalModel::new(2e-3, 1e-3, 0.0).unwrap());
    let fresh = fresh_model();
    let hot = DeviceTimeline::new(cfg, fresh.clone());
    let hot_model = hot.model_at(1000.0).unwrap();
    assert_ne!(
        bits(&fresh),
        bits(&hot_model),
        "a 35-degree excursion must move conductances"
    );
    // Same chip at the reference ambient: thermal factors are exactly 1.
    let cfg_ref = LifetimeConfig::new(17, RetentionModel::new(0.0, 0.0, 1.0).unwrap())
        .unwrap()
        .with_temperature(TemperatureProfile::Constant(REFERENCE_C))
        .unwrap()
        .with_thermal(ThermalModel::new(2e-3, 1e-3, 0.0).unwrap());
    let cool = DeviceTimeline::new(cfg_ref, fresh.clone());
    assert_eq!(bits(&fresh), bits(&cool.model_at(1000.0).unwrap()));
}

#[test]
fn arrhenius_heat_ages_the_drift_clock_faster() {
    let retention = RetentionModel::new(0.08, 0.0, 60.0).unwrap();
    let hot_cfg = LifetimeConfig::new(19, retention)
        .unwrap()
        .with_temperature(TemperatureProfile::Constant(55.0))
        .unwrap()
        .with_thermal(ThermalModel::new(0.0, 0.0, 0.05).unwrap());
    let cool_cfg = LifetimeConfig::new(19, retention).unwrap();
    let hot = DeviceTimeline::new(hot_cfg, fresh_model());
    let cool = DeviceTimeline::new(cool_cfg, fresh_model());
    assert!(hot.effective_age_s(10_000.0) > cool.effective_age_s(10_000.0));
    // Same seed ⇒ same ν population, so the hotter chip is strictly more
    // decayed at every device.
    let (h, c) = (
        hot.model_at(10_000.0).unwrap().realized_weights(),
        cool.model_at(10_000.0).unwrap().realized_weights(),
    );
    let decay = |m: &Matrix| m.as_slice().iter().map(|v| v.abs()).sum::<f64>();
    assert!(
        decay(&h) < decay(&c),
        "heat must accelerate conductance loss"
    );
}

#[test]
fn virtual_time_is_monotone_and_validated() {
    let cfg = config(23);
    let mut timeline = DeviceTimeline::new(cfg, fresh_model());
    timeline.reprogram(1000.0).unwrap();
    assert!(timeline.model_at(999.0).is_err(), "before last reprogram");
    assert!(timeline.reprogram(500.0).is_err(), "time cannot rewind");
    assert!(timeline.model_at(f64::NAN).is_err());
    assert!(
        timeline.model_at(1000.0).is_ok(),
        "at the reprogram is fine"
    );
}

#[test]
fn policies_drive_a_real_reprogram_loop() {
    // Aggressive drift; the canary-triggered policy must fire at least
    // once over the horizon and each firing must restore accuracy.
    let retention = RetentionModel::new(0.6, 0.3, 1e-3).unwrap();
    let cfg = LifetimeConfig::new(29, retention).unwrap();
    let mut timeline = DeviceTimeline::new(cfg, fresh_model());
    let mut policy: Box<dyn RecalibrationPolicy> = Box::new(CanaryTriggered);
    let floor = 0.9;
    let mut recals = 0u64;
    for step in 1..=24 {
        let t = step as f64 * 2e7;
        let acc = timeline.model_at(t).unwrap().canary_accuracy().unwrap();
        let obs = PolicyObservation {
            t_s: t,
            canary_accuracy: acc,
            accuracy_floor: floor,
            since_reprogram_s: t - timeline.last_program_s(),
            reprograms: timeline.reprograms(),
        };
        if policy.decide(&obs) {
            timeline.reprogram(t).unwrap();
            policy.notify_reprogrammed(t);
            recals += 1;
            assert!(timeline.model_at(t).unwrap().canary_accuracy().unwrap() >= acc);
        }
    }
    assert!(recals > 0, "the floor must breach at least once");
    assert_eq!(timeline.reprograms(), recals);

    // The other two policies implement the same trait object interface.
    for mut p in [
        Box::new(Periodic::new(1e7).unwrap()) as Box<dyn RecalibrationPolicy>,
        Box::new(DriftPredictive::new(4, 1e6).unwrap()),
    ] {
        let _ = p.name();
        let _ = p.decide(&PolicyObservation {
            t_s: 0.0,
            canary_accuracy: 1.0,
            accuracy_floor: floor,
            since_reprogram_s: 0.0,
            reprograms: 0,
        });
    }
}
