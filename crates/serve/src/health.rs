//! Canary-probe health monitoring with drift-triggered recalibration.
//!
//! A compiled model can carry a frozen canary set — probe inputs and the
//! golden predictions the *fresh* model gave them (see
//! [`CompiledModel::with_canary_inputs`]). The [`HealthMonitor`] replays
//! those probes against the scheduler's current primary replica: while
//! the model still answers its own canaries, it is healthy; when
//! conductance drift (or stuck devices) pushes canary accuracy below the
//! configured floor, the monitor triggers a recompile through its
//! [`Recompile`] hook, verifies the replacement against the *same*
//! golden answers, and hot-swaps it into the running scheduler via
//! [`Scheduler::swap_primary`] — no queue drain, no dropped requests.
//!
//! The serve crate stays training-free: [`Recompile`] is a trait (blanket
//! implemented for closures), so the caller decides what "recompile"
//! means — typically a `vortex_core` pipeline run with a fixed seed,
//! which makes the recovered model (and hence the whole healing loop)
//! bit-reproducible.
//!
//! Probing is pull-based by default ([`HealthMonitor::probe`], called
//! from tests or an ops loop); [`HealthMonitor::run_background`] spawns
//! the same probe on a fixed interval with prompt shutdown.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vortex_runtime::CompiledModel;

use crate::lifetime::{CanaryTriggered, PolicyObservation, RecalibrationPolicy};
use crate::scheduler::Scheduler;
use crate::{Result, ServeError};

/// The recalibration hook: produces a replacement model when canary
/// accuracy breaches the floor. Blanket-implemented for closures, so the
/// usual spelling is
/// `move || compiler.compile(&weights).map(Arc::new).map_err(Into::into)`.
pub trait Recompile: Send + Sync {
    /// Builds a fresh replacement model.
    ///
    /// # Errors
    ///
    /// Any error the underlying pipeline produces; the monitor reports it
    /// as [`ProbeOutcome::RecompileFailed`] rather than panicking.
    fn recompile(
        &self,
    ) -> std::result::Result<Arc<CompiledModel>, Box<dyn std::error::Error + Send + Sync>>;
}

impl<F> Recompile for F
where
    F: Fn() -> std::result::Result<Arc<CompiledModel>, Box<dyn std::error::Error + Send + Sync>>
        + Send
        + Sync,
{
    fn recompile(
        &self,
    ) -> std::result::Result<Arc<CompiledModel>, Box<dyn std::error::Error + Send + Sync>> {
        self()
    }
}

/// Configuration of a [`HealthMonitor`].
#[derive(Debug, Clone, PartialEq)]
pub struct HealthConfig {
    /// Canary accuracy below which a recompile is triggered, in `[0, 1]`.
    pub accuracy_floor: f64,
    /// Interval between background probes
    /// ([`HealthMonitor::run_background`] only).
    pub probe_interval: Duration,
}

impl HealthConfig {
    /// A monitor configuration with the given accuracy floor.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] for a floor outside
    /// `[0, 1]` (or NaN).
    pub fn new(accuracy_floor: f64, probe_interval: Duration) -> Result<Self> {
        if !(0.0..=1.0).contains(&accuracy_floor) {
            return Err(ServeError::InvalidParameter {
                name: "accuracy_floor",
                requirement: "must be a fraction in [0, 1]",
            });
        }
        Ok(Self {
            accuracy_floor,
            probe_interval,
        })
    }
}

/// What one health probe found and did.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeOutcome {
    /// Canary accuracy is at or above the floor; nothing to do.
    Healthy {
        /// Measured canary accuracy of the serving primary.
        canary_accuracy: f64,
    },
    /// Accuracy breached the floor; a replacement was compiled, verified
    /// against the same golden canaries, and hot-swapped in.
    Recovered {
        /// Canary accuracy of the degraded model that triggered healing.
        before: f64,
        /// Canary accuracy of the replacement now serving.
        after: f64,
    },
    /// Accuracy breached the floor but no swap happened — the
    /// [`Recompile`] hook failed, or its model was no better on the
    /// canaries than the degraded one.
    RecompileFailed {
        /// Canary accuracy of the still-serving degraded model.
        canary_accuracy: f64,
        /// Why the replacement was not installed.
        error: String,
    },
}

/// Probes the scheduler's primary replica against its embedded canary
/// set and heals it when accuracy sags. See the module docs.
pub struct HealthMonitor {
    scheduler: Arc<Scheduler>,
    config: HealthConfig,
    recompile: Box<dyn Recompile>,
    policy: Mutex<Box<dyn RecalibrationPolicy>>,
    started: Instant,
    /// `(completed recalibrations, elapsed seconds at the last one)`.
    recal_state: Mutex<(u64, f64)>,
}

impl HealthMonitor {
    /// Builds a monitor over `scheduler` whose floor breaches are healed
    /// by `recompile` — the classic canary-triggered loop
    /// ([`Self::with_policy`] with [`CanaryTriggered`]).
    pub fn new(
        scheduler: Arc<Scheduler>,
        config: HealthConfig,
        recompile: impl Recompile + 'static,
    ) -> Self {
        Self::with_policy(scheduler, config, recompile, CanaryTriggered)
    }

    /// Builds a monitor whose *when to recalibrate* decision is
    /// delegated to `policy` — periodic refresh, predictive
    /// recalibration ahead of the floor breach, or the default
    /// [`CanaryTriggered`]. The policy observes wall-clock seconds since
    /// the monitor was built.
    ///
    /// Acceptance of the recompiled model is trigger-aware: a
    /// floor-breach recalibration keeps the strict requirement that the
    /// replacement be *better* on the canaries, while a policy firing on
    /// a still-healthy model (a scheduled or predictive refresh) accepts
    /// any replacement that is no worse — refreshing a perfect chip with
    /// another perfect chip is the intended outcome, not a failure.
    pub fn with_policy(
        scheduler: Arc<Scheduler>,
        config: HealthConfig,
        recompile: impl Recompile + 'static,
        policy: impl RecalibrationPolicy + 'static,
    ) -> Self {
        Self {
            scheduler,
            config,
            recompile: Box::new(recompile),
            policy: Mutex::new(Box::new(policy)),
            started: Instant::now(),
            recal_state: Mutex::new((0, 0.0)),
        }
    }

    /// Runs one probe: replay the primary's canaries, ask the policy,
    /// and on a trigger recompile → verify → hot-swap. Deterministic end
    /// to end when the [`Recompile`] hook is (fixed-seed compiles are).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Inference`] when the serving model carries
    /// no canary set or a canary replay itself fails. A *recompile*
    /// failure is not an error — it reports as
    /// [`ProbeOutcome::RecompileFailed`] so a background loop keeps
    /// probing.
    pub fn probe(&self) -> Result<ProbeOutcome> {
        let primary = self.scheduler.primary();
        let before = primary.canary_accuracy()?;
        vortex_obs::counter!("serve.health.probes").incr();
        vortex_obs::gauge!("serve.health.canary_accuracy").set(before);
        let breached = before < self.config.accuracy_floor;
        let t_s = self.started.elapsed().as_secs_f64();
        let (reprograms, last_recal_s) = *self.recal_state.lock().expect("recal state");
        let triggered = self
            .policy
            .lock()
            .expect("health policy")
            .decide(&PolicyObservation {
                t_s,
                canary_accuracy: before,
                accuracy_floor: self.config.accuracy_floor,
                since_reprogram_s: t_s - last_recal_s,
                reprograms,
            });
        if !triggered {
            return Ok(ProbeOutcome::Healthy {
                canary_accuracy: before,
            });
        }
        if breached {
            vortex_obs::counter!("serve.health.floor_breaches").incr();
        }
        let replacement = match self.recompile.recompile() {
            Ok(model) => model,
            Err(e) => {
                return Ok(ProbeOutcome::RecompileFailed {
                    canary_accuracy: before,
                    error: e.to_string(),
                })
            }
        };
        // Judge the replacement against the *degraded* model's canary
        // set — the golden answers frozen when the model was fresh. A
        // breach demands strict improvement; a healthy-model refresh
        // only demands no regression.
        let canary = primary
            .canary()
            .expect("canary_accuracy succeeded, so a canary set exists");
        let after = canary.accuracy_on(&replacement)?;
        if after < before || (breached && after == before) {
            return Ok(ProbeOutcome::RecompileFailed {
                canary_accuracy: before,
                error: format!(
                    "replacement is no better on the canaries ({after:.3} vs {before:.3})"
                ),
            });
        }
        self.scheduler.swap_primary(replacement)?;
        let t_done = self.started.elapsed().as_secs_f64();
        *self.recal_state.lock().expect("recal state") = (reprograms + 1, t_done);
        self.policy
            .lock()
            .expect("health policy")
            .notify_reprogrammed(t_done);
        Ok(ProbeOutcome::Recovered { before, after })
    }

    /// Moves the monitor onto a background thread that probes every
    /// [`HealthConfig::probe_interval`] until the returned handle is
    /// stopped (or dropped). Probe errors (for example a canary-free
    /// model) are counted on `serve.health.probe_errors` and do not kill
    /// the loop.
    pub fn run_background(self) -> HealthHandle {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let interval = self.config.probe_interval;
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("vortex-serve-health".into())
                .spawn(move || {
                    let (flag, signal) = &*stop;
                    let mut stopped = flag.lock().expect("health stop flag");
                    loop {
                        let (next, timeout) = signal
                            .wait_timeout(stopped, interval)
                            .expect("health stop flag");
                        stopped = next;
                        if *stopped {
                            return;
                        }
                        if timeout.timed_out() && self.probe().is_err() {
                            vortex_obs::counter!("serve.health.probe_errors").incr();
                        }
                    }
                })
                .expect("health thread spawns")
        };
        HealthHandle {
            stop,
            handle: Some(handle),
        }
    }
}

impl std::fmt::Debug for HealthMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthMonitor")
            .field("config", &self.config)
            .finish()
    }
}

/// Handle onto a background health loop; stopping joins the thread.
#[derive(Debug)]
pub struct HealthHandle {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl HealthHandle {
    /// Stops the probe loop promptly and joins it. Idempotent; also runs
    /// on drop.
    pub fn stop(&mut self) {
        let (flag, signal) = &*self.stop;
        *flag.lock().expect("health stop flag") = true;
        signal.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HealthHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validates_the_floor() {
        assert!(HealthConfig::new(-0.1, Duration::from_millis(1)).is_err());
        assert!(HealthConfig::new(1.1, Duration::from_millis(1)).is_err());
        assert!(HealthConfig::new(f64::NAN, Duration::from_millis(1)).is_err());
        assert!(HealthConfig::new(0.9, Duration::from_millis(1)).is_ok());
    }
}
