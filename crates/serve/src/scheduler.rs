//! The batched inference scheduler: bounded admission, micro-batching
//! worker pool, deadlines, and the degradation ladder.
//!
//! One [`Scheduler`] owns a pool of worker threads, each holding an
//! [`Arc`] onto the same frozen [`CompiledModel`] replica pair (primary
//! and optional degraded fallback — frozen state is shared, never
//! copied). Callers submit single-sample requests through
//! [`Scheduler::try_submit`], which either admits the request into a
//! bounded queue and returns a [`Ticket`], or rejects it *immediately*
//! with a typed error — [`ServeError::QueueFull`] is the backpressure
//! signal; the scheduler never blocks a producer.
//!
//! Workers coalesce admitted requests into micro-batches: a worker that
//! finds the queue non-empty drains up to [`SchedulerConfig::max_batch`]
//! requests, then lingers up to [`SchedulerConfig::max_wait`] for the
//! batch to fill before dispatching the whole batch through one
//! [`CompiledModel::infer_batch`] call. Batching amortizes the
//! per-dispatch costs (queue transaction, scratch buffers, metrics) that
//! dominate a request-at-a-time server; it never changes predictions —
//! the compiled read is a pure per-sample function, so the response for a
//! given input is bit-identical whatever batch it rides in and whatever
//! the pool size (`Parallelism::Fixed(1)` against `Fixed(4)` is asserted
//! in the crate tests).
//!
//! # Scheduling is deterministic where it matters
//!
//! Admission decisions (reject-full, deadline, downgrade) depend only on
//! queue depth at submit time, and the queue depth sequence is
//! deterministic whenever producers are serialized — the integration
//! tests and the bench harness use [`Scheduler::pause`] to build an exact
//! backlog before releasing the workers, which makes every admission
//! decision, every downgrade, and every prediction assertable.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vortex_nn::executor::Parallelism;
use vortex_runtime::{CompiledModel, Fidelity};

use crate::degradation::{Hysteresis, Transition};
use crate::{Result, ServeError};

/// How the scheduler answers one admitted request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted class (argmax of the read scores).
    pub class: u8,
    /// Fidelity of the model that actually served the request.
    pub fidelity: Fidelity,
    /// Whether the degradation ladder rerouted this request to the
    /// fallback model.
    pub downgraded: bool,
    /// Size of the micro-batch this request was dispatched in.
    pub batch_size: usize,
}

/// Configuration of a [`Scheduler`].
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerConfig {
    /// Worker pool size, as the workspace-wide [`Parallelism`] type.
    /// `Fixed(1)` is the deterministic test mode: one worker dispatches
    /// batches strictly in admission order.
    pub pool: Parallelism,
    /// Admission queue capacity; a full queue rejects with
    /// [`ServeError::QueueFull`]. Zero rejects every submission.
    pub queue_capacity: usize,
    /// Largest micro-batch a worker dispatches (≥ 1).
    pub max_batch: usize,
    /// How long a worker lingers for a partial batch to fill before
    /// dispatching it. [`Duration::ZERO`] dispatches whatever is queued.
    pub max_wait: Duration,
    /// Queue depth at which new admissions degrade to the fallback model.
    /// `usize::MAX` (the default) disables the ladder.
    pub high_water: usize,
    /// Queue depth at which degraded admission recovers.
    pub low_water: usize,
    /// Start with the workers paused (see [`Scheduler::pause`]); used by
    /// tests and benchmarks to build an exact backlog.
    pub start_paused: bool,
}

impl SchedulerConfig {
    /// A production-shaped configuration for the given pool.
    pub fn new(pool: Parallelism) -> Self {
        Self {
            pool,
            queue_capacity: 1024,
            max_batch: 64,
            max_wait: Duration::from_micros(200),
            high_water: usize::MAX,
            low_water: 0,
            start_paused: false,
        }
    }

    /// The deterministic test mode: one worker, no linger, ladder off —
    /// batches dispatch strictly in admission order.
    pub fn deterministic() -> Self {
        Self {
            max_wait: Duration::ZERO,
            ..Self::new(Parallelism::Fixed(1))
        }
    }

    /// This configuration with the given queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// This configuration with the given batching policy.
    pub fn with_batching(mut self, max_batch: usize, max_wait: Duration) -> Self {
        self.max_batch = max_batch;
        self.max_wait = max_wait;
        self
    }

    /// This configuration with the degradation ladder enabled at the
    /// given watermarks (engage at `high_water`, recover at `low_water`).
    pub fn with_watermarks(mut self, high_water: usize, low_water: usize) -> Self {
        self.high_water = high_water;
        self.low_water = low_water;
        self
    }

    /// This configuration starting paused.
    pub fn paused(mut self) -> Self {
        self.start_paused = true;
        self
    }
}

/// One queued request.
struct Request {
    input: Vec<f64>,
    deadline: Option<Instant>,
    downgraded: bool,
    submitted: Instant,
    tx: mpsc::Sender<Result<Prediction>>,
}

/// A handle onto one admitted request's eventual response.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Prediction>>,
}

impl Ticket {
    /// Blocks until the scheduler answers.
    ///
    /// # Errors
    ///
    /// Propagates the request's typed rejection ([`ServeError::Timeout`],
    /// [`ServeError::Inference`]); returns [`ServeError::ShuttingDown`]
    /// when the scheduler was torn down before answering.
    pub fn wait(self) -> Result<Prediction> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// [`Self::wait`] with an upper bound; `None` means not answered yet
    /// (the ticket stays valid).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Prediction>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::ShuttingDown)),
        }
    }
}

/// Everything the queue lock guards.
struct QueueState {
    queue: std::collections::VecDeque<Request>,
    ladder: Hysteresis,
    closed: bool,
    paused: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    available: Condvar,
    capacity: usize,
    max_batch: usize,
    max_wait: Duration,
    primary: Arc<CompiledModel>,
    fallback: Option<Arc<CompiledModel>>,
    depth: AtomicUsize,
}

impl Shared {
    /// Publishes the queue depth (gauge + lock-free mirror) and feeds the
    /// ladder. Must be called with the state lock held, after any
    /// push/drain. Returns the transition for counter attribution.
    fn note_depth(&self, state: &mut QueueState) -> Transition {
        let depth = state.queue.len();
        self.depth.store(depth, Ordering::Relaxed);
        vortex_obs::gauge!("serve.queue_depth").set(depth as f64);
        let transition = state.ladder.observe(depth);
        match transition {
            Transition::Entered => vortex_obs::counter!("serve.degradation_entered").incr(),
            Transition::Exited => vortex_obs::counter!("serve.degradation_exited").incr(),
            Transition::None => {}
        }
        transition
    }
}

/// The batched inference scheduler. See the module docs.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    pool_size: usize,
}

impl Scheduler {
    /// Builds a scheduler over `primary`, with `fallback` as the degraded
    /// tier of the ladder, and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] for a zero `max_batch`,
    /// an inverted watermark band, a ladder without a fallback model, or
    /// a fallback whose shape disagrees with the primary.
    pub fn new(
        primary: Arc<CompiledModel>,
        fallback: Option<Arc<CompiledModel>>,
        config: SchedulerConfig,
    ) -> Result<Self> {
        if config.max_batch == 0 {
            return Err(ServeError::InvalidParameter {
                name: "max_batch",
                requirement: "must be at least 1",
            });
        }
        let ladder = if config.high_water == usize::MAX {
            Hysteresis::disabled()
        } else {
            let ladder = Hysteresis::new(config.high_water, config.low_water).ok_or(
                ServeError::InvalidParameter {
                    name: "high_water",
                    requirement: "watermarks need 1 <= low_water <= high_water",
                },
            )?;
            if fallback.is_none() {
                return Err(ServeError::InvalidParameter {
                    name: "fallback",
                    requirement: "the degradation ladder needs a fallback model",
                });
            }
            ladder
        };
        if let Some(fb) = &fallback {
            if fb.logical_rows() != primary.logical_rows() || fb.classes() != primary.classes() {
                return Err(ServeError::InvalidParameter {
                    name: "fallback",
                    requirement: "fallback model must share the primary's logical shape",
                });
            }
        }
        let pool_size = config.pool.resolve();
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: std::collections::VecDeque::with_capacity(config.queue_capacity.min(4096)),
                ladder,
                closed: false,
                paused: config.start_paused,
            }),
            available: Condvar::new(),
            capacity: config.queue_capacity,
            max_batch: config.max_batch,
            max_wait: config.max_wait,
            primary,
            fallback,
            depth: AtomicUsize::new(0),
        });
        vortex_obs::gauge!("serve.pool_workers").set(pool_size as f64);
        let workers = (0..pool_size)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vortex-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("worker thread spawns")
            })
            .collect();
        Ok(Self {
            shared,
            workers: Mutex::new(workers),
            pool_size,
        })
    }

    /// Submits one logical input for classification, with an optional
    /// absolute deadline. Never blocks: the request is either admitted
    /// (the returned [`Ticket`] resolves to its response) or rejected
    /// with a typed error right here.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] when the bounded queue is at capacity
    /// (backpressure — retry later or shed the request),
    /// [`ServeError::Timeout`] when `deadline` has already passed,
    /// [`ServeError::ShuttingDown`] after shutdown, and
    /// [`ServeError::InvalidParameter`] for a wrong input length.
    pub fn try_submit(&self, input: Vec<f64>, deadline: Option<Instant>) -> Result<Ticket> {
        if input.len() != self.shared.primary.logical_rows() {
            return Err(ServeError::InvalidParameter {
                name: "input",
                requirement: "length must match the model's logical row count",
            });
        }
        let now = Instant::now();
        if deadline.is_some_and(|d| d <= now) {
            vortex_obs::counter!("serve.rejected_timeout").incr();
            return Err(ServeError::Timeout { stage: "submit" });
        }
        let mut state = self.shared.state.lock().expect("queue lock");
        if state.closed {
            return Err(ServeError::ShuttingDown);
        }
        if state.queue.len() >= self.shared.capacity {
            vortex_obs::counter!("serve.rejected_full").incr();
            return Err(ServeError::QueueFull {
                capacity: self.shared.capacity,
            });
        }
        let (tx, rx) = mpsc::channel();
        let downgraded = {
            // Admit at the depth this request creates, so the ladder sees
            // the queue as the request leaves it.
            state.queue.push_back(Request {
                input,
                deadline,
                downgraded: false,
                submitted: now,
                tx,
            });
            let _ = self.shared.note_depth(&mut state);
            state.ladder.is_degraded() && self.shared.fallback.is_some()
        };
        if downgraded {
            state
                .queue
                .back_mut()
                .expect("request was just pushed")
                .downgraded = true;
            vortex_obs::counter!("serve.downgraded").incr();
        }
        vortex_obs::counter!("serve.admitted").incr();
        drop(state);
        self.shared.available.notify_one();
        Ok(Ticket { rx })
    }

    /// Submits and blocks for the response — the one-call convenience
    /// wrapper over [`Self::try_submit`] + [`Ticket::wait`].
    ///
    /// # Errors
    ///
    /// See [`Self::try_submit`] and [`Ticket::wait`].
    pub fn submit_wait(&self, input: Vec<f64>) -> Result<Prediction> {
        self.try_submit(input, None)?.wait()
    }

    /// Current queue depth (admitted, not yet dispatched).
    pub fn queue_depth(&self) -> usize {
        self.shared.depth.load(Ordering::Relaxed)
    }

    /// Whether the degradation ladder is currently engaged.
    pub fn is_degraded(&self) -> bool {
        self.shared
            .state
            .lock()
            .expect("queue lock")
            .ladder
            .is_degraded()
    }

    /// Worker pool size.
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Stops workers from dispatching; admissions continue. Paired with
    /// [`Self::resume`], this builds an exact, assertable backlog.
    pub fn pause(&self) {
        self.shared.state.lock().expect("queue lock").paused = true;
        self.shared.available.notify_all();
    }

    /// Releases paused workers.
    pub fn resume(&self) {
        self.shared.state.lock().expect("queue lock").paused = false;
        self.shared.available.notify_all();
    }

    /// Closes admission, lets the workers drain the queue, and joins the
    /// pool. Requests still queued when the pool was paused are answered
    /// with [`ServeError::ShuttingDown`]. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().expect("queue lock");
            state.closed = true;
        }
        self.shared.available.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock().expect("worker handles"));
        for handle in handles {
            let _ = handle.join();
        }
        // A paused pool exits without draining; answer the leftovers.
        let mut state = self.shared.state.lock().expect("queue lock");
        while let Some(request) = state.queue.pop_front() {
            let _ = request.tx.send(Err(ServeError::ShuttingDown));
        }
        let _ = self.shared.note_depth(&mut state);
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("pool_size", &self.pool_size)
            .field("capacity", &self.shared.capacity)
            .field("max_batch", &self.shared.max_batch)
            .field("queue_depth", &self.queue_depth())
            .finish()
    }
}

/// Collects the next micro-batch: blocks for the first request, drains
/// greedily, then lingers up to `max_wait` for the batch to fill.
/// Returns `None` when the scheduler has shut down and the queue is
/// drained (or the pool is paused at shutdown).
fn next_batch(shared: &Shared) -> Option<Vec<Request>> {
    let mut state: MutexGuard<'_, QueueState> = shared.state.lock().expect("queue lock");
    loop {
        if state.closed && (state.paused || state.queue.is_empty()) {
            return None;
        }
        if !state.paused && !state.queue.is_empty() {
            break;
        }
        state = shared.available.wait(state).expect("queue lock");
    }
    let mut batch = Vec::with_capacity(shared.max_batch.min(state.queue.len()));
    drain_into(&mut state, &mut batch, shared.max_batch);
    if batch.len() < shared.max_batch && shared.max_wait > Duration::ZERO {
        let linger_until = Instant::now() + shared.max_wait;
        while batch.len() < shared.max_batch && !state.closed {
            let now = Instant::now();
            if now >= linger_until {
                break;
            }
            let (next, _) = shared
                .available
                .wait_timeout(state, linger_until - now)
                .expect("queue lock");
            state = next;
            if !state.paused {
                drain_into(&mut state, &mut batch, shared.max_batch);
            }
        }
    }
    let _ = shared.note_depth(&mut state);
    drop(state);
    shared.available.notify_one();
    Some(batch)
}

fn drain_into(state: &mut QueueState, batch: &mut Vec<Request>, max_batch: usize) {
    while batch.len() < max_batch {
        match state.queue.pop_front() {
            Some(request) => batch.push(request),
            None => break,
        }
    }
}

/// Dispatches one micro-batch: expire, partition by tier, batch-infer,
/// respond.
fn dispatch(shared: &Shared, batch: Vec<Request>) {
    let now = Instant::now();
    let mut live: Vec<Request> = Vec::with_capacity(batch.len());
    for request in batch {
        if request.deadline.is_some_and(|d| d <= now) {
            vortex_obs::counter!("serve.rejected_timeout").incr();
            let _ = request.tx.send(Err(ServeError::Timeout { stage: "queue" }));
        } else {
            live.push(request);
        }
    }
    if live.is_empty() {
        return;
    }
    vortex_obs::histogram!("serve.batch_size").record(live.len() as f64);
    let batch_size = live.len();
    let (fallback_tier, primary_tier): (Vec<Request>, Vec<Request>) =
        live.into_iter().partition(|r| r.downgraded);
    infer_tier(&shared.primary, primary_tier, batch_size);
    if let Some(fallback) = &shared.fallback {
        infer_tier(fallback, fallback_tier, batch_size);
    }
}

/// Runs one fidelity tier of a micro-batch through its model and answers
/// every request in it.
fn infer_tier(model: &CompiledModel, tier: Vec<Request>, batch_size: usize) {
    if tier.is_empty() {
        return;
    }
    let samples: Vec<&[f64]> = tier.iter().map(|r| r.input.as_slice()).collect();
    let infer_start = Instant::now();
    // Workers are the parallelism; the intra-batch read stays serial.
    let outcome = model.infer_batch(&samples, Parallelism::Serial);
    vortex_obs::histogram!("serve.infer_seconds").record(infer_start.elapsed().as_secs_f64());
    match outcome {
        Ok(classes) => {
            let answered = Instant::now();
            vortex_obs::counter!("serve.completed").add(tier.len() as u64);
            for (request, class) in tier.into_iter().zip(classes) {
                vortex_obs::histogram!("serve.latency_seconds")
                    .record((answered - request.submitted).as_secs_f64());
                let _ = request.tx.send(Ok(Prediction {
                    class,
                    fidelity: model.fidelity(),
                    downgraded: request.downgraded,
                    batch_size,
                }));
            }
        }
        Err(e) => {
            for request in tier {
                vortex_obs::counter!("serve.errors").incr();
                let _ = request.tx.send(Err(ServeError::Inference(e.clone())));
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(batch) = next_batch(shared) {
        if !batch.is_empty() {
            dispatch(shared, batch);
        }
    }
}
