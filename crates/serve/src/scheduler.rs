//! The batched inference scheduler: bounded admission, micro-batching
//! worker pool, deadlines, the degradation ladder, and supervised
//! self-healing workers.
//!
//! One [`Scheduler`] owns a pool of worker threads, each holding an
//! [`Arc`] onto the same frozen [`CompiledModel`] replica pair (primary
//! and optional degraded fallback — frozen state is shared, never
//! copied). Callers submit single-sample requests through
//! [`Scheduler::try_submit`], which either admits the request into a
//! bounded queue and returns a [`Ticket`], or rejects it *immediately*
//! with a typed error — [`ServeError::QueueFull`] is the backpressure
//! signal; the scheduler never blocks a producer. Callers that would
//! rather wait briefly than shed wrap submission in a [`RetryPolicy`]
//! via [`Scheduler::submit_with_retry`].
//!
//! Workers coalesce admitted requests into micro-batches: a worker that
//! finds the queue non-empty drains up to [`SchedulerConfig::max_batch`]
//! requests, then lingers up to [`SchedulerConfig::max_wait`] for the
//! batch to fill before dispatching the whole batch through one
//! [`CompiledModel::infer_batch`] call. Batching amortizes the
//! per-dispatch costs (queue transaction, scratch buffers, metrics) that
//! dominate a request-at-a-time server; it never changes predictions —
//! the compiled read is a pure per-sample function, so the response for a
//! given input is bit-identical whatever batch it rides in and whatever
//! the pool size (`Parallelism::Fixed(1)` against `Fixed(4)` is asserted
//! in the crate tests).
//!
//! # Supervision: a panic loses no accepted request
//!
//! Every dispatch runs under `catch_unwind`. When a worker panics —
//! whether from a genuine bug or a [`ChaosPlan`] injection — the batch
//! it held is still unanswered, because dispatch computes *every*
//! response before sending *any*: the crashed worker pushes the whole
//! batch back onto the queue front (order preserved), reports to the
//! supervisor thread, and exits. The supervisor reaps the thread and
//! respawns the slot after a bounded deterministic backoff
//! (`base · 2^min(restarts, 6)`, capped). A request that has already
//! survived one crash is not requeued twice: the second failure answers
//! it with the typed [`ServeError::WorkerCrashed`]. Accepted requests
//! therefore always resolve — a prediction, or a typed error.
//!
//! # Hot swap
//!
//! [`Scheduler::swap_primary`] atomically replaces the primary model
//! between batches without draining the queue: workers re-read the
//! replica at each dispatch. A health monitor uses this to install a
//! freshly recompiled model when canary accuracy sags (see
//! [`crate::health`]).
//!
//! # Scheduling is deterministic where it matters
//!
//! Admission decisions (reject-full, deadline, downgrade) depend only on
//! queue depth at submit time, and the queue depth sequence is
//! deterministic whenever producers are serialized — the integration
//! tests and the bench harness use [`Scheduler::pause`] to build an exact
//! backlog before releasing the workers, which makes every admission
//! decision, every downgrade, and every prediction assertable. Under
//! [`SchedulerConfig::deterministic`] the batch sequence numbers a
//! [`ChaosPlan`] keys on are deterministic too, so an injected crash
//! hits the same batch — and produces the same answers — on every run.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vortex_nn::executor::Parallelism;
use vortex_runtime::{CompiledModel, Fidelity, RuntimeError};

use crate::chaos::ChaosPlan;
use crate::degradation::{Hysteresis, Transition};
use crate::retry::RetryPolicy;
use crate::{Result, ServeError};

/// How the scheduler answers one admitted request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted class (argmax of the read scores).
    pub class: u8,
    /// Fidelity of the model that actually served the request.
    pub fidelity: Fidelity,
    /// Whether the degradation ladder rerouted this request to the
    /// fallback model.
    pub downgraded: bool,
    /// Size of the micro-batch this request was dispatched in.
    pub batch_size: usize,
}

/// Configuration of a [`Scheduler`].
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerConfig {
    /// Worker pool size, as the workspace-wide [`Parallelism`] type.
    /// `Fixed(1)` is the deterministic test mode: one worker dispatches
    /// batches strictly in admission order.
    pub pool: Parallelism,
    /// Admission queue capacity; a full queue rejects with
    /// [`ServeError::QueueFull`]. Zero rejects every submission.
    pub queue_capacity: usize,
    /// Largest micro-batch a worker dispatches (≥ 1).
    pub max_batch: usize,
    /// How long a worker lingers for a partial batch to fill before
    /// dispatching it. [`Duration::ZERO`] dispatches whatever is queued.
    pub max_wait: Duration,
    /// Queue depth at which new admissions degrade to the fallback model.
    /// `usize::MAX` (the default) disables the ladder.
    pub high_water: usize,
    /// Queue depth at which degraded admission recovers.
    pub low_water: usize,
    /// Start with the workers paused (see [`Scheduler::pause`]); used by
    /// tests and benchmarks to build an exact backlog.
    pub start_paused: bool,
    /// Backoff before the first respawn of a crashed worker; doubles per
    /// crash of the same slot.
    pub respawn_base: Duration,
    /// Upper bound on any single respawn backoff.
    pub respawn_cap: Duration,
}

impl SchedulerConfig {
    /// A production-shaped configuration for the given pool.
    pub fn new(pool: Parallelism) -> Self {
        Self {
            pool,
            queue_capacity: 1024,
            max_batch: 64,
            max_wait: Duration::from_micros(200),
            high_water: usize::MAX,
            low_water: 0,
            start_paused: false,
            respawn_base: Duration::from_micros(500),
            respawn_cap: Duration::from_millis(32),
        }
    }

    /// The deterministic test mode: one worker, no linger, ladder off,
    /// immediate respawn — batches dispatch strictly in admission order
    /// and carry deterministic sequence numbers.
    pub fn deterministic() -> Self {
        Self {
            max_wait: Duration::ZERO,
            respawn_base: Duration::ZERO,
            respawn_cap: Duration::ZERO,
            ..Self::new(Parallelism::Fixed(1))
        }
    }

    /// This configuration with the given queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// This configuration with the given batching policy.
    pub fn with_batching(mut self, max_batch: usize, max_wait: Duration) -> Self {
        self.max_batch = max_batch;
        self.max_wait = max_wait;
        self
    }

    /// This configuration with the degradation ladder enabled at the
    /// given watermarks (engage at `high_water`, recover at `low_water`).
    pub fn with_watermarks(mut self, high_water: usize, low_water: usize) -> Self {
        self.high_water = high_water;
        self.low_water = low_water;
        self
    }

    /// This configuration with the given worker-respawn backoff band.
    pub fn with_respawn_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.respawn_base = base;
        self.respawn_cap = cap;
        self
    }

    /// This configuration starting paused.
    pub fn paused(mut self) -> Self {
        self.start_paused = true;
        self
    }
}

/// One queued request.
struct Request {
    input: Vec<f64>,
    deadline: Option<Instant>,
    downgraded: bool,
    submitted: Instant,
    /// How many worker crashes this request has already survived.
    attempts: u32,
    tx: mpsc::Sender<Result<Prediction>>,
}

/// A handle onto one admitted request's eventual response.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Prediction>>,
}

impl Ticket {
    /// Blocks until the scheduler answers.
    ///
    /// # Errors
    ///
    /// Propagates the request's typed rejection ([`ServeError::Timeout`],
    /// [`ServeError::Inference`], [`ServeError::WorkerCrashed`]); returns
    /// [`ServeError::ShuttingDown`] when the scheduler was torn down
    /// before answering.
    pub fn wait(self) -> Result<Prediction> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// [`Self::wait`] with an upper bound; `None` means not answered yet
    /// (the ticket stays valid).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Prediction>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::ShuttingDown)),
        }
    }
}

/// Everything the queue lock guards.
struct QueueState {
    queue: std::collections::VecDeque<Request>,
    ladder: Hysteresis,
    closed: bool,
    paused: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    available: Condvar,
    capacity: usize,
    max_batch: usize,
    max_wait: Duration,
    /// The serving replica, swappable between batches (see
    /// [`Scheduler::swap_primary`]). Workers take the read lock once per
    /// dispatch; the write lock is held only for the pointer swap.
    primary: RwLock<Arc<CompiledModel>>,
    fallback: Option<Arc<CompiledModel>>,
    chaos: Option<ChaosPlan>,
    /// Monotone dispatch sequence; the key a [`ChaosPlan`] fires on.
    batch_seq: AtomicU64,
    depth: AtomicUsize,
}

impl Shared {
    /// Publishes the queue depth (gauge + lock-free mirror) and feeds the
    /// ladder. Must be called with the state lock held, after any
    /// push/drain. Returns the transition for counter attribution.
    fn note_depth(&self, state: &mut QueueState) -> Transition {
        let depth = state.queue.len();
        self.depth.store(depth, Ordering::Relaxed);
        vortex_obs::gauge!("serve.queue_depth").set(depth as f64);
        let transition = state.ladder.observe(depth);
        match transition {
            Transition::Entered => vortex_obs::counter!("serve.degradation_entered").incr(),
            Transition::Exited => vortex_obs::counter!("serve.degradation_exited").incr(),
            Transition::None => {}
        }
        transition
    }
}

/// Crash reports and shutdown, from workers/scheduler to the supervisor.
enum SupervisorMsg {
    Crashed(usize),
    Shutdown,
}

/// The batched inference scheduler. See the module docs.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Arc<Mutex<Vec<Option<JoinHandle<()>>>>>,
    supervisor: Mutex<Option<JoinHandle<()>>>,
    supervisor_tx: mpsc::Sender<SupervisorMsg>,
    pool_size: usize,
}

impl Scheduler {
    /// Builds a scheduler over `primary`, with `fallback` as the degraded
    /// tier of the ladder, and spawns the worker pool plus its
    /// supervisor.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] for a zero `max_batch`,
    /// an inverted watermark band or respawn-backoff band, a ladder
    /// without a fallback model, or a fallback whose shape disagrees with
    /// the primary.
    pub fn new(
        primary: Arc<CompiledModel>,
        fallback: Option<Arc<CompiledModel>>,
        config: SchedulerConfig,
    ) -> Result<Self> {
        Self::with_chaos(primary, fallback, config, None)
    }

    /// [`Self::new`] with a fault-injection plan wired into the dispatch
    /// path: the plan decides per batch sequence number whether the
    /// dispatching worker panics or runs slow. Production schedulers
    /// pass `None` (via [`Self::new`]); chaos tests and the `chaos`
    /// bench experiment pass a generated plan.
    ///
    /// # Errors
    ///
    /// See [`Self::new`].
    pub fn with_chaos(
        primary: Arc<CompiledModel>,
        fallback: Option<Arc<CompiledModel>>,
        config: SchedulerConfig,
        chaos: Option<ChaosPlan>,
    ) -> Result<Self> {
        if config.max_batch == 0 {
            return Err(ServeError::InvalidParameter {
                name: "max_batch",
                requirement: "must be at least 1",
            });
        }
        if config.respawn_cap < config.respawn_base {
            return Err(ServeError::InvalidParameter {
                name: "respawn_cap",
                requirement: "respawn backoff cap must be at least the base",
            });
        }
        let ladder = if config.high_water == usize::MAX {
            Hysteresis::disabled()
        } else {
            let ladder = Hysteresis::new(config.high_water, config.low_water).ok_or(
                ServeError::InvalidParameter {
                    name: "high_water",
                    requirement: "watermarks need 1 <= low_water <= high_water",
                },
            )?;
            if fallback.is_none() {
                return Err(ServeError::InvalidParameter {
                    name: "fallback",
                    requirement: "the degradation ladder needs a fallback model",
                });
            }
            ladder
        };
        if let Some(fb) = &fallback {
            if fb.logical_rows() != primary.logical_rows() || fb.classes() != primary.classes() {
                return Err(ServeError::InvalidParameter {
                    name: "fallback",
                    requirement: "fallback model must share the primary's logical shape",
                });
            }
        }
        let pool_size = config.pool.resolve();
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: std::collections::VecDeque::with_capacity(config.queue_capacity.min(4096)),
                ladder,
                closed: false,
                paused: config.start_paused,
            }),
            available: Condvar::new(),
            capacity: config.queue_capacity,
            max_batch: config.max_batch,
            max_wait: config.max_wait,
            primary: RwLock::new(primary),
            fallback,
            chaos,
            batch_seq: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
        });
        vortex_obs::gauge!("serve.pool_workers").set(pool_size as f64);
        let (supervisor_tx, supervisor_rx) = mpsc::channel();
        let workers: Arc<Mutex<Vec<Option<JoinHandle<()>>>>> = Arc::new(Mutex::new(
            (0..pool_size)
                .map(|slot| {
                    Some(spawn_worker(
                        Arc::clone(&shared),
                        slot,
                        supervisor_tx.clone(),
                    ))
                })
                .collect(),
        ));
        let supervisor = {
            let shared = Arc::clone(&shared);
            let workers = Arc::clone(&workers);
            let tx = supervisor_tx.clone();
            let (base, cap) = (config.respawn_base, config.respawn_cap);
            std::thread::Builder::new()
                .name("vortex-serve-supervisor".into())
                .spawn(move || supervisor_loop(&shared, &workers, &tx, &supervisor_rx, base, cap))
                .expect("supervisor thread spawns")
        };
        Ok(Self {
            shared,
            workers,
            supervisor: Mutex::new(Some(supervisor)),
            supervisor_tx,
            pool_size,
        })
    }

    /// Submits one logical input for classification, with an optional
    /// absolute deadline. Never blocks: the request is either admitted
    /// (the returned [`Ticket`] resolves to its response) or rejected
    /// with a typed error right here.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] when the bounded queue is at capacity
    /// (backpressure — retry later or shed the request),
    /// [`ServeError::Timeout`] when `deadline` has already passed,
    /// [`ServeError::ShuttingDown`] after shutdown, and
    /// [`ServeError::InvalidParameter`] for a wrong input length.
    pub fn try_submit(&self, input: Vec<f64>, deadline: Option<Instant>) -> Result<Ticket> {
        let logical_rows = self
            .shared
            .primary
            .read()
            .expect("primary lock")
            .logical_rows();
        if input.len() != logical_rows {
            return Err(ServeError::InvalidParameter {
                name: "input",
                requirement: "length must match the model's logical row count",
            });
        }
        let now = Instant::now();
        if deadline.is_some_and(|d| d <= now) {
            vortex_obs::counter!("serve.rejected_timeout").incr();
            return Err(ServeError::Timeout { stage: "submit" });
        }
        let mut state = self.shared.state.lock().expect("queue lock");
        if state.closed {
            return Err(ServeError::ShuttingDown);
        }
        if state.queue.len() >= self.shared.capacity {
            vortex_obs::counter!("serve.rejected_full").incr();
            return Err(ServeError::QueueFull {
                capacity: self.shared.capacity,
            });
        }
        let (tx, rx) = mpsc::channel();
        let downgraded = {
            // Admit at the depth this request creates, so the ladder sees
            // the queue as the request leaves it.
            state.queue.push_back(Request {
                input,
                deadline,
                downgraded: false,
                submitted: now,
                attempts: 0,
                tx,
            });
            let _ = self.shared.note_depth(&mut state);
            state.ladder.is_degraded() && self.shared.fallback.is_some()
        };
        if downgraded {
            state
                .queue
                .back_mut()
                .expect("request was just pushed")
                .downgraded = true;
            vortex_obs::counter!("serve.downgraded").incr();
        }
        vortex_obs::counter!("serve.admitted").incr();
        drop(state);
        self.shared.available.notify_one();
        Ok(Ticket { rx })
    }

    /// [`Self::try_submit`] with bounded-backoff retries on
    /// [`ServeError::QueueFull`]. Only backpressure is retried —
    /// deadline, shutdown and validation rejections surface immediately,
    /// and a deadline that would expire during the next backoff fails
    /// fast with [`ServeError::Timeout`].
    ///
    /// # Errors
    ///
    /// See [`Self::try_submit`]; after the policy's final attempt the
    /// last `QueueFull` is returned.
    pub fn submit_with_retry(
        &self,
        input: Vec<f64>,
        deadline: Option<Instant>,
        policy: &RetryPolicy,
    ) -> Result<Ticket> {
        let mut attempt = 0u32;
        loop {
            match self.try_submit(input.clone(), deadline) {
                Err(ServeError::QueueFull { capacity }) => match policy.backoff_after(attempt) {
                    Some(delay) => {
                        vortex_obs::counter!("serve.retry.attempts").incr();
                        if deadline.is_some_and(|d| Instant::now() + delay >= d) {
                            vortex_obs::counter!("serve.rejected_timeout").incr();
                            return Err(ServeError::Timeout { stage: "submit" });
                        }
                        if delay > Duration::ZERO {
                            std::thread::sleep(delay);
                        }
                        attempt += 1;
                    }
                    None => {
                        vortex_obs::counter!("serve.retry.exhausted").incr();
                        return Err(ServeError::QueueFull { capacity });
                    }
                },
                other => return other,
            }
        }
    }

    /// Submits and blocks for the response — the one-call convenience
    /// wrapper over [`Self::try_submit`] + [`Ticket::wait`].
    ///
    /// # Errors
    ///
    /// See [`Self::try_submit`] and [`Ticket::wait`].
    pub fn submit_wait(&self, input: Vec<f64>) -> Result<Prediction> {
        self.try_submit(input, None)?.wait()
    }

    /// The current primary serving replica.
    pub fn primary(&self) -> Arc<CompiledModel> {
        Arc::clone(&self.shared.primary.read().expect("primary lock"))
    }

    /// Atomically replaces the primary model without draining the queue:
    /// in-flight batches finish on the replica they started with, the
    /// next dispatch reads the new one. The health monitor calls this
    /// after a canary-triggered recompile.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] when the replacement's
    /// logical shape differs from the serving model's.
    pub fn swap_primary(&self, model: Arc<CompiledModel>) -> Result<()> {
        let mut slot = self.shared.primary.write().expect("primary lock");
        if model.logical_rows() != slot.logical_rows() || model.classes() != slot.classes() {
            return Err(ServeError::InvalidParameter {
                name: "model",
                requirement: "replacement must share the serving model's logical shape",
            });
        }
        *slot = model;
        drop(slot);
        vortex_obs::counter!("serve.health.swaps").incr();
        Ok(())
    }

    /// Current queue depth (admitted, not yet dispatched).
    pub fn queue_depth(&self) -> usize {
        self.shared.depth.load(Ordering::Relaxed)
    }

    /// Whether the degradation ladder is currently engaged.
    pub fn is_degraded(&self) -> bool {
        self.shared
            .state
            .lock()
            .expect("queue lock")
            .ladder
            .is_degraded()
    }

    /// Worker pool size.
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Number of micro-batches dispatched so far (the sequence a
    /// [`ChaosPlan`] keys on).
    pub fn batches_dispatched(&self) -> u64 {
        self.shared.batch_seq.load(Ordering::Relaxed)
    }

    /// Stops workers from dispatching; admissions continue. Paired with
    /// [`Self::resume`], this builds an exact, assertable backlog.
    pub fn pause(&self) {
        self.shared.state.lock().expect("queue lock").paused = true;
        self.shared.available.notify_all();
    }

    /// Releases paused workers.
    pub fn resume(&self) {
        self.shared.state.lock().expect("queue lock").paused = false;
        self.shared.available.notify_all();
    }

    /// Closes admission, lets the workers drain the queue, and joins the
    /// supervisor and the pool. Requests still queued when the pool was
    /// paused are answered with [`ServeError::ShuttingDown`]. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().expect("queue lock");
            state.closed = true;
        }
        self.shared.available.notify_all();
        // The supervisor goes first so no worker is respawned mid-join.
        let _ = self.supervisor_tx.send(SupervisorMsg::Shutdown);
        if let Some(handle) = self.supervisor.lock().expect("supervisor handle").take() {
            let _ = handle.join();
        }
        let handles: Vec<JoinHandle<()>> = self
            .workers
            .lock()
            .expect("worker handles")
            .iter_mut()
            .filter_map(Option::take)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
        // A paused pool exits without draining; answer the leftovers.
        let mut state = self.shared.state.lock().expect("queue lock");
        while let Some(request) = state.queue.pop_front() {
            let _ = request.tx.send(Err(ServeError::ShuttingDown));
        }
        let _ = self.shared.note_depth(&mut state);
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("pool_size", &self.pool_size)
            .field("capacity", &self.shared.capacity)
            .field("max_batch", &self.shared.max_batch)
            .field("queue_depth", &self.queue_depth())
            .finish()
    }
}

fn spawn_worker(
    shared: Arc<Shared>,
    slot: usize,
    supervisor_tx: mpsc::Sender<SupervisorMsg>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("vortex-serve-{slot}"))
        .spawn(move || {
            if matches!(worker_loop(&shared), WorkerExit::Crashed) {
                // Requeue already happened inside the loop; this report
                // is what triggers the respawn.
                let _ = supervisor_tx.send(SupervisorMsg::Crashed(slot));
            }
        })
        .expect("worker thread spawns")
}

/// Reaps crashed workers and respawns their slots with bounded
/// deterministic backoff until shutdown.
fn supervisor_loop(
    shared: &Arc<Shared>,
    workers: &Arc<Mutex<Vec<Option<JoinHandle<()>>>>>,
    tx: &mpsc::Sender<SupervisorMsg>,
    rx: &mpsc::Receiver<SupervisorMsg>,
    base: Duration,
    cap: Duration,
) {
    let slots = workers.lock().expect("worker handles").len();
    let mut restarts = vec![0u32; slots];
    while let Ok(msg) = rx.recv() {
        match msg {
            SupervisorMsg::Shutdown => break,
            SupervisorMsg::Crashed(slot) => {
                if let Some(handle) = workers.lock().expect("worker handles")[slot].take() {
                    let _ = handle.join();
                }
                if shared.state.lock().expect("queue lock").closed {
                    // Shutdown drains and answers what's left; no respawn.
                    continue;
                }
                let backoff = base
                    .checked_mul(1 << restarts[slot].min(6))
                    .unwrap_or(cap)
                    .min(cap);
                restarts[slot] = restarts[slot].saturating_add(1);
                if backoff > Duration::ZERO {
                    std::thread::sleep(backoff);
                }
                workers.lock().expect("worker handles")[slot] =
                    Some(spawn_worker(Arc::clone(shared), slot, tx.clone()));
                vortex_obs::counter!("serve.supervisor.respawns").incr();
            }
        }
    }
}

/// Collects the next micro-batch: blocks for the first request, drains
/// greedily, then lingers up to `max_wait` for the batch to fill.
/// Returns `None` when the scheduler has shut down and the queue is
/// drained (or the pool is paused at shutdown).
fn next_batch(shared: &Shared) -> Option<Vec<Request>> {
    let mut state: MutexGuard<'_, QueueState> = shared.state.lock().expect("queue lock");
    loop {
        if state.closed && (state.paused || state.queue.is_empty()) {
            return None;
        }
        if !state.paused && !state.queue.is_empty() {
            break;
        }
        state = shared.available.wait(state).expect("queue lock");
    }
    let mut batch = Vec::with_capacity(shared.max_batch.min(state.queue.len()));
    drain_into(&mut state, &mut batch, shared.max_batch);
    if batch.len() < shared.max_batch && shared.max_wait > Duration::ZERO {
        let linger_until = Instant::now() + shared.max_wait;
        while batch.len() < shared.max_batch && !state.closed {
            let now = Instant::now();
            if now >= linger_until {
                break;
            }
            let (next, _) = shared
                .available
                .wait_timeout(state, linger_until - now)
                .expect("queue lock");
            state = next;
            if !state.paused {
                drain_into(&mut state, &mut batch, shared.max_batch);
            }
        }
    }
    let _ = shared.note_depth(&mut state);
    drop(state);
    shared.available.notify_one();
    Some(batch)
}

fn drain_into(state: &mut QueueState, batch: &mut Vec<Request>, max_batch: usize) {
    while batch.len() < max_batch {
        match state.queue.pop_front() {
            Some(request) => batch.push(request),
            None => break,
        }
    }
}

enum WorkerExit {
    Clean,
    Crashed,
}

fn worker_loop(shared: &Shared) -> WorkerExit {
    while let Some(mut batch) = next_batch(shared) {
        if batch.is_empty() {
            continue;
        }
        let seq = shared.batch_seq.fetch_add(1, Ordering::Relaxed);
        let outcome = catch_unwind(AssertUnwindSafe(|| dispatch(shared, &mut batch, seq)));
        if outcome.is_err() {
            // Dispatch computes every answer before sending any, so a
            // panic means the whole batch is still in `batch`, unanswered.
            vortex_obs::counter!("serve.worker_panics").incr();
            requeue_unanswered(shared, &mut batch);
            return WorkerExit::Crashed;
        }
    }
    WorkerExit::Clean
}

/// Pushes a crashed worker's batch back onto the queue front (order
/// preserved). A request that already survived one crash is answered
/// with [`ServeError::WorkerCrashed`] instead of riding a third dispatch.
fn requeue_unanswered(shared: &Shared, batch: &mut Vec<Request>) {
    let mut state = shared.state.lock().expect("queue lock");
    for mut request in batch.drain(..).rev() {
        if request.attempts >= 1 {
            vortex_obs::counter!("serve.supervisor.crashed").incr();
            let _ = request.tx.send(Err(ServeError::WorkerCrashed));
        } else {
            request.attempts += 1;
            vortex_obs::counter!("serve.supervisor.requeued").incr();
            state.queue.push_front(request);
        }
    }
    let _ = shared.note_depth(&mut state);
    drop(state);
    shared.available.notify_all();
}

/// Runs one fidelity tier's samples through its model, timing the read.
fn tier_outcome(
    model: &CompiledModel,
    inputs: &[&[f64]],
) -> std::result::Result<Vec<u8>, RuntimeError> {
    if inputs.is_empty() {
        return Ok(Vec::new());
    }
    let infer_start = Instant::now();
    // Workers are the parallelism; the intra-batch read stays serial.
    let outcome = model.infer_batch(inputs, Parallelism::Serial);
    vortex_obs::histogram!("serve.infer_seconds").record(infer_start.elapsed().as_secs_f64());
    outcome
}

/// Dispatches one micro-batch: consult the chaos plan, expire deadlines,
/// compute every tier's answers, then respond.
///
/// The two-phase shape is the panic-safety contract: phase one only
/// *borrows* the requests (any panic — injected or genuine — leaves the
/// whole batch in `batch` for [`requeue_unanswered`]); phase two drains
/// and answers, and contains nothing that can panic.
fn dispatch(shared: &Shared, batch: &mut Vec<Request>, seq: u64) {
    if let Some(chaos) = &shared.chaos {
        if let Some(delay) = chaos.slow_down(seq) {
            vortex_obs::counter!("serve.chaos.slow_batches").incr();
            std::thread::sleep(delay);
        }
        if chaos.should_panic(seq) {
            vortex_obs::counter!("serve.chaos.panics").incr();
            panic!("chaos: injected worker panic at batch {seq}");
        }
    }
    let now = Instant::now();
    // Phase one: partition the *borrowed* inputs by tier and compute all
    // answers. The primary replica is re-read every dispatch, so a hot
    // swap takes effect at the next batch boundary.
    let primary = Arc::clone(&shared.primary.read().expect("primary lock"));
    let mut primary_inputs: Vec<&[f64]> = Vec::new();
    let mut fallback_inputs: Vec<&[f64]> = Vec::new();
    for request in batch.iter() {
        if request.deadline.is_some_and(|d| d <= now) {
            continue;
        }
        if request.downgraded {
            fallback_inputs.push(&request.input);
        } else {
            primary_inputs.push(&request.input);
        }
    }
    let batch_size = primary_inputs.len() + fallback_inputs.len();
    if batch_size > 0 {
        vortex_obs::histogram!("serve.batch_size").record(batch_size as f64);
    }
    let primary_out = tier_outcome(&primary, &primary_inputs);
    let fallback_out = match &shared.fallback {
        Some(fallback) => tier_outcome(fallback, &fallback_inputs),
        None => Ok(Vec::new()),
    };
    let fallback_fidelity = shared.fallback.as_ref().map(|m| m.fidelity());

    // Phase two: every answer exists; drain and send.
    let answered = Instant::now();
    let mut primary_classes = primary_out.map(Vec::into_iter);
    let mut fallback_classes = fallback_out.map(Vec::into_iter);
    for request in batch.drain(..) {
        if request.deadline.is_some_and(|d| d <= now) {
            vortex_obs::counter!("serve.rejected_timeout").incr();
            let _ = request.tx.send(Err(ServeError::Timeout { stage: "queue" }));
            continue;
        }
        let (classes, fidelity) = if request.downgraded {
            (
                &mut fallback_classes,
                fallback_fidelity.expect("downgraded requests require a fallback"),
            )
        } else {
            (&mut primary_classes, primary.fidelity())
        };
        let response = match classes {
            Ok(iter) => {
                let class = iter.next().expect("one class per live request");
                vortex_obs::counter!("serve.completed").incr();
                vortex_obs::histogram!("serve.latency_seconds")
                    .record((answered - request.submitted).as_secs_f64());
                Ok(Prediction {
                    class,
                    fidelity,
                    downgraded: request.downgraded,
                    batch_size,
                })
            }
            Err(e) => {
                vortex_obs::counter!("serve.errors").incr();
                Err(ServeError::Inference(e.clone()))
            }
        };
        let _ = request.tx.send(response);
    }
}
