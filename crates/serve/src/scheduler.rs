//! The batched inference scheduler: bounded admission, micro-batching
//! on the shared worker pool, deadlines, the degradation ladder, and
//! self-healing dispatch.
//!
//! One [`Scheduler`] holds an [`Arc`] onto a frozen [`CompiledModel`]
//! replica pair (primary and optional degraded fallback — frozen state
//! is shared, never copied). Callers submit single-sample requests
//! through [`Scheduler::try_submit`], which either admits the request
//! into a bounded queue and returns a [`Ticket`], or rejects it
//! *immediately* with a typed error — [`ServeError::QueueFull`] is the
//! backpressure signal; the scheduler never blocks a producer. Callers
//! that would rather wait briefly than shed wrap submission in a
//! [`RetryPolicy`] via [`Scheduler::submit_with_retry`].
//!
//! # Pumps on the shared pool
//!
//! The scheduler owns no threads. Dispatch runs as **pump** tasks
//! submitted to the workspace-wide
//! [`WorkerPool`] — the same pool the
//! Monte-Carlo executor fans out over. A pump exists only while there is
//! work: admission spawns pumps (up to the configured pool size, never
//! more than the backlog) and each pump drains batches until the queue
//! is empty or paused, then retires, returning its pool thread. Batching
//! semantics are unchanged from the dedicated-thread design: a pump
//! drains up to [`SchedulerConfig::max_batch`] requests, lingers up to
//! [`SchedulerConfig::max_wait`] for the batch to fill, and dispatches
//! the whole batch through one [`CompiledModel::infer_batch`] call.
//! Batching never changes predictions — the compiled read is a pure
//! per-sample function, so the response for a given input is
//! bit-identical whatever batch it rides in and whatever the pump count
//! (`Parallelism::Fixed(1)` against `Fixed(4)` is asserted in the crate
//! tests).
//!
//! # Self-healing: a panic loses no accepted request
//!
//! Every dispatch runs under `catch_unwind`. When a pump panics —
//! whether from a genuine bug or a [`ChaosPlan`] injection — the batch
//! it held is still unanswered, because dispatch computes *every*
//! response before sending *any*: the pump pushes the whole batch back
//! onto the queue front (order preserved), sleeps a bounded
//! deterministic backoff (`base · 2^min(crashes, 6)`, capped), and
//! resumes pumping in place — the pool thread survives the caught panic,
//! so the "respawn" is the same slot picking the requeued batch back up.
//! Nothing is poisoned: the pool keeps serving every other client
//! throughout. A request that has already survived one crash is not
//! requeued twice: the second failure answers it with the typed
//! [`ServeError::WorkerCrashed`]. Accepted requests therefore always
//! resolve — a prediction, or a typed error.
//!
//! # Hot swap
//!
//! [`Scheduler::swap_primary`] atomically replaces the primary model
//! between batches without draining the queue: pumps re-read the
//! replica at each dispatch. A health monitor uses this to install a
//! freshly recompiled model when canary accuracy sags (see
//! [`crate::health`]).
//!
//! # Scheduling is deterministic where it matters
//!
//! Admission decisions (reject-full, deadline, downgrade) depend only on
//! queue depth at submit time, and the queue depth sequence is
//! deterministic whenever producers are serialized — the integration
//! tests and the bench harness use [`Scheduler::pause`] to build an exact
//! backlog before releasing the pumps, which makes every admission
//! decision, every downgrade, and every prediction assertable. Under
//! [`SchedulerConfig::deterministic`] the batch sequence numbers a
//! [`ChaosPlan`] keys on are deterministic too, so an injected crash
//! hits the same batch — and produces the same answers — on every run.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

use vortex_nn::executor::Parallelism;
use vortex_nn::pool::WorkerPool;
use vortex_runtime::{CompiledModel, Fidelity, RuntimeError};

use crate::chaos::ChaosPlan;
use crate::degradation::{Hysteresis, Transition};
use crate::retry::RetryPolicy;
use crate::{Result, ServeError};

/// How the scheduler answers one admitted request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted class (argmax of the read scores).
    pub class: u8,
    /// Fidelity of the model that actually served the request.
    pub fidelity: Fidelity,
    /// Whether the degradation ladder rerouted this request to the
    /// fallback model.
    pub downgraded: bool,
    /// Size of the micro-batch this request was dispatched in.
    pub batch_size: usize,
}

/// Configuration of a [`Scheduler`].
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerConfig {
    /// Maximum concurrent pumps, as the workspace-wide [`Parallelism`]
    /// type. `Fixed(1)` is the deterministic test mode: one pump
    /// dispatches batches strictly in admission order.
    pub pool: Parallelism,
    /// Admission queue capacity; a full queue rejects with
    /// [`ServeError::QueueFull`]. Zero rejects every submission.
    pub queue_capacity: usize,
    /// Largest micro-batch a pump dispatches (≥ 1).
    pub max_batch: usize,
    /// How long a pump lingers for a partial batch to fill before
    /// dispatching it. [`Duration::ZERO`] dispatches whatever is queued.
    pub max_wait: Duration,
    /// Queue depth at which new admissions degrade to the fallback model.
    /// `usize::MAX` (the default) disables the ladder.
    pub high_water: usize,
    /// Queue depth at which degraded admission recovers.
    pub low_water: usize,
    /// Start with the pumps paused (see [`Scheduler::pause`]); used by
    /// tests and benchmarks to build an exact backlog.
    pub start_paused: bool,
    /// Backoff before a crashed pump resumes; doubles per crash of this
    /// scheduler.
    pub respawn_base: Duration,
    /// Upper bound on any single respawn backoff.
    pub respawn_cap: Duration,
}

impl SchedulerConfig {
    /// A production-shaped configuration for the given pool.
    pub fn new(pool: Parallelism) -> Self {
        Self {
            pool,
            queue_capacity: 1024,
            max_batch: 64,
            max_wait: Duration::from_micros(200),
            high_water: usize::MAX,
            low_water: 0,
            start_paused: false,
            respawn_base: Duration::from_micros(500),
            respawn_cap: Duration::from_millis(32),
        }
    }

    /// The deterministic test mode: one pump, no linger, ladder off,
    /// immediate respawn — batches dispatch strictly in admission order
    /// and carry deterministic sequence numbers.
    pub fn deterministic() -> Self {
        Self {
            max_wait: Duration::ZERO,
            respawn_base: Duration::ZERO,
            respawn_cap: Duration::ZERO,
            ..Self::new(Parallelism::Fixed(1))
        }
    }

    /// This configuration with the given queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// This configuration with the given batching policy.
    pub fn with_batching(mut self, max_batch: usize, max_wait: Duration) -> Self {
        self.max_batch = max_batch;
        self.max_wait = max_wait;
        self
    }

    /// This configuration with the degradation ladder enabled at the
    /// given watermarks (engage at `high_water`, recover at `low_water`).
    pub fn with_watermarks(mut self, high_water: usize, low_water: usize) -> Self {
        self.high_water = high_water;
        self.low_water = low_water;
        self
    }

    /// This configuration with the given crash-recovery backoff band.
    pub fn with_respawn_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.respawn_base = base;
        self.respawn_cap = cap;
        self
    }

    /// This configuration starting paused.
    pub fn paused(mut self) -> Self {
        self.start_paused = true;
        self
    }
}

/// One queued request.
struct Request {
    input: Vec<f64>,
    deadline: Option<Instant>,
    downgraded: bool,
    submitted: Instant,
    /// How many pump crashes this request has already survived.
    attempts: u32,
    tx: mpsc::Sender<Result<Prediction>>,
}

/// A handle onto one admitted request's eventual response.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Prediction>>,
}

impl Ticket {
    /// Blocks until the scheduler answers.
    ///
    /// # Errors
    ///
    /// Propagates the request's typed rejection ([`ServeError::Timeout`],
    /// [`ServeError::Inference`], [`ServeError::WorkerCrashed`]); returns
    /// [`ServeError::ShuttingDown`] when the scheduler was torn down
    /// before answering.
    pub fn wait(self) -> Result<Prediction> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// [`Self::wait`] with an upper bound; `None` means not answered yet
    /// (the ticket stays valid).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Prediction>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::ShuttingDown)),
        }
    }
}

/// Everything the queue lock guards.
struct QueueState {
    queue: std::collections::VecDeque<Request>,
    ladder: Hysteresis,
    closed: bool,
    paused: bool,
    /// Pumps currently live (enqueued on the pool or running). Guarded by
    /// the state lock so spawn decisions can never race a retiring pump.
    active_pumps: usize,
}

struct Shared {
    state: Mutex<QueueState>,
    available: Condvar,
    /// Signaled by the last retiring pump; shutdown waits on it.
    idle: Condvar,
    capacity: usize,
    max_batch: usize,
    max_wait: Duration,
    /// Maximum concurrent pumps — the configured "pool size".
    pump_limit: usize,
    /// The serving replica, swappable between batches (see
    /// [`Scheduler::swap_primary`]). Pumps take the read lock once per
    /// dispatch; the write lock is held only for the pointer swap.
    primary: RwLock<Arc<CompiledModel>>,
    fallback: Option<Arc<CompiledModel>>,
    chaos: Option<ChaosPlan>,
    /// Monotone dispatch sequence; the key a [`ChaosPlan`] fires on.
    batch_seq: AtomicU64,
    depth: AtomicUsize,
    /// Crashes this scheduler has absorbed (drives the backoff doubling).
    crashes: AtomicU32,
    respawn_base: Duration,
    respawn_cap: Duration,
    /// The pool pumps run on; retained so admission can spawn them.
    pool: Arc<WorkerPool>,
}

impl Shared {
    /// Publishes the queue depth (gauge + lock-free mirror) and feeds the
    /// ladder. Must be called with the state lock held, after any
    /// push/drain. Returns the transition for counter attribution.
    fn note_depth(&self, state: &mut QueueState) -> Transition {
        let depth = state.queue.len();
        self.depth.store(depth, Ordering::Relaxed);
        vortex_obs::gauge!("serve.queue_depth").set(depth as f64);
        let transition = state.ladder.observe(depth);
        match transition {
            Transition::Entered => vortex_obs::counter!("serve.degradation_entered").incr(),
            Transition::Exited => vortex_obs::counter!("serve.degradation_exited").incr(),
            Transition::None => {}
        }
        transition
    }

    /// Spawns pumps up to the configured limit, never more than the
    /// backlog. Must be called with the state lock held so the
    /// `active_pumps` check-and-increment is atomic with the spawn.
    fn spawn_pumps(self: &Arc<Self>, state: &mut QueueState) {
        while !state.paused
            && !state.closed
            && state.active_pumps < self.pump_limit
            && state.active_pumps < state.queue.len()
        {
            state.active_pumps += 1;
            let shared = Arc::clone(self);
            self.pool.submit(move || pump_loop(&shared));
        }
    }

    /// One pump checks out. Must be called with the state lock held.
    fn retire_pump(&self, state: &mut QueueState) {
        state.active_pumps -= 1;
        if state.active_pumps == 0 {
            self.idle.notify_all();
        }
    }
}

/// The batched inference scheduler. See the module docs.
pub struct Scheduler {
    shared: Arc<Shared>,
}

impl Scheduler {
    /// Builds a scheduler over `primary`, with `fallback` as the degraded
    /// tier of the ladder, dispatching on the process-wide
    /// [`WorkerPool::global`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] for a zero `max_batch`,
    /// an inverted watermark band or respawn-backoff band, a ladder
    /// without a fallback model, or a fallback whose shape disagrees with
    /// the primary.
    pub fn new(
        primary: Arc<CompiledModel>,
        fallback: Option<Arc<CompiledModel>>,
        config: SchedulerConfig,
    ) -> Result<Self> {
        Self::with_chaos(primary, fallback, config, None)
    }

    /// [`Self::new`] with a fault-injection plan wired into the dispatch
    /// path: the plan decides per batch sequence number whether the
    /// dispatching pump panics or runs slow. Production schedulers
    /// pass `None` (via [`Self::new`]); chaos tests and the `chaos`
    /// bench experiment pass a generated plan.
    ///
    /// # Errors
    ///
    /// See [`Self::new`].
    pub fn with_chaos(
        primary: Arc<CompiledModel>,
        fallback: Option<Arc<CompiledModel>>,
        config: SchedulerConfig,
        chaos: Option<ChaosPlan>,
    ) -> Result<Self> {
        Self::on_pool(
            Arc::clone(WorkerPool::global()),
            primary,
            fallback,
            config,
            chaos,
        )
    }

    /// [`Self::with_chaos`] on an explicit pool — the determinism harness
    /// uses this to pin schedulers and executors onto one shared pool of
    /// a specific size.
    ///
    /// # Errors
    ///
    /// See [`Self::new`].
    pub fn on_pool(
        pool: Arc<WorkerPool>,
        primary: Arc<CompiledModel>,
        fallback: Option<Arc<CompiledModel>>,
        config: SchedulerConfig,
        chaos: Option<ChaosPlan>,
    ) -> Result<Self> {
        if config.max_batch == 0 {
            return Err(ServeError::InvalidParameter {
                name: "max_batch",
                requirement: "must be at least 1",
            });
        }
        if config.respawn_cap < config.respawn_base {
            return Err(ServeError::InvalidParameter {
                name: "respawn_cap",
                requirement: "respawn backoff cap must be at least the base",
            });
        }
        let ladder = if config.high_water == usize::MAX {
            Hysteresis::disabled()
        } else {
            let ladder = Hysteresis::new(config.high_water, config.low_water).ok_or(
                ServeError::InvalidParameter {
                    name: "high_water",
                    requirement: "watermarks need 1 <= low_water <= high_water",
                },
            )?;
            if fallback.is_none() {
                return Err(ServeError::InvalidParameter {
                    name: "fallback",
                    requirement: "the degradation ladder needs a fallback model",
                });
            }
            ladder
        };
        if let Some(fb) = &fallback {
            if fb.logical_rows() != primary.logical_rows() || fb.classes() != primary.classes() {
                return Err(ServeError::InvalidParameter {
                    name: "fallback",
                    requirement: "fallback model must share the primary's logical shape",
                });
            }
        }
        let pump_limit = config.pool.resolve();
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: std::collections::VecDeque::with_capacity(config.queue_capacity.min(4096)),
                ladder,
                closed: false,
                paused: config.start_paused,
                active_pumps: 0,
            }),
            available: Condvar::new(),
            idle: Condvar::new(),
            capacity: config.queue_capacity,
            max_batch: config.max_batch,
            max_wait: config.max_wait,
            pump_limit,
            primary: RwLock::new(primary),
            fallback,
            chaos,
            batch_seq: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
            crashes: AtomicU32::new(0),
            respawn_base: config.respawn_base,
            respawn_cap: config.respawn_cap,
            pool,
        });
        vortex_obs::gauge!("serve.pool_workers").set(pump_limit as f64);
        Ok(Self { shared })
    }

    /// Submits one logical input for classification, with an optional
    /// absolute deadline. Never blocks: the request is either admitted
    /// (the returned [`Ticket`] resolves to its response) or rejected
    /// with a typed error right here.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] when the bounded queue is at capacity
    /// (backpressure — retry later or shed the request),
    /// [`ServeError::Timeout`] when `deadline` has already passed,
    /// [`ServeError::ShuttingDown`] after shutdown, and
    /// [`ServeError::InvalidParameter`] for a wrong input length.
    pub fn try_submit(&self, input: Vec<f64>, deadline: Option<Instant>) -> Result<Ticket> {
        let logical_rows = self
            .shared
            .primary
            .read()
            .expect("primary lock")
            .logical_rows();
        if input.len() != logical_rows {
            return Err(ServeError::InvalidParameter {
                name: "input",
                requirement: "length must match the model's logical row count",
            });
        }
        let now = Instant::now();
        if deadline.is_some_and(|d| d <= now) {
            vortex_obs::counter!("serve.rejected_timeout").incr();
            return Err(ServeError::Timeout { stage: "submit" });
        }
        let mut state = self.shared.state.lock().expect("queue lock");
        if state.closed {
            return Err(ServeError::ShuttingDown);
        }
        if state.queue.len() >= self.shared.capacity {
            vortex_obs::counter!("serve.rejected_full").incr();
            return Err(ServeError::QueueFull {
                capacity: self.shared.capacity,
            });
        }
        let (tx, rx) = mpsc::channel();
        let downgraded = {
            // Admit at the depth this request creates, so the ladder sees
            // the queue as the request leaves it.
            state.queue.push_back(Request {
                input,
                deadline,
                downgraded: false,
                submitted: now,
                attempts: 0,
                tx,
            });
            let _ = self.shared.note_depth(&mut state);
            state.ladder.is_degraded() && self.shared.fallback.is_some()
        };
        if downgraded {
            state
                .queue
                .back_mut()
                .expect("request was just pushed")
                .downgraded = true;
            vortex_obs::counter!("serve.downgraded").incr();
        }
        vortex_obs::counter!("serve.admitted").incr();
        self.shared.spawn_pumps(&mut state);
        drop(state);
        // Wake any pump lingering for a partial batch.
        self.shared.available.notify_one();
        Ok(Ticket { rx })
    }

    /// [`Self::try_submit`] with bounded-backoff retries on
    /// [`ServeError::QueueFull`]. Only backpressure is retried —
    /// deadline, shutdown and validation rejections surface immediately,
    /// and a deadline that would expire during the next backoff fails
    /// fast with [`ServeError::Timeout`].
    ///
    /// # Errors
    ///
    /// See [`Self::try_submit`]; after the policy's final attempt the
    /// last `QueueFull` is returned.
    pub fn submit_with_retry(
        &self,
        input: Vec<f64>,
        deadline: Option<Instant>,
        policy: &RetryPolicy,
    ) -> Result<Ticket> {
        let mut attempt = 0u32;
        loop {
            match self.try_submit(input.clone(), deadline) {
                Err(ServeError::QueueFull { capacity }) => match policy.backoff_after(attempt) {
                    Some(delay) => {
                        vortex_obs::counter!("serve.retry.attempts").incr();
                        if deadline.is_some_and(|d| Instant::now() + delay >= d) {
                            vortex_obs::counter!("serve.rejected_timeout").incr();
                            return Err(ServeError::Timeout { stage: "submit" });
                        }
                        if delay > Duration::ZERO {
                            std::thread::sleep(delay);
                        }
                        attempt += 1;
                    }
                    None => {
                        vortex_obs::counter!("serve.retry.exhausted").incr();
                        return Err(ServeError::QueueFull { capacity });
                    }
                },
                other => return other,
            }
        }
    }

    /// Submits and blocks for the response — the one-call convenience
    /// wrapper over [`Self::try_submit`] + [`Ticket::wait`].
    ///
    /// # Errors
    ///
    /// See [`Self::try_submit`] and [`Ticket::wait`].
    pub fn submit_wait(&self, input: Vec<f64>) -> Result<Prediction> {
        self.try_submit(input, None)?.wait()
    }

    /// The current primary serving replica.
    pub fn primary(&self) -> Arc<CompiledModel> {
        Arc::clone(&self.shared.primary.read().expect("primary lock"))
    }

    /// Atomically replaces the primary model without draining the queue:
    /// in-flight batches finish on the replica they started with, the
    /// next dispatch reads the new one. The health monitor calls this
    /// after a canary-triggered recompile.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] when the replacement's
    /// logical shape differs from the serving model's.
    pub fn swap_primary(&self, model: Arc<CompiledModel>) -> Result<()> {
        let mut slot = self.shared.primary.write().expect("primary lock");
        if model.logical_rows() != slot.logical_rows() || model.classes() != slot.classes() {
            return Err(ServeError::InvalidParameter {
                name: "model",
                requirement: "replacement must share the serving model's logical shape",
            });
        }
        *slot = model;
        drop(slot);
        vortex_obs::counter!("serve.health.swaps").incr();
        Ok(())
    }

    /// Current queue depth (admitted, not yet dispatched).
    ///
    /// This is the single source of truth for load-aware routing: the
    /// fleet layer's least-loaded policy and its
    /// `fleet.replica.*.queue_depth` gauges both read this lock-free
    /// mirror, so dashboards and routing decisions can never disagree.
    pub fn queue_depth(&self) -> usize {
        self.shared.depth.load(Ordering::Relaxed)
    }

    /// Blocks until every admitted request has been dispatched and every
    /// pump has retired — the queue is empty and nothing is in flight.
    /// Admission stays open throughout; combined with an upstream router
    /// that has stopped sending traffic here (a *draining* fleet
    /// replica), this empties the scheduler without dropping a request.
    ///
    /// A paused scheduler with a backlog drains only once it is resumed;
    /// this call keeps waiting until then.
    pub fn drain(&self) {
        let mut state = self.shared.state.lock().expect("queue lock");
        while !(state.queue.is_empty() && state.active_pumps == 0) {
            // The idle condvar fires when the last pump retires; the
            // bounded wait also covers wake-ups the pumps cannot signal
            // (a paused scheduler being resumed by another thread).
            let (next, _) = self
                .shared
                .idle
                .wait_timeout(state, Duration::from_millis(1))
                .expect("queue lock");
            state = next;
        }
    }

    /// Whether the degradation ladder is currently engaged.
    pub fn is_degraded(&self) -> bool {
        self.shared
            .state
            .lock()
            .expect("queue lock")
            .ladder
            .is_degraded()
    }

    /// Maximum concurrent pumps (the configured pool size).
    pub fn pool_size(&self) -> usize {
        self.shared.pump_limit
    }

    /// Number of micro-batches dispatched so far (the sequence a
    /// [`ChaosPlan`] keys on).
    pub fn batches_dispatched(&self) -> u64 {
        self.shared.batch_seq.load(Ordering::Relaxed)
    }

    /// Stops pumps from dispatching; admissions continue. Paired with
    /// [`Self::resume`], this builds an exact, assertable backlog.
    pub fn pause(&self) {
        self.shared.state.lock().expect("queue lock").paused = true;
        self.shared.available.notify_all();
    }

    /// Releases a paused scheduler: pumps spawn for whatever backlog
    /// built up.
    pub fn resume(&self) {
        let mut state = self.shared.state.lock().expect("queue lock");
        state.paused = false;
        self.shared.spawn_pumps(&mut state);
        drop(state);
        self.shared.available.notify_all();
    }

    /// Closes admission, lets the pumps drain the queue, and waits for
    /// every pump to retire. Requests still queued when the scheduler was
    /// paused are answered with [`ServeError::ShuttingDown`]. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&self) {
        let mut state = self.shared.state.lock().expect("queue lock");
        state.closed = true;
        // Wake lingering pumps so they dispatch what they hold and see
        // `closed`.
        self.shared.available.notify_all();
        while state.active_pumps > 0 {
            state = self.shared.idle.wait(state).expect("queue lock");
        }
        // A paused (or crashed-at-close) scheduler retires its pumps
        // without draining; answer the leftovers.
        while let Some(request) = state.queue.pop_front() {
            let _ = request.tx.send(Err(ServeError::ShuttingDown));
        }
        let _ = self.shared.note_depth(&mut state);
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("pool_size", &self.shared.pump_limit)
            .field("capacity", &self.shared.capacity)
            .field("max_batch", &self.shared.max_batch)
            .field("queue_depth", &self.queue_depth())
            .finish()
    }
}

/// One pump: drain batches until the queue is empty, paused or closed,
/// then retire. Runs as a detached job on the shared pool. On a dispatch
/// panic the batch is requeued and — after the bounded backoff — this
/// same task resumes pumping in place ("respawn" without a thread
/// death: the pool thread survives the caught panic).
fn pump_loop(shared: &Arc<Shared>) {
    loop {
        let Some(mut batch) = next_batch(shared) else {
            return; // retired inside next_batch, under the state lock
        };
        if batch.is_empty() {
            continue;
        }
        let seq = shared.batch_seq.fetch_add(1, Ordering::Relaxed);
        let outcome = catch_unwind(AssertUnwindSafe(|| dispatch(shared, &mut batch, seq)));
        if outcome.is_err() {
            // Dispatch computes every answer before sending any, so a
            // panic means the whole batch is still in `batch`, unanswered.
            vortex_obs::counter!("serve.worker_panics").incr();
            requeue_unanswered(shared, &mut batch);
            let crashes = shared.crashes.fetch_add(1, Ordering::Relaxed);
            let backoff = shared
                .respawn_base
                .checked_mul(1 << crashes.min(6))
                .unwrap_or(shared.respawn_cap)
                .min(shared.respawn_cap);
            if shared.state.lock().expect("queue lock").closed {
                // Shutdown answers the requeued leftovers; don't resume.
                let mut state = shared.state.lock().expect("queue lock");
                shared.retire_pump(&mut state);
                return;
            }
            if backoff > Duration::ZERO {
                std::thread::sleep(backoff);
            }
            vortex_obs::counter!("serve.supervisor.respawns").incr();
        }
    }
}

/// Collects the next micro-batch: drains greedily, then lingers up to
/// `max_wait` for the batch to fill. Returns `None` — retiring the pump
/// under the state lock — when the queue is empty, paused, or being shut
/// down with nothing left to drain.
fn next_batch(shared: &Arc<Shared>) -> Option<Vec<Request>> {
    let mut state: MutexGuard<'_, QueueState> = shared.state.lock().expect("queue lock");
    if state.paused || state.queue.is_empty() {
        shared.retire_pump(&mut state);
        return None;
    }
    let mut batch = Vec::with_capacity(shared.max_batch.min(state.queue.len()));
    drain_into(&mut state, &mut batch, shared.max_batch);
    if batch.len() < shared.max_batch && shared.max_wait > Duration::ZERO {
        let linger_until = Instant::now() + shared.max_wait;
        while batch.len() < shared.max_batch && !state.closed {
            let now = Instant::now();
            if now >= linger_until {
                break;
            }
            let (next, _) = shared
                .available
                .wait_timeout(state, linger_until - now)
                .expect("queue lock");
            state = next;
            if !state.paused {
                drain_into(&mut state, &mut batch, shared.max_batch);
            }
        }
    }
    let _ = shared.note_depth(&mut state);
    Some(batch)
}

fn drain_into(state: &mut QueueState, batch: &mut Vec<Request>, max_batch: usize) {
    while batch.len() < max_batch {
        match state.queue.pop_front() {
            Some(request) => batch.push(request),
            None => break,
        }
    }
}

/// Pushes a crashed pump's batch back onto the queue front (order
/// preserved). A request that already survived one crash is answered
/// with [`ServeError::WorkerCrashed`] instead of riding a third dispatch.
fn requeue_unanswered(shared: &Shared, batch: &mut Vec<Request>) {
    let mut state = shared.state.lock().expect("queue lock");
    for mut request in batch.drain(..).rev() {
        if request.attempts >= 1 {
            vortex_obs::counter!("serve.supervisor.crashed").incr();
            let _ = request.tx.send(Err(ServeError::WorkerCrashed));
        } else {
            request.attempts += 1;
            vortex_obs::counter!("serve.supervisor.requeued").incr();
            state.queue.push_front(request);
        }
    }
    let _ = shared.note_depth(&mut state);
    drop(state);
    shared.available.notify_all();
}

/// Runs one fidelity tier's samples through its model, timing the read.
fn tier_outcome(
    model: &CompiledModel,
    inputs: &[&[f64]],
) -> std::result::Result<Vec<u8>, RuntimeError> {
    if inputs.is_empty() {
        return Ok(Vec::new());
    }
    let infer_start = Instant::now();
    // Pumps are the parallelism; the intra-batch read stays serial (a
    // nested pool fan-out from inside a pool job would only thrash).
    let outcome = model.infer_batch(inputs, Parallelism::Serial);
    vortex_obs::histogram!("serve.infer_seconds").record(infer_start.elapsed().as_secs_f64());
    outcome
}

/// Dispatches one micro-batch: consult the chaos plan, expire deadlines,
/// compute every tier's answers, then respond.
///
/// The two-phase shape is the panic-safety contract: phase one only
/// *borrows* the requests (any panic — injected or genuine — leaves the
/// whole batch in `batch` for [`requeue_unanswered`]); phase two drains
/// and answers, and contains nothing that can panic.
fn dispatch(shared: &Shared, batch: &mut Vec<Request>, seq: u64) {
    if let Some(chaos) = &shared.chaos {
        if let Some(delay) = chaos.slow_down(seq) {
            vortex_obs::counter!("serve.chaos.slow_batches").incr();
            std::thread::sleep(delay);
        }
        if chaos.should_panic(seq) {
            vortex_obs::counter!("serve.chaos.panics").incr();
            panic!("chaos: injected worker panic at batch {seq}");
        }
    }
    let now = Instant::now();
    // Phase one: partition the *borrowed* inputs by tier and compute all
    // answers. The primary replica is re-read every dispatch, so a hot
    // swap takes effect at the next batch boundary.
    let primary = Arc::clone(&shared.primary.read().expect("primary lock"));
    let mut primary_inputs: Vec<&[f64]> = Vec::new();
    let mut fallback_inputs: Vec<&[f64]> = Vec::new();
    for request in batch.iter() {
        if request.deadline.is_some_and(|d| d <= now) {
            continue;
        }
        if request.downgraded {
            fallback_inputs.push(&request.input);
        } else {
            primary_inputs.push(&request.input);
        }
    }
    let batch_size = primary_inputs.len() + fallback_inputs.len();
    if batch_size > 0 {
        vortex_obs::histogram!("serve.batch_size").record(batch_size as f64);
    }
    let primary_out = tier_outcome(&primary, &primary_inputs);
    let fallback_out = match &shared.fallback {
        Some(fallback) => tier_outcome(fallback, &fallback_inputs),
        None => Ok(Vec::new()),
    };
    let fallback_fidelity = shared.fallback.as_ref().map(|m| m.fidelity());

    // Phase two: every answer exists; drain and send.
    let answered = Instant::now();
    let mut primary_classes = primary_out.map(Vec::into_iter);
    let mut fallback_classes = fallback_out.map(Vec::into_iter);
    for request in batch.drain(..) {
        if request.deadline.is_some_and(|d| d <= now) {
            vortex_obs::counter!("serve.rejected_timeout").incr();
            let _ = request.tx.send(Err(ServeError::Timeout { stage: "queue" }));
            continue;
        }
        let (classes, fidelity) = if request.downgraded {
            (
                &mut fallback_classes,
                fallback_fidelity.expect("downgraded requests require a fallback"),
            )
        } else {
            (&mut primary_classes, primary.fidelity())
        };
        let response = match classes {
            Ok(iter) => {
                let class = iter.next().expect("one class per live request");
                vortex_obs::counter!("serve.completed").incr();
                vortex_obs::histogram!("serve.latency_seconds")
                    .record((answered - request.submitted).as_secs_f64());
                Ok(Prediction {
                    class,
                    fidelity,
                    downgraded: request.downgraded,
                    batch_size,
                })
            }
            Err(e) => {
                vortex_obs::counter!("serve.errors").incr();
                Err(ServeError::Inference(e.clone()))
            }
        };
        let _ = request.tx.send(response);
    }
}
