//! Submit-side retry: bounded exponential backoff for backpressure.
//!
//! [`ServeError::QueueFull`] is a *transient* rejection — the queue
//! drains in microseconds under normal load — so callers that would
//! rather wait briefly than shed can wrap submission in a
//! [`RetryPolicy`]. Only `QueueFull` is retried: deadline, shutdown and
//! validation rejections are permanent and surface immediately.

use std::time::Duration;

use crate::{Result, ServeError};

/// A bounded exponential-backoff retry policy.
///
/// Attempt `k` (zero-based) sleeps `min(base · 2ᵏ, max)` before
/// resubmitting; after [`RetryPolicy::max_attempts`] total attempts the
/// final [`ServeError::QueueFull`] is returned. The delay sequence is a
/// pure function of the policy — deterministic by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total submission attempts (≥ 1; 1 means no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub max: Duration,
}

impl RetryPolicy {
    /// A policy of `max_attempts` total attempts with backoff doubling
    /// from `base` up to `max`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] for zero attempts or an
    /// inverted backoff band.
    pub fn new(max_attempts: u32, base: Duration, max: Duration) -> Result<Self> {
        if max_attempts == 0 {
            return Err(ServeError::InvalidParameter {
                name: "max_attempts",
                requirement: "must be at least 1",
            });
        }
        if max < base {
            return Err(ServeError::InvalidParameter {
                name: "max",
                requirement: "backoff cap must be at least the base",
            });
        }
        Ok(Self {
            max_attempts,
            base,
            max,
        })
    }

    /// The no-retry policy: one attempt, immediate rejection.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            base: Duration::ZERO,
            max: Duration::ZERO,
        }
    }

    /// The backoff slept after failed attempt `attempt` (zero-based), or
    /// `None` when the policy is exhausted and the error should surface.
    pub fn backoff_after(&self, attempt: u32) -> Option<Duration> {
        if attempt + 1 >= self.max_attempts {
            return None;
        }
        let doubled = self
            .base
            .checked_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .unwrap_or(self.max);
        Some(doubled.min(self.max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(RetryPolicy::new(0, Duration::ZERO, Duration::ZERO).is_err());
        assert!(RetryPolicy::new(3, Duration::from_millis(2), Duration::from_millis(1)).is_err());
        assert!(RetryPolicy::new(1, Duration::ZERO, Duration::ZERO).is_ok());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::new(5, Duration::from_millis(1), Duration::from_millis(3)).unwrap();
        assert_eq!(p.backoff_after(0), Some(Duration::from_millis(1)));
        assert_eq!(p.backoff_after(1), Some(Duration::from_millis(2)));
        assert_eq!(p.backoff_after(2), Some(Duration::from_millis(3)));
        assert_eq!(p.backoff_after(3), Some(Duration::from_millis(3)));
        assert_eq!(p.backoff_after(4), None);
    }

    #[test]
    fn none_policy_never_retries() {
        assert_eq!(RetryPolicy::none().backoff_after(0), None);
    }

    #[test]
    fn huge_shift_does_not_overflow() {
        let p = RetryPolicy::new(u32::MAX, Duration::from_secs(1), Duration::from_secs(8)).unwrap();
        assert_eq!(p.backoff_after(40), Some(Duration::from_secs(8)));
    }
}
