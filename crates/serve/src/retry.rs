//! Submit-side retry: bounded exponential backoff for backpressure.
//!
//! [`ServeError::QueueFull`] is a *transient* rejection — the queue
//! drains in microseconds under normal load — so callers that would
//! rather wait briefly than shed can wrap submission in a
//! [`RetryPolicy`]. Only `QueueFull` is retried: deadline, shutdown and
//! validation rejections are permanent and surface immediately.

use std::time::Duration;

use vortex_linalg::rng::SplitMix64;

use crate::{Result, ServeError};

/// A bounded exponential-backoff retry policy.
///
/// Attempt `k` (zero-based) sleeps `min(base · 2ᵏ, max)` before
/// resubmitting; after [`RetryPolicy::max_attempts`] total attempts the
/// final [`ServeError::QueueFull`] is returned. The delay sequence is a
/// pure function of the policy — deterministic by construction.
///
/// With [`RetryPolicy::with_jitter`] the delay of attempt `k` becomes a
/// seeded *decorrelated* draw over `[base, min(base · 2ᵏ, max)]`: callers
/// that hit `QueueFull` together (a burst bouncing off a full queue)
/// carry different request seeds, land on different delays, and stop
/// stampeding back in lockstep. The draw hashes `(seed, k)` through
/// SplitMix64, so it stays a pure function of the policy — two retries of
/// the same request sleep the same schedule, bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total submission attempts (≥ 1; 1 means no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub max: Duration,
    /// Request seed for decorrelated jitter; `None` keeps the pure
    /// doubling schedule.
    pub jitter_seed: Option<u64>,
}

impl RetryPolicy {
    /// A policy of `max_attempts` total attempts with backoff doubling
    /// from `base` up to `max`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] for zero attempts or an
    /// inverted backoff band.
    pub fn new(max_attempts: u32, base: Duration, max: Duration) -> Result<Self> {
        if max_attempts == 0 {
            return Err(ServeError::InvalidParameter {
                name: "max_attempts",
                requirement: "must be at least 1",
            });
        }
        if max < base {
            return Err(ServeError::InvalidParameter {
                name: "max",
                requirement: "backoff cap must be at least the base",
            });
        }
        Ok(Self {
            max_attempts,
            base,
            max,
            jitter_seed: None,
        })
    }

    /// The no-retry policy: one attempt, immediate rejection.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            base: Duration::ZERO,
            max: Duration::ZERO,
            jitter_seed: None,
        }
    }

    /// This policy with decorrelated jitter drawn from `seed` (typically
    /// the request seed, so concurrent retriers desynchronize).
    pub fn with_jitter(mut self, seed: u64) -> Self {
        self.jitter_seed = Some(seed);
        self
    }

    /// The backoff slept after failed attempt `attempt` (zero-based), or
    /// `None` when the policy is exhausted and the error should surface.
    ///
    /// Without a jitter seed this is the exact doubling schedule
    /// `min(base · 2ᵏ, max)`; with one, a deterministic draw over
    /// `[base, min(base · 2ᵏ, max)]` as described on the type.
    pub fn backoff_after(&self, attempt: u32) -> Option<Duration> {
        if attempt + 1 >= self.max_attempts {
            return None;
        }
        let doubled = self
            .base
            .checked_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .unwrap_or(self.max);
        let ceiling = doubled.min(self.max);
        let Some(seed) = self.jitter_seed else {
            return Some(ceiling);
        };
        // Hash (seed, attempt) into [0, 1). SplitMix64 is seeded with the
        // request seed and stepped once per attempt index so consecutive
        // attempts of one request are themselves decorrelated.
        let mut h = SplitMix64::new(seed ^ u64::from(attempt).wrapping_mul(0xA076_1D64_78BD_642F));
        let frac = (h.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64));
        let band = ceiling.saturating_sub(self.base);
        Some(self.base + band.mul_f64(frac))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(RetryPolicy::new(0, Duration::ZERO, Duration::ZERO).is_err());
        assert!(RetryPolicy::new(3, Duration::from_millis(2), Duration::from_millis(1)).is_err());
        assert!(RetryPolicy::new(1, Duration::ZERO, Duration::ZERO).is_ok());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy::new(5, Duration::from_millis(1), Duration::from_millis(3)).unwrap();
        assert_eq!(p.backoff_after(0), Some(Duration::from_millis(1)));
        assert_eq!(p.backoff_after(1), Some(Duration::from_millis(2)));
        assert_eq!(p.backoff_after(2), Some(Duration::from_millis(3)));
        assert_eq!(p.backoff_after(3), Some(Duration::from_millis(3)));
        assert_eq!(p.backoff_after(4), None);
    }

    #[test]
    fn none_policy_never_retries() {
        assert_eq!(RetryPolicy::none().backoff_after(0), None);
    }

    #[test]
    fn huge_shift_does_not_overflow() {
        let p = RetryPolicy::new(u32::MAX, Duration::from_secs(1), Duration::from_secs(8)).unwrap();
        assert_eq!(p.backoff_after(40), Some(Duration::from_secs(8)));
    }

    #[test]
    fn jitterless_schedule_is_the_legacy_doubling_exactly() {
        // Pinned: a policy without a jitter seed must sleep the exact
        // pre-jitter schedule, so existing callers see identical timing.
        let p = RetryPolicy::new(5, Duration::from_millis(1), Duration::from_millis(3)).unwrap();
        assert_eq!(p.jitter_seed, None);
        assert_eq!(p.backoff_after(0), Some(Duration::from_millis(1)));
        assert_eq!(p.backoff_after(1), Some(Duration::from_millis(2)));
        assert_eq!(p.backoff_after(2), Some(Duration::from_millis(3)));
        assert_eq!(p.backoff_after(3), Some(Duration::from_millis(3)));
    }

    #[test]
    fn jitter_is_deterministic_and_stays_in_band() {
        let p = RetryPolicy::new(8, Duration::from_millis(2), Duration::from_millis(40))
            .unwrap()
            .with_jitter(1234);
        let q = RetryPolicy::new(8, Duration::from_millis(2), Duration::from_millis(40))
            .unwrap()
            .with_jitter(1234);
        for k in 0..7 {
            let d = p.backoff_after(k).unwrap();
            // Same seed, same attempt: the very same delay.
            assert_eq!(d, q.backoff_after(k).unwrap());
            let ceiling = Duration::from_millis(2)
                .checked_mul(1 << k)
                .unwrap()
                .min(Duration::from_millis(40));
            assert!(d >= Duration::from_millis(2), "attempt {k} slept {d:?}");
            assert!(d <= ceiling, "attempt {k} slept {d:?} above {ceiling:?}");
        }
        // Exhaustion is unchanged by jitter.
        assert_eq!(p.backoff_after(7), None);
    }

    #[test]
    fn distinct_seeds_desynchronize() {
        // A stampede of retriers with distinct request seeds must not
        // share one delay; count collisions on a mid-schedule attempt.
        let policy = RetryPolicy::new(6, Duration::from_millis(1), Duration::from_secs(1)).unwrap();
        let delays: Vec<Duration> = (0..32u64)
            .map(|seed| policy.with_jitter(seed).backoff_after(3).unwrap())
            .collect();
        let mut unique = delays.clone();
        unique.sort_unstable();
        unique.dedup();
        assert!(
            unique.len() >= 30,
            "expected ≥30 distinct delays across 32 seeds, got {}",
            unique.len()
        );
    }
}
