//! Lifetime scenario engine: a seeded device timeline over virtual time.
//!
//! PR-5's chaos layer breaks a model *once* — one drift age, one set of
//! stuck cells. Real crossbars degrade continuously: conductances relax
//! along power-law retention curves, every reprogramming cycle wears the
//! devices (widening the effective programming variation), and ambient
//! temperature scales conductance while accelerating drift. A
//! [`DeviceTimeline`] composes all three over a *virtual* clock:
//!
//! * **Retention drift** — the workspace's one drift implementation
//!   ([`DriftProcess`]): per-device `(1 + t/τ)^{−ν}` decay, ν frozen per
//!   programming epoch, the drift clock restarting at each reprogram.
//! * **Write-endurance wear** — [`WearModel`]: reprogram `n` lands each
//!   device at `g·exp(σ(n)·z)` with
//!   `σ(n) = σ_fresh·(1 + (n/endurance)^p)`, so an old chip reprograms
//!   *worse* than a young one.
//! * **Temperature** — [`TemperatureProfile`] gives the ambient at any
//!   instant; [`ThermalModel`] turns it into per-device conductance
//!   factors (device-spread tempco, so a hot chip does not merely scale
//!   every score equally) and into an Arrhenius acceleration of the
//!   drift clock (hot hours age the chip faster than cool ones).
//!
//! Everything is a pure function of `(seed, t)` given the reprogram
//! history: like a `ChaosPlan`, the same seed replays the same lifetime
//! bit for bit at any thread or pool count, which is what makes
//! policy comparisons ([`RecalibrationPolicy`]) assertable in CI. The
//! virtual-time harness that scores policies lives in
//! `vortex_bench::experiments::lifetime`.

use vortex_device::drift::{DriftProcess, RetentionModel};
use vortex_linalg::distributions::standard_normal;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::Matrix;
use vortex_runtime::CompiledModel;

use crate::{Result, ServeError};

/// Reference temperature (°C) at which thermal factors are exactly 1.
pub const REFERENCE_C: f64 = 25.0;

/// Trapezoid steps of the Arrhenius age integral — fixed, so the
/// effective age is a deterministic function of `(profile, interval)`.
const THERMAL_STEPS: usize = 32;

/// Stream offset of the per-device tempco draws.
const TEMPCO_STREAM: u64 = 0x7E11_C0DE;
/// Stream offset of the per-reprogram wear draws.
const WEAR_STREAM: u64 = 0x5EAD_BEEF;
/// Weyl increment separating programming epochs.
const EPOCH_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// Write-endurance wear: how programming variation widens with
/// cumulative reprogram count.
///
/// Reprogram `n` perturbs each device by `exp(σ(n)·z)`, `z ~ N(0,1)`,
/// with `σ(n) = σ_fresh · (1 + (n/endurance)^exponent)` — σ_fresh for a
/// young chip, doubled at the endurance rating, growing without bound
/// past it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearModel {
    /// Log-domain programming spread of reprogram 1 on a fresh chip.
    pub sigma_fresh: f64,
    /// Reprogram count at which wear doubles the spread.
    pub endurance: f64,
    /// Shape of the wear curve (1 = linear, >1 = sublinear early life).
    pub exponent: f64,
}

impl WearModel {
    /// Creates a wear model.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] for a negative or
    /// non-finite spread, a non-positive endurance, or a non-positive
    /// exponent.
    pub fn new(sigma_fresh: f64, endurance: f64, exponent: f64) -> Result<Self> {
        if !(sigma_fresh.is_finite() && sigma_fresh >= 0.0) {
            return Err(ServeError::InvalidParameter {
                name: "sigma_fresh",
                requirement: "must be finite and non-negative",
            });
        }
        if !(endurance.is_finite() && endurance > 0.0) {
            return Err(ServeError::InvalidParameter {
                name: "endurance",
                requirement: "must be finite and positive",
            });
        }
        if !(exponent.is_finite() && exponent > 0.0) {
            return Err(ServeError::InvalidParameter {
                name: "exponent",
                requirement: "must be finite and positive",
            });
        }
        Ok(Self {
            sigma_fresh,
            endurance,
            exponent,
        })
    }

    /// The effective programming spread of reprogram number `n` (1-based;
    /// monotone non-decreasing in `n`).
    pub fn sigma_at(&self, n: u64) -> f64 {
        self.sigma_fresh * (1.0 + (n as f64 / self.endurance).powf(self.exponent))
    }
}

/// Ambient temperature (°C) as a function of virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TemperatureProfile {
    /// A constant ambient.
    Constant(f64),
    /// A raised-cosine day/night swing: `base_c` at t = 0, peaking at
    /// `peak_c` half a period in.
    Diurnal {
        /// Coolest ambient of the cycle (°C).
        base_c: f64,
        /// Hottest ambient of the cycle (°C).
        peak_c: f64,
        /// Cycle length in seconds (86 400 for a day).
        period_s: f64,
    },
}

impl TemperatureProfile {
    /// Validates the profile.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] for non-finite
    /// temperatures, a peak below the base, or a non-positive period.
    pub fn validate(&self) -> Result<()> {
        match *self {
            Self::Constant(c) if c.is_finite() => Ok(()),
            Self::Constant(_) => Err(ServeError::InvalidParameter {
                name: "temperature",
                requirement: "ambient must be finite",
            }),
            Self::Diurnal {
                base_c,
                peak_c,
                period_s,
            } => {
                if !(base_c.is_finite() && peak_c.is_finite() && peak_c >= base_c) {
                    return Err(ServeError::InvalidParameter {
                        name: "temperature",
                        requirement: "peak must be finite and at or above the base",
                    });
                }
                if !(period_s.is_finite() && period_s > 0.0) {
                    return Err(ServeError::InvalidParameter {
                        name: "period_s",
                        requirement: "must be finite and positive",
                    });
                }
                Ok(())
            }
        }
    }

    /// The ambient at virtual time `t_s`.
    pub fn at(&self, t_s: f64) -> f64 {
        match *self {
            Self::Constant(c) => c,
            Self::Diurnal {
                base_c,
                peak_c,
                period_s,
            } => {
                let phase = (t_s / period_s) * std::f64::consts::TAU;
                base_c + (peak_c - base_c) * 0.5 * (1.0 - phase.cos())
            }
        }
    }
}

/// How temperature couples into the devices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Mean conductance temperature coefficient (per kelvin): a device's
    /// factor is `1 + tc·(T − 25)`.
    pub tempco_per_k: f64,
    /// Device-to-device spread of the tempco. A non-zero spread is what
    /// makes temperature *matter*: a uniform factor on both crossbars
    /// scales every class score equally and never flips an argmax.
    pub tempco_sigma: f64,
    /// Arrhenius drift acceleration (per kelvin): drift time advances at
    /// `exp(k·(T − 25))` — 1 at the reference, e^k per degree above it.
    pub arrhenius_per_k: f64,
}

impl ThermalModel {
    /// Creates a thermal model.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] for non-finite
    /// parameters or negative spreads/accelerations.
    pub fn new(tempco_per_k: f64, tempco_sigma: f64, arrhenius_per_k: f64) -> Result<Self> {
        if !tempco_per_k.is_finite() {
            return Err(ServeError::InvalidParameter {
                name: "tempco_per_k",
                requirement: "must be finite",
            });
        }
        if !(tempco_sigma.is_finite() && tempco_sigma >= 0.0) {
            return Err(ServeError::InvalidParameter {
                name: "tempco_sigma",
                requirement: "must be finite and non-negative",
            });
        }
        if !(arrhenius_per_k.is_finite() && arrhenius_per_k >= 0.0) {
            return Err(ServeError::InvalidParameter {
                name: "arrhenius_per_k",
                requirement: "must be finite and non-negative",
            });
        }
        Ok(Self {
            tempco_per_k,
            tempco_sigma,
            arrhenius_per_k,
        })
    }

    /// The drift-clock acceleration at ambient `temp_c` (1.0 at the
    /// reference temperature).
    pub fn accel(&self, temp_c: f64) -> f64 {
        (self.arrhenius_per_k * (temp_c - REFERENCE_C)).exp()
    }
}

/// Everything a [`DeviceTimeline`] needs: the master seed and the three
/// degradation mechanisms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifetimeConfig {
    /// Master seed; every per-device draw (ν, tempco, wear) derives from
    /// it through fixed stream offsets.
    pub seed: u64,
    /// The retention model drift exponents are drawn from.
    pub retention: RetentionModel,
    /// Write-endurance wear.
    pub wear: WearModel,
    /// Ambient temperature over virtual time.
    pub temperature: TemperatureProfile,
    /// How temperature couples into conductance and drift speed.
    pub thermal: ThermalModel,
    /// Virtual seconds a reprogram keeps the chip out of service — the
    /// recalibration window the policy harness charges lost requests to.
    pub reprogram_s: f64,
}

impl LifetimeConfig {
    /// A timeline configuration with benign defaults: no wear, constant
    /// reference ambient, no thermal coupling, a 120-virtual-second
    /// reprogram window. Opt mechanisms in with the builder methods.
    ///
    /// # Errors
    ///
    /// Currently infallible (defaults are valid); kept fallible for
    /// parity with the builder validations.
    pub fn new(seed: u64, retention: RetentionModel) -> Result<Self> {
        Ok(Self {
            seed,
            retention,
            wear: WearModel::new(0.0, 1e6, 1.0)?,
            temperature: TemperatureProfile::Constant(REFERENCE_C),
            thermal: ThermalModel::new(0.0, 0.0, 0.0)?,
            reprogram_s: 120.0,
        })
    }

    /// This configuration with the given wear model.
    pub fn with_wear(mut self, wear: WearModel) -> Self {
        self.wear = wear;
        self
    }

    /// This configuration under the given temperature profile.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] for an invalid profile.
    pub fn with_temperature(mut self, profile: TemperatureProfile) -> Result<Self> {
        profile.validate()?;
        self.temperature = profile;
        Ok(self)
    }

    /// This configuration with the given thermal coupling.
    pub fn with_thermal(mut self, thermal: ThermalModel) -> Self {
        self.thermal = thermal;
        self
    }

    /// This configuration with a `window_s`-second reprogram blackout.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] for a negative or
    /// non-finite window.
    pub fn with_reprogram_window(mut self, window_s: f64) -> Result<Self> {
        if !(window_s.is_finite() && window_s >= 0.0) {
            return Err(ServeError::InvalidParameter {
                name: "reprogram_s",
                requirement: "must be finite and non-negative",
            });
        }
        self.reprogram_s = window_s;
        Ok(self)
    }
}

/// One chip's life: the frozen fresh compile, the conductances as last
/// programmed, and the degradation state evolving over virtual time.
/// See the module docs for the mechanism composition and the
/// determinism contract.
#[derive(Debug, Clone)]
pub struct DeviceTimeline {
    config: LifetimeConfig,
    fresh: CompiledModel,
    base: CompiledModel,
    drift: DriftProcess,
    tc_pos: Matrix,
    tc_neg: Matrix,
    reprograms: u64,
    last_program_s: f64,
}

impl DeviceTimeline {
    /// Starts a timeline at virtual t = 0 with `model` freshly
    /// programmed. Per-device temperature coefficients are drawn once
    /// here (they are device properties, not time-varying state):
    /// positive crossbar first, row-major, from the seed's tempco
    /// stream.
    pub fn new(config: LifetimeConfig, model: CompiledModel) -> Self {
        let (rows, cols) = (model.rows(), model.classes());
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(config.seed ^ TEMPCO_STREAM);
        let mut tc = |_: usize, _: usize| {
            config.thermal.tempco_per_k + config.thermal.tempco_sigma * standard_normal(&mut rng)
        };
        let tc_pos = Matrix::from_fn(rows, cols, &mut tc);
        let tc_neg = Matrix::from_fn(rows, cols, &mut tc);
        let drift = DriftProcess::new(config.retention, config.seed);
        Self {
            config,
            fresh: model.clone(),
            base: model,
            drift,
            tc_pos,
            tc_neg,
            reprograms: 0,
            last_program_s: 0.0,
        }
    }

    /// The timeline's configuration.
    pub fn config(&self) -> &LifetimeConfig {
        &self.config
    }

    /// The fresh compile the timeline started from (never degraded).
    pub fn fresh(&self) -> &CompiledModel {
        &self.fresh
    }

    /// Completed reprogram cycles.
    pub fn reprograms(&self) -> u64 {
        self.reprograms
    }

    /// Virtual time of the last (re)programming.
    pub fn last_program_s(&self) -> f64 {
        self.last_program_s
    }

    /// The programming spread the *next* reprogram would suffer.
    pub fn next_wear_sigma(&self) -> f64 {
        self.config.wear.sigma_at(self.reprograms + 1)
    }

    /// The drift-clock age accumulated over `[last_program, t_s]`: the
    /// trapezoidal integral of the Arrhenius acceleration along the
    /// temperature profile, over a fixed step count — deterministic, and
    /// exactly `t − last_program` at constant reference ambient.
    pub fn effective_age_s(&self, t_s: f64) -> f64 {
        let (a, b) = (self.last_program_s, t_s.max(self.last_program_s));
        let h = (b - a) / THERMAL_STEPS as f64;
        if h == 0.0 {
            return 0.0;
        }
        let accel = |u: f64| self.config.thermal.accel(self.config.temperature.at(u));
        let mut sum = 0.5 * (accel(a) + accel(b));
        for k in 1..THERMAL_STEPS {
            sum += accel(a + h * k as f64);
        }
        sum * h
    }

    /// The chip as it reads at virtual time `t_s` (at or after the last
    /// reprogram): last-programmed conductances × this epoch's drift
    /// decay at the Arrhenius-effective age × the instant's per-device
    /// thermal factors. Pure in `(seed, reprogram history, t_s)` — equal
    /// timelines materialize bit-identical models.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] for a non-finite `t_s`
    /// or one before the last reprogram.
    pub fn model_at(&self, t_s: f64) -> Result<CompiledModel> {
        if !t_s.is_finite() || t_s < self.last_program_s {
            return Err(ServeError::InvalidParameter {
                name: "t_s",
                requirement: "must be finite and at or after the last reprogram",
            });
        }
        let (rows, cols) = (self.base.rows(), self.base.classes());
        let age = self.effective_age_s(t_s);
        let (d_pos, d_neg) = self.drift.decay_matrices(rows, cols, age);
        let d_t = self.config.temperature.at(t_s) - REFERENCE_C;
        // Thermal factors can exceed 1 (hot devices conduct more), so the
        // composition goes through the wide-domain factor path rather
        // than `aged`; the tiny clamp keeps a pathological tempco draw
        // from producing a non-positive factor.
        let f_pos = d_pos.hadamard(&self.tc_pos.map(|tc| (1.0 + tc * d_t).max(1e-12)));
        let f_neg = d_neg.hadamard(&self.tc_neg.map(|tc| (1.0 + tc * d_t).max(1e-12)));
        vortex_obs::counter!("lifetime.models_materialized").incr();
        vortex_obs::gauge!("lifetime.virtual_age_s").set(t_s - self.last_program_s);
        self.base
            .with_conductance_factors(&f_pos, &f_neg)
            .map_err(Into::into)
    }

    /// Reprograms the chip at virtual time `t_s`: the fresh target
    /// conductances are rewritten through the wear model's widened
    /// spread (`g·exp(σ(n)·z)`, positive crossbar drawn first,
    /// row-major, from this epoch's wear stream), the drift clock
    /// restarts with a fresh ν population, and the reprogram counter
    /// advances. The canary set rides along unchanged — golden answers
    /// come from the fresh compile, which is the point of reprogramming
    /// back toward it.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] for a non-finite `t_s`
    /// or one before the last reprogram (virtual time is monotone).
    pub fn reprogram(&mut self, t_s: f64) -> Result<()> {
        if !t_s.is_finite() || t_s < self.last_program_s {
            return Err(ServeError::InvalidParameter {
                name: "t_s",
                requirement: "must be finite and at or after the last reprogram",
            });
        }
        self.reprograms += 1;
        let epoch = self
            .config
            .seed
            .wrapping_add(self.reprograms.wrapping_mul(EPOCH_MIX));
        let sigma = self.config.wear.sigma_at(self.reprograms);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(epoch ^ WEAR_STREAM);
        let (rows, cols) = (self.fresh.rows(), self.fresh.classes());
        let mut wear = |_: usize, _: usize| (sigma * standard_normal(&mut rng)).exp();
        let w_pos = Matrix::from_fn(rows, cols, &mut wear);
        let w_neg = Matrix::from_fn(rows, cols, &mut wear);
        self.base = self.fresh.with_conductance_factors(&w_pos, &w_neg)?;
        self.drift = DriftProcess::new(self.config.retention, epoch);
        self.last_program_s = t_s;
        vortex_obs::counter!("lifetime.reprograms").incr();
        vortex_obs::gauge!("lifetime.wear_sigma").set(sigma);
        Ok(())
    }
}

/// What a policy sees at each probe instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyObservation {
    /// Virtual time of the probe.
    pub t_s: f64,
    /// Canary accuracy of the currently serving model.
    pub canary_accuracy: f64,
    /// The operating floor the deployment promises.
    pub accuracy_floor: f64,
    /// Virtual seconds since the chip was last (re)programmed.
    pub since_reprogram_s: f64,
    /// Completed reprogram cycles.
    pub reprograms: u64,
}

/// When to recalibrate: the decision half of the healing loop, decoupled
/// from the mechanism (drain → recompile → verify → swap) so policies
/// can be compared on equal footing. Implementations may carry state
/// (the predictive policy keeps a canary-accuracy history); the harness
/// calls [`RecalibrationPolicy::notify_reprogrammed`] after acting on a
/// `true` decision.
pub trait RecalibrationPolicy: Send {
    /// Short name for tables and logs.
    fn name(&self) -> &'static str;
    /// Whether to recalibrate now.
    fn decide(&mut self, obs: &PolicyObservation) -> bool;
    /// Called after a recalibration this policy requested completes.
    fn notify_reprogrammed(&mut self, _t_s: f64) {}
}

/// Today's `HealthMonitor` behavior as a policy: recalibrate exactly
/// when canary accuracy has already breached the floor.
#[derive(Debug, Clone, Copy, Default)]
pub struct CanaryTriggered;

impl RecalibrationPolicy for CanaryTriggered {
    fn name(&self) -> &'static str {
        "canary-triggered"
    }

    fn decide(&mut self, obs: &PolicyObservation) -> bool {
        obs.canary_accuracy < obs.accuracy_floor
    }
}

/// Recalibrate on a fixed virtual-time cadence, blind to accuracy.
#[derive(Debug, Clone, Copy)]
pub struct Periodic {
    /// Virtual seconds between recalibrations.
    pub interval_s: f64,
}

impl Periodic {
    /// A periodic policy on the given cadence.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] for a non-positive or
    /// non-finite interval.
    pub fn new(interval_s: f64) -> Result<Self> {
        if !(interval_s.is_finite() && interval_s > 0.0) {
            return Err(ServeError::InvalidParameter {
                name: "interval_s",
                requirement: "must be finite and positive",
            });
        }
        Ok(Self { interval_s })
    }
}

impl RecalibrationPolicy for Periodic {
    fn name(&self) -> &'static str {
        "periodic"
    }

    fn decide(&mut self, obs: &PolicyObservation) -> bool {
        obs.since_reprogram_s >= self.interval_s
    }
}

/// Extrapolate the canary-accuracy slope and recalibrate *before* the
/// floor is breached: a least-squares line through the last `window`
/// observations of the current epoch, triggered when the line predicts
/// a sub-floor accuracy within `lead_s` virtual seconds (or the floor
/// is already gone).
#[derive(Debug, Clone)]
pub struct DriftPredictive {
    window: usize,
    lead_s: f64,
    history: Vec<(f64, f64)>,
}

impl DriftPredictive {
    /// A predictive policy fitting the last `window` probes and looking
    /// `lead_s` virtual seconds ahead.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParameter`] for a window below 2 or
    /// a negative/non-finite lead.
    pub fn new(window: usize, lead_s: f64) -> Result<Self> {
        if window < 2 {
            return Err(ServeError::InvalidParameter {
                name: "window",
                requirement: "a slope needs at least 2 observations",
            });
        }
        if !(lead_s.is_finite() && lead_s >= 0.0) {
            return Err(ServeError::InvalidParameter {
                name: "lead_s",
                requirement: "must be finite and non-negative",
            });
        }
        Ok(Self {
            window,
            lead_s,
            history: Vec::new(),
        })
    }

    /// Least-squares slope of the buffered (t, accuracy) observations,
    /// `None` below 2 points or on a degenerate (zero-variance) abscissa.
    fn slope(&self) -> Option<f64> {
        let n = self.history.len();
        if n < 2 {
            return None;
        }
        let mean_t = self.history.iter().map(|(t, _)| t).sum::<f64>() / n as f64;
        let mean_a = self.history.iter().map(|(_, a)| a).sum::<f64>() / n as f64;
        let (mut num, mut den) = (0.0, 0.0);
        for &(t, a) in &self.history {
            num += (t - mean_t) * (a - mean_a);
            den += (t - mean_t) * (t - mean_t);
        }
        (den > 0.0).then(|| num / den)
    }
}

impl RecalibrationPolicy for DriftPredictive {
    fn name(&self) -> &'static str {
        "drift-predictive"
    }

    fn decide(&mut self, obs: &PolicyObservation) -> bool {
        self.history.push((obs.t_s, obs.canary_accuracy));
        if self.history.len() > self.window {
            self.history.remove(0);
        }
        if obs.canary_accuracy < obs.accuracy_floor {
            return true;
        }
        match self.slope() {
            Some(slope) if slope < 0.0 => {
                obs.canary_accuracy + slope * self.lead_s < obs.accuracy_floor
            }
            _ => false,
        }
    }

    fn notify_reprogrammed(&mut self, _t_s: f64) {
        // The slope of the previous epoch says nothing about the freshly
        // programmed one.
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn retention() -> RetentionModel {
        RetentionModel::new(0.05, 0.02, 1.0).unwrap()
    }

    #[test]
    fn parameter_validation() {
        assert!(WearModel::new(-0.1, 1e4, 1.0).is_err());
        assert!(WearModel::new(0.1, 0.0, 1.0).is_err());
        assert!(WearModel::new(0.1, 1e4, 0.0).is_err());
        assert!(TemperatureProfile::Constant(f64::NAN).validate().is_err());
        assert!(TemperatureProfile::Diurnal {
            base_c: 40.0,
            peak_c: 20.0,
            period_s: 86_400.0
        }
        .validate()
        .is_err());
        assert!(TemperatureProfile::Diurnal {
            base_c: 20.0,
            peak_c: 40.0,
            period_s: 0.0
        }
        .validate()
        .is_err());
        assert!(ThermalModel::new(f64::INFINITY, 0.0, 0.0).is_err());
        assert!(ThermalModel::new(0.001, -0.1, 0.0).is_err());
        assert!(ThermalModel::new(0.001, 0.0, -0.1).is_err());
        assert!(Periodic::new(0.0).is_err());
        assert!(DriftPredictive::new(1, 10.0).is_err());
        assert!(DriftPredictive::new(4, -1.0).is_err());
        let cfg = LifetimeConfig::new(1, retention()).unwrap();
        assert!(cfg.with_reprogram_window(f64::NAN).is_err());
        let cfg = LifetimeConfig::new(1, retention()).unwrap();
        assert!(cfg
            .with_temperature(TemperatureProfile::Constant(f64::NAN))
            .is_err());
    }

    #[test]
    fn wear_widens_with_reprogram_count() {
        let wear = WearModel::new(0.05, 100.0, 1.0).unwrap();
        assert!((wear.sigma_at(1) - 0.0505).abs() < 1e-12);
        assert!(
            (wear.sigma_at(100) - 0.10).abs() < 1e-12,
            "doubled at rating"
        );
        let mut last = 0.0;
        for n in 1..300 {
            let s = wear.sigma_at(n);
            assert!(s >= last, "wear must be monotone");
            last = s;
        }
    }

    #[test]
    fn temperature_profile_cycles() {
        let day = TemperatureProfile::Diurnal {
            base_c: 20.0,
            peak_c: 40.0,
            period_s: 86_400.0,
        };
        day.validate().unwrap();
        assert!((day.at(0.0) - 20.0).abs() < 1e-9);
        assert!(
            (day.at(43_200.0) - 40.0).abs() < 1e-9,
            "peak at half period"
        );
        assert!((day.at(86_400.0) - 20.0).abs() < 1e-9, "periodic");
        let c = TemperatureProfile::Constant(55.0);
        assert_eq!(c.at(0.0), 55.0);
        assert_eq!(c.at(1e9), 55.0);
    }

    #[test]
    fn arrhenius_accelerates_above_reference() {
        let thermal = ThermalModel::new(0.0, 0.0, 0.05).unwrap();
        assert!((thermal.accel(REFERENCE_C) - 1.0).abs() < 1e-12);
        assert!(thermal.accel(45.0) > 1.0);
        assert!(thermal.accel(5.0) < 1.0);
        // No coupling ⇒ no acceleration anywhere.
        let off = ThermalModel::new(0.001, 0.0, 0.0).unwrap();
        assert_eq!(off.accel(80.0), 1.0);
    }

    #[test]
    fn canary_policy_mirrors_the_monitor() {
        let mut p = CanaryTriggered;
        let mut obs = PolicyObservation {
            t_s: 100.0,
            canary_accuracy: 0.95,
            accuracy_floor: 0.9,
            since_reprogram_s: 100.0,
            reprograms: 0,
        };
        assert!(!p.decide(&obs));
        obs.canary_accuracy = 0.85;
        assert!(p.decide(&obs));
    }

    #[test]
    fn periodic_policy_fires_on_cadence() {
        let mut p = Periodic::new(1000.0).unwrap();
        let mut obs = PolicyObservation {
            t_s: 500.0,
            canary_accuracy: 1.0,
            accuracy_floor: 0.9,
            since_reprogram_s: 500.0,
            reprograms: 0,
        };
        assert!(!p.decide(&obs), "healthy and young: no recalibration");
        obs.since_reprogram_s = 1000.0;
        assert!(p.decide(&obs), "cadence reached, accuracy ignored");
    }

    #[test]
    fn predictive_policy_acts_before_the_breach() {
        let mut p = DriftPredictive::new(4, 200.0).unwrap();
        let floor = 0.9;
        // Accuracy sliding 0.01 per 100 s: at 0.93 the 200 s lookahead
        // predicts 0.91 (hold), at 0.915 it predicts 0.895 (trigger) —
        // while the floor itself is still intact.
        let mut fired_at = None;
        for (k, acc) in [1.0, 0.99, 0.97, 0.95, 0.93, 0.915, 0.905]
            .iter()
            .enumerate()
        {
            let obs = PolicyObservation {
                t_s: 100.0 * k as f64,
                canary_accuracy: *acc,
                accuracy_floor: floor,
                since_reprogram_s: 100.0 * k as f64,
                reprograms: 0,
            };
            if p.decide(&obs) {
                fired_at = Some(*acc);
                break;
            }
        }
        let acc = fired_at.expect("the slope must eventually trigger");
        assert!(acc >= floor, "fired before the floor was breached: {acc}");
        // An already-breached floor triggers regardless of slope.
        let mut fresh = DriftPredictive::new(4, 0.0).unwrap();
        assert!(fresh.decide(&PolicyObservation {
            t_s: 0.0,
            canary_accuracy: 0.5,
            accuracy_floor: floor,
            since_reprogram_s: 0.0,
            reprograms: 0,
        }));
        // Reprogramming clears the epoch history.
        fresh.notify_reprogrammed(0.0);
        assert!(fresh.history.is_empty());
    }

    #[test]
    fn stable_accuracy_never_triggers_the_predictor() {
        let mut p = DriftPredictive::new(4, 1e6).unwrap();
        for k in 0..50 {
            let obs = PolicyObservation {
                t_s: 100.0 * k as f64,
                canary_accuracy: 0.95,
                accuracy_floor: 0.9,
                since_reprogram_s: 100.0 * k as f64,
                reprograms: 0,
            };
            assert!(!p.decide(&obs), "flat history must not trigger");
        }
    }
}
