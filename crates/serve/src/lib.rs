//! # vortex-serve — batched inference serving for compiled crossbar models
//!
//! The layer between callers and a frozen [`CompiledModel`]: a
//! multi-threaded [`Scheduler`] that owns the model replicas, admits
//! requests through a bounded queue with explicit backpressure, coalesces
//! them into micro-batches, enforces per-request deadlines, and — under
//! sustained overload — degrades new admissions from `Exact` to
//! `Calibrated` read fidelity via a watermark [`Hysteresis`] ladder,
//! recovering automatically when the queue drains.
//!
//! ```no_run
//! use std::sync::Arc;
//! use vortex_serve::prelude::*;
//!
//! # fn model() -> Arc<CompiledModel> { unimplemented!() }
//! let exact: Arc<CompiledModel> = model();
//! let calibrated: Arc<CompiledModel> = model();
//! let config = SchedulerConfig::new(Parallelism::Fixed(4))
//!     .with_queue_capacity(256)
//!     .with_watermarks(128, 32);
//! let scheduler = Scheduler::new(exact, Some(calibrated), config)?;
//! match scheduler.try_submit(vec![0.0; 49], None) {
//!     Ok(ticket) => println!("class = {}", ticket.wait()?.class),
//!     Err(ServeError::QueueFull { .. }) => { /* shed load */ }
//!     Err(e) => return Err(e),
//! }
//! # Ok::<(), vortex_serve::ServeError>(())
//! ```
//!
//! Serving is also *self-healing*: worker panics are caught, their
//! batches requeued, and the crashed slot respawned by a supervisor
//! thread ([`scheduler`]); a [`health::HealthMonitor`] replays canary
//! probes against the serving replica and hot-swaps in a freshly
//! recompiled model when drift drags canary accuracy below a floor; and
//! the whole fault surface is reproducible on demand through seeded
//! [`chaos::ChaosPlan`] injection. No accepted request is ever silently
//! lost — every ticket resolves to a prediction or a typed error.
//!
//! The crate is zero-dependency beyond the workspace: queueing is
//! `Mutex<VecDeque>` + `Condvar`, responses ride `std::sync::mpsc`, and
//! every admit/reject/downgrade/batch/panic/swap is recorded through
//! `vortex-obs`.

pub mod chaos;
pub mod degradation;
pub mod health;
pub mod lifetime;
pub mod retry;
pub mod scheduler;

pub use chaos::{ChaosConfig, ChaosPlan};
pub use degradation::{Hysteresis, Transition};
pub use health::{HealthConfig, HealthHandle, HealthMonitor, ProbeOutcome, Recompile};
pub use lifetime::{
    CanaryTriggered, DeviceTimeline, DriftPredictive, LifetimeConfig, Periodic, PolicyObservation,
    RecalibrationPolicy, TemperatureProfile, ThermalModel, WearModel,
};
pub use retry::RetryPolicy;
pub use scheduler::{Prediction, Scheduler, SchedulerConfig, Ticket};

// Re-export what callers need to configure and interpret the scheduler.
pub use vortex_nn::executor::Parallelism;
pub use vortex_runtime::{CanarySet, CellFault, CompiledModel, Fidelity, RuntimeError};

/// Canonical imports for serving: `use vortex_serve::prelude::*;`.
pub mod prelude {
    pub use crate::{
        ChaosConfig, ChaosPlan, CompiledModel, DeviceTimeline, Fidelity, HealthConfig,
        HealthMonitor, LifetimeConfig, Parallelism, Prediction, ProbeOutcome, RecalibrationPolicy,
        RetryPolicy, Scheduler, SchedulerConfig, ServeError, Ticket,
    };
}

/// Convenient result alias for serving operations.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Errors produced by the serving layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The bounded admission queue is at capacity — backpressure. Retry
    /// later or shed the request; the scheduler never blocks a producer.
    QueueFull {
        /// Configured queue capacity that was hit.
        capacity: usize,
    },
    /// The request's deadline passed at `stage` (`"submit"` before
    /// admission, `"queue"` while waiting for dispatch).
    Timeout {
        /// Where the deadline was detected.
        stage: &'static str,
    },
    /// The scheduler is shutting down (or was torn down before
    /// answering).
    ShuttingDown,
    /// The request's dispatching worker panicked twice: once before the
    /// request was requeued, and again on the retry. The request is
    /// answered rather than requeued a third time.
    WorkerCrashed,
    /// The underlying compiled-model read failed.
    Inference(RuntimeError),
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The violated requirement.
        requirement: &'static str,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            Self::Timeout { stage } => write!(f, "deadline exceeded at {stage}"),
            Self::ShuttingDown => write!(f, "scheduler is shutting down"),
            Self::WorkerCrashed => {
                write!(f, "worker crashed twice while dispatching this request")
            }
            Self::Inference(e) => write!(f, "inference failed: {e}"),
            Self::InvalidParameter { name, requirement } => {
                write!(f, "invalid parameter `{name}`: {requirement}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Inference(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RuntimeError> for ServeError {
    fn from(e: RuntimeError) -> Self {
        Self::Inference(e)
    }
}
