//! The fidelity degradation ladder: watermark hysteresis over queue depth.
//!
//! Under sustained overload an `Exact`-fidelity read path (one IR-drop
//! nodal solve per sample) cannot keep up with admission. Rather than
//! letting the queue grow until every request times out, the scheduler
//! *degrades*: once queue depth reaches the **high-water mark**, newly
//! admitted requests are served by the calibrated fallback model — the
//! paper's close-loop degradation analysis in reverse, trading per-sample
//! solver fidelity for sustained throughput. The scheduler recovers
//! automatically once depth falls back to the **low-water mark**.
//!
//! Two marks instead of one give the ladder hysteresis: between the low
//! and the high mark the current state is kept, so a queue oscillating
//! around a single threshold cannot flap between fidelities on every
//! request. [`Hysteresis`] is a pure state machine over observed depths —
//! no clocks, no atomics — so the scheduler can drive it under its queue
//! lock and tests can drive it directly.

/// What a depth observation did to the degradation state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// The state did not change.
    None,
    /// Depth reached the high-water mark: degradation engaged.
    Entered,
    /// Depth fell to the low-water mark: degradation released.
    Exited,
}

/// Watermark hysteresis over queue depth.
///
/// Degradation engages when an observed depth reaches `high_water` and
/// releases when one falls to `low_water`; depths strictly between the
/// marks keep the current state. `high_water == usize::MAX` can never be
/// reached by a bounded queue, so it disables the ladder outright.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hysteresis {
    high_water: usize,
    low_water: usize,
    degraded: bool,
}

impl Hysteresis {
    /// A ladder entering at `high_water` and exiting at `low_water`.
    ///
    /// Returns `None` when `low_water > high_water` (the band would be
    /// inverted) or `high_water == 0` (the queue would be born degraded).
    pub fn new(high_water: usize, low_water: usize) -> Option<Self> {
        if low_water > high_water || high_water == 0 {
            return None;
        }
        Some(Self {
            high_water,
            low_water,
            degraded: false,
        })
    }

    /// A ladder that never engages.
    pub fn disabled() -> Self {
        Self {
            high_water: usize::MAX,
            low_water: 0,
            degraded: false,
        }
    }

    /// The depth at which degradation engages.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// The depth at which degradation releases.
    pub fn low_water(&self) -> usize {
        self.low_water
    }

    /// Whether new admissions are currently degraded.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Feeds one observed queue depth through the state machine.
    pub fn observe(&mut self, depth: usize) -> Transition {
        if !self.degraded && depth >= self.high_water {
            self.degraded = true;
            Transition::Entered
        } else if self.degraded && depth <= self.low_water {
            self.degraded = false;
            Transition::Exited
        } else {
            Transition::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enters_at_high_water_and_exits_at_low_water() {
        let mut h = Hysteresis::new(8, 2).unwrap();
        assert!(!h.is_degraded());
        assert_eq!(h.observe(7), Transition::None);
        assert_eq!(h.observe(8), Transition::Entered);
        assert!(h.is_degraded());
        // Still above the low mark: stays degraded.
        assert_eq!(h.observe(3), Transition::None);
        assert!(h.is_degraded());
        assert_eq!(h.observe(2), Transition::Exited);
        assert!(!h.is_degraded());
    }

    #[test]
    fn no_flapping_between_the_marks() {
        let mut h = Hysteresis::new(8, 2).unwrap();
        let _ = h.observe(8);
        // A queue oscillating strictly between the marks never transitions.
        for depth in [5, 7, 3, 6, 4, 7] {
            assert_eq!(h.observe(depth), Transition::None);
            assert!(h.is_degraded());
        }
        let _ = h.observe(1);
        for depth in [5, 7, 3, 6, 4, 7] {
            assert_eq!(h.observe(depth), Transition::None);
            assert!(!h.is_degraded());
        }
    }

    #[test]
    fn equal_marks_behave_as_a_single_threshold() {
        let mut h = Hysteresis::new(4, 4).unwrap();
        assert_eq!(h.observe(4), Transition::Entered);
        assert_eq!(h.observe(4), Transition::Exited);
    }

    #[test]
    fn invalid_bands_are_rejected() {
        assert!(Hysteresis::new(2, 8).is_none(), "inverted band");
        assert!(Hysteresis::new(0, 0).is_none(), "born degraded");
        assert!(Hysteresis::new(1, 0).is_some());
    }

    #[test]
    fn disabled_ladder_never_engages() {
        let mut h = Hysteresis::disabled();
        for depth in [0, 1, 1 << 20, usize::MAX - 1] {
            assert_eq!(h.observe(depth), Transition::None);
        }
        assert!(!h.is_degraded());
    }
}
