//! Deterministic fault injection: one seed, one reproducible disaster.
//!
//! A [`ChaosPlan`] is a frozen schedule of faults drawn once from a
//! seeded generator — *which* batches panic their worker, *which*
//! batches run slow, *which* devices get stuck, how far the conductances
//! have drifted, and which artifact bytes flip in transit. The plan is a
//! pure value: the scheduler consults it on the dispatch path
//! ([`ChaosPlan::should_panic`] / [`ChaosPlan::slow_down`]), while the
//! model-level faults ([`ChaosPlan::cell_faults`], [`ChaosPlan::drift`],
//! [`ChaosPlan::corrupt_artifact`]) are applied by the test or bench
//! harness before serving starts.
//!
//! Because every draw comes from `Xoshiro256PlusPlus` seeded with
//! [`ChaosConfig::seed`], the same configuration always produces the
//! same plan, bit for bit — a chaos run is as assertable as a unit test.
//!
//! ```
//! use vortex_serve::chaos::{ChaosConfig, ChaosPlan};
//!
//! let config = ChaosConfig::new(42, 8, 4).with_worker_panics(1);
//! let plan = ChaosPlan::generate(&config);
//! assert_eq!(plan, ChaosPlan::generate(&config)); // same seed, same plan
//! assert_eq!(plan.panic_batches().len(), 1);
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

use vortex_device::drift::{DriftProcess, RetentionModel};
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_runtime::CellFault;

/// What a chaos plan injects into a serving stack.
///
/// All fault counts default to zero: `ChaosConfig::new(seed, rows,
/// cols)` is a no-op plan until faults are opted in through the builder
/// methods.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Master seed: every fault draw derives from it.
    pub seed: u64,
    /// Crossbar rows, for placing stuck-at devices.
    pub rows: usize,
    /// Crossbar columns, for placing stuck-at devices.
    pub cols: usize,
    /// Batch-sequence window `[0, horizon)` panics and slowdowns are
    /// drawn from.
    pub horizon_batches: u64,
    /// Number of batches whose dispatching worker panics.
    pub worker_panics: usize,
    /// Number of batches dispatched with extra latency.
    pub slow_batches: usize,
    /// The extra latency a slow batch suffers.
    pub slow_delay: Duration,
    /// Number of devices pinned to [`Self::stuck_conductance`].
    pub stuck_cells: usize,
    /// Conductance stuck devices are pinned at (S); 0.0 is stuck-off.
    pub stuck_conductance: f64,
    /// Retention-drift age applied to the model (seconds; 0 disables).
    pub drift_t_s: f64,
    /// Number of artifact bits flipped by
    /// [`ChaosPlan::corrupt_artifact`].
    pub bit_flips: usize,
    /// Number of training mini-epochs whose job is killed mid-flight
    /// (consulted by the `vortex-train` supervisor).
    pub train_kills: usize,
    /// Mini-epoch window `[0, horizon)` training kills are drawn from.
    pub train_horizon_epochs: u64,
    /// Number of checkpoint bits flipped by
    /// [`ChaosPlan::corrupt_checkpoint`].
    pub checkpoint_bit_flips: usize,
}

impl ChaosConfig {
    /// A fault-free configuration for a `rows` × `cols` crossbar; enable
    /// faults with the builder methods.
    pub fn new(seed: u64, rows: usize, cols: usize) -> Self {
        Self {
            seed,
            rows,
            cols,
            horizon_batches: 64,
            worker_panics: 0,
            slow_batches: 0,
            slow_delay: Duration::from_millis(1),
            stuck_cells: 0,
            stuck_conductance: 0.0,
            drift_t_s: 0.0,
            bit_flips: 0,
            train_kills: 0,
            train_horizon_epochs: 32,
            checkpoint_bit_flips: 0,
        }
    }

    /// This configuration drawing faults from the first `n` batches.
    pub fn with_horizon(mut self, n: u64) -> Self {
        self.horizon_batches = n;
        self
    }

    /// This configuration panicking `n` batch dispatches.
    pub fn with_worker_panics(mut self, n: usize) -> Self {
        self.worker_panics = n;
        self
    }

    /// This configuration slowing `n` batch dispatches by `delay` each.
    pub fn with_slow_batches(mut self, n: usize, delay: Duration) -> Self {
        self.slow_batches = n;
        self.slow_delay = delay;
        self
    }

    /// This configuration pinning `n` devices at conductance `g`.
    pub fn with_stuck_cells(mut self, n: usize, g: f64) -> Self {
        self.stuck_cells = n;
        self.stuck_conductance = g;
        self
    }

    /// This configuration aging the model by `t_s` seconds of drift.
    pub fn with_drift(mut self, t_s: f64) -> Self {
        self.drift_t_s = t_s;
        self
    }

    /// This configuration flipping `n` artifact bits.
    pub fn with_bit_flips(mut self, n: usize) -> Self {
        self.bit_flips = n;
        self
    }

    /// This configuration killing `n` training mini-epochs drawn from the
    /// first `horizon` epochs of a job.
    pub fn with_train_kills(mut self, n: usize, horizon: u64) -> Self {
        self.train_kills = n;
        self.train_horizon_epochs = horizon;
        self
    }

    /// This configuration flipping `n` checkpoint bits.
    pub fn with_checkpoint_bit_flips(mut self, n: usize) -> Self {
        self.checkpoint_bit_flips = n;
        self
    }
}

/// A frozen fault schedule. See the module docs; build one with
/// [`ChaosPlan::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    panics: BTreeSet<u64>,
    slow: BTreeMap<u64, Duration>,
    faults: Vec<CellFault>,
    drift_t_s: f64,
    drift_seed: u64,
    bit_flips: Vec<u64>,
    train_kills: BTreeSet<u64>,
    checkpoint_flips: Vec<u64>,
}

impl ChaosPlan {
    /// Draws a complete fault schedule from the configuration. Pure:
    /// equal configurations yield equal plans.
    pub fn generate(config: &ChaosConfig) -> Self {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(config.seed);
        let horizon = config.horizon_batches.max(1);
        let mut panics = BTreeSet::new();
        while panics.len() < config.worker_panics.min(horizon as usize) {
            panics.insert(rng.next_u64() % horizon);
        }
        let mut slow = BTreeMap::new();
        while slow.len() < config.slow_batches.min(horizon as usize) {
            let seq = rng.next_u64() % horizon;
            // Panicking batches stay panicking; slowdowns land elsewhere.
            if !panics.contains(&seq) {
                slow.insert(seq, config.slow_delay);
            }
        }
        let cells = config.rows * config.cols;
        let mut taken = BTreeSet::new();
        let mut faults = Vec::new();
        while faults.len() < config.stuck_cells.min(cells.saturating_mul(2)) {
            let flat = (rng.next_u64() % (cells.max(1) as u64 * 2)) as usize;
            if cells == 0 || !taken.insert(flat) {
                continue;
            }
            faults.push(CellFault {
                row: (flat % cells) / config.cols,
                col: (flat % cells) % config.cols,
                negative: flat >= cells,
                conductance: config.stuck_conductance,
            });
        }
        let drift_seed = rng.next_u64();
        let bit_flips = (0..config.bit_flips).map(|_| rng.next_u64()).collect();
        // Training faults are drawn strictly *after* every pre-existing
        // draw: a configuration without them consumes exactly the same
        // stream as older builds, so existing seeds keep their plans bit
        // for bit.
        let train_horizon = config.train_horizon_epochs.max(1);
        let mut train_kills = BTreeSet::new();
        while train_kills.len() < config.train_kills.min(train_horizon as usize) {
            train_kills.insert(rng.next_u64() % train_horizon);
        }
        let checkpoint_flips = (0..config.checkpoint_bit_flips)
            .map(|_| rng.next_u64())
            .collect();
        Self {
            panics,
            slow,
            faults,
            drift_t_s: config.drift_t_s,
            drift_seed,
            bit_flips,
            train_kills,
            checkpoint_flips,
        }
    }

    /// Whether the worker dispatching batch `seq` must panic.
    pub fn should_panic(&self, seq: u64) -> bool {
        self.panics.contains(&seq)
    }

    /// Extra latency batch `seq` suffers before dispatch, if any.
    pub fn slow_down(&self, seq: u64) -> Option<Duration> {
        self.slow.get(&seq).copied()
    }

    /// The batch sequence numbers scheduled to panic, in order.
    pub fn panic_batches(&self) -> Vec<u64> {
        self.panics.iter().copied().collect()
    }

    /// The stuck-at device faults to apply with
    /// [`vortex_runtime::CompiledModel::with_cell_faults`].
    pub fn cell_faults(&self) -> &[CellFault] {
        &self.faults
    }

    /// The drift age and ν-sampling seed for
    /// [`vortex_runtime::CompiledModel::age_with`], or `None` when the
    /// plan carries no aging.
    pub fn drift(&self) -> Option<(f64, u64)> {
        (self.drift_t_s > 0.0).then_some((self.drift_t_s, self.drift_seed))
    }

    /// [`Self::drift`] expressed through the workspace's single drift
    /// implementation: the age to evaluate at and the seeded
    /// [`DriftProcess`] to evaluate (apply with
    /// [`vortex_runtime::CompiledModel::age_with_process`]). Chaos aging
    /// and the lifetime timeline (`crate::lifetime`) thereby share one
    /// definition of "drift at time t", bit for bit.
    pub fn drift_process(&self, retention: RetentionModel) -> Option<(f64, DriftProcess)> {
        self.drift()
            .map(|(t_s, seed)| (t_s, DriftProcess::new(retention, seed)))
    }

    /// Flips the planned bits of an artifact byte stream in place
    /// (positions wrap modulo the stream length). Returns how many bits
    /// flipped; zero for an empty stream or a flip-free plan.
    pub fn corrupt_artifact(&self, bytes: &mut [u8]) -> usize {
        Self::flip_bits(&self.bit_flips, bytes)
    }

    /// Whether the training job must be killed when it first reaches
    /// mini-epoch `epoch`.
    ///
    /// The plan only says *where* the kills land; the supervisor is
    /// responsible for firing each kill once (a kill that re-fired on
    /// every resume attempt would pin the job at that epoch forever).
    pub fn should_kill_training(&self, epoch: u64) -> bool {
        self.train_kills.contains(&epoch)
    }

    /// The mini-epochs scheduled to kill the training job, in order.
    pub fn train_kill_epochs(&self) -> Vec<u64> {
        self.train_kills.iter().copied().collect()
    }

    /// Flips the planned checkpoint bits of a byte stream in place, with
    /// the same wrapping semantics as [`Self::corrupt_artifact`]. The
    /// draws are independent of the artifact flips, so a plan can corrupt
    /// a checkpoint without also corrupting the served model.
    pub fn corrupt_checkpoint(&self, bytes: &mut [u8]) -> usize {
        Self::flip_bits(&self.checkpoint_flips, bytes)
    }

    fn flip_bits(flips: &[u64], bytes: &mut [u8]) -> usize {
        if bytes.is_empty() {
            return 0;
        }
        let n_bits = bytes.len() as u64 * 8;
        for &raw in flips {
            let bit = raw % n_bits;
            bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
        }
        flips.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ChaosConfig {
        ChaosConfig::new(7, 6, 3)
            .with_horizon(16)
            .with_worker_panics(2)
            .with_slow_batches(3, Duration::from_millis(2))
            .with_stuck_cells(4, 0.0)
            .with_drift(1e6)
            .with_bit_flips(2)
    }

    #[test]
    fn same_seed_same_plan() {
        assert_eq!(
            ChaosPlan::generate(&config()),
            ChaosPlan::generate(&config())
        );
        let other = ChaosConfig {
            seed: 8,
            ..config()
        };
        assert_ne!(ChaosPlan::generate(&config()), ChaosPlan::generate(&other));
    }

    #[test]
    fn plan_honors_requested_counts() {
        let plan = ChaosPlan::generate(&config());
        assert_eq!(plan.panic_batches().len(), 2);
        assert_eq!(plan.cell_faults().len(), 4);
        assert!(plan.drift().is_some());
        let slow: Vec<u64> = (0..16).filter(|&s| plan.slow_down(s).is_some()).collect();
        assert_eq!(slow.len(), 3);
        // Panics and slowdowns never share a batch.
        for seq in plan.panic_batches() {
            assert!(plan.slow_down(seq).is_none());
        }
    }

    #[test]
    fn stuck_cells_are_distinct_and_in_range() {
        let plan = ChaosPlan::generate(&config());
        let mut seen = BTreeSet::new();
        for f in plan.cell_faults() {
            assert!(f.row < 6 && f.col < 3);
            assert!(seen.insert((f.row, f.col, f.negative)), "duplicate cell");
        }
    }

    #[test]
    fn corrupt_artifact_flips_and_wraps() {
        let plan = ChaosPlan::generate(&config());
        let mut bytes = vec![0u8; 32];
        assert_eq!(plan.corrupt_artifact(&mut bytes), 2);
        let set: u32 = bytes.iter().map(|b| b.count_ones()).sum();
        assert!(
            (1..=2).contains(&set),
            "expected 1-2 flipped bits, got {set}"
        );
        assert_eq!(plan.corrupt_artifact(&mut []), 0);
    }

    #[test]
    fn training_faults_do_not_disturb_existing_draws() {
        // The training-fault draws are appended after every pre-existing
        // draw, so turning them on must leave the rest of the plan
        // untouched — existing seeds keep their disasters.
        let base = ChaosPlan::generate(&config());
        let extended = ChaosPlan::generate(
            &config()
                .with_train_kills(3, 16)
                .with_checkpoint_bit_flips(2),
        );
        assert_eq!(base.panic_batches(), extended.panic_batches());
        assert_eq!(base.cell_faults(), extended.cell_faults());
        assert_eq!(base.drift(), extended.drift());
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        base.corrupt_artifact(&mut a);
        extended.corrupt_artifact(&mut b);
        assert_eq!(a, b);
        assert_eq!(extended.train_kill_epochs().len(), 3);
        assert!(extended.train_kill_epochs().iter().all(|&e| e < 16));
    }

    #[test]
    fn checkpoint_flips_are_independent_of_artifact_flips() {
        let plan = ChaosPlan::generate(&config().with_checkpoint_bit_flips(2));
        let mut artifact = vec![0u8; 32];
        let mut checkpoint = vec![0u8; 32];
        assert_eq!(plan.corrupt_artifact(&mut artifact), 2);
        assert_eq!(plan.corrupt_checkpoint(&mut checkpoint), 2);
        // Same count, different draws: the corrupted streams differ (the
        // probability of an accidental collision across 256 bit positions
        // is negligible and the seed is fixed).
        assert_ne!(artifact, checkpoint);
        assert_eq!(plan.corrupt_checkpoint(&mut []), 0);
    }

    #[test]
    fn train_kills_are_deterministic_and_bounded() {
        let cfg = ChaosConfig::new(13, 4, 4).with_train_kills(2, 8);
        let plan = ChaosPlan::generate(&cfg);
        assert_eq!(plan, ChaosPlan::generate(&cfg));
        assert_eq!(plan.train_kill_epochs().len(), 2);
        for e in plan.train_kill_epochs() {
            assert!(plan.should_kill_training(e));
        }
        assert!((8..64).all(|e| !plan.should_kill_training(e)));
    }

    #[test]
    fn empty_config_is_a_no_op_plan() {
        let plan = ChaosPlan::generate(&ChaosConfig::new(1, 4, 4));
        assert!(plan.panic_batches().is_empty());
        assert!(plan.cell_faults().is_empty());
        assert!(plan.drift().is_none());
        assert!((0..64).all(|s| !plan.should_panic(s) && plan.slow_down(s).is_none()));
        let mut bytes = vec![0xFFu8; 8];
        plan.corrupt_artifact(&mut bytes);
        assert!(bytes.iter().all(|&b| b == 0xFF));
    }
}
