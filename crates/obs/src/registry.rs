//! The thread-safe metric registry and its JSON snapshot exporter.
//!
//! One process-global [`Registry`] hands out metric handles by name.
//! Lookup takes a short mutex (name → handle map); the handles themselves
//! are lock-free, and instrumented call sites cache them in `OnceLock`
//! statics via the [`counter!`](crate::counter!)/[`gauge!`](crate::gauge!)/
//! [`histogram!`](crate::histogram!) macros, so the registry lock is paid
//! once per call site, not per observation.
//!
//! [`Snapshot`] is a point-in-time copy of everything registered, sorted
//! by name (the backing maps are `BTreeMap`s), so its
//! [`to_json`](Snapshot::to_json) output is byte-deterministic for a given
//! metric state.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::json::{json_f64, json_string};
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// A named collection of metrics.
///
/// Most code uses the process-global registry through the free functions
/// ([`counter`], [`gauge`], [`histogram`], [`snapshot`]); a local
/// `Registry` is useful in tests that need isolation.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        lookup(&self.counters, name)
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        lookup(&self.gauges, name)
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        lookup(&self.histograms, name)
    }

    /// A point-in-time copy of every registered metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("metric registry poisoned")
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("metric registry poisoned")
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("metric registry poisoned")
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

fn lookup<M: Clone + Default>(map: &Mutex<BTreeMap<String, M>>, name: &str) -> M {
    let mut map = map.lock().expect("metric registry poisoned");
    if let Some(existing) = map.get(name) {
        return existing.clone();
    }
    let created = M::default();
    map.insert(name.to_string(), created.clone());
    created
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry.
pub fn registry() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// The global counter registered under `name`, created on first use.
pub fn counter(name: &str) -> Counter {
    registry().counter(name)
}

/// The global gauge registered under `name`, created on first use.
pub fn gauge(name: &str) -> Gauge {
    registry().gauge(name)
}

/// The global histogram registered under `name`, created on first use.
pub fn histogram(name: &str) -> Histogram {
    registry().histogram(name)
}

/// A point-in-time copy of the global registry.
pub fn snapshot() -> Snapshot {
    registry().snapshot()
}

/// A point-in-time copy of a registry's metrics, sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram states by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// The snapshotted value of a counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The snapshotted value of a gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The snapshotted state of a histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Serializes the snapshot as a self-describing JSON object:
    ///
    /// ```json
    /// {"counters":{"name":n,…},
    ///  "gauges":{"name":v,…},
    ///  "histograms":{"name":{"count":n,"rejected":n,"sum":s,"mean":m,
    ///                        "buckets":[{"exp":e,"count":n},…]},…}}
    /// ```
    ///
    /// Histogram buckets are sparse `(exponent, count)` pairs — the bucket
    /// spans `[2^exp, 2^(exp+1))`. Strings are escaped by the same escaper
    /// `vortex_core::report` uses for experiment tables.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(name));
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(name));
            out.push(':');
            out.push_str(&json_f64(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(name));
            out.push_str(&format!(
                ":{{\"count\":{},\"rejected\":{},\"sum\":{},\"mean\":{},\"buckets\":[",
                h.count,
                h.rejected,
                json_f64(h.sum),
                json_f64(h.mean())
            ));
            for (j, (exp, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"exp\":{exp},\"count\":{n}}}"));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_shared_storage() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.counter("a").incr();
        assert_eq!(r.counter("a").get(), 3);
        r.gauge("g").set(1.5);
        assert_eq!(r.gauge("g").get(), 1.5);
        r.histogram("h").record(0.25);
        assert_eq!(r.histogram("h").count(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let r = Registry::new();
        r.counter("z.last").incr();
        r.counter("a.first").add(7);
        r.gauge("mid").set(2.0);
        let s = r.snapshot();
        assert_eq!(s.counters[0].0, "a.first");
        assert_eq!(s.counters[1].0, "z.last");
        assert_eq!(s.counter("a.first"), Some(7));
        assert_eq!(s.counter("missing"), None);
        assert_eq!(s.gauge("mid"), Some(2.0));
        assert!(s.histogram("none").is_none());
        assert!(!s.is_empty());
        assert!(Registry::new().snapshot().is_empty());
    }

    #[test]
    fn snapshot_json_is_well_formed_and_deterministic() {
        let r = Registry::new();
        r.counter("runs").add(3);
        r.gauge("rate \"x\"").set(0.5);
        r.histogram("lat").record(1.0);
        r.histogram("lat").record(f64::NAN);
        let json = r.snapshot().to_json();
        assert_eq!(json, r.snapshot().to_json(), "snapshot JSON must be stable");
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"runs\":3"));
        assert!(json.contains("\"rate \\\"x\\\"\":0.5"));
        assert!(json.contains("\"count\":1,\"rejected\":1,\"sum\":1.0,\"mean\":1.0"));
        assert!(json.contains("\"buckets\":[{\"exp\":0,\"count\":1}]"));
        assert!(json.ends_with("}}"));
    }

    #[test]
    fn global_registry_is_a_singleton() {
        counter("obs.registry.test").add(5);
        assert_eq!(
            snapshot().counter("obs.registry.test"),
            Some(counter("obs.registry.test").get())
        );
        assert!(std::ptr::eq(registry(), registry()));
    }
}
