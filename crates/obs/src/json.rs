//! Minimal JSON emission helpers shared across the workspace.
//!
//! The workspace builds without a registry (no `serde_json`), so every
//! JSON producer hand-assembles its output. This module holds the one
//! string escaper they all share — `vortex_core::report` re-exports
//! [`json_string`] so tables and metric snapshots escape identically —
//! plus a number formatter that never emits invalid JSON.

/// Escapes a string as a JSON string literal (with surrounding quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON value.
///
/// Finite values use Rust's shortest round-trip representation (always a
/// valid JSON number); NaN and infinities — which JSON cannot represent —
/// become `null` rather than corrupting the document.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_control_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_string("\u{1}\u{1f}"), r#""\u0001\u001f""#);
        assert_eq!(json_string("\r\t"), r#""\r\t""#);
    }

    #[test]
    fn passes_non_ascii_through_unescaped() {
        assert_eq!(json_string("σ=0.3 →"), "\"σ=0.3 →\"");
        assert_eq!(json_string("日本語"), "\"日本語\"");
    }

    #[test]
    fn numbers_round_trip_and_non_finite_becomes_null() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(0.0), "0.0");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NEG_INFINITY), "null");
        // Shortest representation still parses back exactly.
        let v = 0.1 + 0.2;
        assert_eq!(json_f64(v).parse::<f64>().unwrap(), v);
    }
}
