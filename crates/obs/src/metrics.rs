//! The metric primitives: atomic counters, gauges and log-scale
//! histograms.
//!
//! Every handle is a cheap [`Arc`] clone around atomic storage, so the
//! record path is lock-free: a counter bump is one `fetch_add`, a gauge
//! update one `store`, and a histogram observation two `fetch_add`s plus
//! a compare-exchange loop for the running sum. Handles obtained from the
//! registry can be cached in `OnceLock` statics (the `counter!`/`gauge!`/
//! `histogram!` macros do exactly that), after which instrumented code
//! never touches a lock again.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Smallest bucket exponent: bucket 0 collects every observation below
/// `2^(BUCKET_MIN_EXP + 1)`, including zero and subnormals. At seconds
/// granularity this is ~1.8 ps — far below a timer tick.
pub const BUCKET_MIN_EXP: i32 = -40;

/// Largest bucket exponent: the top bucket collects everything at or
/// above `2^BUCKET_MAX_EXP` (~97 days in seconds).
pub const BUCKET_MAX_EXP: i32 = 23;

/// Number of histogram buckets (one per power of two in range).
pub const BUCKETS: usize = (BUCKET_MAX_EXP - BUCKET_MIN_EXP + 1) as usize;

/// A monotonically increasing `u64` counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge (stored as bits in an atomic).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (`0.0` before the first `set` — the default bits are
    /// exactly `0.0_f64`).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    count: AtomicU64,
    rejected: AtomicU64,
    sum_bits: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for HistogramCore {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0_f64.to_bits()),
            buckets: [(); BUCKETS].map(|()| AtomicU64::new(0)),
        }
    }
}

/// A fixed-layout log-scale histogram of non-negative `f64` observations.
///
/// Bucket `k` covers `[2^(k + BUCKET_MIN_EXP), 2^(k + 1 + BUCKET_MIN_EXP))`;
/// the bottom and top buckets additionally absorb under- and overflow, so
/// zero, subnormal and astronomically large observations are all counted
/// (never dropped, never panicking). NaN, infinities and negative values
/// are **rejected**: they increment a separate rejection counter and leave
/// `count`/`sum`/buckets untouched, so a single corrupted measurement
/// cannot poison the aggregate.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation. Returns `false` (and counts a rejection)
    /// for NaN, infinite or negative values.
    pub fn record(&self, v: f64) -> bool {
        let Some(bucket) = bucket_index(v) else {
            self.0.rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        self.0.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        // Lock-free f64 accumulation: retry the bit-CAS until our add
        // lands. Contention here is rare (histograms are written from
        // worker fan-out joins, not inner loops).
        let mut current = self.0.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self.0.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }

    /// Number of accepted observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Number of rejected (NaN / infinite / negative) observations.
    pub fn rejected(&self) -> u64 {
        self.0.rejected.load(Ordering::Relaxed)
    }

    /// Sum of accepted observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// A point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(k, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((k as i32 + BUCKET_MIN_EXP, n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count(),
            rejected: self.rejected(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// The bucket index for an observation, or `None` if it must be rejected.
///
/// Uses the IEEE-754 exponent field directly — exact `floor(log2(v))` for
/// normal values, with zero and subnormals clamped into bucket 0 — so
/// bucketing costs no transcendental call.
pub fn bucket_index(v: f64) -> Option<usize> {
    if !v.is_finite() || v.is_sign_negative() && v != 0.0 {
        return None;
    }
    let exponent_field = ((v.to_bits() >> 52) & 0x7ff) as i32;
    if exponent_field == 0 {
        // Zero and subnormals: below every normal bucket.
        return Some(0);
    }
    let exponent = exponent_field - 1023;
    Some((exponent.clamp(BUCKET_MIN_EXP, BUCKET_MAX_EXP) - BUCKET_MIN_EXP) as usize)
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Accepted observations.
    pub count: u64,
    /// Rejected observations (NaN / infinite / negative).
    pub rejected: u64,
    /// Sum of accepted observations.
    pub sum: f64,
    /// Non-empty buckets as `(exponent, count)`: the bucket covers
    /// `[2^exponent, 2^(exponent+1))`, modulo the clamp at both ends.
    pub buckets: Vec<(i32, u64)>,
}

impl HistogramSnapshot {
    /// Mean of accepted observations (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::default();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Clones share storage.
        let c2 = c.clone();
        c2.incr();
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let g = Gauge::default();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        g.set(-1.25);
        assert_eq!(g.get(), -1.25);
    }

    #[test]
    fn bucket_zero_absorbs_zero_and_subnormals() {
        assert_eq!(bucket_index(0.0), Some(0));
        assert_eq!(bucket_index(-0.0), Some(0));
        assert_eq!(bucket_index(f64::MIN_POSITIVE / 2.0), Some(0)); // subnormal
        assert_eq!(bucket_index(2.0_f64.powi(BUCKET_MIN_EXP - 7)), Some(0)); // normal underflow
    }

    #[test]
    fn top_bucket_absorbs_huge_values() {
        let top = BUCKETS - 1;
        assert_eq!(bucket_index(2.0_f64.powi(BUCKET_MAX_EXP)), Some(top));
        assert_eq!(bucket_index(1e300), Some(top));
        assert_eq!(bucket_index(f64::MAX), Some(top));
    }

    #[test]
    fn normal_values_land_on_their_exponent() {
        // 1.0 = 2^0 → bucket -BUCKET_MIN_EXP.
        assert_eq!(bucket_index(1.0), Some((-BUCKET_MIN_EXP) as usize));
        assert_eq!(bucket_index(1.5), bucket_index(1.0));
        assert_eq!(
            bucket_index(2.0),
            Some((-BUCKET_MIN_EXP + 1) as usize),
            "bucket boundary is inclusive on the left"
        );
        assert_eq!(bucket_index(0.5), Some((-BUCKET_MIN_EXP - 1) as usize));
    }

    #[test]
    fn nan_infinity_and_negative_are_rejected() {
        assert_eq!(bucket_index(f64::NAN), None);
        assert_eq!(bucket_index(f64::INFINITY), None);
        assert_eq!(bucket_index(f64::NEG_INFINITY), None);
        assert_eq!(bucket_index(-1.0), None);

        let h = Histogram::default();
        assert!(!h.record(f64::NAN));
        assert!(!h.record(-3.0));
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.rejected(), 2);
        assert!(h.snapshot().buckets.is_empty());
    }

    #[test]
    fn histogram_snapshot_reports_sparse_buckets_and_mean() {
        let h = Histogram::default();
        assert!(h.record(1.0));
        assert!(h.record(1.75));
        assert!(h.record(8.0));
        assert!(h.record(0.0)); // underflow bucket
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.rejected, 0);
        assert!((s.sum - 10.75).abs() < 1e-12);
        assert!((s.mean() - 2.6875).abs() < 1e-12);
        assert_eq!(
            s.buckets,
            vec![(BUCKET_MIN_EXP, 1), (0, 2), (3, 1)],
            "sparse (exponent, count) pairs in exponent order"
        );
    }

    #[test]
    fn empty_snapshot_mean_is_zero() {
        assert_eq!(Histogram::default().snapshot().mean(), 0.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::default();
        let c = Counter::default();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let h = h.clone();
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        h.record(1.0);
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(h.count(), 8000);
        assert_eq!(c.get(), 8000);
        assert_eq!(h.sum(), 8000.0);
    }
}
