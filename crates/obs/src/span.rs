//! Scoped span timers.
//!
//! A [`SpanTimer`] measures the wall-clock lifetime of a scope and records
//! it (in seconds) into a histogram when dropped — including on early
//! returns and `?` propagation, so instrumented functions need exactly one
//! line. Timing observes the code without participating in it: no RNG is
//! touched, no control flow depends on the measurement, which is how the
//! instrumented Monte-Carlo paths stay bit-exact (see `tests/determinism.rs`
//! in the bench crate).

use std::time::Instant;

use crate::metrics::Histogram;

/// A guard that records its lifetime into a histogram on drop.
#[derive(Debug)]
pub struct SpanTimer {
    histogram: Histogram,
    start: Instant,
}

impl SpanTimer {
    /// Starts timing into the given histogram (typically a cached handle —
    /// the [`span!`](crate::span!) macro arranges that).
    pub fn start(histogram: Histogram) -> Self {
        Self {
            histogram,
            start: Instant::now(),
        }
    }

    /// Starts timing into the global histogram registered under `name`.
    ///
    /// Convenience for one-off spans; hot paths should prefer
    /// [`span!`](crate::span!), which caches the registry lookup.
    pub fn named(name: &str) -> Self {
        Self::start(crate::registry::histogram(name))
    }

    /// Seconds elapsed so far (the value `drop` will record).
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.histogram.record(self.elapsed_seconds());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_once_on_drop() {
        let h = Histogram::default();
        {
            let _span = SpanTimer::start(h.clone());
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 0.001, "slept ≥ 1ms, recorded {}", h.sum());
    }

    #[test]
    fn span_records_on_early_return() {
        let h = Histogram::default();
        let f = |fail: bool| -> Result<(), ()> {
            let _span = SpanTimer::start(h.clone());
            if fail {
                return Err(());
            }
            Ok(())
        };
        let _ = f(true);
        let _ = f(false);
        assert_eq!(h.count(), 2, "both paths must record");
    }

    #[test]
    fn named_span_lands_in_the_global_registry() {
        {
            let _span = SpanTimer::named("obs.span.test_seconds");
        }
        let snap = crate::registry::snapshot();
        assert!(snap.histogram("obs.span.test_seconds").unwrap().count >= 1);
    }
}
