//! `vortex-obs` — zero-dependency structured observability for the Vortex
//! workspace.
//!
//! The serving stack's hot paths (Monte-Carlo fan-out, pipeline stages,
//! batched inference) are instrumented with three metric kinds behind one
//! process-global, thread-safe [`Registry`]:
//!
//! * [`Counter`] — monotonically increasing `u64` (trials executed,
//!   models compiled, samples inferred);
//! * [`Gauge`] — last-write-wins `f64` (worker-pool size, samples/sec);
//! * [`Histogram`] — fixed log₂-scale buckets over non-negative `f64`
//!   observations (span durations, per-worker task counts). NaN,
//!   infinities and negative values are rejected, never aggregated.
//!
//! [`SpanTimer`] wraps a histogram into a drop guard: one line at the top
//! of a function records its wall-clock time on every exit path.
//!
//! # Cost model
//!
//! Recording is lock-free: counters and buckets are relaxed atomic adds,
//! gauges are atomic stores, histogram sums a bit-CAS loop. The registry
//! mutex is touched only when a *handle* is looked up by name; the
//! [`counter!`], [`gauge!`], [`histogram!`] and [`span!`] macros cache the
//! handle in a per-call-site `OnceLock` static, so steady-state
//! instrumentation never takes a lock. Metrics observe timing and counts
//! only — no RNG, no control flow — so instrumentation cannot perturb the
//! workspace's bit-exact determinism contract (enforced end to end by
//! `tests/determinism.rs` in the bench crate).
//!
//! # Export
//!
//! [`snapshot`] copies the registry into a [`Snapshot`], whose
//! [`to_json`](Snapshot::to_json) emits a deterministic, name-sorted JSON
//! document using the same string escaper as `vortex_core::report` (this
//! crate is the escaper's home; `report` re-exports it). The experiments
//! binary dumps a snapshot next to its `BENCH_*.json` payloads via
//! `--metrics <path>`.
//!
//! # Example
//!
//! ```
//! fn hot_path(batch: &[f64]) -> f64 {
//!     let _span = vortex_obs::span!("example.hot_path_seconds");
//!     vortex_obs::counter!("example.samples").add(batch.len() as u64);
//!     batch.iter().sum()
//! }
//!
//! assert_eq!(hot_path(&[1.0, 2.0]), 3.0);
//! let snap = vortex_obs::snapshot();
//! assert_eq!(snap.counter("example.samples"), Some(2));
//! assert_eq!(snap.histogram("example.hot_path_seconds").unwrap().count, 1);
//! ```

#![warn(missing_docs)]

pub mod json;
mod metrics;
mod registry;
mod span;

pub use metrics::{
    bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS, BUCKET_MAX_EXP,
    BUCKET_MIN_EXP,
};
pub use registry::{counter, gauge, histogram, registry, snapshot, Registry, Snapshot};
pub use span::SpanTimer;

/// The global [`Counter`] named `$name`, with the registry lookup cached
/// in a per-call-site static. Evaluates to `&'static Counter`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::counter($name))
    }};
}

/// The global [`Gauge`] named `$name`, with the registry lookup cached in
/// a per-call-site static. Evaluates to `&'static Gauge`.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::gauge($name))
    }};
}

/// The global [`Histogram`] named `$name`, with the registry lookup
/// cached in a per-call-site static. Evaluates to `&'static Histogram`.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::histogram($name))
    }};
}

/// A [`SpanTimer`] recording into the global histogram named `$name` when
/// the returned guard drops. Bind it: `let _span = span!("x_seconds");`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanTimer::start($crate::histogram!($name).clone())
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_cache_handles_per_call_site() {
        for _ in 0..3 {
            counter!("obs.macro.calls").incr();
        }
        assert_eq!(counter!("obs.macro.calls").get(), 3);
        gauge!("obs.macro.level").set(4.0);
        assert_eq!(gauge!("obs.macro.level").get(), 4.0);
        histogram!("obs.macro.values").record(2.0);
        assert!(histogram!("obs.macro.values").count() >= 1);
        {
            let _span = span!("obs.macro.span_seconds");
        }
        assert!(histogram!("obs.macro.span_seconds").count() >= 1);
    }
}
