//! Property-based tests for the crossbar simulator.

use proptest::prelude::*;
use vortex_device::DeviceParams;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::Matrix;
use vortex_xbar::circuit::NodalAnalysis;
use vortex_xbar::ideal;
use vortex_xbar::pair::WeightMapping;
use vortex_xbar::sensing::{Adc, Dac};

fn conductances(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(1e-6..1e-4f64, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ideal_read_is_permutation_invariant(g in conductances(6, 3),
                                           x in proptest::collection::vec(0.0..1.0f64, 6),
                                           seed in proptest::num::u64::ANY) {
        // The AMP remapping identity (Fig. 6): permuting rows together
        // with inputs leaves the output unchanged.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let mut perm: Vec<usize> = (0..6).collect();
        rng.shuffle(&mut perm);
        let gp = g.permute_rows(&perm);
        let xp: Vec<f64> = perm.iter().map(|&p| x[p]).collect();
        let y0 = ideal::compute(&g, &x);
        let y1 = ideal::compute(&gp, &xp);
        for (a, b) in y0.iter().zip(&y1) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn nodal_solve_respects_superposition(g in conductances(5, 3),
                                          x1 in proptest::collection::vec(0.0..1.0f64, 5),
                                          x2 in proptest::collection::vec(0.0..1.0f64, 5)) {
        let na = NodalAnalysis::new(5, 3, 2.5).unwrap();
        let xs: Vec<f64> = x1.iter().zip(&x2).map(|(a, b)| a + b).collect();
        let y1 = na.compute(&g, &x1).unwrap().column_currents;
        let y2 = na.compute(&g, &x2).unwrap().column_currents;
        let ys = na.compute(&g, &xs).unwrap().column_currents;
        for j in 0..3 {
            prop_assert!((ys[j] - (y1[j] + y2[j])).abs() < 1e-8);
        }
    }

    #[test]
    fn nodal_output_never_exceeds_ideal(g in conductances(5, 3),
                                        x in proptest::collection::vec(0.0..1.0f64, 5)) {
        // Wire resistance can only lose voltage: each column current is
        // bounded by the ideal one (for non-negative inputs).
        let na = NodalAnalysis::new(5, 3, 5.0).unwrap();
        let exact = na.compute(&g, &x).unwrap().column_currents;
        let ideal_y = ideal::compute(&g, &x);
        for j in 0..3 {
            prop_assert!(exact[j] <= ideal_y[j] + 1e-9);
            prop_assert!(exact[j] >= -1e-9);
        }
    }

    #[test]
    fn adc_quantization_error_bounded(bits in 2u32..12, value in 0.0..1.0f64) {
        let adc = Adc::new(bits, 1.0).unwrap();
        let q = adc.quantize(value);
        // Inside the range (excluding the top rail) error ≤ LSB/2.
        if value < 1.0 - adc.step() {
            prop_assert!((q - value).abs() <= adc.step() / 2.0 + 1e-15);
        }
        // Quantization is idempotent.
        prop_assert_eq!(adc.quantize(q), q);
    }

    #[test]
    fn dac_is_monotone(bits in 2u32..10, v1 in 0.0..1.0f64, dv in 0.0..0.5f64) {
        let dac = Dac::new(bits, 1.0).unwrap();
        prop_assert!(dac.convert(v1 + dv) >= dac.convert(v1));
    }

    #[test]
    fn weight_mapping_roundtrip(w in -2.0..2.0f64) {
        let device = DeviceParams::default();
        let m = WeightMapping::new(&device, 2.0).unwrap();
        let (gp, gn) = m.to_conductance_pair(w);
        prop_assert!(gp >= device.g_off() && gp <= device.g_on());
        prop_assert!(gn >= device.g_off() && gn <= device.g_on());
        let back = (gp - gn) / m.scale();
        prop_assert!((back - w).abs() < 1e-12);
        // At most one side deviates from the baseline.
        prop_assert!(gp == device.g_off() || gn == device.g_off());
    }

    #[test]
    fn weight_mapping_is_monotone(w1 in -2.0..2.0f64, dw in 0.0..1.0f64) {
        let device = DeviceParams::default();
        let m = WeightMapping::new(&device, 3.5).unwrap();
        let (gp1, gn1) = m.to_conductance_pair(w1);
        let (gp2, gn2) = m.to_conductance_pair(w1 + dw);
        // Differential conductance is monotone in the weight.
        prop_assert!(gp2 - gn2 >= gp1 - gn1 - 1e-15);
    }

    #[test]
    fn device_voltages_bounded_by_drive(g in conductances(4, 2),
                                        x in proptest::collection::vec(0.0..1.0f64, 4)) {
        let na = NodalAnalysis::new(4, 2, 3.0).unwrap();
        let sol = na.compute(&g, &x).unwrap();
        let x_max = x.iter().cloned().fold(0.0_f64, f64::max);
        for i in 0..4 {
            for j in 0..2 {
                let vd = sol.device_voltages[(i, j)];
                prop_assert!(vd >= -1e-9 && vd <= x_max + 1e-9,
                    "device ({i},{j}) voltage {vd} outside [0, {x_max}]");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cost_ledger_merge_is_commutative(p1 in 0u64..1000, p2 in 0u64..1000,
                                        a1 in 0u64..1000, a2 in 0u64..1000,
                                        w1 in 0.0..1e-3f64, w2 in 0.0..1e-3f64) {
        use vortex_xbar::cost::CostLedger;
        let mk = |p: u64, a: u64, w: f64| {
            let mut l = CostLedger::new();
            for _ in 0..p.min(5) {
                l.record_pulse(2.8, w, 1e-4);
            }
            l.record_adc(a);
            l.pulse_count = p; // force counts for the algebraic check
            l
        };
        let (la, lb) = (mk(p1, a1, w1), mk(p2, a2, w2));
        let mut ab = la;
        ab.merge(&lb);
        let mut ba = lb;
        ba.merge(&la);
        prop_assert_eq!(ab.pulse_count, ba.pulse_count);
        prop_assert_eq!(ab.adc_conversions, ba.adc_conversions);
        prop_assert!((ab.program_time_s - ba.program_time_s).abs() < 1e-12);
    }

    #[test]
    fn analytic_map_factors_in_unit_interval(gvals in proptest::collection::vec(1e-6..1e-4f64, 6 * 4),
                                             r_wire in 0.0..50.0f64) {
        let g = Matrix::from_vec(6, 4, gvals).unwrap();
        let map = vortex_xbar::irdrop::ProgramVoltageMap::analytic(&g, r_wire, 2.8).unwrap();
        for i in 0..6 {
            for j in 0..4 {
                let f = map.factor(i, j);
                prop_assert!((0.0..=1.0).contains(&f));
            }
        }
    }

    #[test]
    fn quantizer_is_idempotent(g in 0.0..2e-4f64, bits in 1u32..9) {
        let (g_min, g_max) = (1e-6, 1e-4);
        let levels = 1u16 << bits;
        let q = vortex_xbar::encoding::quantize_to_levels(g, g_min, g_max, levels);
        prop_assert_eq!(
            vortex_xbar::encoding::quantize_to_levels(q, g_min, g_max, levels),
            q
        );
    }

    #[test]
    fn quantizer_is_monotone(g1 in 0.0..2e-4f64, dg in 0.0..1e-4f64, bits in 1u32..9) {
        let (g_min, g_max) = (1e-6, 1e-4);
        let levels = 1u16 << bits;
        let a = vortex_xbar::encoding::quantize_to_levels(g1, g_min, g_max, levels);
        let b = vortex_xbar::encoding::quantize_to_levels(g1 + dg, g_min, g_max, levels);
        prop_assert!(b >= a);
    }

    #[test]
    fn quantizer_respects_level_count_bounds(gvals in proptest::collection::vec(0.0..2e-4f64, 64),
                                             bits in 1u32..7) {
        // The output set has at most 2^bits distinct values, all inside
        // the window, endpoints representable.
        let (g_min, g_max) = (1e-6, 1e-4);
        let levels = 1u16 << bits;
        let mut distinct: Vec<u64> = gvals
            .iter()
            .map(|&g| vortex_xbar::encoding::quantize_to_levels(g, g_min, g_max, levels).to_bits())
            .collect();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert!(distinct.len() <= usize::from(levels));
        for bitsq in distinct {
            let q = f64::from_bits(bitsq);
            prop_assert!((g_min..=g_max).contains(&q));
        }
        let lo = vortex_xbar::encoding::quantize_to_levels(g_min, g_min, g_max, levels);
        let hi = vortex_xbar::encoding::quantize_to_levels(g_max, g_min, g_max, levels);
        prop_assert_eq!(lo, g_min);
        prop_assert_eq!(hi, g_max);
    }

    #[test]
    fn one_t1r_program_target_round_trips(g in 1e-6..1e-4f64, r_access in 100.0..2e4f64) {
        // Anything inside the programmable window survives the
        // pre-distort → compress round trip.
        let cell = vortex_device::cell::CellKind::one_t1r(r_access).unwrap();
        let desired = cell.effective_conductance(g);
        let target = cell.program_target(desired, 1e-6, 1e-4);
        prop_assert!((cell.effective_conductance(target) - desired).abs() / desired < 1e-9);
    }

    #[test]
    fn analytic_map_corner_ordering_for_uniform_arrays(gval in 1e-6..1e-4f64,
                                                       r_wire in 0.0..50.0f64) {
        // For *uniform* conductances the near corner (bottom-left) is at
        // least as healthy as the far corner (top-right). (Heterogeneous
        // arrays can invert this: a high-conductance near-corner device
        // loses more voltage in its own series divider than a
        // low-conductance far-corner one — a counterexample this suite's
        // earlier version discovered.)
        let g = Matrix::filled(6, 4, gval);
        let map = vortex_xbar::irdrop::ProgramVoltageMap::analytic(&g, r_wire, 2.8).unwrap();
        prop_assert!(map.factor(5, 0) + 1e-9 >= map.factor(0, 3));
    }
}
