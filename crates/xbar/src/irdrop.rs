//! IR-drop models: fast analytic approximations and the paper's β/D
//! decomposition (§3.2).
//!
//! The exact mesh solve ([`crate::circuit::NodalAnalysis`]) costs one
//! sparse solve per bias condition; programming a whole `m × n` array that
//! way costs `m·n` solves. This module provides:
//!
//! * [`ProgramVoltageMap`] — per-cell programming-voltage degradation
//!   factors, computed either exactly (small arrays / validation) or with
//!   a lumped analytic model (large arrays).
//! * [`ComputeAttenuationMap`] — a rank-1 "calibrated attenuation"
//!   approximation of compute-mode IR-drop: one exact solve on a reference
//!   input yields per-cell factors reused for every sample.
//! * [`decompose_beta_d`] — the paper's decomposition of the degradation
//!   trend into a horizontal per-column factor β and a vertical diagonal
//!   matrix `D`, plus the switching-domain update-rate profile whose
//!   skewness drives CLD's failure on large arrays.

use vortex_device::DeviceParams;
use vortex_linalg::Matrix;

use crate::circuit::NodalAnalysis;
use crate::{Result, XbarError};

/// Per-cell programming-voltage degradation: the selected cell `(i, j)`
/// actually sees `factor(i, j) · v_program` across its terminals.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramVoltageMap {
    factors: Matrix,
}

impl ProgramVoltageMap {
    /// The no-degradation map (ideal wires).
    pub fn none(rows: usize, cols: usize) -> Self {
        Self {
            factors: Matrix::filled(rows, cols, 1.0),
        }
    }

    /// Builds the map from a raw factor matrix (values clamped to
    /// `[0, 1]`).
    pub fn from_factors(factors: Matrix) -> Self {
        Self {
            factors: factors.map(|f| f.clamp(0.0, 1.0)),
        }
    }

    /// Exact map: one full mesh solve per cell. Accurate but `O(m·n)`
    /// solves — use for small arrays and for validating the analytic
    /// model.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn from_exact(na: &NodalAnalysis, g: &Matrix, v_program: f64) -> Result<Self> {
        let (m, n) = (na.rows(), na.cols());
        let mut factors = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let bias = na.program_bias(g, (i, j), v_program)?;
                factors[(i, j)] = (bias[(i, j)] / v_program).clamp(0.0, 1.0);
            }
        }
        Ok(Self { factors })
    }

    /// Transmission-line analytic map.
    ///
    /// During programming of cell `(p, q)`, every half-selected cell
    /// injects leakage into the shared wires; treating each wire as a
    /// resistive line with distributed conductance (per-segment mean of
    /// the wire's devices) gives closed-form node-voltage profiles with
    /// characteristic length `λ = 1/sqrt(r_wire·ḡ)`:
    ///
    /// * **column `q`** (grounded at the bottom): the column spine rises
    ///   from 0 at ground towards the half-select level `V/2` with depth,
    ///   `u(d) = (V/2)·(1 − cosh((L−d)/λ)/cosh(L/λ))` for `d` segments
    ///   above ground;
    /// * **row `p`** (driven at `V` on the left, open right end): the row
    ///   voltage relaxes from `V` towards `V/2`,
    ///   `v(s) = V/2 + (V/2)·cosh((L−s)/λ)/cosh(L/λ)`.
    ///
    /// The selected device sees `v(q) − u(m−p)`, minus the series drop of
    /// its own programming current over its `q+1 + (m−p)` path segments
    /// (a divider term). Validated against the exact mesh solve to a few
    /// percent up to 784×10 (see `tests/crossbar_physics.rs` and the
    /// Fig. 3 exact-check column).
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidParameter`] for a negative wire
    /// resistance or non-positive programming voltage.
    pub fn analytic(g: &Matrix, r_wire: f64, v_program: f64) -> Result<Self> {
        if !(r_wire.is_finite() && r_wire >= 0.0) {
            return Err(XbarError::InvalidParameter {
                name: "r_wire",
                requirement: "must be finite and non-negative",
            });
        }
        if !(v_program.is_finite() && v_program > 0.0) {
            return Err(XbarError::InvalidParameter {
                name: "v_program",
                requirement: "must be finite and positive",
            });
        }
        let (m, n) = g.shape();
        if r_wire == 0.0 {
            return Ok(Self {
                factors: Matrix::filled(m, n, 1.0),
            });
        }
        // Per-wire mean conductances (the distributed line loading).
        let row_mean: Vec<f64> = (0..m)
            .map(|i| (0..n).map(|j| g[(i, j)]).sum::<f64>() / n as f64)
            .collect();
        let col_mean: Vec<f64> = (0..n)
            .map(|j| (0..m).map(|i| g[(i, j)]).sum::<f64>() / m as f64)
            .collect();
        // cosh-ratio with overflow protection: for large arguments
        // cosh(a)/cosh(b) = e^{a−b} to double precision.
        let cosh_ratio = |a: f64, b: f64| -> f64 {
            if b > 30.0 {
                (a - b).exp()
            } else {
                a.cosh() / b.cosh()
            }
        };
        let half = v_program / 2.0;
        let mut factors = Matrix::zeros(m, n);
        for p in 0..m {
            let lambda_row = 1.0 / (r_wire * row_mean[p].max(1e-15)).sqrt();
            for q in 0..n {
                let lambda_col = 1.0 / (r_wire * col_mean[q].max(1e-15)).sqrt();
                // Row node voltage at the selected column (driver at V,
                // open far end).
                let s = (q + 1) as f64;
                let l_row = n as f64;
                let v_row = half + half * cosh_ratio((l_row - s) / lambda_row, l_row / lambda_row);
                // Column spine voltage at the selected row (ground at the
                // bottom, open top).
                let d = (m - p) as f64;
                let l_col = m as f64;
                let u_col = half * (1.0 - cosh_ratio((l_col - d) / lambda_col, l_col / lambda_col));
                // Series drop of the selected device's own current over
                // its path (divider form).
                let r_path = r_wire * (s + d);
                let r_dev = 1.0 / g[(p, q)].max(1e-12);
                let divider = r_dev / (r_path + r_dev);
                let v_dev = (v_row - u_col) * divider;
                factors[(p, q)] = (v_dev / v_program).clamp(0.0, 1.0);
            }
        }
        Ok(Self { factors })
    }

    /// Degradation factor of cell `(i, j)` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn factor(&self, i: usize, j: usize) -> f64 {
        self.factors[(i, j)]
    }

    /// The full factor matrix.
    pub fn factors(&self) -> &Matrix {
        &self.factors
    }

    /// Worst (smallest) factor over the array.
    pub fn worst_factor(&self) -> f64 {
        self.factors
            .as_slice()
            .iter()
            .copied()
            .fold(1.0_f64, f64::min)
    }
}

/// Rank-1 calibrated compute-mode attenuation: `y_j ≈ Σ_i x_i·g_ij·a_ij`.
///
/// Calibrated with one exact mesh solve on a reference input; the per-cell
/// attenuation `a_ij = V_device(i,j) / x_ref_i` is then reused for every
/// sample. Exact for inputs proportional to the reference; a controlled
/// approximation otherwise (see the `ablation_solver` bench).
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeAttenuationMap {
    attenuation: Matrix,
}

impl ComputeAttenuationMap {
    /// No attenuation (ideal wires).
    pub fn none(rows: usize, cols: usize) -> Self {
        Self {
            attenuation: Matrix::filled(rows, cols, 1.0),
        }
    }

    /// Calibrates the map with one exact solve on `reference_input`
    /// (entries of zero fall back to attenuation 1).
    ///
    /// # Errors
    ///
    /// Propagates solver/shape errors.
    pub fn calibrate(na: &NodalAnalysis, g: &Matrix, reference_input: &[f64]) -> Result<Self> {
        let sol = na.compute(g, reference_input)?;
        let attenuation = Matrix::from_fn(na.rows(), na.cols(), |i, j| {
            let xi = reference_input[i];
            if xi.abs() < 1e-12 {
                1.0
            } else {
                (sol.device_voltages[(i, j)] / xi).clamp(0.0, 1.0)
            }
        });
        Ok(Self { attenuation })
    }

    /// Attenuation factor of cell `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn factor(&self, i: usize, j: usize) -> f64 {
        self.attenuation[(i, j)]
    }

    /// The full per-cell attenuation matrix.
    pub fn attenuation(&self) -> &Matrix {
        &self.attenuation
    }

    /// Rebuilds a map from a raw attenuation matrix (values clamped to
    /// `[0, 1]`), e.g. one thawed from a persisted artifact.
    pub fn from_attenuation(attenuation: Matrix) -> Self {
        Self {
            attenuation: attenuation.map(|a| a.clamp(0.0, 1.0)),
        }
    }

    /// Effective conductance matrix `g_ij·a_ij` to use with the ideal MVM.
    pub fn effective_conductances(&self, g: &Matrix) -> Matrix {
        g.hadamard(&self.attenuation)
    }

    /// Approximate compute-mode read using the calibrated attenuation.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the calibrated row count.
    pub fn compute(&self, g: &Matrix, x: &[f64]) -> Vec<f64> {
        self.effective_conductances(g).vecmat(x)
    }
}

/// Decomposes a programming-voltage degradation map into the paper's
/// horizontal per-column factors `β_j` and vertical profile `d_i`
/// (Eq. (2)): `factor(i, j) ≈ β_j · d_i`, with `d` normalized to
/// `max(d) = 1`.
pub fn decompose_beta_d(map: &ProgramVoltageMap) -> (Vec<f64>, Vec<f64>) {
    let f = map.factors();
    let (m, n) = f.shape();
    // Vertical profile: mean over columns, normalized to max 1.
    let mut d: Vec<f64> = (0..m)
        .map(|i| (0..n).map(|j| f[(i, j)]).sum::<f64>() / n as f64)
        .collect();
    let dmax = d.iter().copied().fold(f64::MIN, f64::max).max(1e-12);
    for di in &mut d {
        *di /= dmax;
    }
    // Horizontal factor per column: least-squares fit of column j against d.
    let d_norm2: f64 = d.iter().map(|v| v * v).sum();
    let beta: Vec<f64> = (0..n)
        .map(|j| {
            let num: f64 = (0..m).map(|i| f[(i, j)] * d[i]).sum();
            num / d_norm2.max(1e-12)
        })
        .collect();
    (beta, d)
}

/// Switching-domain update-rate profile of one column: for each row, the
/// relative state-movement rate achieved when the programming voltage is
/// degraded by the map — `drive(v·factor) / drive(v)`.
///
/// This is the diagonal of the paper's `D` matrix as it enters the GDT
/// update (Eq. (2)); the sinh switching nonlinearity makes its skewness far
/// larger than the voltage skewness (§3.2's "Δw₁ⱼ < Δwₙⱼ/1000" effect).
pub fn update_rate_profile(map: &ProgramVoltageMap, params: &DeviceParams, col: usize) -> Vec<f64> {
    let v = params.v_program();
    let base = vortex_device::switching::drive(params, v).max(1e-300);
    (0..map.factors().rows())
        .map(|i| vortex_device::switching::drive(params, v * map.factor(i, col)) / base)
        .collect()
}

/// Skewness of a profile: `max / min` (∞ if the minimum is 0).
pub fn skewness(profile: &[f64]) -> f64 {
    let mx = profile.iter().copied().fold(f64::MIN, f64::max);
    let mn = profile.iter().copied().fold(f64::MAX, f64::min);
    if mn <= 0.0 {
        f64::INFINITY
    } else {
        mx / mn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_lrs(m: usize, n: usize) -> Matrix {
        Matrix::filled(m, n, 1e-4)
    }

    #[test]
    fn none_maps_are_unity() {
        let p = ProgramVoltageMap::none(3, 4);
        assert_eq!(p.factor(2, 3), 1.0);
        assert_eq!(p.worst_factor(), 1.0);
        let c = ComputeAttenuationMap::none(3, 4);
        assert_eq!(c.factor(0, 0), 1.0);
    }

    #[test]
    fn exact_map_worst_cell_is_far_corner() {
        let na = NodalAnalysis::new(8, 6, 5.0).unwrap();
        let g = all_lrs(8, 6);
        let map = ProgramVoltageMap::from_exact(&na, &g, 2.8).unwrap();
        // Far corner (top-right: row 0, last column) is worst; near corner
        // (bottom-left) is best.
        let far = map.factor(0, 5);
        let near = map.factor(7, 0);
        assert!(far < near, "far {far} near {near}");
        assert!((map.worst_factor() - far).abs() < 1e-12);
    }

    #[test]
    fn analytic_map_tracks_exact_shape() {
        let m = 10;
        let n = 6;
        let g = all_lrs(m, n);
        let na = NodalAnalysis::new(m, n, 2.5).unwrap();
        let exact = ProgramVoltageMap::from_exact(&na, &g, 2.8).unwrap();
        let approx = ProgramVoltageMap::analytic(&g, 2.5, 2.8).unwrap();
        // Same ordering of corners and ≤ 10 % absolute error per cell for
        // this mild case.
        for i in 0..m {
            for j in 0..n {
                let e = exact.factor(i, j);
                let a = approx.factor(i, j);
                assert!((e - a).abs() < 0.1, "cell ({i},{j}): exact {e} approx {a}");
            }
        }
        assert!(approx.factor(0, n - 1) < approx.factor(m - 1, 0));
    }

    #[test]
    fn attenuation_map_reproduces_reference_solution() {
        let na = NodalAnalysis::new(6, 4, 10.0).unwrap();
        let g = all_lrs(6, 4);
        let x = vec![1.0; 6];
        let map = ComputeAttenuationMap::calibrate(&na, &g, &x).unwrap();
        let exact = na.compute(&g, &x).unwrap().column_currents;
        let approx = map.compute(&g, &x);
        for (a, e) in approx.iter().zip(&exact) {
            assert!((a - e).abs() / e < 0.02, "approx {a} exact {e}");
        }
    }

    #[test]
    fn attenuation_map_is_reasonable_off_reference() {
        let na = NodalAnalysis::new(8, 4, 5.0).unwrap();
        let g = Matrix::from_fn(8, 4, |i, j| 1e-5 + ((i + j) % 3) as f64 * 3e-5);
        let reference = vec![0.5; 8];
        let map = ComputeAttenuationMap::calibrate(&na, &g, &reference).unwrap();
        // A different (binary) input: approximation should stay within ~15 %.
        let x = vec![1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 1.0];
        let exact = na.compute(&g, &x).unwrap().column_currents;
        let approx = map.compute(&g, &x);
        for (a, e) in approx.iter().zip(&exact) {
            assert!(
                (a - e).abs() / e.abs().max(1e-12) < 0.15,
                "approx {a} exact {e}"
            );
        }
    }

    #[test]
    fn beta_d_rank_one_reconstruction() {
        let g = all_lrs(12, 6);
        let map = ProgramVoltageMap::analytic(&g, 2.5, 2.8).unwrap();
        let (beta, d) = decompose_beta_d(&map);
        assert_eq!(beta.len(), 6);
        assert_eq!(d.len(), 12);
        assert!(beta.iter().all(|&b| b > 0.0 && b <= 1.0 + 1e-9));
        // Reconstruction error should be small for this smooth map.
        let mut max_err = 0.0_f64;
        for (i, di) in d.iter().enumerate() {
            for (j, bj) in beta.iter().enumerate() {
                let err = (map.factor(i, j) - bj * di).abs();
                max_err = max_err.max(err);
            }
        }
        assert!(max_err < 0.05, "rank-1 reconstruction error {max_err}");
    }

    #[test]
    fn vertical_profile_decreases_towards_top() {
        // Our row 0 is the *top* (far from the bottom ground): the vertical
        // degradation profile d must be smallest there.
        let g = all_lrs(16, 4);
        let map = ProgramVoltageMap::analytic(&g, 5.0, 2.8).unwrap();
        let (_, d) = decompose_beta_d(&map);
        assert!(d[0] < d[15], "top {} bottom {}", d[0], d[15]);
    }

    #[test]
    fn update_rate_skewness_exceeds_voltage_skewness() {
        // The sinh nonlinearity amplifies voltage skew into orders of
        // magnitude of update-rate skew (§3.2).
        let params = DeviceParams::default();
        let g = all_lrs(64, 8);
        let map = ProgramVoltageMap::analytic(&g, 2.5, params.v_program()).unwrap();
        let voltage_profile: Vec<f64> = (0..64).map(|i| map.factor(i, 0)).collect();
        let rate_profile = update_rate_profile(&map, &params, 0);
        let sv = skewness(&voltage_profile);
        let sr = skewness(&rate_profile);
        assert!(sr > sv, "rate skew {sr} must exceed voltage skew {sv}");
        assert!(sr > 2.0, "expect noticeable rate skew, got {sr}");
    }

    #[test]
    fn skewness_edge_cases() {
        assert_eq!(skewness(&[0.5, 1.0]), 2.0);
        assert!(skewness(&[0.0, 1.0]).is_infinite());
        assert_eq!(skewness(&[0.7, 0.7]), 1.0);
    }

    #[test]
    fn analytic_validation() {
        let g = all_lrs(4, 4);
        assert!(ProgramVoltageMap::analytic(&g, -1.0, 2.8).is_err());
        assert!(ProgramVoltageMap::analytic(&g, 2.5, 0.0).is_err());
        // Zero wire resistance ⇒ no degradation anywhere.
        let map = ProgramVoltageMap::analytic(&g, 0.0, 2.8).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert!(map.factor(i, j) > 0.99);
            }
        }
    }
}
