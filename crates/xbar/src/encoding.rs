//! Pluggable weight→conductance encodings (§2.2.1 generalized).
//!
//! The paper programs every weight onto a differential pair through one
//! global affine transfer — an *analog* encoding with a single scale. This
//! module makes the encoding a compile-time strategy choice:
//!
//! * [`DifferentialPair`] — the paper's behaviour, bit-for-bit: targets
//!   come straight from [`WeightMapping::weights_to_targets`].
//! * [`MultiLevelCell`] — quantizes every conductance target to one of
//!   `2^bits` uniform levels (endpoints included, so the `g_min` baseline
//!   of a zero weight stays exactly representable), modelling an MLC
//!   program-verify write at a configurable resolution.
//! * [`AdaptiveRowQuant`] — per-row level selection driven by the AMP
//!   sensitivity metric `|x·w|`: only the most output-critical rows get
//!   fine quantization, the rest are written coarsely at a lower
//!   pulse cost.
//!
//! Every encoding returns an [`EncodingTable`] — the per-physical-row
//! level counts actually used — which travels with the compiled model into
//! the on-disk artifact (format v3) and prices the programming effort via
//! [`pulse_plan`].

use serde::{Deserialize, Serialize};
use vortex_device::pulse::precalculate_pulse_conductance;
use vortex_device::DeviceParams;
use vortex_linalg::Matrix;

use crate::pair::WeightMapping;
use crate::{Result, XbarError};

/// Snaps a conductance to the nearest of `levels` uniform points spanning
/// `[g_min, g_max]` inclusive.
///
/// The grid includes both endpoints (`level_k = g_min + k·Δ` with
/// `Δ = (g_max − g_min)/(levels − 1)`), so the zero-weight baseline
/// `g_min` survives quantization exactly at any level count. Inputs
/// outside the window clamp first. `levels == 0` (the continuous/analog
/// sentinel used by [`EncodingTable`]) and `levels == 1` return the input
/// clamped but unquantized.
pub fn quantize_to_levels(g: f64, g_min: f64, g_max: f64, levels: u16) -> f64 {
    let g = g.clamp(g_min, g_max);
    if levels < 2 || g_max <= g_min {
        return g;
    }
    let step = (g_max - g_min) / f64::from(levels - 1);
    let k = ((g - g_min) / step).round();
    g_min + k * step
}

/// Identifies which [`WeightEncoding`] strategy produced a table; stored
/// as a single byte in the artifact's `ENCT` section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EncodingScheme {
    /// Continuous differential-pair targets (the paper's encoding).
    Differential,
    /// Fixed multi-level-cell quantization, same level count on each row.
    MultiLevel,
    /// Sensitivity-driven per-row level selection.
    AdaptiveRow,
}

impl EncodingScheme {
    /// Wire code used by the artifact codec.
    pub fn code(self) -> u8 {
        match self {
            EncodingScheme::Differential => 0,
            EncodingScheme::MultiLevel => 1,
            EncodingScheme::AdaptiveRow => 2,
        }
    }

    /// Inverse of [`Self::code`]; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(EncodingScheme::Differential),
            1 => Some(EncodingScheme::MultiLevel),
            2 => Some(EncodingScheme::AdaptiveRow),
            _ => None,
        }
    }
}

/// Per-physical-row record of how a compiled model's weights were encoded.
///
/// `levels[q]` is the number of discrete conductance levels used on
/// physical row `q`; `0` marks a continuous (analog differential) row.
/// The table is persisted in artifact format v3 so a reloaded model still
/// knows its own programming cost and resolution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodingTable {
    scheme: EncodingScheme,
    levels: Vec<u16>,
}

impl EncodingTable {
    /// Level counts must be `0` (continuous) or at least 2; a 1-level row
    /// could only store a constant.
    pub fn new(scheme: EncodingScheme, levels: Vec<u16>) -> Result<Self> {
        if levels.contains(&1) {
            return Err(XbarError::InvalidParameter {
                name: "levels",
                requirement: "each row must use 0 (continuous) or >= 2 levels",
            });
        }
        Ok(Self { scheme, levels })
    }

    /// The all-continuous table the paper's encoding produces — also what
    /// pre-v3 artifacts decode to.
    pub fn differential(rows: usize) -> Self {
        Self {
            scheme: EncodingScheme::Differential,
            levels: vec![0; rows],
        }
    }

    /// Which strategy family produced this table.
    pub fn scheme(&self) -> EncodingScheme {
        self.scheme
    }

    /// Number of physical rows covered.
    pub fn rows(&self) -> usize {
        self.levels.len()
    }

    /// Per-row level counts (`0` = continuous).
    pub fn levels(&self) -> &[u16] {
        &self.levels
    }

    /// Bits needed to address `levels` states (`ceil(log2)`); rows are
    /// written with one program-verify pulse per bit.
    pub fn bits_for(levels: u16) -> u32 {
        debug_assert!(levels >= 2);
        16 - (levels - 1).leading_zeros()
    }

    /// Mean per-row resolution in bits. Continuous rows have no finite
    /// bit count, so any table containing one reports `f64::INFINITY`
    /// (render as "analog").
    pub fn effective_bits(&self) -> f64 {
        if self.levels.is_empty() {
            return 0.0;
        }
        let mut sum = 0.0;
        for &l in &self.levels {
            if l == 0 {
                return f64::INFINITY;
            }
            sum += f64::from(Self::bits_for(l));
        }
        sum / self.levels.len() as f64
    }

    /// Programming-pulse slots for one device on a row with `levels`
    /// states: a global reset plus either one pre-calculated SET
    /// (continuous row, the paper's open-loop write) or one
    /// successive-approximation pulse per bit.
    pub fn pulses_per_device(levels: u16) -> u64 {
        if levels == 0 {
            2
        } else {
            1 + u64::from(Self::bits_for(levels))
        }
    }

    /// Total programming-pulse slots to write a `rows × cols` weight
    /// matrix under this table — both crossbars of the differential pair.
    pub fn programming_pulses(&self, cols: usize) -> u64 {
        self.levels
            .iter()
            .map(|&l| Self::pulses_per_device(l) * cols as u64 * 2)
            .sum()
    }
}

/// Targets produced by an encoding: conductance matrices for the two
/// crossbars plus the per-row table describing how they were discretized.
#[derive(Debug, Clone)]
pub struct EncodedTargets {
    /// Target conductances for the positive crossbar.
    pub pos: Matrix,
    /// Target conductances for the negative crossbar.
    pub neg: Matrix,
    /// Per-row level counts used.
    pub table: EncodingTable,
}

/// Side information an encoding may consult.
///
/// `row_sensitivity[q]` is the AMP sensitivity metric `|x̄·w|` for
/// physical row `q` (mean absolute input times the row's L1 weight mass);
/// when absent, sensitivity-driven encodings fall back to the weight mass
/// alone.
#[derive(Debug, Clone, Copy, Default)]
pub struct EncodingContext<'a> {
    /// Per-physical-row sensitivity, if the compiler has calibration data.
    pub row_sensitivity: Option<&'a [f64]>,
}

/// Strategy turning a physical weight matrix into programming targets.
///
/// Implementations must be deterministic (no RNG) — the Monte-Carlo
/// determinism harness relies on encodings adding no stream consumption.
///
/// # Example
///
/// ```
/// use vortex_device::DeviceParams;
/// use vortex_linalg::Matrix;
/// use vortex_xbar::encoding::{EncodingContext, EncodingSpec, WeightEncoding};
/// use vortex_xbar::pair::WeightMapping;
///
/// # fn main() -> Result<(), vortex_xbar::XbarError> {
/// let mapping = WeightMapping::new(&DeviceParams::default(), 1.0)?;
/// let weights = Matrix::from_rows(&[vec![0.8, -0.2], vec![0.1, -0.9]]);
/// let encoder = EncodingSpec::MultiLevelCell { bits: 4 }.build()?;
/// let encoded = encoder.encode(&weights, &mapping, &EncodingContext::default())?;
/// assert_eq!(encoded.table.rows(), 2);
/// assert_eq!(encoded.table.levels(), &[16, 16]);
/// # Ok(())
/// # }
/// ```
pub trait WeightEncoding {
    /// Stable human-readable strategy name (used in bench tables).
    fn name(&self) -> &'static str;

    /// Encodes a physical weight matrix (already routed to crossbar rows)
    /// into per-crossbar conductance targets.
    fn encode(
        &self,
        weights: &Matrix,
        mapping: &WeightMapping,
        ctx: &EncodingContext<'_>,
    ) -> Result<EncodedTargets>;
}

/// The paper's continuous differential-pair encoding — targets are
/// exactly [`WeightMapping::weights_to_targets`], no quantization.
#[derive(Debug, Clone, Copy, Default)]
pub struct DifferentialPair;

impl WeightEncoding for DifferentialPair {
    fn name(&self) -> &'static str {
        "differential"
    }

    fn encode(
        &self,
        weights: &Matrix,
        mapping: &WeightMapping,
        _ctx: &EncodingContext<'_>,
    ) -> Result<EncodedTargets> {
        let (pos, neg) = mapping.weights_to_targets(weights);
        Ok(EncodedTargets {
            pos,
            neg,
            table: EncodingTable::differential(weights.rows()),
        })
    }
}

/// Fixed-resolution multi-level-cell encoding: every device target snaps
/// to one of `2^bits` uniform conductance levels.
#[derive(Debug, Clone, Copy)]
pub struct MultiLevelCell {
    bits: u8,
}

impl MultiLevelCell {
    /// `bits` per cell in `1..=12` (4096 levels is already beyond any
    /// demonstrated MLC device).
    pub fn new(bits: u8) -> Result<Self> {
        if !(1..=12).contains(&bits) {
            return Err(XbarError::InvalidParameter {
                name: "bits",
                requirement: "must be in 1..=12",
            });
        }
        Ok(Self { bits })
    }

    /// Level count `2^bits`.
    pub fn levels(&self) -> u16 {
        1 << self.bits
    }
}

impl WeightEncoding for MultiLevelCell {
    fn name(&self) -> &'static str {
        "mlc"
    }

    fn encode(
        &self,
        weights: &Matrix,
        mapping: &WeightMapping,
        _ctx: &EncodingContext<'_>,
    ) -> Result<EncodedTargets> {
        let (mut pos, mut neg) = mapping.weights_to_targets(weights);
        let (g_min, g_max) = (mapping.g_min(), mapping.g_max());
        let levels = self.levels();
        pos.map_inplace(|g| quantize_to_levels(g, g_min, g_max, levels));
        neg.map_inplace(|g| quantize_to_levels(g, g_min, g_max, levels));
        Ok(EncodedTargets {
            pos,
            neg,
            table: EncodingTable::new(EncodingScheme::MultiLevel, vec![levels; weights.rows()])?,
        })
    }
}

/// Sensitivity-driven per-row quantization: the `fine_fraction` most
/// sensitive rows (by the AMP metric `|x̄·w|`) are written at `high_bits`,
/// the rest at `low_bits`. Ties break on the lower row index so the
/// selection is deterministic.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveRowQuant {
    low_bits: u8,
    high_bits: u8,
    fine_fraction: f64,
}

impl AdaptiveRowQuant {
    /// `low_bits <= high_bits`, both in `1..=12`; `fine_fraction` in
    /// `[0, 1]` is the share of rows (rounded to nearest) written fine.
    pub fn new(low_bits: u8, high_bits: u8, fine_fraction: f64) -> Result<Self> {
        if !(1..=12).contains(&low_bits) || !(1..=12).contains(&high_bits) {
            return Err(XbarError::InvalidParameter {
                name: "bits",
                requirement: "must be in 1..=12",
            });
        }
        if low_bits > high_bits {
            return Err(XbarError::InvalidParameter {
                name: "low_bits",
                requirement: "must not exceed high_bits",
            });
        }
        if !(0.0..=1.0).contains(&fine_fraction) {
            return Err(XbarError::InvalidParameter {
                name: "fine_fraction",
                requirement: "must be in [0, 1]",
            });
        }
        Ok(Self {
            low_bits,
            high_bits,
            fine_fraction,
        })
    }

    /// Indices of the rows that get `high_bits`, by descending
    /// sensitivity with index tie-break.
    fn fine_rows(&self, sensitivity: &[f64]) -> Vec<usize> {
        let n_fine = (self.fine_fraction * sensitivity.len() as f64).round() as usize;
        let n_fine = n_fine.min(sensitivity.len());
        let mut order: Vec<usize> = (0..sensitivity.len()).collect();
        order.sort_by(|&a, &b| {
            sensitivity[b]
                .partial_cmp(&sensitivity[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        order.truncate(n_fine);
        order
    }
}

impl WeightEncoding for AdaptiveRowQuant {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn encode(
        &self,
        weights: &Matrix,
        mapping: &WeightMapping,
        ctx: &EncodingContext<'_>,
    ) -> Result<EncodedTargets> {
        let rows = weights.rows();
        // AMP sensitivity if the compiler supplied calibration; otherwise
        // the row L1 mass (the x̄ = 1 special case of the same metric).
        let sensitivity: Vec<f64> = match ctx.row_sensitivity {
            Some(s) => {
                if s.len() != rows {
                    return Err(XbarError::ShapeMismatch {
                        context: "adaptive row sensitivity",
                        expected: rows,
                        actual: s.len(),
                    });
                }
                s.to_vec()
            }
            None => (0..rows)
                .map(|q| weights.row(q).iter().map(|w| w.abs()).sum())
                .collect(),
        };
        let mut levels = vec![1u16 << self.low_bits; rows];
        for q in self.fine_rows(&sensitivity) {
            levels[q] = 1 << self.high_bits;
        }
        let (mut pos, mut neg) = mapping.weights_to_targets(weights);
        let (g_min, g_max) = (mapping.g_min(), mapping.g_max());
        for (q, &l) in levels.iter().enumerate() {
            for g in pos.row_mut(q) {
                *g = quantize_to_levels(*g, g_min, g_max, l);
            }
            for g in neg.row_mut(q) {
                *g = quantize_to_levels(*g, g_min, g_max, l);
            }
        }
        Ok(EncodedTargets {
            pos,
            neg,
            table: EncodingTable::new(EncodingScheme::AdaptiveRow, levels)?,
        })
    }
}

/// Plain-data description of an encoding choice — what travels in compile
/// options, environments, and bench configs. [`EncodingSpec::build`]
/// instantiates the matching [`WeightEncoding`] strategy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum EncodingSpec {
    /// The paper's continuous differential-pair encoding (default).
    #[default]
    DifferentialPair,
    /// Fixed multi-level-cell quantization.
    MultiLevelCell {
        /// Bits per cell (`2^bits` levels), in `1..=12`.
        bits: u8,
    },
    /// Sensitivity-driven per-row level selection.
    AdaptiveRowQuant {
        /// Bits for insensitive rows, in `1..=12`.
        low_bits: u8,
        /// Bits for sensitive rows, `>= low_bits`, in `1..=12`.
        high_bits: u8,
        /// Share of rows written at `high_bits`, in `[0, 1]`.
        fine_fraction: f64,
    },
}

impl EncodingSpec {
    /// Instantiates the strategy this spec describes.
    ///
    /// # Errors
    ///
    /// [`XbarError::InvalidParameter`] if the spec's parameters are out of
    /// range (see the strategy constructors).
    pub fn build(&self) -> Result<Box<dyn WeightEncoding + Send + Sync>> {
        Ok(match *self {
            EncodingSpec::DifferentialPair => Box::new(DifferentialPair),
            EncodingSpec::MultiLevelCell { bits } => Box::new(MultiLevelCell::new(bits)?),
            EncodingSpec::AdaptiveRowQuant {
                low_bits,
                high_bits,
                fine_fraction,
            } => Box::new(AdaptiveRowQuant::new(low_bits, high_bits, fine_fraction)?),
        })
    }

    /// True for the paper's continuous encoding — the compile fast path
    /// that must stay bit-exact with pre-encoding builds.
    pub fn is_differential(&self) -> bool {
        matches!(self, EncodingSpec::DifferentialPair)
    }
}

/// Programming-effort estimate for a set of encoded targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulseBudget {
    /// Total pulse slots issued (reset + program, both crossbars).
    pub pulses: u64,
    /// Summed pulse width in seconds over all non-trivial pulses.
    pub total_width_s: f64,
}

/// Prices the programming effort of `encoded` under the device's real
/// switching dynamics.
///
/// Continuous rows cost a reset plus one pre-calculated SET per device
/// (the paper's open-loop write). Quantized rows cost a reset plus one
/// successive-approximation program-verify pulse per bit, each pulse
/// width obtained from the nominal switching model
/// ([`precalculate_pulse_conductance`]) along the bisection trajectory.
/// The slot count always matches [`EncodingTable::programming_pulses`];
/// the width is where level count and target placement actually matter.
pub fn pulse_plan(params: &DeviceParams, encoded: &EncodedTargets) -> Result<PulseBudget> {
    let (g_min, g_max) = (params.g_off(), params.g_on());
    let reset = precalculate_pulse_conductance(params, g_max, g_min)?;
    let mut pulses = 0u64;
    let mut total_width_s = 0.0;
    for (q, &levels) in encoded.table.levels().iter().enumerate() {
        for side in [&encoded.pos, &encoded.neg] {
            for j in 0..side.cols() {
                let target = side[(q, j)];
                pulses += EncodingTable::pulses_per_device(levels);
                total_width_s += reset.width_s();
                if levels == 0 {
                    // One pre-calculated SET from the freshly reset state.
                    if target > g_min {
                        total_width_s +=
                            precalculate_pulse_conductance(params, g_min, target)?.width_s();
                    }
                } else {
                    // Successive approximation: one bisection step per bit.
                    let (mut lo, mut hi, mut cur) = (g_min, g_max, g_min);
                    for _ in 0..EncodingTable::bits_for(levels) {
                        let mid = 0.5 * (lo + hi);
                        if (mid - cur).abs() > f64::EPSILON * g_max {
                            total_width_s +=
                                precalculate_pulse_conductance(params, cur, mid)?.width_s();
                        }
                        cur = mid;
                        if target > mid {
                            lo = mid;
                        } else {
                            hi = mid;
                        }
                    }
                }
            }
        }
    }
    Ok(PulseBudget {
        pulses,
        total_width_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping() -> WeightMapping {
        WeightMapping::new(&DeviceParams::default(), 1.0).unwrap()
    }

    fn weights() -> Matrix {
        Matrix::from_rows(&[
            vec![0.9, -0.1, 0.0],
            vec![0.05, -0.02, 0.01],
            vec![-0.7, 0.6, -0.5],
            vec![0.2, 0.0, -0.2],
        ])
    }

    #[test]
    fn differential_encoding_matches_legacy_targets_bitwise() {
        let m = mapping();
        let w = weights();
        let enc = DifferentialPair
            .encode(&w, &m, &EncodingContext::default())
            .unwrap();
        let (pos, neg) = m.weights_to_targets(&w);
        assert_eq!(enc.pos.as_slice(), pos.as_slice());
        assert_eq!(enc.neg.as_slice(), neg.as_slice());
        assert_eq!(enc.table, EncodingTable::differential(4));
        assert!(enc.table.effective_bits().is_infinite());
    }

    #[test]
    fn mlc_snaps_to_grid_and_keeps_zero_exact() {
        let m = mapping();
        let w = weights();
        let enc = MultiLevelCell::new(3)
            .unwrap()
            .encode(&w, &m, &EncodingContext::default())
            .unwrap();
        let step = (m.g_max() - m.g_min()) / 7.0;
        for &g in enc.pos.as_slice().iter().chain(enc.neg.as_slice()) {
            let k = (g - m.g_min()) / step;
            assert!((k - k.round()).abs() < 1e-9, "off-grid target {g:e}");
        }
        // Zero weight → baseline on both sides, exactly.
        assert_eq!(enc.pos[(0, 2)], m.g_min());
        assert_eq!(enc.neg[(0, 2)], m.g_min());
        assert_eq!(enc.table.effective_bits(), 3.0);
    }

    #[test]
    fn quantizer_is_idempotent_and_monotone_on_a_sweep() {
        let (g_min, g_max) = (1e-6, 1e-4);
        let mut last = -1.0;
        for k in 0..=100 {
            let g = g_min + (g_max - g_min) * f64::from(k) / 100.0;
            let q = quantize_to_levels(g, g_min, g_max, 16);
            assert_eq!(quantize_to_levels(q, g_min, g_max, 16), q);
            assert!(q >= last);
            last = q;
        }
    }

    #[test]
    fn adaptive_gives_fine_levels_to_sensitive_rows() {
        let m = mapping();
        let w = weights();
        // Row 2 has the largest L1 mass, row 0 second; fraction 0.5 of 4
        // rows = 2 fine rows.
        let enc = AdaptiveRowQuant::new(2, 6, 0.5)
            .unwrap()
            .encode(&w, &m, &EncodingContext::default())
            .unwrap();
        assert_eq!(enc.table.levels(), &[64, 4, 64, 4]);
        // Explicit sensitivity overrides the weight-mass fallback.
        let sens = [0.0, 9.0, 0.1, 8.0];
        let ctx = EncodingContext {
            row_sensitivity: Some(&sens),
        };
        let enc = AdaptiveRowQuant::new(2, 6, 0.5)
            .unwrap()
            .encode(&w, &m, &ctx)
            .unwrap();
        assert_eq!(enc.table.levels(), &[4, 64, 4, 64]);
    }

    #[test]
    fn adaptive_rejects_mismatched_sensitivity() {
        let sens = [1.0; 3];
        let ctx = EncodingContext {
            row_sensitivity: Some(&sens),
        };
        let err = AdaptiveRowQuant::new(2, 6, 0.5)
            .unwrap()
            .encode(&weights(), &mapping(), &ctx)
            .unwrap_err();
        assert!(matches!(err, XbarError::ShapeMismatch { .. }));
    }

    #[test]
    fn spec_validation() {
        assert!(EncodingSpec::MultiLevelCell { bits: 0 }.build().is_err());
        assert!(EncodingSpec::MultiLevelCell { bits: 13 }.build().is_err());
        assert!(EncodingSpec::AdaptiveRowQuant {
            low_bits: 6,
            high_bits: 2,
            fine_fraction: 0.5
        }
        .build()
        .is_err());
        assert!(EncodingSpec::AdaptiveRowQuant {
            low_bits: 2,
            high_bits: 6,
            fine_fraction: 1.5
        }
        .build()
        .is_err());
        assert!(EncodingSpec::default().is_differential());
    }

    #[test]
    fn pulse_accounting_matches_table_arithmetic() {
        let m = mapping();
        let w = weights();
        let cols = w.cols();
        for spec in [
            EncodingSpec::DifferentialPair,
            EncodingSpec::MultiLevelCell { bits: 4 },
            EncodingSpec::AdaptiveRowQuant {
                low_bits: 2,
                high_bits: 6,
                fine_fraction: 0.5,
            },
        ] {
            let enc = spec
                .build()
                .unwrap()
                .encode(&w, &m, &EncodingContext::default())
                .unwrap();
            let budget = pulse_plan(&DeviceParams::default(), &enc).unwrap();
            assert_eq!(budget.pulses, enc.table.programming_pulses(cols));
            assert!(budget.total_width_s > 0.0);
        }
    }

    #[test]
    fn equal_budget_construction_holds_for_even_rows() {
        // low=2 / high=6 at fraction 1/2 prices identically to fixed 4-bit
        // whenever the row count is even: (3 + 7)/2 = 5 slots per device.
        let fixed = EncodingTable::new(EncodingScheme::MultiLevel, vec![16; 8]).unwrap();
        let mut mixed = vec![4u16; 4];
        mixed.extend_from_slice(&[64; 4]);
        let adaptive = EncodingTable::new(EncodingScheme::AdaptiveRow, mixed).unwrap();
        assert_eq!(
            fixed.programming_pulses(10),
            adaptive.programming_pulses(10)
        );
    }

    #[test]
    fn scheme_codes_round_trip() {
        for s in [
            EncodingScheme::Differential,
            EncodingScheme::MultiLevel,
            EncodingScheme::AdaptiveRow,
        ] {
            assert_eq!(EncodingScheme::from_code(s.code()), Some(s));
        }
        assert_eq!(EncodingScheme::from_code(7), None);
    }

    #[test]
    fn table_rejects_single_level_rows() {
        assert!(EncodingTable::new(EncodingScheme::MultiLevel, vec![1, 4]).is_err());
    }
}
