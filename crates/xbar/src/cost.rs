//! Hardware-overhead accounting: programming time, programming energy,
//! and converter activity.
//!
//! The paper's case for open-loop training is cost (§1, §4): CLD needs a
//! high-resolution ADC in a feedback loop and many program/sense
//! iterations, while OLD/Vortex pay once up front (plus, for Vortex, the
//! pre-test pass). Fig. 9 frames redundancy as *overhead vs. test rate*.
//! This module provides the bookkeeping to make those comparisons
//! quantitative.

use serde::{Deserialize, Serialize};

use crate::Result;
use crate::XbarError;

/// Accumulated hardware activity of a training/programming session.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostLedger {
    /// Number of programming pulses issued.
    pub pulse_count: u64,
    /// Total programming time: the sum of pulse widths, in seconds.
    pub program_time_s: f64,
    /// Programming energy in joules (`V²·g·t` per pulse, using the
    /// device's conductance during the pulse as a first-order estimate).
    pub program_energy_j: f64,
    /// ADC conversions performed (sensing operations).
    pub adc_conversions: u64,
    /// DAC settlements performed (input drives).
    pub dac_settlements: u64,
    /// Crossbar cells occupied (area proxy).
    pub cells_used: u64,
}

impl CostLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one programming pulse of the given voltage/width applied
    /// to a device of (mean) conductance `g`.
    pub fn record_pulse(&mut self, voltage: f64, width_s: f64, g: f64) {
        self.pulse_count += 1;
        self.program_time_s += width_s;
        self.program_energy_j += voltage * voltage * g * width_s;
    }

    /// Records `n` ADC conversions.
    pub fn record_adc(&mut self, n: u64) {
        self.adc_conversions += n;
    }

    /// Records `n` DAC settlements.
    pub fn record_dac(&mut self, n: u64) {
        self.dac_settlements += n;
    }

    /// Records the cell count of an occupied array.
    pub fn record_cells(&mut self, n: u64) {
        self.cells_used += n;
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &CostLedger) {
        self.pulse_count += other.pulse_count;
        self.program_time_s += other.program_time_s;
        self.program_energy_j += other.program_energy_j;
        self.adc_conversions += other.adc_conversions;
        self.dac_settlements += other.dac_settlements;
        self.cells_used += other.cells_used;
    }
}

impl std::fmt::Display for CostLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} pulses, {:.3e} s, {:.3e} J, {} ADC conv, {} DAC settle, {} cells",
            self.pulse_count,
            self.program_time_s,
            self.program_energy_j,
            self.adc_conversions,
            self.dac_settlements,
            self.cells_used
        )
    }
}

/// Analytic per-scheme cost estimates for an `rows × cols` crossbar pair.
///
/// These are closed-form expected costs built from the protocol
/// definitions — the quantities the paper compares qualitatively in
/// §1/§4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchemeCostModel {
    /// Logical rows of the weight matrix.
    pub rows: usize,
    /// Columns (classes).
    pub cols: usize,
    /// Redundant rows (Vortex only).
    pub redundant_rows: usize,
    /// Mean single-device programming pulse width, seconds.
    pub mean_pulse_width_s: f64,
    /// Pre-test repeats per device (Vortex only).
    pub pretest_repeats: usize,
    /// Training samples per epoch (CLD only).
    pub samples: usize,
    /// Training epochs (CLD only).
    pub epochs: usize,
}

impl SchemeCostModel {
    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidParameter`] for zero-sized arrays or a
    /// non-positive pulse width.
    pub fn validate(&self) -> Result<()> {
        if self.rows == 0 || self.cols == 0 {
            return Err(XbarError::InvalidParameter {
                name: "rows/cols",
                requirement: "must both be positive",
            });
        }
        if !(self.mean_pulse_width_s.is_finite() && self.mean_pulse_width_s > 0.0) {
            return Err(XbarError::InvalidParameter {
                name: "mean_pulse_width_s",
                requirement: "must be finite and positive",
            });
        }
        Ok(())
    }

    /// Number of physical cells in the differential pair (both crossbars,
    /// including redundancy).
    pub fn physical_cells(&self) -> u64 {
        (2 * (self.rows + self.redundant_rows) * self.cols) as u64
    }

    /// OLD: one reset + one SET pulse per cell, no sensing at all.
    ///
    /// # Errors
    ///
    /// Propagates validation errors.
    pub fn old_cost(&self) -> Result<CostLedger> {
        self.validate()?;
        let cells = (2 * self.rows * self.cols) as u64;
        Ok(CostLedger {
            pulse_count: 2 * cells,
            program_time_s: 2.0 * cells as f64 * self.mean_pulse_width_s,
            program_energy_j: 0.0, // filled by callers that track g; kept 0 in the closed form
            adc_conversions: 0,
            dac_settlements: cells,
            cells_used: cells,
        })
    }

    /// CLD: every training step senses all columns and re-programs every
    /// touched cell; per epoch that is ≈ `samples·cols` conversions and
    /// up to `samples·rows·cols` micro-pulses.
    ///
    /// # Errors
    ///
    /// Propagates validation errors.
    pub fn cld_cost(&self) -> Result<CostLedger> {
        self.validate()?;
        let steps = (self.samples * self.epochs) as u64;
        let conversions = steps * self.cols as u64;
        let micro_pulses = steps * (self.rows * self.cols) as u64;
        Ok(CostLedger {
            pulse_count: micro_pulses,
            // Micro-pulses are much shorter than full-swing pulses; use a
            // tenth of the mean width as the per-update estimate.
            program_time_s: micro_pulses as f64 * self.mean_pulse_width_s * 0.1,
            program_energy_j: 0.0,
            adc_conversions: conversions,
            dac_settlements: steps * self.rows as u64,
            cells_used: (2 * self.rows * self.cols) as u64,
        })
    }

    /// Vortex: OLD's programming plus the pre-test pass (program + sense
    /// `pretest_repeats` times per physical cell).
    ///
    /// # Errors
    ///
    /// Propagates validation errors.
    pub fn vortex_cost(&self) -> Result<CostLedger> {
        self.validate()?;
        let mut ledger = self.old_cost()?;
        let physical = self.physical_cells();
        let pretest_pulses = physical * (2 * self.pretest_repeats) as u64;
        ledger.pulse_count += pretest_pulses;
        ledger.program_time_s += pretest_pulses as f64 * self.mean_pulse_width_s;
        ledger.adc_conversions += physical * self.pretest_repeats as u64;
        ledger.cells_used = physical;
        Ok(ledger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SchemeCostModel {
        SchemeCostModel {
            rows: 784,
            cols: 10,
            redundant_rows: 100,
            mean_pulse_width_s: 1e-6,
            pretest_repeats: 3,
            samples: 4000,
            epochs: 20,
        }
    }

    #[test]
    fn ledger_accumulates() {
        let mut l = CostLedger::new();
        l.record_pulse(2.8, 1e-6, 1e-4);
        l.record_pulse(2.8, 2e-6, 1e-4);
        l.record_adc(5);
        l.record_dac(3);
        l.record_cells(100);
        assert_eq!(l.pulse_count, 2);
        assert!((l.program_time_s - 3e-6).abs() < 1e-18);
        assert!((l.program_energy_j - 2.8 * 2.8 * 1e-4 * 3e-6).abs() < 1e-15);
        assert_eq!(l.adc_conversions, 5);
        let mut l2 = CostLedger::new();
        l2.record_adc(1);
        l.merge(&l2);
        assert_eq!(l.adc_conversions, 6);
        assert!(l.to_string().contains("pulses"));
    }

    #[test]
    fn old_needs_no_adc() {
        let c = model().old_cost().unwrap();
        assert_eq!(c.adc_conversions, 0);
        assert_eq!(c.pulse_count, 2 * 2 * 784 * 10);
    }

    #[test]
    fn cld_dominates_adc_usage() {
        let m = model();
        let cld = m.cld_cost().unwrap();
        let vortex = m.vortex_cost().unwrap();
        assert!(
            cld.adc_conversions > 10 * vortex.adc_conversions,
            "CLD {} vs Vortex {} conversions",
            cld.adc_conversions,
            vortex.adc_conversions
        );
    }

    #[test]
    fn vortex_overhead_is_pretest_plus_redundancy() {
        let m = model();
        let old = m.old_cost().unwrap();
        let vortex = m.vortex_cost().unwrap();
        assert!(vortex.pulse_count > old.pulse_count);
        assert_eq!(vortex.cells_used, 2 * (784 + 100) * 10);
        assert_eq!(old.cells_used, 2 * 784 * 10);
        // Pre-test ADC activity is one conversion per repeat per cell.
        assert_eq!(vortex.adc_conversions, 2 * (784 + 100) * 10 * 3);
    }

    #[test]
    fn validation() {
        let mut m = model();
        m.rows = 0;
        assert!(m.validate().is_err());
        m = model();
        m.mean_pulse_width_s = 0.0;
        assert!(m.validate().is_err());
    }
}
