//! The crossbar array: a grid of memristors with shared wiring.

use serde::{Deserialize, Serialize};
use vortex_device::defects::{DefectMap, DefectModel};
use vortex_device::pulse::precalculate_pulse_conductance;
use vortex_device::{DeviceParams, Memristor, VariationModel};
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::Matrix;

use crate::irdrop::ProgramVoltageMap;
use crate::{Result, XbarError};

/// Static configuration of a crossbar instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossbarConfig {
    /// Number of word (input) lines.
    pub rows: usize,
    /// Number of bit (output) lines.
    pub cols: usize,
    /// Nominal device corner.
    pub device: DeviceParams,
    /// Wire resistance per segment, in ohms (the paper's Table 1 uses
    /// 2.5 Ω).
    pub r_wire: f64,
    /// Device variation model used when instantiating the array.
    pub variation: VariationModel,
    /// Fabrication defect model used when instantiating the array.
    pub defects: DefectModel,
}

impl CrossbarConfig {
    /// A variation-free, defect-free, zero-wire-resistance configuration.
    pub fn ideal(rows: usize, cols: usize, device: DeviceParams) -> Self {
        Self {
            rows,
            cols,
            device,
            r_wire: 0.0,
            variation: VariationModel::none(),
            defects: DefectModel::none(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidParameter`] for an empty array or a
    /// negative/non-finite wire resistance.
    pub fn validate(&self) -> Result<()> {
        if self.rows == 0 || self.cols == 0 {
            return Err(XbarError::InvalidParameter {
                name: "rows/cols",
                requirement: "must both be positive",
            });
        }
        if !(self.r_wire.is_finite() && self.r_wire >= 0.0) {
            return Err(XbarError::InvalidParameter {
                name: "r_wire",
                requirement: "must be finite and non-negative",
            });
        }
        Ok(())
    }
}

/// An `rows × cols` memristor crossbar.
///
/// Each cell carries its own parametric-variation realization θ (drawn at
/// construction — variation is a property of the fabricated device) and
/// possibly a stuck-at defect.
#[derive(Debug, Clone)]
pub struct Crossbar {
    config: CrossbarConfig,
    devices: Vec<Memristor>,
    defect_map: DefectMap,
}

impl Crossbar {
    /// Fabricates a crossbar: samples per-device variation and defects.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidParameter`] if the configuration is
    /// invalid.
    pub fn new(config: CrossbarConfig, rng: &mut Xoshiro256PlusPlus) -> Result<Self> {
        config.validate()?;
        let defect_map = config.defects.sample_map(config.rows, config.cols, rng);
        let mut devices = Vec::with_capacity(config.rows * config.cols);
        for i in 0..config.rows {
            for j in 0..config.cols {
                let theta = config.variation.sample_theta(rng);
                let dev =
                    Memristor::with_theta(config.device, theta).with_defect(defect_map.get(i, j));
                devices.push(dev);
            }
        }
        Ok(Self {
            config,
            devices,
            defect_map,
        })
    }

    /// Fabricates a crossbar with an externally supplied per-device
    /// deviation field (e.g. a spatially correlated model such as
    /// [`vortex_device::variation::CorrelatedVariationModel`]); defects
    /// are still drawn from the configuration's defect model.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidParameter`] for an invalid
    /// configuration or [`XbarError::ShapeMismatch`] if the field's shape
    /// disagrees with the configuration.
    pub fn with_theta_field(
        config: CrossbarConfig,
        theta: &Matrix,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Result<Self> {
        config.validate()?;
        if theta.shape() != (config.rows, config.cols) {
            return Err(XbarError::ShapeMismatch {
                context: "with_theta_field",
                expected: config.rows * config.cols,
                actual: theta.rows() * theta.cols(),
            });
        }
        let defect_map = config.defects.sample_map(config.rows, config.cols, rng);
        let mut devices = Vec::with_capacity(config.rows * config.cols);
        for i in 0..config.rows {
            for j in 0..config.cols {
                let dev = Memristor::with_theta(config.device, theta[(i, j)])
                    .with_defect(defect_map.get(i, j));
                devices.push(dev);
            }
        }
        Ok(Self {
            config,
            devices,
            defect_map,
        })
    }

    /// An ideal (variation-free, defect-free, zero-wire) crossbar.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `cols == 0`.
    pub fn ideal(rows: usize, cols: usize, device: DeviceParams) -> Self {
        let config = CrossbarConfig::ideal(rows, cols, device);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(0);
        Self::new(config, &mut rng).expect("ideal config with positive dims is valid")
    }

    /// The configuration this array was fabricated with.
    pub fn config(&self) -> &CrossbarConfig {
        &self.config
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.config.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.config.cols
    }

    /// Borrow device `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn device(&self, i: usize, j: usize) -> &Memristor {
        assert!(i < self.rows() && j < self.cols(), "device index oob");
        &self.devices[i * self.cols() + j]
    }

    /// Mutably borrow device `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn device_mut(&mut self, i: usize, j: usize) -> &mut Memristor {
        assert!(i < self.rows() && j < self.cols(), "device index oob");
        let cols = self.cols();
        &mut self.devices[i * cols + j]
    }

    /// The fabrication defect map.
    pub fn defect_map(&self) -> &DefectMap {
        &self.defect_map
    }

    /// Realized conductance matrix (includes variation and defects) — what
    /// the physics actually computes with.
    pub fn conductances(&self) -> Matrix {
        Matrix::from_fn(self.rows(), self.cols(), |i, j| {
            self.device(i, j).conductance()
        })
    }

    /// True per-device deviations θ (testing/oracle use; real hardware
    /// only sees these through [`crate::pretest`]).
    pub fn thetas(&self) -> Matrix {
        Matrix::from_fn(self.rows(), self.cols(), |i, j| self.device(i, j).theta())
    }

    /// Ideal (zero-wire-resistance) crossbar read: `y_j = Σ_i x_i·g_ij`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn compute_ideal(&self, x: &[f64]) -> Vec<f64> {
        crate::ideal::compute(&self.conductances(), x)
    }

    /// Open-loop programming: for every cell, pre-calculate the pulse from
    /// the *nominal* model (variation-blind, as OLD must be) and apply it.
    ///
    /// `program_irdrop`, when given, degrades each cell's programming
    /// voltage by the supplied map (see
    /// [`crate::irdrop::ProgramVoltageMap`]) — the open-loop programmer
    /// does *not* know about this degradation unless it compensates
    /// explicitly (see [`crate::program`]).
    ///
    /// Switching variation (cycle-to-cycle) jitter is drawn from the
    /// crossbar's variation model using `rng`.
    ///
    /// # Errors
    ///
    /// * [`XbarError::ShapeMismatch`] if `targets` is not `rows × cols`.
    /// * [`XbarError::Device`] if a pulse pre-calculation fails.
    pub fn program_open_loop(
        &mut self,
        targets: &Matrix,
        program_irdrop: Option<&ProgramVoltageMap>,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Result<()> {
        if targets.shape() != (self.rows(), self.cols()) {
            return Err(XbarError::ShapeMismatch {
                context: "program_open_loop targets",
                expected: self.rows() * self.cols(),
                actual: targets.rows() * targets.cols(),
            });
        }
        let params = self.config.device;
        let variation = self.config.variation;
        for i in 0..self.rows() {
            for j in 0..self.cols() {
                // Reset then SET to target: deterministic two-step
                // programming from a known state, as pre-testing assumes.
                let dev = self.device_mut(i, j);
                dev.reset_to_hrs();
                let g_target = targets[(i, j)];
                let pulse = precalculate_pulse_conductance(&params, params.g_off(), g_target)?;
                let pulse = match program_irdrop {
                    Some(map) => pulse.scaled_voltage(map.factor(i, j)),
                    None => pulse,
                };
                let eps = variation.sample_switching(rng);
                let dev = self.device_mut(i, j);
                if eps == 0.0 {
                    dev.apply_pulse(&pulse);
                } else {
                    dev.apply_pulse_with_jitter(&pulse, eps);
                }
            }
        }
        Ok(())
    }

    /// Forces every device's *nominal* state to realize `targets` exactly
    /// (before variation). This emulates a perfectly converged close-loop
    /// programmer in the absence of sensing limits, and is also the
    /// fast path used when programming physics is not under study.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::ShapeMismatch`] if `targets` is not
    /// `rows × cols`.
    pub fn force_nominal_conductances(&mut self, targets: &Matrix) -> Result<()> {
        if targets.shape() != (self.rows(), self.cols()) {
            return Err(XbarError::ShapeMismatch {
                context: "force_nominal_conductances targets",
                expected: self.rows() * self.cols(),
                actual: targets.rows() * targets.cols(),
            });
        }
        let params = self.config.device;
        for i in 0..self.rows() {
            for j in 0..self.cols() {
                let w = params.w_from_conductance(targets[(i, j)]);
                self.device_mut(i, j).force_state(w);
            }
        }
        Ok(())
    }

    /// Resets every device to HRS.
    pub fn reset_all(&mut self) {
        for d in &mut self.devices {
            d.reset_to_hrs();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(11)
    }

    fn config(rows: usize, cols: usize, sigma: f64) -> CrossbarConfig {
        CrossbarConfig {
            rows,
            cols,
            device: DeviceParams::default(),
            r_wire: 2.5,
            variation: VariationModel::parametric(sigma).unwrap(),
            defects: DefectModel::none(),
        }
    }

    #[test]
    fn validation_rejects_degenerate() {
        let mut r = rng();
        let mut c = config(0, 4, 0.0);
        assert!(Crossbar::new(c, &mut r).is_err());
        c = config(4, 4, 0.0);
        c.r_wire = -1.0;
        assert!(Crossbar::new(c, &mut r).is_err());
    }

    #[test]
    fn fabrication_samples_theta_per_device() {
        let mut r = rng();
        let xbar = Crossbar::new(config(20, 20, 0.5), &mut r).unwrap();
        let thetas = xbar.thetas();
        let spread = vortex_linalg::stats::std_dev(thetas.as_slice());
        assert!((spread - 0.5).abs() < 0.1, "theta spread {spread}");
    }

    #[test]
    fn ideal_crossbar_has_no_variation() {
        let xbar = Crossbar::ideal(5, 5, DeviceParams::default());
        assert!(xbar.thetas().as_slice().iter().all(|&t| t == 0.0));
        assert_eq!(xbar.defect_map().defect_count(), 0);
    }

    #[test]
    fn open_loop_programming_on_ideal_device_hits_targets() {
        let mut r = rng();
        let mut xbar = Crossbar::ideal(3, 3, DeviceParams::default());
        let targets = Matrix::from_fn(3, 3, |i, j| 2e-6 + (i * 3 + j) as f64 * 1e-5);
        xbar.program_open_loop(&targets, None, &mut r).unwrap();
        let g = xbar.conductances();
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (g[(i, j)] - targets[(i, j)]).abs() / targets[(i, j)] < 1e-2,
                    "cell ({i},{j}): {} vs {}",
                    g[(i, j)],
                    targets[(i, j)]
                );
            }
        }
    }

    #[test]
    fn open_loop_programming_misses_under_variation() {
        let mut r = rng();
        let mut xbar = Crossbar::new(config(10, 10, 0.6), &mut r).unwrap();
        let targets = Matrix::filled(10, 10, 5e-5);
        xbar.program_open_loop(&targets, None, &mut r).unwrap();
        let g = xbar.conductances();
        // Realized conductance should equal target·e^θ per cell.
        for i in 0..10 {
            for j in 0..10 {
                let expected = 5e-5 * xbar.device(i, j).theta().exp();
                assert!(
                    (g[(i, j)] - expected).abs() / expected < 1e-2,
                    "cell ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn force_nominal_then_variation_multiplies() {
        let mut r = rng();
        let mut xbar = Crossbar::new(config(4, 4, 0.4), &mut r).unwrap();
        let targets = Matrix::filled(4, 4, 2e-5);
        xbar.force_nominal_conductances(&targets).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let expected = 2e-5 * xbar.device(i, j).theta().exp();
                let got = xbar.device(i, j).conductance();
                assert!((got - expected).abs() / expected < 1e-9);
            }
        }
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let mut r = rng();
        let mut xbar = Crossbar::ideal(3, 3, DeviceParams::default());
        let bad = Matrix::filled(2, 3, 1e-5);
        assert!(matches!(
            xbar.program_open_loop(&bad, None, &mut r),
            Err(XbarError::ShapeMismatch { .. })
        ));
        assert!(xbar.force_nominal_conductances(&bad).is_err());
    }

    #[test]
    fn compute_ideal_is_conductance_weighted_sum() {
        let mut r = rng();
        let mut xbar = Crossbar::ideal(2, 2, DeviceParams::default());
        let targets = Matrix::from_rows(&[vec![1e-5, 2e-5], vec![3e-5, 4e-5]]);
        xbar.program_open_loop(&targets, None, &mut r).unwrap();
        let y = xbar.compute_ideal(&[1.0, 0.5]);
        assert!((y[0] - (1e-5 + 0.5 * 3e-5)).abs() < 1e-7);
        assert!((y[1] - (2e-5 + 0.5 * 4e-5)).abs() < 1e-7);
    }

    #[test]
    fn reset_all_returns_to_hrs() {
        let mut r = rng();
        let mut xbar = Crossbar::ideal(3, 3, DeviceParams::default());
        let targets = Matrix::filled(3, 3, 9e-5);
        xbar.program_open_loop(&targets, None, &mut r).unwrap();
        xbar.reset_all();
        let g_off = DeviceParams::default().g_off();
        for i in 0..3 {
            for j in 0..3 {
                assert!((xbar.device(i, j).conductance() - g_off).abs() / g_off < 1e-9);
            }
        }
    }

    #[test]
    fn defective_cells_survive_in_map_and_devices() {
        let mut r = rng();
        let mut c = config(30, 30, 0.0);
        c.defects = DefectModel::new(0.05, 0.05).unwrap();
        let xbar = Crossbar::new(c, &mut r).unwrap();
        let n_def = xbar.defect_map().defect_count();
        assert!(n_def > 10, "expected some defects, got {n_def}");
        // Device view must agree with the map.
        for i in 0..30 {
            for j in 0..30 {
                assert_eq!(xbar.device(i, j).defect(), xbar.defect_map().get(i, j));
            }
        }
    }
}
