//! The V/2 half-select programming protocol with optional IR-drop
//! compensation and half-select disturb modeling.
//!
//! [`Crossbar::program_open_loop`](crate::crossbar::Crossbar::program_open_loop)
//! is the plain variation-blind programmer. This module adds the richer
//! protocol features studied by the paper:
//!
//! * **IR-drop compensation** (§3.2, after Liu et al. ICCAD'14): the pulse
//!   pre-calculation can use an *estimated* degradation map to lengthen
//!   pulses so that the degraded voltage still lands on target.
//! * **Half-select disturb**: while cell `(p, q)` is programmed, every
//!   other cell on row `p` and column `q` sees ±V/2 and drifts slightly;
//!   the sinh threshold makes this nearly — but not exactly — zero.

use vortex_device::pulse::Pulse;
use vortex_device::switching::width_for_target;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::Matrix;

use crate::crossbar::Crossbar;
use crate::irdrop::ProgramVoltageMap;
use crate::{Result, XbarError};

/// Options for [`program_with_protocol`].
#[derive(Debug, Clone, Default)]
pub struct ProgramOptions {
    /// Degradation map the *programmer believes* (used to compensate pulse
    /// widths). `None` disables compensation.
    pub compensation: Option<ProgramVoltageMap>,
    /// Whether to simulate the tiny drift of half-selected cells.
    pub half_select_disturb: bool,
}

/// Programs `xbar` to the target conductances with the V/2 protocol.
///
/// `actual_irdrop` is the physical degradation each cell's programming
/// voltage suffers; `options.compensation` is the programmer's *estimate*
/// of it. When the estimate matches reality the compensation is exact (up
/// to device variation, which no open-loop scheme can see).
///
/// # Errors
///
/// * [`XbarError::ShapeMismatch`] if `targets` does not match the array.
/// * [`XbarError::Device`] if a target is unreachable — e.g. the degraded
///   programming voltage falls below the switching threshold.
pub fn program_with_protocol(
    xbar: &mut Crossbar,
    targets: &Matrix,
    actual_irdrop: Option<&ProgramVoltageMap>,
    options: &ProgramOptions,
    rng: &mut Xoshiro256PlusPlus,
) -> Result<()> {
    let (m, n) = (xbar.rows(), xbar.cols());
    if targets.shape() != (m, n) {
        return Err(XbarError::ShapeMismatch {
            context: "program_with_protocol targets",
            expected: m * n,
            actual: targets.rows() * targets.cols(),
        });
    }
    let params = xbar.config().device;
    let variation = xbar.config().variation;
    let v_nom = params.v_program();

    // Phase 1: global reset to HRS (bulk erase, no per-cell selection).
    xbar.reset_all();

    // Phase 2: per-cell SET pulses.
    for p in 0..m {
        for q in 0..n {
            let g_target = targets[(p, q)].clamp(params.g_off(), params.g_on());
            let mut w_target = params.w_from_conductance(g_target);
            const MARGIN: f64 = 1e-6;
            w_target = w_target.clamp(MARGIN, 1.0 - MARGIN);

            // The programmer plans with its *estimated* effective voltage.
            // A cell whose estimated voltage falls at or below the
            // switching threshold cannot be fully compensated by pulse
            // width alone — the plan clamps just above threshold and the
            // cell simply lands short (the physical limit of open-loop
            // compensation).
            let v_planned = match &options.compensation {
                Some(est) => {
                    let v_est = v_nom * est.factor(p, q);
                    v_est.max(params.v_threshold() * 1.05)
                }
                None => v_nom,
            };
            let w0 = xbar.device(p, q).state();
            let width = match width_for_target(&params, w0, w_target, v_planned) {
                Some(wd) => wd,
                None => {
                    return Err(XbarError::Device(
                        vortex_device::DeviceError::TargetUnreachable {
                            from_ohms: params.resistance_from_w(w0),
                            to_ohms: 1.0 / g_target,
                        },
                    ))
                }
            };

            // Physics: the cell actually sees the *actual* degraded voltage.
            let v_actual = match actual_irdrop {
                Some(map) => v_nom * map.factor(p, q),
                None => v_nom,
            };
            let pulse = Pulse::new(v_actual, width)?;
            let eps = variation.sample_switching(rng);
            if eps == 0.0 {
                xbar.device_mut(p, q).apply_pulse(&pulse);
            } else {
                xbar.device_mut(p, q).apply_pulse_with_jitter(&pulse, eps);
            }

            // Half-select disturb on row/column mates.
            if options.half_select_disturb {
                let half = Pulse::new(v_nom / 2.0, width)?;
                for j in 0..n {
                    if j != q {
                        xbar.device_mut(p, j).apply_pulse(&half);
                    }
                }
                for i in 0..m {
                    if i != p {
                        xbar.device_mut(i, q).apply_pulse(&half);
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    use vortex_device::DeviceParams;

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(31)
    }

    fn ideal_xbar(m: usize, n: usize) -> Crossbar {
        Crossbar::ideal(m, n, DeviceParams::default())
    }

    fn targets(m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, |i, j| 5e-6 + ((i * n + j) % 7) as f64 * 1e-5)
    }

    fn max_rel_err(xbar: &Crossbar, t: &Matrix) -> f64 {
        let g = xbar.conductances();
        let mut worst = 0.0_f64;
        for i in 0..t.rows() {
            for j in 0..t.cols() {
                worst = worst.max((g[(i, j)] - t[(i, j)]).abs() / t[(i, j)]);
            }
        }
        worst
    }

    #[test]
    fn plain_protocol_hits_targets_without_irdrop() {
        let mut xbar = ideal_xbar(4, 4);
        let t = targets(4, 4);
        program_with_protocol(&mut xbar, &t, None, &ProgramOptions::default(), &mut rng()).unwrap();
        assert!(max_rel_err(&xbar, &t) < 1e-2);
    }

    #[test]
    fn uncompensated_irdrop_misses_targets() {
        let mut xbar = ideal_xbar(8, 8);
        let t = Matrix::filled(8, 8, 8e-5); // near-LRS targets, heavy loading
        let map =
            ProgramVoltageMap::analytic(&t, 15.0, DeviceParams::default().v_program()).unwrap();
        program_with_protocol(
            &mut xbar,
            &t,
            Some(&map),
            &ProgramOptions::default(),
            &mut rng(),
        )
        .unwrap();
        let err = max_rel_err(&xbar, &t);
        assert!(err > 0.05, "uncompensated IR drop should miss: {err}");
    }

    #[test]
    fn perfect_compensation_recovers_targets() {
        let mut xbar = ideal_xbar(8, 8);
        let t = Matrix::filled(8, 8, 8e-5);
        let map =
            ProgramVoltageMap::analytic(&t, 15.0, DeviceParams::default().v_program()).unwrap();
        let opts = ProgramOptions {
            compensation: Some(map.clone()),
            half_select_disturb: false,
        };
        program_with_protocol(&mut xbar, &t, Some(&map), &opts, &mut rng()).unwrap();
        let err = max_rel_err(&xbar, &t);
        assert!(err < 1e-2, "perfect compensation should land: {err}");
    }

    #[test]
    fn imperfect_compensation_is_between() {
        let mut uncomp = ideal_xbar(8, 8);
        let mut partial = ideal_xbar(8, 8);
        let t = Matrix::filled(8, 8, 8e-5);
        let v = DeviceParams::default().v_program();
        let actual = ProgramVoltageMap::analytic(&t, 15.0, v).unwrap();
        // A cruder estimate: analytic map computed at half the real r_wire.
        let estimate = ProgramVoltageMap::analytic(&t, 7.5, v).unwrap();
        program_with_protocol(
            &mut uncomp,
            &t,
            Some(&actual),
            &ProgramOptions::default(),
            &mut rng(),
        )
        .unwrap();
        let opts = ProgramOptions {
            compensation: Some(estimate),
            half_select_disturb: false,
        };
        program_with_protocol(&mut partial, &t, Some(&actual), &opts, &mut rng()).unwrap();
        assert!(max_rel_err(&partial, &t) < max_rel_err(&uncomp, &t));
    }

    #[test]
    fn half_select_disturb_is_small_but_nonzero() {
        let mut clean = ideal_xbar(6, 6);
        let mut disturbed = ideal_xbar(6, 6);
        let t = targets(6, 6);
        program_with_protocol(&mut clean, &t, None, &ProgramOptions::default(), &mut rng())
            .unwrap();
        let opts = ProgramOptions {
            compensation: None,
            half_select_disturb: true,
        };
        program_with_protocol(&mut disturbed, &t, None, &opts, &mut rng()).unwrap();
        let diff = disturbed
            .conductances()
            .sub(&clean.conductances())
            .frobenius_norm();
        let base = clean.conductances().frobenius_norm();
        let rel = diff / base;
        assert!(rel > 0.0, "disturb should not be exactly zero");
        assert!(rel < 0.05, "V/2 disturb must stay small: {rel}");
    }

    #[test]
    fn degradation_below_threshold_lands_short_not_error() {
        // A pathological degradation: 10 % of nominal voltage is below the
        // switching threshold. Pulse-width compensation cannot fix that —
        // the plan clamps just above threshold, the actual sub-threshold
        // voltage moves nothing, and the cells simply stay at HRS.
        let mut xbar = ideal_xbar(2, 2);
        let t = Matrix::filled(2, 2, 5e-5);
        let crushed = ProgramVoltageMap::from_factors(Matrix::filled(2, 2, 0.1));
        let opts = ProgramOptions {
            compensation: Some(crushed.clone()),
            half_select_disturb: false,
        };
        program_with_protocol(&mut xbar, &t, Some(&crushed), &opts, &mut rng()).unwrap();
        let g_off = DeviceParams::default().g_off();
        for i in 0..2 {
            for j in 0..2 {
                let g = xbar.conductances()[(i, j)];
                assert!(
                    (g - g_off).abs() / g_off < 1e-6,
                    "sub-threshold cell should stay at HRS, got {g}"
                );
            }
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut xbar = ideal_xbar(3, 3);
        let t = Matrix::filled(2, 3, 1e-5);
        assert!(
            program_with_protocol(&mut xbar, &t, None, &ProgramOptions::default(), &mut rng())
                .is_err()
        );
    }
}
