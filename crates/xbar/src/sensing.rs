//! Peripheral converters: ADC sensing and DAC input drivers.
//!
//! §3.3 of the paper: sensing resolution bounds both the computational
//! accuracy of a crossbar NCS and the convergence quality of close-loop
//! training; §5.2 sweeps ADC resolution and finds test rate saturating at
//! 6 bits. The models here are ideal uniform quantizers with saturation —
//! exactly the abstraction the paper's analysis uses.

use serde::{Deserialize, Serialize};

use crate::{Result, XbarError};

/// Uniform-quantizing, saturating analog-to-digital converter.
///
/// Quantizes a non-negative current into `2^bits` levels over
/// `[0, full_scale]`.
///
/// # Example
///
/// ```
/// use vortex_xbar::Adc;
///
/// # fn main() -> Result<(), vortex_xbar::XbarError> {
/// let adc = Adc::new(6, 100e-6)?; // 6-bit, 100 µA full scale
/// let q = adc.quantize(37.3e-6);
/// assert!((q - 37.3e-6).abs() <= adc.step() / 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Adc {
    bits: u32,
    full_scale: f64,
}

impl Adc {
    /// Creates an ADC with the given resolution and full-scale input.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidParameter`] if `bits` is 0 or > 24, or
    /// `full_scale` is not positive and finite.
    pub fn new(bits: u32, full_scale: f64) -> Result<Self> {
        if bits == 0 || bits > 24 {
            return Err(XbarError::InvalidParameter {
                name: "bits",
                requirement: "must be in 1..=24",
            });
        }
        if !(full_scale.is_finite() && full_scale > 0.0) {
            return Err(XbarError::InvalidParameter {
                name: "full_scale",
                requirement: "must be finite and positive",
            });
        }
        Ok(Self { bits, full_scale })
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Full-scale input value.
    pub fn full_scale(&self) -> f64 {
        self.full_scale
    }

    /// Quantization step (LSB size).
    pub fn step(&self) -> f64 {
        self.full_scale / (1u64 << self.bits) as f64
    }

    /// Quantizes a value: rounds to the nearest level, saturating at the
    /// rails. Negative inputs saturate to 0.
    pub fn quantize(&self, value: f64) -> f64 {
        let levels = (1u64 << self.bits) as f64;
        let code = (value / self.step()).round().clamp(0.0, levels - 1.0);
        code * self.step()
    }

    /// Quantizes a signed value using a mirrored transfer curve
    /// (sign-magnitude): useful when sensing differential currents.
    pub fn quantize_signed(&self, value: f64) -> f64 {
        value.signum() * self.quantize(value.abs())
    }

    /// Quantizes every element of a slice.
    pub fn quantize_vec(&self, values: &[f64]) -> Vec<f64> {
        values.iter().map(|&v| self.quantize(v)).collect()
    }
}

/// Input digital-to-analog driver: quantizes the requested row voltage to
/// `2^bits` levels over `[0, v_ref]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dac {
    bits: u32,
    v_ref: f64,
}

impl Dac {
    /// Creates a DAC.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Adc::new`].
    pub fn new(bits: u32, v_ref: f64) -> Result<Self> {
        if bits == 0 || bits > 24 {
            return Err(XbarError::InvalidParameter {
                name: "bits",
                requirement: "must be in 1..=24",
            });
        }
        if !(v_ref.is_finite() && v_ref > 0.0) {
            return Err(XbarError::InvalidParameter {
                name: "v_ref",
                requirement: "must be finite and positive",
            });
        }
        Ok(Self { bits, v_ref })
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Reference (full-scale) voltage.
    pub fn v_ref(&self) -> f64 {
        self.v_ref
    }

    /// Output step size.
    pub fn step(&self) -> f64 {
        self.v_ref / (1u64 << self.bits) as f64
    }

    /// Converts a requested voltage to the nearest producible level.
    pub fn convert(&self, voltage: f64) -> f64 {
        let levels = (1u64 << self.bits) as f64;
        let code = (voltage / self.step()).round().clamp(0.0, levels - 1.0);
        code * self.step()
    }

    /// Converts every element of a slice.
    pub fn convert_vec(&self, voltages: &[f64]) -> Vec<f64> {
        voltages.iter().map(|&v| self.convert(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_validation() {
        assert!(Adc::new(0, 1e-3).is_err());
        assert!(Adc::new(25, 1e-3).is_err());
        assert!(Adc::new(6, 0.0).is_err());
        assert!(Adc::new(6, f64::NAN).is_err());
        assert!(Adc::new(6, 1e-3).is_ok());
    }

    #[test]
    fn adc_step_and_rounding() {
        let adc = Adc::new(3, 8.0).unwrap(); // step = 1.0
        assert_eq!(adc.step(), 1.0);
        assert_eq!(adc.quantize(2.4), 2.0);
        assert_eq!(adc.quantize(2.6), 3.0);
        assert_eq!(adc.quantize(0.0), 0.0);
    }

    #[test]
    fn adc_saturates() {
        let adc = Adc::new(3, 8.0).unwrap();
        assert_eq!(adc.quantize(100.0), 7.0); // top code
        assert_eq!(adc.quantize(-5.0), 0.0);
    }

    #[test]
    fn adc_error_bounded_by_half_lsb_in_range() {
        let adc = Adc::new(6, 100e-6).unwrap();
        for k in 0..1000 {
            let v = k as f64 * 1e-7;
            if v < adc.full_scale() - adc.step() {
                assert!((adc.quantize(v) - v).abs() <= adc.step() / 2.0 + 1e-18);
            }
        }
    }

    #[test]
    fn higher_resolution_means_smaller_error() {
        let coarse = Adc::new(4, 100e-6).unwrap();
        let fine = Adc::new(8, 100e-6).unwrap();
        let v = 37.7e-6;
        assert!((fine.quantize(v) - v).abs() < (coarse.quantize(v) - v).abs());
    }

    #[test]
    fn signed_quantization_is_odd() {
        let adc = Adc::new(5, 1.0).unwrap();
        assert_eq!(adc.quantize_signed(-0.4), -adc.quantize_signed(0.4));
    }

    #[test]
    fn quantize_vec_matches_elementwise() {
        let adc = Adc::new(4, 1.0).unwrap();
        let xs = [0.1, 0.5, 0.9];
        let q = adc.quantize_vec(&xs);
        for (qi, &xi) in q.iter().zip(&xs) {
            assert_eq!(*qi, adc.quantize(xi));
        }
    }

    #[test]
    fn dac_basics() {
        let dac = Dac::new(4, 1.0).unwrap();
        assert_eq!(dac.step(), 1.0 / 16.0);
        let v = dac.convert(0.52);
        assert!((v - 0.5).abs() < 0.04);
        assert_eq!(dac.convert(2.0), 15.0 / 16.0);
        assert!(Dac::new(0, 1.0).is_err());
        assert!(Dac::new(4, -1.0).is_err());
        assert_eq!(dac.convert_vec(&[0.0, 1.0]).len(), 2);
    }
}
