//! Differential crossbar pair: signed weights on unsigned conductances.
//!
//! §2.2.1 of the paper: a signed weight matrix `W` is realized by two
//! crossbars holding the magnitudes of its positive and negative parts;
//! the sensed output is the difference of the two column currents. The
//! [`WeightMapping`] fixes the affine weight→conductance transfer; the
//! shared baseline conductance `g_min` cancels in the subtraction, so the
//! reconstruction `w = (g⁺ − g⁻)/s` is exact for in-range weights.

use serde::{Deserialize, Serialize};
use vortex_device::DeviceParams;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::Matrix;

use crate::circuit::NodalAnalysis;
use crate::crossbar::{Crossbar, CrossbarConfig};
use crate::irdrop::{ComputeAttenuationMap, ProgramVoltageMap};
use crate::{Result, XbarError};

/// Affine weight ↔ conductance-pair transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightMapping {
    g_min: f64,
    g_max: f64,
    w_max: f64,
}

impl WeightMapping {
    /// Creates a mapping that places weights of magnitude up to `w_max`
    /// onto the device conductance range.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidParameter`] if `w_max` is not positive
    /// and finite.
    pub fn new(device: &DeviceParams, w_max: f64) -> Result<Self> {
        if !(w_max.is_finite() && w_max > 0.0) {
            return Err(XbarError::InvalidParameter {
                name: "w_max",
                requirement: "must be finite and positive",
            });
        }
        Ok(Self {
            g_min: device.g_off(),
            g_max: device.g_on(),
            w_max,
        })
    }

    /// Derives the mapping from the largest weight magnitude in `w`
    /// (falls back to 1.0 for an all-zero matrix).
    ///
    /// # Errors
    ///
    /// See [`Self::new`].
    pub fn fit(device: &DeviceParams, w: &Matrix) -> Result<Self> {
        let w_max = w.max_abs();
        Self::new(device, if w_max > 0.0 { w_max } else { 1.0 })
    }

    /// Conductance per unit weight.
    pub fn scale(&self) -> f64 {
        (self.g_max - self.g_min) / self.w_max
    }

    /// Largest representable weight magnitude.
    pub fn w_max(&self) -> f64 {
        self.w_max
    }

    /// Baseline conductance (a zero weight programs both sides here).
    pub fn g_min(&self) -> f64 {
        self.g_min
    }

    /// Top of the conductance window (`±w_max` lands here on one side).
    pub fn g_max(&self) -> f64 {
        self.g_max
    }

    /// Maps one signed weight to its `(g⁺, g⁻)` conductance pair. Weights
    /// beyond `±w_max` saturate.
    pub fn to_conductance_pair(&self, w: f64) -> (f64, f64) {
        let w = w.clamp(-self.w_max, self.w_max);
        if w >= 0.0 {
            (self.g_min + self.scale() * w, self.g_min)
        } else {
            (self.g_min, self.g_min + self.scale() * (-w))
        }
    }

    /// Maps a whole weight matrix to target conductance matrices for the
    /// positive and negative crossbars.
    pub fn weights_to_targets(&self, w: &Matrix) -> (Matrix, Matrix) {
        let mut pos = Matrix::zeros(w.rows(), w.cols());
        let mut neg = Matrix::zeros(w.rows(), w.cols());
        for i in 0..w.rows() {
            for j in 0..w.cols() {
                let (gp, gn) = self.to_conductance_pair(w[(i, j)]);
                pos[(i, j)] = gp;
                neg[(i, j)] = gn;
            }
        }
        (pos, neg)
    }

    /// Reconstructs a weight-domain output from a differential current
    /// pair produced with unit input voltage scaling.
    pub fn currents_to_weight_output(&self, i_pos: f64, i_neg: f64) -> f64 {
        (i_pos - i_neg) / self.scale()
    }

    /// Reconstructs the realized weight matrix from the two conductance
    /// matrices.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn conductances_to_weights(&self, g_pos: &Matrix, g_neg: &Matrix) -> Matrix {
        g_pos.sub(g_neg).scaled(1.0 / self.scale())
    }
}

/// Readout fidelity for [`DifferentialPair::read`].
#[derive(Debug, Clone)]
pub enum ReadCircuit {
    /// Perfect wires — ideal MVM.
    Ideal,
    /// Rank-1 calibrated attenuation maps for the two crossbars (one mesh
    /// solve each at calibration time, then closed-form reads).
    Fast {
        /// Attenuation of the positive crossbar.
        pos: ComputeAttenuationMap,
        /// Attenuation of the negative crossbar.
        neg: ComputeAttenuationMap,
    },
    /// Full nodal solve per read (accurate, expensive).
    Exact(NodalAnalysis),
}

impl ReadCircuit {
    /// Builds the fast calibrated model for the pair's current conductance
    /// state using `reference_input` (see
    /// [`ComputeAttenuationMap::calibrate`]).
    ///
    /// # Errors
    ///
    /// Propagates solver errors; returns [`XbarError::InvalidParameter`]
    /// if the pair has zero wire resistance (use [`ReadCircuit::Ideal`]).
    pub fn fast_for(pair: &DifferentialPair, reference_input: &[f64]) -> Result<Self> {
        let r_wire = pair.config().r_wire;
        let na = NodalAnalysis::new(pair.rows(), pair.cols(), r_wire)?;
        Ok(ReadCircuit::Fast {
            pos: ComputeAttenuationMap::calibrate(
                &na,
                &pair.pos().conductances(),
                reference_input,
            )?,
            neg: ComputeAttenuationMap::calibrate(
                &na,
                &pair.neg().conductances(),
                reference_input,
            )?,
        })
    }

    /// Builds the exact nodal model for the pair's geometry.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidParameter`] if the wire resistance is
    /// zero.
    pub fn exact_for(pair: &DifferentialPair) -> Result<Self> {
        Ok(ReadCircuit::Exact(NodalAnalysis::new(
            pair.rows(),
            pair.cols(),
            pair.config().r_wire,
        )?))
    }
}

/// Immutable snapshot of a programmed pair's read-relevant state.
///
/// Everything a read needs, decoupled from the live device lattice: the
/// two conductance matrices as they stand after programming, the
/// weight-reconstruction scale, and the wire resistance that fixes the
/// IR-drop behavior. [`DifferentialPair::freeze`] produces one; the
/// inference runtime builds its compiled models from it.
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenPairState {
    /// Conductances of the positive crossbar.
    pub g_pos: Matrix,
    /// Conductances of the negative crossbar.
    pub g_neg: Matrix,
    /// Conductance per unit weight ([`WeightMapping::scale`]).
    pub scale: f64,
    /// Wire resistance per segment (Ω); 0 means ideal wires.
    pub r_wire: f64,
}

impl FrozenPairState {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.g_pos.rows()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.g_pos.cols()
    }
}

/// A positive/negative crossbar pair realizing a signed weight matrix.
#[derive(Debug, Clone)]
pub struct DifferentialPair {
    pos: Crossbar,
    neg: Crossbar,
    mapping: WeightMapping,
}

impl DifferentialPair {
    /// Fabricates the two crossbars (independent variation draws) and
    /// fixes the weight mapping.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn fabricate(
        config: CrossbarConfig,
        mapping: WeightMapping,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Result<Self> {
        Ok(Self {
            pos: Crossbar::new(config, rng)?,
            neg: Crossbar::new(config, rng)?,
            mapping,
        })
    }

    /// The shared configuration.
    pub fn config(&self) -> &CrossbarConfig {
        self.pos.config()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.pos.rows()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.pos.cols()
    }

    /// The positive crossbar.
    pub fn pos(&self) -> &Crossbar {
        &self.pos
    }

    /// The negative crossbar.
    pub fn neg(&self) -> &Crossbar {
        &self.neg
    }

    /// Mutable access to the positive crossbar.
    pub fn pos_mut(&mut self) -> &mut Crossbar {
        &mut self.pos
    }

    /// Mutable access to the negative crossbar.
    pub fn neg_mut(&mut self) -> &mut Crossbar {
        &mut self.neg
    }

    /// The weight ↔ conductance mapping.
    pub fn mapping(&self) -> &WeightMapping {
        &self.mapping
    }

    /// Open-loop programs the pair to realize `weights`.
    ///
    /// # Errors
    ///
    /// Propagates shape and device errors.
    pub fn program_open_loop(
        &mut self,
        weights: &Matrix,
        program_irdrop: Option<&ProgramVoltageMap>,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Result<()> {
        let (tp, tn) = self.mapping.weights_to_targets(weights);
        self.pos.program_open_loop(&tp, program_irdrop, rng)?;
        self.neg.program_open_loop(&tn, program_irdrop, rng)?;
        Ok(())
    }

    /// Snapshots the pair's current read-relevant state (conductances,
    /// scale, wire resistance) into an immutable [`FrozenPairState`].
    pub fn freeze(&self) -> FrozenPairState {
        FrozenPairState {
            g_pos: self.pos.conductances(),
            g_neg: self.neg.conductances(),
            scale: self.mapping.scale(),
            r_wire: self.config().r_wire,
        }
    }

    /// The weight matrix the pair currently realizes (including variation
    /// and defects) under ideal readout.
    pub fn realized_weights(&self) -> Matrix {
        self.mapping
            .conductances_to_weights(&self.pos.conductances(), &self.neg.conductances())
    }

    /// Weight-domain read `y = xᵀ·W_realized` under the chosen circuit
    /// fidelity, optionally quantizing each column current with `adc`
    /// before subtraction.
    ///
    /// # Errors
    ///
    /// Propagates solver and shape errors.
    pub fn read(
        &self,
        x: &[f64],
        circuit: &ReadCircuit,
        adc: Option<&crate::sensing::Adc>,
    ) -> Result<Vec<f64>> {
        if x.len() != self.rows() {
            return Err(XbarError::ShapeMismatch {
                context: "differential read input",
                expected: self.rows(),
                actual: x.len(),
            });
        }
        let (ip, in_) = match circuit {
            ReadCircuit::Ideal => (
                crate::ideal::compute(&self.pos.conductances(), x),
                crate::ideal::compute(&self.neg.conductances(), x),
            ),
            ReadCircuit::Fast { pos, neg } => (
                pos.compute(&self.pos.conductances(), x),
                neg.compute(&self.neg.conductances(), x),
            ),
            ReadCircuit::Exact(na) => (
                na.compute(&self.pos.conductances(), x)?.column_currents,
                na.compute(&self.neg.conductances(), x)?.column_currents,
            ),
        };
        let (ip, in_) = match adc {
            Some(adc) => (adc.quantize_vec(&ip), adc.quantize_vec(&in_)),
            None => (ip, in_),
        };
        Ok(ip
            .iter()
            .zip(&in_)
            .map(|(&p, &n)| self.mapping.currents_to_weight_output(p, n))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_device::defects::DefectModel;
    use vortex_device::{DeviceParams, VariationModel};

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(21)
    }

    fn ideal_pair(rows: usize, cols: usize, w_max: f64) -> DifferentialPair {
        let device = DeviceParams::default();
        let config = CrossbarConfig::ideal(rows, cols, device);
        let mapping = WeightMapping::new(&device, w_max).unwrap();
        DifferentialPair::fabricate(config, mapping, &mut rng()).unwrap()
    }

    #[test]
    fn mapping_roundtrip() {
        let device = DeviceParams::default();
        let m = WeightMapping::new(&device, 2.0).unwrap();
        for &w in &[-2.0, -1.0, -0.3, 0.0, 0.7, 2.0] {
            let (gp, gn) = m.to_conductance_pair(w);
            assert!(gp >= device.g_off() && gp <= device.g_on());
            assert!(gn >= device.g_off() && gn <= device.g_on());
            let back = (gp - gn) / m.scale();
            assert!((back - w).abs() < 1e-12, "w {w} back {back}");
        }
    }

    #[test]
    fn mapping_saturates_out_of_range() {
        let device = DeviceParams::default();
        let m = WeightMapping::new(&device, 1.0).unwrap();
        let (gp, _) = m.to_conductance_pair(5.0);
        assert!((gp - device.g_on()).abs() < 1e-12);
    }

    #[test]
    fn fit_uses_max_abs() {
        let device = DeviceParams::default();
        let w = Matrix::from_rows(&[vec![0.5, -3.0], vec![1.0, 2.0]]);
        let m = WeightMapping::fit(&device, &w).unwrap();
        assert_eq!(m.w_max(), 3.0);
        let zeros = Matrix::zeros(2, 2);
        assert_eq!(WeightMapping::fit(&device, &zeros).unwrap().w_max(), 1.0);
    }

    #[test]
    fn ideal_pair_realizes_weights_exactly() {
        let mut pair = ideal_pair(4, 3, 1.0);
        let w = Matrix::from_fn(4, 3, |i, j| ((i + j) as f64 * 0.37).sin());
        pair.program_open_loop(&w, None, &mut rng()).unwrap();
        let realized = pair.realized_weights();
        for i in 0..4 {
            for j in 0..3 {
                assert!(
                    (realized[(i, j)] - w[(i, j)]).abs() < 2e-2,
                    "cell ({i},{j}): {} vs {}",
                    realized[(i, j)],
                    w[(i, j)]
                );
            }
        }
    }

    #[test]
    fn ideal_read_matches_matrix_product() {
        let mut pair = ideal_pair(5, 2, 1.0);
        let w = Matrix::from_fn(5, 2, |i, j| if (i + j) % 2 == 0 { 0.5 } else { -0.5 });
        pair.program_open_loop(&w, None, &mut rng()).unwrap();
        let x = [1.0, 0.0, 1.0, 0.5, 0.25];
        let y = pair.read(&x, &ReadCircuit::Ideal, None).unwrap();
        let expect = w.vecmat(&x);
        for (a, b) in y.iter().zip(&expect) {
            assert!((a - b).abs() < 3e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn variation_perturbs_realized_weights() {
        let device = DeviceParams::default();
        let config = CrossbarConfig {
            rows: 6,
            cols: 4,
            device,
            r_wire: 0.0,
            variation: VariationModel::parametric(0.6).unwrap(),
            defects: DefectModel::none(),
        };
        let mapping = WeightMapping::new(&device, 1.0).unwrap();
        let mut pair = DifferentialPair::fabricate(config, mapping, &mut rng()).unwrap();
        let w = Matrix::filled(6, 4, 0.5);
        pair.program_open_loop(&w, None, &mut rng()).unwrap();
        let realized = pair.realized_weights();
        let err = realized.sub(&w).frobenius_norm() / w.frobenius_norm();
        assert!(err > 0.05, "σ=0.6 should visibly distort weights: {err}");
    }

    #[test]
    fn exact_read_shows_ir_drop() {
        let device = DeviceParams::default();
        let config = CrossbarConfig {
            rows: 8,
            cols: 3,
            device,
            r_wire: 20.0,
            variation: VariationModel::none(),
            defects: DefectModel::none(),
        };
        let mapping = WeightMapping::new(&device, 1.0).unwrap();
        let mut pair = DifferentialPair::fabricate(config, mapping, &mut rng()).unwrap();
        let w = Matrix::filled(8, 3, 1.0); // all strongly positive → pos xbar all LRS
        pair.program_open_loop(&w, None, &mut rng()).unwrap();
        let x = vec![1.0; 8];
        let ideal = pair.read(&x, &ReadCircuit::Ideal, None).unwrap();
        let exact = pair
            .read(&x, &ReadCircuit::exact_for(&pair).unwrap(), None)
            .unwrap();
        // IR drop attenuates the positive (LRS-heavy) crossbar more, so the
        // differential output magnitude must shrink.
        assert!(exact[0] < ideal[0], "exact {} ideal {}", exact[0], ideal[0]);
    }

    #[test]
    fn fast_read_tracks_exact_read() {
        let device = DeviceParams::default();
        let config = CrossbarConfig {
            rows: 8,
            cols: 3,
            device,
            r_wire: 10.0,
            variation: VariationModel::none(),
            defects: DefectModel::none(),
        };
        let mapping = WeightMapping::new(&device, 1.0).unwrap();
        let mut pair = DifferentialPair::fabricate(config, mapping, &mut rng()).unwrap();
        let w = Matrix::from_fn(8, 3, |i, _| if i % 2 == 0 { 0.8 } else { -0.6 });
        pair.program_open_loop(&w, None, &mut rng()).unwrap();
        let reference = vec![0.5; 8];
        let fast = ReadCircuit::fast_for(&pair, &reference).unwrap();
        let exact = ReadCircuit::exact_for(&pair).unwrap();
        let x = vec![1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0, 0.0];
        let yf = pair.read(&x, &fast, None).unwrap();
        let ye = pair.read(&x, &exact, None).unwrap();
        for (a, b) in yf.iter().zip(&ye) {
            assert!(
                (a - b).abs() < 0.15 * b.abs().max(0.1),
                "fast {a} vs exact {b}"
            );
        }
    }

    #[test]
    fn adc_quantizes_read() {
        let mut pair = ideal_pair(4, 2, 1.0);
        let w = Matrix::filled(4, 2, 0.5);
        pair.program_open_loop(&w, None, &mut rng()).unwrap();
        let x = [1.0; 4];
        let adc = crate::sensing::Adc::new(3, 1e-3).unwrap(); // very coarse
        let quantized = pair.read(&x, &ReadCircuit::Ideal, Some(&adc)).unwrap();
        let clean = pair.read(&x, &ReadCircuit::Ideal, None).unwrap();
        // Coarse quantization must visibly distort the output.
        let dist: f64 = quantized
            .iter()
            .zip(&clean)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(dist > 1e-3, "3-bit ADC should distort: {dist}");
    }

    #[test]
    fn read_rejects_bad_input_length() {
        let pair = ideal_pair(4, 2, 1.0);
        assert!(pair.read(&[1.0; 3], &ReadCircuit::Ideal, None).is_err());
    }
}
