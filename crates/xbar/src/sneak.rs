//! Sneak-path analysis for single-device sensing.
//!
//! In a selector-less crossbar, reading one device with the unselected
//! rows *floating* lets current creep through series chains of other
//! devices (the classic 3-device sneak path), corrupting the measurement.
//! §4.2.1 of the paper works around this in pre-testing by keeping every
//! other device at HRS; driving (grounding) the unselected rows is the
//! complementary circuit-level fix. This module quantifies both effects
//! with the exact mesh solver.

use serde::{Deserialize, Serialize};
use vortex_linalg::Matrix;

use crate::circuit::{ColTermination, NodalAnalysis, RowDrive};
use crate::{Result, XbarError};

/// Bias scheme of the unselected lines during a single-device sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SenseScheme {
    /// Unselected rows grounded and every column terminated at virtual
    /// ground: sneak chains are short-circuited at the cost of driver
    /// energy and sense-amp sharing.
    OthersGrounded,
    /// Unselected rows *and* unselected columns left floating: minimal
    /// peripheral cost, maximal sneak exposure (the classic 3-device
    /// chain runs driven row → floating column → floating row → sensed
    /// column).
    OthersFloating,
}

/// Result of sensing one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SneakReport {
    /// The current the measurement ideally wants: `v_sense · g_selected`.
    pub ideal_current: f64,
    /// The column current actually sensed.
    pub sensed_current: f64,
    /// Relative measurement error `|sensed − ideal| / ideal`.
    pub relative_error: f64,
}

/// Senses device `(p, q)` by driving row `p` at `v_sense` with the chosen
/// scheme on the other rows and the selected column at virtual ground,
/// then compares the sensed column current to the ideal `v·g`.
///
/// # Errors
///
/// * [`XbarError::InvalidParameter`] for out-of-range coordinates or a
///   non-positive sensing voltage.
/// * [`XbarError::Numeric`] if the mesh solve fails.
pub fn sense_single_device(
    na: &NodalAnalysis,
    g: &Matrix,
    selected: (usize, usize),
    v_sense: f64,
    scheme: SenseScheme,
) -> Result<SneakReport> {
    let (p, q) = selected;
    if p >= na.rows() || q >= na.cols() {
        return Err(XbarError::InvalidParameter {
            name: "selected",
            requirement: "cell coordinates must lie inside the array",
        });
    }
    if !(v_sense.is_finite() && v_sense > 0.0) {
        return Err(XbarError::InvalidParameter {
            name: "v_sense",
            requirement: "must be finite and positive",
        });
    }
    let row_drives: Vec<RowDrive> = (0..na.rows())
        .map(|i| {
            if i == p {
                RowDrive::Voltage(v_sense)
            } else {
                match scheme {
                    SenseScheme::OthersGrounded => RowDrive::Voltage(0.0),
                    SenseScheme::OthersFloating => RowDrive::Floating,
                }
            }
        })
        .collect();
    let col_terms: Vec<ColTermination> = (0..na.cols())
        .map(|j| {
            if j == q {
                ColTermination::Voltage(0.0)
            } else {
                match scheme {
                    SenseScheme::OthersGrounded => ColTermination::Voltage(0.0),
                    SenseScheme::OthersFloating => ColTermination::Floating,
                }
            }
        })
        .collect();
    let sol = na.compute_general(g, &row_drives, &col_terms)?;
    let ideal = v_sense * g[(p, q)];
    let sensed = sol.column_currents[q];
    Ok(SneakReport {
        ideal_current: ideal,
        sensed_current: sensed,
        relative_error: (sensed - ideal).abs() / ideal.max(1e-30),
    })
}

/// Convenience sweep: the worst single-device sense error over a sample
/// of cells (the four corners and the center).
///
/// # Errors
///
/// Propagates [`sense_single_device`] errors.
pub fn worst_case_sense_error(
    na: &NodalAnalysis,
    g: &Matrix,
    v_sense: f64,
    scheme: SenseScheme,
) -> Result<f64> {
    let m = na.rows();
    let n = na.cols();
    let cells = [
        (0, 0),
        (0, n - 1),
        (m - 1, 0),
        (m - 1, n - 1),
        (m / 2, n / 2),
    ];
    let mut worst = 0.0_f64;
    for &cell in &cells {
        worst = worst.max(sense_single_device(na, g, cell, v_sense, scheme)?.relative_error);
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_device::DeviceParams;

    fn mesh(m: usize, n: usize) -> NodalAnalysis {
        NodalAnalysis::new(m, n, 2.5).unwrap()
    }

    /// Background at HRS, one mid-range device at (2, 3).
    fn pretest_like(m: usize, n: usize) -> Matrix {
        let p = DeviceParams::default();
        let mut g = Matrix::filled(m, n, p.g_off());
        g[(2, 3)] = 1e-5;
        g
    }

    #[test]
    fn hrs_background_needs_grounded_lines_for_a_clean_read() {
        // The paper's pre-test setup keeps every other device at HRS —
        // necessary but not sufficient: with fully floating unselected
        // lines even an HRS background contributes a visible parallel
        // sneak network, while grounding the unselected lines shorts it
        // out entirely.
        let na = mesh(12, 8);
        let g = pretest_like(12, 8);
        let grounded =
            sense_single_device(&na, &g, (2, 3), 1.0, SenseScheme::OthersGrounded).unwrap();
        assert!(
            grounded.relative_error < 0.02,
            "grounded: error {} (sensed {:.3e} vs ideal {:.3e})",
            grounded.relative_error,
            grounded.sensed_current,
            grounded.ideal_current
        );
        let floating =
            sense_single_device(&na, &g, (2, 3), 1.0, SenseScheme::OthersFloating).unwrap();
        assert!(
            floating.relative_error > grounded.relative_error,
            "floating {} should exceed grounded {}",
            floating.relative_error,
            grounded.relative_error
        );
        assert!(
            floating.relative_error < 1.0,
            "HRS background keeps the sneak bounded: {}",
            floating.relative_error
        );
    }

    #[test]
    fn low_resistance_background_breaks_floating_sense() {
        // A programmed (LRS-rich) background: floating rows let sneak
        // chains dominate; grounding the unselected rows rescues the
        // measurement.
        let na = mesh(12, 8);
        let mut g = Matrix::filled(12, 8, 5e-5); // all near-LRS background
        g[(2, 3)] = 1e-5;
        let floating =
            sense_single_device(&na, &g, (2, 3), 1.0, SenseScheme::OthersFloating).unwrap();
        let grounded =
            sense_single_device(&na, &g, (2, 3), 1.0, SenseScheme::OthersGrounded).unwrap();
        assert!(
            floating.relative_error > 5.0 * grounded.relative_error.max(1e-6),
            "floating {} vs grounded {}",
            floating.relative_error,
            grounded.relative_error
        );
        assert!(
            grounded.relative_error < 0.2,
            "grounded scheme should stay accurate: {}",
            grounded.relative_error
        );
    }

    #[test]
    fn sneak_error_grows_with_background_conductance() {
        let na = mesh(10, 6);
        let mut prev = 0.0;
        for &bg in &[1e-6, 5e-6, 2e-5, 1e-4] {
            let mut g = Matrix::filled(10, 6, bg);
            g[(4, 2)] = 1e-5;
            let r = sense_single_device(&na, &g, (4, 2), 1.0, SenseScheme::OthersFloating).unwrap();
            assert!(
                r.relative_error >= prev * 0.5,
                "bg {bg}: error {} after {prev}",
                r.relative_error
            );
            prev = r.relative_error;
        }
        assert!(prev > 0.5, "heavy background must corrupt the read: {prev}");
    }

    #[test]
    fn worst_case_sweep_and_validation() {
        let na = mesh(8, 6);
        let g = pretest_like(8, 6);
        let w = worst_case_sense_error(&na, &g, 1.0, SenseScheme::OthersGrounded).unwrap();
        assert!(w < 1.0);
        assert!(sense_single_device(&na, &g, (20, 0), 1.0, SenseScheme::OthersGrounded).is_err());
        assert!(sense_single_device(&na, &g, (0, 0), 0.0, SenseScheme::OthersGrounded).is_err());
    }
}
