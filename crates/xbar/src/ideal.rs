//! Ideal (zero wire resistance) crossbar computation.
//!
//! With perfect wires, driving row `i` at voltage `x_i` with every column
//! at virtual ground produces column currents `y_j = Σ_i x_i · g_ij` —
//! the analog vector–matrix multiply of §2.2.1.

use vortex_linalg::Matrix;

/// Ideal crossbar read: `y = xᵀ·G`.
///
/// # Panics
///
/// Panics if `x.len() != conductances.rows()`.
pub fn compute(conductances: &Matrix, x: &[f64]) -> Vec<f64> {
    conductances.vecmat(x)
}

/// Ideal read restricted to a single column: `y_j = Σ_i x_i·g_ij`.
///
/// # Panics
///
/// Panics if `x.len() != conductances.rows()` or `col` is out of bounds.
pub fn compute_column(conductances: &Matrix, x: &[f64], col: usize) -> f64 {
    assert_eq!(x.len(), conductances.rows(), "input length mismatch");
    assert!(col < conductances.cols(), "column out of bounds");
    (0..conductances.rows())
        .map(|i| x[i] * conductances[(i, col)])
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_matches_manual_sum() {
        let g = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let x = [1.0, 0.5, 2.0];
        let y = compute(&g, &x);
        assert_eq!(y, vec![1.0 + 1.5 + 10.0, 2.0 + 2.0 + 12.0]);
    }

    #[test]
    fn column_agrees_with_full() {
        let g = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64 * 1e-5);
        let x = [1.0, -1.0, 0.5, 2.0];
        let full = compute(&g, &x);
        for (j, expect) in full.iter().enumerate() {
            assert!((compute_column(&g, &x, j) - expect).abs() < 1e-15);
        }
    }

    #[test]
    fn zero_input_zero_output() {
        let g = Matrix::filled(3, 2, 1e-4);
        assert_eq!(compute(&g, &[0.0; 3]), vec![0.0, 0.0]);
    }
}
