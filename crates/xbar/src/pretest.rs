//! Device pre-testing (AMP step 1, §4.2.1 of the paper).
//!
//! After fabrication, every device is programmed to a known target state
//! and its resistance sensed back; the measured deviation estimates the
//! device's parametric variation `θ`. To keep IR-drop and sneak paths out
//! of the measurement, one device is tested at a time: only its row is
//! driven during sensing and every other device sits at HRS. Sensing runs
//! through a k-bit ADC; repeating the program/sense cycle and averaging
//! cancels switching (cycle-to-cycle) variation.
//!
//! Stuck-at defects show up as extreme estimates: a stuck-HRS cell reads
//! far below the target (large negative θ̂), a stuck-LRS cell far above —
//! so the same pre-test output drives both AMP's variation-aware mapping
//! and its defect avoidance.

use serde::{Deserialize, Serialize};
use vortex_device::pulse::precalculate_pulse_conductance;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::Matrix;

use crate::crossbar::Crossbar;
use crate::sensing::Adc;
use crate::{Result, XbarError};

/// Configuration of the pre-test procedure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PretestConfig {
    /// Conductance every device is programmed to before sensing.
    /// The geometric mid-range of the device window is a good default: it
    /// keeps `±3σ` lognormal excursions inside the sensable range.
    pub target_conductance: f64,
    /// Sensing voltage applied to the device's row.
    pub v_sense: f64,
    /// ADC used to read the column current.
    pub adc: Adc,
    /// Number of program/sense cycles averaged per device.
    pub repeats: usize,
}

impl PretestConfig {
    /// A sensible default for the paper's device corner: mid-range target
    /// (100 kΩ), 1 V sensing, the given ADC, 3 repeats.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidParameter`] via [`Self::validate`].
    pub fn with_adc(adc: Adc) -> Result<Self> {
        let cfg = Self {
            target_conductance: 1e-5,
            v_sense: 1.0,
            adc,
            repeats: 3,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidParameter`] on a non-positive target
    /// conductance, sensing voltage, or repeat count.
    pub fn validate(&self) -> Result<()> {
        if !(self.target_conductance.is_finite() && self.target_conductance > 0.0) {
            return Err(XbarError::InvalidParameter {
                name: "target_conductance",
                requirement: "must be finite and positive",
            });
        }
        if !(self.v_sense.is_finite() && self.v_sense > 0.0) {
            return Err(XbarError::InvalidParameter {
                name: "v_sense",
                requirement: "must be finite and positive",
            });
        }
        if self.repeats == 0 {
            return Err(XbarError::InvalidParameter {
                name: "repeats",
                requirement: "must be at least 1",
            });
        }
        Ok(())
    }
}

/// Result of pre-testing a crossbar.
#[derive(Debug, Clone, PartialEq)]
pub struct PretestReport {
    /// Estimated per-device deviation `θ̂ = ln(ĝ / g_target)`.
    pub theta_hat: Matrix,
    /// Estimated per-device conductance multiplier `e^θ̂`.
    pub multiplier_hat: Matrix,
}

impl PretestReport {
    /// Cells whose estimated |θ̂| exceeds `threshold` — AMP's defect /
    /// outlier candidates.
    pub fn outliers(&self, threshold: f64) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.theta_hat.rows() {
            for j in 0..self.theta_hat.cols() {
                if self.theta_hat[(i, j)].abs() > threshold {
                    out.push((i, j));
                }
            }
        }
        out
    }
}

/// Runs the pre-test procedure on a crossbar, leaving every device back at
/// HRS afterwards.
///
/// # Errors
///
/// * [`XbarError::InvalidParameter`] for an invalid configuration.
/// * [`XbarError::Device`] if the pulse pre-calculation fails.
pub fn pretest(
    xbar: &mut Crossbar,
    config: &PretestConfig,
    rng: &mut Xoshiro256PlusPlus,
) -> Result<PretestReport> {
    config.validate()?;
    let (m, n) = (xbar.rows(), xbar.cols());
    let params = xbar.config().device;
    let variation = xbar.config().variation;
    let g_t = config
        .target_conductance
        .clamp(params.g_off(), params.g_on());
    let pulse = precalculate_pulse_conductance(&params, params.g_off(), g_t)?;

    let mut theta_hat = Matrix::zeros(m, n);
    let mut multiplier_hat = Matrix::zeros(m, n);

    xbar.reset_all();
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for _ in 0..config.repeats {
                // Program this device to the target.
                let eps = variation.sample_switching(rng);
                {
                    let dev = xbar.device_mut(i, j);
                    dev.reset_to_hrs();
                    if eps == 0.0 {
                        dev.apply_pulse(&pulse);
                    } else {
                        dev.apply_pulse_with_jitter(&pulse, eps);
                    }
                }
                // Sense: drive only row i; every other device is at HRS so
                // the column current is v·g (sneak-free by construction).
                let current = config.v_sense * xbar.device(i, j).conductance();
                acc += config.adc.quantize(current);
            }
            let mean_current = acc / config.repeats as f64;
            // Guard against a zero readout (deep-HRS or coarse ADC).
            let g_hat = (mean_current / config.v_sense).max(params.g_off() * 1e-3);
            let mult = g_hat / g_t;
            theta_hat[(i, j)] = mult.ln();
            multiplier_hat[(i, j)] = mult;
            xbar.device_mut(i, j).reset_to_hrs();
        }
    }
    Ok(PretestReport {
        theta_hat,
        multiplier_hat,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossbar::CrossbarConfig;
    use vortex_device::defects::{DefectKind, DefectModel};
    use vortex_device::{DeviceParams, VariationModel};

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(41)
    }

    fn config(sigma: f64, sigma_sw: f64) -> CrossbarConfig {
        CrossbarConfig {
            rows: 12,
            cols: 8,
            device: DeviceParams::default(),
            r_wire: 2.5,
            variation: VariationModel::new(sigma, sigma_sw).unwrap(),
            defects: DefectModel::none(),
        }
    }

    fn fine_adc() -> Adc {
        Adc::new(12, 150e-6).unwrap()
    }

    #[test]
    fn config_validation() {
        let mut c = PretestConfig::with_adc(fine_adc()).unwrap();
        c.repeats = 0;
        assert!(c.validate().is_err());
        c.repeats = 1;
        c.v_sense = -1.0;
        assert!(c.validate().is_err());
        c.v_sense = 1.0;
        c.target_conductance = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn fine_adc_recovers_theta_accurately() {
        let mut r = rng();
        let mut xbar = Crossbar::new(config(0.5, 0.0), &mut r).unwrap();
        let true_theta = xbar.thetas();
        let cfg = PretestConfig::with_adc(fine_adc()).unwrap();
        let report = pretest(&mut xbar, &cfg, &mut r).unwrap();
        for i in 0..12 {
            for j in 0..8 {
                let err = (report.theta_hat[(i, j)] - true_theta[(i, j)]).abs();
                assert!(
                    err < 0.15,
                    "cell ({i},{j}): est {} true {}",
                    report.theta_hat[(i, j)],
                    true_theta[(i, j)]
                );
            }
        }
    }

    #[test]
    fn coarse_adc_estimates_are_worse() {
        let mut r1 = rng();
        let mut r2 = rng();
        let mut xbar_f = Crossbar::new(config(0.5, 0.0), &mut r1).unwrap();
        let mut xbar_c = Crossbar::new(config(0.5, 0.0), &mut r2).unwrap();
        let true_f = xbar_f.thetas();
        let true_c = xbar_c.thetas();
        let fine = PretestConfig::with_adc(fine_adc()).unwrap();
        let coarse = PretestConfig::with_adc(Adc::new(4, 150e-6).unwrap()).unwrap();
        let rf = pretest(&mut xbar_f, &fine, &mut r1).unwrap();
        let rc = pretest(&mut xbar_c, &coarse, &mut r2).unwrap();
        let err = |rep: &PretestReport, truth: &Matrix| {
            rep.theta_hat.sub(truth).frobenius_norm() / (truth.rows() as f64).sqrt()
        };
        assert!(
            err(&rc, &true_c) > err(&rf, &true_f),
            "coarse {} fine {}",
            err(&rc, &true_c),
            err(&rf, &true_f)
        );
    }

    #[test]
    fn repeats_average_out_switching_variation() {
        let mut r1 = rng();
        let mut r2 = rng();
        let mut xbar_1 = Crossbar::new(config(0.3, 0.15), &mut r1).unwrap();
        let mut xbar_k = Crossbar::new(config(0.3, 0.15), &mut r2).unwrap();
        let true_1 = xbar_1.thetas();
        let true_k = xbar_k.thetas();
        let mut once = PretestConfig::with_adc(fine_adc()).unwrap();
        once.repeats = 1;
        let mut many = once;
        many.repeats = 15;
        let r_once = pretest(&mut xbar_1, &once, &mut r1).unwrap();
        let r_many = pretest(&mut xbar_k, &many, &mut r2).unwrap();
        let err = |rep: &PretestReport, truth: &Matrix| rep.theta_hat.sub(truth).frobenius_norm();
        assert!(
            err(&r_many, &true_k) < err(&r_once, &true_1),
            "averaging should help: once {} many {}",
            err(&r_once, &true_1),
            err(&r_many, &true_k)
        );
    }

    #[test]
    fn stuck_cells_appear_as_outliers() {
        let mut r = rng();
        let mut c = config(0.2, 0.0);
        c.defects = DefectModel::none();
        let mut xbar = Crossbar::new(c, &mut r).unwrap();
        // Inject two known defects directly.
        *xbar.device_mut(3, 4) = vortex_device::Memristor::fresh(DeviceParams::default())
            .with_defect(Some(DefectKind::StuckHrs));
        *xbar.device_mut(7, 1) = vortex_device::Memristor::fresh(DeviceParams::default())
            .with_defect(Some(DefectKind::StuckLrs));
        let cfg = PretestConfig::with_adc(fine_adc()).unwrap();
        let report = pretest(&mut xbar, &cfg, &mut r).unwrap();
        let outliers = report.outliers(1.5);
        assert!(outliers.contains(&(3, 4)), "stuck-HRS must be an outlier");
        assert!(outliers.contains(&(7, 1)), "stuck-LRS must be an outlier");
        // Stuck-HRS reads low (θ̂ < 0), stuck-LRS reads high (θ̂ > 0).
        assert!(report.theta_hat[(3, 4)] < -1.5);
        assert!(report.theta_hat[(7, 1)] > 1.5);
    }

    #[test]
    fn devices_left_at_hrs() {
        let mut r = rng();
        let mut xbar = Crossbar::new(config(0.3, 0.0), &mut r).unwrap();
        let cfg = PretestConfig::with_adc(fine_adc()).unwrap();
        let _ = pretest(&mut xbar, &cfg, &mut r).unwrap();
        for i in 0..xbar.rows() {
            for j in 0..xbar.cols() {
                assert_eq!(xbar.device(i, j).state(), 0.0);
            }
        }
    }
}
