//! Memristor crossbar array simulator.
//!
//! This crate models everything between the device ([`vortex_device`]) and
//! the training algorithms ([`vortex_core`](https://docs.rs/vortex-core)):
//!
//! * [`crossbar::Crossbar`] — an `m × n` array of [`vortex_device::Memristor`]
//!   with per-device variation realizations and defects.
//! * [`ideal`] — the ideal analog vector–matrix multiply `y = xᵀ·G`.
//! * [`circuit::NodalAnalysis`] — exact resistive-mesh solve of the array
//!   including wire resistance (IR-drop), for both compute (read) and
//!   programming bias conditions.
//! * [`irdrop`] — fast analytic IR-drop approximations plus the paper's
//!   β/D decomposition of programming-voltage degradation (§3.2).
//! * [`program`] — the V/2 half-select open-loop programming protocol with
//!   optional IR-drop compensation (§2.2.2).
//! * [`sensing`] — ADC/DAC models (§3.3, §5.2).
//! * [`pretest`] — AMP's device pre-testing procedure (§4.2.1).
//! * [`pair`] — differential (positive/negative) crossbar pair mapping of
//!   signed weight matrices (§2.2.1).
//! * [`encoding`] — pluggable weight→conductance encodings: continuous
//!   differential (the paper), fixed multi-level-cell quantization, and
//!   sensitivity-driven per-row adaptive quantization, with
//!   programming-pulse cost accounting.
//!
//! # Example
//!
//! ```
//! use vortex_device::DeviceParams;
//! use vortex_linalg::Matrix;
//! use vortex_xbar::crossbar::Crossbar;
//! use vortex_linalg::rng::Xoshiro256PlusPlus;
//!
//! # fn main() -> Result<(), vortex_xbar::XbarError> {
//! let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
//! let mut xbar = Crossbar::ideal(4, 3, DeviceParams::default());
//! let targets = Matrix::filled(4, 3, 5e-5); // 20 kΩ everywhere
//! xbar.program_open_loop(&targets, None, &mut rng)?;
//! let y = xbar.compute_ideal(&[1.0, 1.0, 1.0, 1.0]);
//! assert!((y[0] - 4.0 * 5e-5).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod circuit;
pub mod cost;
pub mod crossbar;
pub mod encoding;
pub mod ideal;
pub mod irdrop;
pub mod pair;
pub mod pretest;
pub mod program;
pub mod sensing;
pub mod sneak;

pub use crossbar::{Crossbar, CrossbarConfig};
pub use encoding::{EncodingScheme, EncodingSpec, EncodingTable, WeightEncoding};
pub use pair::{DifferentialPair, FrozenPairState};
pub use sensing::Adc;

/// Errors produced by the crossbar simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum XbarError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The violated requirement.
        requirement: &'static str,
    },
    /// Matrix/vector dimensions do not agree with the crossbar shape.
    ShapeMismatch {
        /// Description of the operation.
        context: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
    },
    /// An underlying device-model operation failed.
    Device(vortex_device::DeviceError),
    /// An underlying numerical routine failed.
    Numeric(vortex_linalg::LinalgError),
}

impl std::fmt::Display for XbarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XbarError::InvalidParameter { name, requirement } => {
                write!(f, "invalid crossbar parameter `{name}`: {requirement}")
            }
            XbarError::ShapeMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "shape mismatch in {context}: expected {expected}, got {actual}"
            ),
            XbarError::Device(e) => write!(f, "device model error: {e}"),
            XbarError::Numeric(e) => write!(f, "numerical error: {e}"),
        }
    }
}

impl std::error::Error for XbarError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XbarError::Device(e) => Some(e),
            XbarError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vortex_device::DeviceError> for XbarError {
    fn from(e: vortex_device::DeviceError) -> Self {
        XbarError::Device(e)
    }
}

impl From<vortex_linalg::LinalgError> for XbarError {
    fn from(e: vortex_linalg::LinalgError) -> Self {
        XbarError::Numeric(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, XbarError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions_and_display() {
        let d: XbarError = vortex_device::DeviceError::InvalidParameter {
            name: "x",
            requirement: "y",
        }
        .into();
        assert!(d.to_string().contains("device model error"));
        let n: XbarError = vortex_linalg::LinalgError::Singular { pivot: 0 }.into();
        assert!(n.to_string().contains("numerical error"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<XbarError>();
    }
}
