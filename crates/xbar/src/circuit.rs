//! Exact resistive-mesh (nodal analysis) solve of a crossbar with wire
//! resistance.
//!
//! Geometry (Fig. 1(b) of the paper): row (word) wires are driven from the
//! **left**, column (bit) wires are grounded/sensed at the **bottom**. Each
//! wire is a chain of segments with resistance `r_wire`; the memristor at
//! `(i, j)` bridges row-wire node `T(i,j)` and column-wire node `B(i,j)`.
//!
//! The same mesh serves two bias conditions:
//!
//! * **compute** — every row driven at its input voltage, every column at
//!   virtual ground: the sensed column currents are the degraded analog
//!   MVM.
//! * **programming** — one selected cell sees the full programming voltage
//!   path, every other wire is held at V/2 (the half-select scheme,
//!   §2.2.2): the solve yields the *actual* voltage across every device,
//!   which is what the IR-drop analysis of §3.2 is about.
//!
//! The resulting system is a symmetric positive definite conductance
//! Laplacian with Dirichlet boundary segments; it is solved with
//! Jacobi-preconditioned conjugate gradient.

use vortex_linalg::iterative::{conjugate_gradient, SolveOptions};
use vortex_linalg::sparse::TripletBuilder;
use vortex_linalg::Matrix;

use crate::{Result, XbarError};

/// Per-row drive condition for [`NodalAnalysis::compute_general`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RowDrive {
    /// Row driven at the given voltage through one wire segment.
    Voltage(f64),
    /// Row driver disconnected — the row floats on whatever its devices
    /// impose (the sneak-path condition).
    Floating,
}

/// Per-column termination condition for
/// [`NodalAnalysis::compute_general`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ColTermination {
    /// Column terminated at the given voltage through one wire segment
    /// (0 V = virtual-ground sensing).
    Voltage(f64),
    /// Column left unterminated — no sense amp attached; the column
    /// floats and can carry sneak chains.
    Floating,
}

/// Result of a compute-mode (read) circuit solve.
#[derive(Debug, Clone)]
pub struct ComputeSolution {
    /// Sensed current of every column (amperes, flowing into the ground
    /// terminal).
    pub column_currents: Vec<f64>,
    /// Voltage across every device: `T(i,j) − B(i,j)`.
    pub device_voltages: Matrix,
    /// Raw node voltages (row-wire nodes then column-wire nodes) — usable
    /// as a warm start for a subsequent solve with similar inputs.
    pub node_voltages: Vec<f64>,
}

/// Nodal analysis of an `rows × cols` crossbar mesh.
///
/// # Example
///
/// ```
/// use vortex_linalg::Matrix;
/// use vortex_xbar::circuit::NodalAnalysis;
///
/// # fn main() -> Result<(), vortex_xbar::XbarError> {
/// let na = NodalAnalysis::new(4, 2, 2.5)?; // 4×2 mesh, 2.5 Ω segments
/// let g = Matrix::filled(4, 2, 1e-4);      // all LRS
/// let sol = na.compute(&g, &[1.0, 1.0, 1.0, 1.0])?;
/// // IR drop keeps each column below the ideal 4 × 100 µA.
/// assert!(sol.column_currents[0] < 4e-4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NodalAnalysis {
    rows: usize,
    cols: usize,
    g_wire: f64,
    options: SolveOptions,
}

impl NodalAnalysis {
    /// Creates a solver for the given geometry.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InvalidParameter`] for an empty array or a
    /// non-positive / non-finite wire resistance (use the ideal model for
    /// `r_wire == 0`).
    pub fn new(rows: usize, cols: usize, r_wire: f64) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(XbarError::InvalidParameter {
                name: "rows/cols",
                requirement: "must both be positive",
            });
        }
        if !(r_wire.is_finite() && r_wire > 0.0) {
            return Err(XbarError::InvalidParameter {
                name: "r_wire",
                requirement: "must be finite and positive (use ideal::compute for 0)",
            });
        }
        Ok(Self {
            rows,
            cols,
            g_wire: 1.0 / r_wire,
            options: SolveOptions {
                max_iterations: 200_000,
                tolerance: 1e-9,
                omega: 1.6,
            },
        })
    }

    /// Overrides the iterative-solver options.
    pub fn with_options(mut self, options: SolveOptions) -> Self {
        self.options = options;
        self
    }

    /// Number of rows of the mesh.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns of the mesh.
    pub fn cols(&self) -> usize {
        self.cols
    }

    fn t_idx(&self, i: usize, j: usize) -> usize {
        i * self.cols + j
    }

    fn b_idx(&self, i: usize, j: usize) -> usize {
        self.rows * self.cols + i * self.cols + j
    }

    /// Stamps the mesh with the given per-row source voltages and per-column
    /// termination voltages, then solves. Returns node voltages.
    fn solve_mesh(
        &self,
        g: &Matrix,
        row_sources: &[f64],
        col_terminations: &[f64],
        warm_start: Option<&[f64]>,
    ) -> Result<Vec<f64>> {
        let drives: Vec<RowDrive> = row_sources.iter().map(|&v| RowDrive::Voltage(v)).collect();
        let terms: Vec<ColTermination> = col_terminations
            .iter()
            .map(|&v| ColTermination::Voltage(v))
            .collect();
        self.solve_mesh_general(g, &drives, &terms, warm_start)
    }

    /// [`Self::solve_mesh`] with per-row drive conditions: a row is either
    /// driven at a voltage or left floating (its driver disconnected — the
    /// condition under which sneak paths appear).
    fn solve_mesh_general(
        &self,
        g: &Matrix,
        row_drives: &[RowDrive],
        col_terminations: &[ColTermination],
        warm_start: Option<&[f64]>,
    ) -> Result<Vec<f64>> {
        let (m, n) = (self.rows, self.cols);
        let gw = self.g_wire;
        let n_nodes = 2 * m * n;
        let mut a = TripletBuilder::new(n_nodes, n_nodes);
        let mut rhs = vec![0.0; n_nodes];

        for i in 0..m {
            for j in 0..n {
                let t = self.t_idx(i, j);
                let b = self.b_idx(i, j);
                let gd = g[(i, j)];

                // Device between T and B.
                a.add(t, t, gd);
                a.add(b, b, gd);
                a.add(t, b, -gd);
                a.add(b, t, -gd);

                // Row wire: left neighbour or driver (floating rows have
                // no driver segment at all).
                if j == 0 {
                    if let RowDrive::Voltage(v) = row_drives[i] {
                        a.add(t, t, gw);
                        rhs[t] += gw * v;
                    }
                } else {
                    let left = self.t_idx(i, j - 1);
                    a.add(t, t, gw);
                    a.add(left, left, gw);
                    a.add(t, left, -gw);
                    a.add(left, t, -gw);
                }

                // Column wire: lower neighbour or termination (floating
                // columns have no termination segment).
                if i == m - 1 {
                    if let ColTermination::Voltage(v) = col_terminations[j] {
                        a.add(b, b, gw);
                        rhs[b] += gw * v;
                    }
                } else {
                    let below = self.b_idx(i + 1, j);
                    a.add(b, b, gw);
                    a.add(below, below, gw);
                    a.add(b, below, -gw);
                    a.add(below, b, -gw);
                }
            }
        }

        let a = a.build();
        let report =
            conjugate_gradient(&a, &rhs, warm_start, &self.options).map_err(XbarError::Numeric)?;
        Ok(report.x)
    }

    /// Compute-mode (read) solve: rows driven at `x`, columns at virtual
    /// ground.
    ///
    /// # Errors
    ///
    /// * [`XbarError::ShapeMismatch`] if `g` or `x` disagree with the mesh
    ///   geometry.
    /// * [`XbarError::Numeric`] if the CG solve fails.
    pub fn compute(&self, g: &Matrix, x: &[f64]) -> Result<ComputeSolution> {
        self.compute_with_warm_start(g, x, None)
    }

    /// [`Self::compute`] with an optional warm start from a previous
    /// solution's `node_voltages`.
    ///
    /// # Errors
    ///
    /// See [`Self::compute`].
    pub fn compute_with_warm_start(
        &self,
        g: &Matrix,
        x: &[f64],
        warm_start: Option<&[f64]>,
    ) -> Result<ComputeSolution> {
        self.check_shape(g)?;
        if x.len() != self.rows {
            return Err(XbarError::ShapeMismatch {
                context: "compute input vector",
                expected: self.rows,
                actual: x.len(),
            });
        }
        let zeros = vec![0.0; self.cols];
        let v = self.solve_mesh(g, x, &zeros, warm_start)?;
        let currents = (0..self.cols)
            .map(|j| self.g_wire * v[self.b_idx(self.rows - 1, j)])
            .collect();
        let device_voltages = Matrix::from_fn(self.rows, self.cols, |i, j| {
            v[self.t_idx(i, j)] - v[self.b_idx(i, j)]
        });
        Ok(ComputeSolution {
            column_currents: currents,
            device_voltages,
            node_voltages: v,
        })
    }

    /// General read solve with arbitrary per-row drive conditions and
    /// per-column termination voltages. This is the tool behind the
    /// sneak-path analysis ([`crate::sneak`]): floating rows let current
    /// creep through multi-device series paths.
    ///
    /// # Errors
    ///
    /// * [`XbarError::ShapeMismatch`] if dimensions disagree.
    /// * [`XbarError::Numeric`] if the solve fails.
    pub fn compute_general(
        &self,
        g: &Matrix,
        row_drives: &[RowDrive],
        col_terminations: &[ColTermination],
    ) -> Result<ComputeSolution> {
        self.check_shape(g)?;
        if row_drives.len() != self.rows {
            return Err(XbarError::ShapeMismatch {
                context: "compute_general row drives",
                expected: self.rows,
                actual: row_drives.len(),
            });
        }
        if col_terminations.len() != self.cols {
            return Err(XbarError::ShapeMismatch {
                context: "compute_general column terminations",
                expected: self.cols,
                actual: col_terminations.len(),
            });
        }
        let v = self.solve_mesh_general(g, row_drives, col_terminations, None)?;
        let currents = (0..self.cols)
            .map(|j| match col_terminations[j] {
                ColTermination::Voltage(vt) => self.g_wire * (v[self.b_idx(self.rows - 1, j)] - vt),
                ColTermination::Floating => 0.0,
            })
            .collect();
        let device_voltages = Matrix::from_fn(self.rows, self.cols, |i, j| {
            v[self.t_idx(i, j)] - v[self.b_idx(i, j)]
        });
        Ok(ComputeSolution {
            column_currents: currents,
            device_voltages,
            node_voltages: v,
        })
    }

    /// Programming-mode solve with the V/2 half-select scheme: row `p`
    /// driven at `v_program`, column `q` grounded, all other wires held at
    /// `v_program / 2`.
    ///
    /// Returns the voltage across every device; entry `(p, q)` is the
    /// degraded full-select programming voltage, the rest are half-select
    /// disturb voltages.
    ///
    /// # Errors
    ///
    /// * [`XbarError::ShapeMismatch`] / [`XbarError::InvalidParameter`] on
    ///   bad arguments.
    /// * [`XbarError::Numeric`] if the CG solve fails.
    pub fn program_bias(
        &self,
        g: &Matrix,
        selected: (usize, usize),
        v_program: f64,
    ) -> Result<Matrix> {
        self.check_shape(g)?;
        let (p, q) = selected;
        if p >= self.rows || q >= self.cols {
            return Err(XbarError::InvalidParameter {
                name: "selected",
                requirement: "cell coordinates must lie inside the array",
            });
        }
        let half = v_program / 2.0;
        let row_sources: Vec<f64> = (0..self.rows)
            .map(|i| if i == p { v_program } else { half })
            .collect();
        let col_terms: Vec<f64> = (0..self.cols)
            .map(|j| if j == q { 0.0 } else { half })
            .collect();
        let v = self.solve_mesh(g, &row_sources, &col_terms, None)?;
        Ok(Matrix::from_fn(self.rows, self.cols, |i, j| {
            v[self.t_idx(i, j)] - v[self.b_idx(i, j)]
        }))
    }

    fn check_shape(&self, g: &Matrix) -> Result<()> {
        if g.shape() != (self.rows, self.cols) {
            return Err(XbarError::ShapeMismatch {
                context: "conductance matrix",
                expected: self.rows * self.cols,
                actual: g.rows() * g.cols(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ideal;

    #[test]
    fn one_by_one_matches_series_circuit() {
        // v → r_wire → device → r_wire → ground: I = v / (2·r_w + r_dev).
        let r_wire = 2.5;
        let r_dev = 10e3;
        let na = NodalAnalysis::new(1, 1, r_wire).unwrap();
        let g = Matrix::filled(1, 1, 1.0 / r_dev);
        let sol = na.compute(&g, &[1.0]).unwrap();
        let expect = 1.0 / (2.0 * r_wire + r_dev);
        assert!(
            (sol.column_currents[0] - expect).abs() / expect < 1e-6,
            "{} vs {}",
            sol.column_currents[0],
            expect
        );
        // Device voltage = I · r_dev.
        let vd = sol.device_voltages[(0, 0)];
        assert!((vd - expect * r_dev).abs() < 1e-6);
    }

    #[test]
    fn tiny_wire_resistance_approaches_ideal() {
        let na = NodalAnalysis::new(4, 3, 1e-6).unwrap();
        let g = Matrix::from_fn(4, 3, |i, j| 1e-5 + (i + j) as f64 * 1e-5);
        let x = [1.0, 0.8, 0.5, 0.2];
        let sol = na.compute(&g, &x).unwrap();
        let ideal_y = ideal::compute(&g, &x);
        for (a, b) in sol.column_currents.iter().zip(&ideal_y) {
            assert!((a - b).abs() / b < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn wire_resistance_only_reduces_current() {
        let g = Matrix::filled(8, 4, 1e-4); // all LRS — worst case
        let x = vec![1.0; 8];
        let ideal_y = ideal::compute(&g, &x);
        let na = NodalAnalysis::new(8, 4, 10.0).unwrap();
        let sol = na.compute(&g, &x).unwrap();
        for (a, b) in sol.column_currents.iter().zip(&ideal_y) {
            assert!(*a < *b, "IR drop must reduce current: {a} vs {b}");
            assert!(*a > 0.5 * b, "but not absurdly");
        }
    }

    #[test]
    fn degradation_grows_with_wire_resistance() {
        let g = Matrix::filled(8, 4, 1e-4);
        let x = vec![1.0; 8];
        let mut prev = f64::INFINITY;
        for &rw in &[0.5, 2.5, 10.0, 50.0] {
            let na = NodalAnalysis::new(8, 4, rw).unwrap();
            let y = na.compute(&g, &x).unwrap().column_currents[0];
            assert!(y < prev, "current must fall as r_wire grows");
            prev = y;
        }
    }

    #[test]
    fn program_bias_selected_cell_sees_most_voltage() {
        let na = NodalAnalysis::new(6, 4, 2.5).unwrap();
        let g = Matrix::filled(6, 4, 1e-4);
        let v = 2.8;
        let bias = na.program_bias(&g, (2, 1), v).unwrap();
        let sel = bias[(2, 1)];
        assert!(sel > 0.9 * v, "selected cell voltage {sel}");
        assert!(sel < v, "IR drop must eat some voltage");
        // Half-selected cells see roughly V/2 or less.
        for i in 0..6 {
            for j in 0..4 {
                if (i, j) != (2, 1) {
                    assert!(
                        bias[(i, j)].abs() < 0.55 * v + 1e-9,
                        "half-select cell ({i},{j}) sees {}",
                        bias[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn program_bias_far_cell_degrades_more() {
        // All-LRS worst case: the cell far from both drivers (top-right in
        // our orientation) sees less programming voltage than the near one
        // (bottom-left).
        let m = 16;
        let n = 8;
        let na = NodalAnalysis::new(m, n, 5.0).unwrap();
        let g = Matrix::filled(m, n, 1e-4);
        let v = 2.8;
        let near = na.program_bias(&g, (m - 1, 0), v).unwrap()[(m - 1, 0)];
        let far = na.program_bias(&g, (0, n - 1), v).unwrap()[(0, n - 1)];
        assert!(
            far < near,
            "far cell should be more degraded: far={far} near={near}"
        );
    }

    #[test]
    fn compute_warm_start_matches_cold() {
        let na = NodalAnalysis::new(5, 3, 2.5).unwrap();
        let g = Matrix::from_fn(5, 3, |i, j| 1e-5 * (1 + i + j) as f64);
        let x = [1.0, 0.0, 1.0, 0.5, 0.25];
        let cold = na.compute(&g, &x).unwrap();
        let warm = na
            .compute_with_warm_start(&g, &x, Some(&cold.node_voltages))
            .unwrap();
        for (a, b) in cold.column_currents.iter().zip(&warm.column_currents) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn invalid_arguments_rejected() {
        assert!(NodalAnalysis::new(0, 3, 2.5).is_err());
        assert!(NodalAnalysis::new(3, 3, 0.0).is_err());
        assert!(NodalAnalysis::new(3, 3, -2.5).is_err());
        let na = NodalAnalysis::new(3, 3, 2.5).unwrap();
        let g = Matrix::filled(2, 3, 1e-5);
        assert!(na.compute(&g, &[1.0; 3]).is_err());
        let g = Matrix::filled(3, 3, 1e-5);
        assert!(na.compute(&g, &[1.0; 2]).is_err());
        assert!(na.program_bias(&g, (5, 0), 2.8).is_err());
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let na = NodalAnalysis::new(4, 2, 2.5).unwrap();
        let g = Matrix::filled(4, 2, 1e-4);
        let sol = na.compute(&g, &[0.0; 4]).unwrap();
        for c in &sol.column_currents {
            assert!(c.abs() < 1e-12);
        }
    }

    #[test]
    fn superposition_approximately_holds() {
        // The network is linear: y(x1 + x2) = y(x1) + y(x2).
        let na = NodalAnalysis::new(4, 3, 2.5).unwrap();
        let g = Matrix::from_fn(4, 3, |i, j| 1e-5 * (1 + (i * 3 + j) % 4) as f64);
        let x1 = [1.0, 0.0, 0.5, 0.0];
        let x2 = [0.0, 1.0, 0.0, 0.25];
        let xs: Vec<f64> = x1.iter().zip(&x2).map(|(a, b)| a + b).collect();
        let y1 = na.compute(&g, &x1).unwrap().column_currents;
        let y2 = na.compute(&g, &x2).unwrap().column_currents;
        let ys = na.compute(&g, &xs).unwrap().column_currents;
        for j in 0..3 {
            assert!((ys[j] - (y1[j] + y2[j])).abs() < 1e-9);
        }
    }
}
