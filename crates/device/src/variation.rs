//! Device variation models.
//!
//! Two variabilities, following §2.1 of the paper:
//!
//! * **Parametric variation** — device-to-device, from fabrication: a
//!   device programmed to nominal conductance `g` realizes `g·e^θ` with
//!   `θ ~ N(0, σ²)` (lognormal, Lee et al. VLSIT'12). This is the dominant
//!   effect and the one Vortex compensates.
//! * **Switching variation** — cycle-to-cycle on a single device: each
//!   programming event lands with an extra multiplicative jitter
//!   `e^ε`, `ε ~ N(0, σ_sw²)`, normally negligible next to the parametric
//!   term (σ_sw ≪ σ).

use serde::{Deserialize, Serialize};
use vortex_linalg::distributions::Normal;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::Matrix;

use crate::{DeviceError, Result};

/// Lognormal parametric + Gaussian switching variation model.
///
/// # Example
///
/// ```
/// use vortex_device::VariationModel;
/// use vortex_linalg::rng::Xoshiro256PlusPlus;
///
/// # fn main() -> Result<(), vortex_device::DeviceError> {
/// let model = VariationModel::new(0.6, 0.02)?;
/// let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
/// let theta = model.sample_theta(&mut rng);
/// let g_actual = VariationModel::apply(1e-4, theta);
/// assert!(g_actual > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationModel {
    sigma: f64,
    sigma_switching: f64,
}

impl VariationModel {
    /// Creates a variation model with parametric log-std `sigma` and
    /// switching log-std `sigma_switching`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if either sigma is
    /// negative or non-finite.
    pub fn new(sigma: f64, sigma_switching: f64) -> Result<Self> {
        if !(sigma.is_finite() && sigma >= 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "sigma",
                requirement: "must be finite and non-negative",
            });
        }
        if !(sigma_switching.is_finite() && sigma_switching >= 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "sigma_switching",
                requirement: "must be finite and non-negative",
            });
        }
        Ok(Self {
            sigma,
            sigma_switching,
        })
    }

    /// Pure parametric model (no switching variation).
    ///
    /// # Errors
    ///
    /// See [`Self::new`].
    pub fn parametric(sigma: f64) -> Result<Self> {
        Self::new(sigma, 0.0)
    }

    /// The ideal, variation-free model.
    pub fn none() -> Self {
        Self {
            sigma: 0.0,
            sigma_switching: 0.0,
        }
    }

    /// Parametric log-domain standard deviation σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Switching (cycle-to-cycle) log-domain standard deviation.
    pub fn sigma_switching(&self) -> f64 {
        self.sigma_switching
    }

    /// Returns a copy with a different parametric σ.
    ///
    /// Used by the VAT/AMP integration (§4.3): after AMP reduces the
    /// *effective* variation seen by sensitive rows, VAT re-tunes against
    /// the reduced σ.
    pub fn with_sigma(&self, sigma: f64) -> Result<Self> {
        Self::new(sigma, self.sigma_switching)
    }

    /// Samples one parametric deviation θ ~ N(0, σ²).
    pub fn sample_theta(&self, rng: &mut Xoshiro256PlusPlus) -> f64 {
        if self.sigma == 0.0 {
            return 0.0;
        }
        Normal::standard().sample(rng) * self.sigma
    }

    /// Samples a `rows × cols` matrix of parametric deviations — one θ per
    /// crossbar cell.
    pub fn sample_theta_matrix(
        &self,
        rows: usize,
        cols: usize,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| self.sample_theta(rng))
    }

    /// Samples one switching (cycle-to-cycle) deviation ε ~ N(0, σ_sw²).
    pub fn sample_switching(&self, rng: &mut Xoshiro256PlusPlus) -> f64 {
        if self.sigma_switching == 0.0 {
            return 0.0;
        }
        Normal::standard().sample(rng) * self.sigma_switching
    }

    /// Applies a log-domain deviation to a nominal conductance:
    /// `g_actual = g_nominal · e^θ`.
    pub fn apply(g_nominal: f64, theta: f64) -> f64 {
        g_nominal * theta.exp()
    }

    /// Expected multiplicative error magnitude `E[|1 − e^θ|]`, estimated by
    /// quadrature — used in reporting and in AMP's expected-SWV analytics.
    pub fn mean_abs_multiplicative_error(&self) -> f64 {
        if self.sigma == 0.0 {
            return 0.0;
        }
        // Simple 2001-point trapezoid over ±6σ.
        let n = 2000;
        let lo = -6.0 * self.sigma;
        let hi = 6.0 * self.sigma;
        let h = (hi - lo) / n as f64;
        let pdf = |t: f64| {
            (-t * t / (2.0 * self.sigma * self.sigma)).exp()
                / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
        };
        let f = |t: f64| (1.0 - t.exp()).abs() * pdf(t);
        let mut acc = 0.5 * (f(lo) + f(hi));
        for i in 1..n {
            acc += f(lo + i as f64 * h);
        }
        acc * h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_linalg::stats;

    #[test]
    fn validation() {
        assert!(VariationModel::new(-0.1, 0.0).is_err());
        assert!(VariationModel::new(0.5, -0.1).is_err());
        assert!(VariationModel::new(f64::NAN, 0.0).is_err());
        assert!(VariationModel::new(0.6, 0.02).is_ok());
    }

    #[test]
    fn none_model_is_deterministic() {
        let m = VariationModel::none();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(m.sample_theta(&mut rng), 0.0);
            assert_eq!(m.sample_switching(&mut rng), 0.0);
        }
    }

    #[test]
    fn theta_moments() {
        let m = VariationModel::parametric(0.6).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let xs: Vec<f64> = (0..100_000).map(|_| m.sample_theta(&mut rng)).collect();
        assert!(stats::mean(&xs).abs() < 0.01);
        assert!((stats::std_dev(&xs) - 0.6).abs() < 0.01);
    }

    #[test]
    fn theta_matrix_shape_and_spread() {
        let m = VariationModel::parametric(0.3).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let t = m.sample_theta_matrix(50, 40, &mut rng);
        assert_eq!(t.shape(), (50, 40));
        let s = stats::std_dev(t.as_slice());
        assert!((s - 0.3).abs() < 0.02, "std {s}");
    }

    #[test]
    fn apply_is_multiplicative_lognormal() {
        assert_eq!(VariationModel::apply(2e-5, 0.0), 2e-5);
        assert!((VariationModel::apply(1.0, 0.6) - 0.6_f64.exp()).abs() < 1e-12);
        assert!(VariationModel::apply(1e-4, -3.0) > 0.0);
    }

    #[test]
    fn programmed_resistances_follow_lognormal() {
        // Fig. 1(c): programming many devices to LRS yields a lognormal
        // spread around 10 kΩ.
        let m = VariationModel::parametric(0.4).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(4);
        let g_on = 1e-4;
        let gs: Vec<f64> = (0..50_000)
            .map(|_| VariationModel::apply(g_on, m.sample_theta(&mut rng)))
            .collect();
        // log(g/g_on) should be N(0, 0.4²).
        let logs: Vec<f64> = gs.iter().map(|g| (g / g_on).ln()).collect();
        assert!(stats::mean(&logs).abs() < 0.01);
        assert!((stats::std_dev(&logs) - 0.4).abs() < 0.01);
    }

    #[test]
    fn mean_abs_error_grows_with_sigma() {
        let e0 = VariationModel::none().mean_abs_multiplicative_error();
        let e1 = VariationModel::parametric(0.2)
            .unwrap()
            .mean_abs_multiplicative_error();
        let e2 = VariationModel::parametric(0.8)
            .unwrap()
            .mean_abs_multiplicative_error();
        assert_eq!(e0, 0.0);
        assert!(e1 > 0.0 && e2 > e1);
        // Small-σ limit: E[|1 − e^θ|] ≈ E[|θ|] = σ·sqrt(2/π).
        let expect = 0.2 * (2.0 / std::f64::consts::PI).sqrt();
        assert!((e1 - expect).abs() / expect < 0.05, "e1 {e1} vs {expect}");
    }

    #[test]
    fn with_sigma_replaces_only_parametric() {
        let m = VariationModel::new(0.6, 0.02).unwrap();
        let m2 = m.with_sigma(0.3).unwrap();
        assert_eq!(m2.sigma(), 0.3);
        assert_eq!(m2.sigma_switching(), 0.02);
    }
}

/// Spatially correlated variation: every cell's deviation is the sum of
/// an independent per-cell term, a shared per-row term and a shared
/// per-column term, `θ_ij = θ_cell + θ_row(i) + θ_col(j)`.
///
/// §4.1.3 of the paper notes that the proposed techniques "are not
/// restricted to any particular variation models"; this model probes
/// that claim. Row-correlated variation is the regime where AMP's
/// row-granularity remapping is most effective (a systematically bad row
/// can be dodged wholesale), while purely i.i.d. variation is its
/// hardest case.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrelatedVariationModel {
    sigma_cell: f64,
    sigma_row: f64,
    sigma_col: f64,
}

impl CorrelatedVariationModel {
    /// Creates a correlated model from the three component log-stds.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if any component is
    /// negative or non-finite.
    pub fn new(sigma_cell: f64, sigma_row: f64, sigma_col: f64) -> Result<Self> {
        for (name, v) in [
            ("sigma_cell", sigma_cell),
            ("sigma_row", sigma_row),
            ("sigma_col", sigma_col),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                let _ = name;
                return Err(DeviceError::InvalidParameter {
                    name: "sigma component",
                    requirement: "must be finite and non-negative",
                });
            }
        }
        Ok(Self {
            sigma_cell,
            sigma_row,
            sigma_col,
        })
    }

    /// Per-cell (independent) component σ.
    pub fn sigma_cell(&self) -> f64 {
        self.sigma_cell
    }

    /// Per-row (shared) component σ.
    pub fn sigma_row(&self) -> f64 {
        self.sigma_row
    }

    /// Per-column (shared) component σ.
    pub fn sigma_col(&self) -> f64 {
        self.sigma_col
    }

    /// Total per-cell standard deviation
    /// `sqrt(σ_cell² + σ_row² + σ_col²)` — the σ an i.i.d. model would
    /// need to match this model's marginal spread.
    pub fn total_sigma(&self) -> f64 {
        (self.sigma_cell * self.sigma_cell
            + self.sigma_row * self.sigma_row
            + self.sigma_col * self.sigma_col)
            .sqrt()
    }

    /// Samples a full `rows × cols` deviation field.
    pub fn sample_theta_matrix(
        &self,
        rows: usize,
        cols: usize,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Matrix {
        let normal = Normal::standard();
        let row_terms: Vec<f64> = (0..rows)
            .map(|_| normal.sample(rng) * self.sigma_row)
            .collect();
        let col_terms: Vec<f64> = (0..cols)
            .map(|_| normal.sample(rng) * self.sigma_col)
            .collect();
        Matrix::from_fn(rows, cols, |i, j| {
            normal.sample(rng) * self.sigma_cell + row_terms[i] + col_terms[j]
        })
    }
}

#[cfg(test)]
mod correlated_tests {
    use super::*;
    use vortex_linalg::stats;

    #[test]
    fn validation_and_total_sigma() {
        assert!(CorrelatedVariationModel::new(-0.1, 0.0, 0.0).is_err());
        assert!(CorrelatedVariationModel::new(0.0, f64::NAN, 0.0).is_err());
        let m = CorrelatedVariationModel::new(0.3, 0.4, 0.0).unwrap();
        assert!((m.total_sigma() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn marginal_spread_matches_total_sigma() {
        let m = CorrelatedVariationModel::new(0.3, 0.4, 0.2).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(5);
        let field = m.sample_theta_matrix(200, 100, &mut rng);
        let s = stats::std_dev(field.as_slice());
        assert!((s - m.total_sigma()).abs() < 0.03, "marginal std {s}");
    }

    #[test]
    fn row_correlation_is_visible() {
        // With a dominant row component, within-row spread is much
        // smaller than the overall spread.
        let m = CorrelatedVariationModel::new(0.1, 0.8, 0.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(6);
        let field = m.sample_theta_matrix(100, 50, &mut rng);
        let overall = stats::std_dev(field.as_slice());
        let within: f64 = (0..100).map(|i| stats::std_dev(field.row(i))).sum::<f64>() / 100.0;
        assert!(
            within < overall / 3.0,
            "within-row {within} vs overall {overall}"
        );
    }

    #[test]
    fn iid_limit_matches_plain_model() {
        let m = CorrelatedVariationModel::new(0.6, 0.0, 0.0).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let field = m.sample_theta_matrix(80, 80, &mut rng);
        let s = stats::std_dev(field.as_slice());
        assert!((s - 0.6).abs() < 0.02);
        // Rows are then uncorrelated: within-row spread ≈ overall spread.
        let within: f64 = (0..80).map(|i| stats::std_dev(field.row(i))).sum::<f64>() / 80.0;
        assert!((within - s).abs() < 0.05);
    }
}
