//! Crossbar cell topologies: bare memristor (1R) vs. 1T-1R.
//!
//! The paper's arrays are passive 1R crossbars — every cell is just a
//! memristor between a word line and a bit line. Foundry arrays are more
//! often 1T-1R: a series access transistor isolates the cell from sneak
//! paths, at the cost of a finite on-resistance in series with the device
//! (NEAT, arXiv 2012.00261). The transistor compresses the *effective*
//! conductance seen by the read circuit:
//!
//! ```text
//! g_eff = g / (1 + g · r_access)
//! ```
//!
//! which is most severe near the LRS end of the range (with the paper's
//! 10 kΩ LRS and a 5 kΩ access transistor, g·r = 0.5 — a 33% loss). The
//! compile pipeline counteracts it NEAT-style at *program time*: targets
//! are pre-distorted through [`CellKind::program_target`] so that, after
//! the transistor, the array realizes the conductances the mapping asked
//! for — up to the hard ceiling `1/r_access` beyond which no programmable
//! state can reach (the top of the weight range saturates).

use crate::DeviceError;

/// Cell topology of a crossbar array.
///
/// Selected per-environment (see `HardwareEnv` in `vortex-core`) and
/// applied at program/freeze time; [`CellKind::OneR`] is the paper's
/// passive array and is the default everywhere.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum CellKind {
    /// Bare memristor cell (passive crossbar) — no series element.
    #[default]
    OneR,
    /// Memristor in series with an access transistor of the given
    /// on-resistance in ohms (1T-1R array).
    OneT1R {
        /// Access-transistor on-resistance in ohms (finite, > 0).
        r_access: f64,
    },
}

impl CellKind {
    /// A 1T-1R cell with the given access-transistor on-resistance.
    ///
    /// # Errors
    ///
    /// [`DeviceError::InvalidParameter`] unless `r_access` is finite and
    /// strictly positive.
    pub fn one_t1r(r_access: f64) -> Result<Self, DeviceError> {
        if !r_access.is_finite() || r_access <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                name: "r_access",
                requirement: "must be finite and > 0",
            });
        }
        Ok(CellKind::OneT1R { r_access })
    }

    /// True for the bare-memristor (paper) topology.
    pub fn is_one_r(&self) -> bool {
        matches!(self, CellKind::OneR)
    }

    /// Conductance the read circuit sees for a memristor programmed to
    /// `g` siemens: the series combination with the access transistor.
    pub fn effective_conductance(&self, g: f64) -> f64 {
        match *self {
            CellKind::OneR => g,
            CellKind::OneT1R { r_access } => g / (1.0 + g * r_access),
        }
    }

    /// Largest effective conductance any programmed state can produce —
    /// `g_on` after the transistor (`+inf` conductance still reads as
    /// `1/r_access`).
    pub fn max_effective(&self, g_on: f64) -> f64 {
        self.effective_conductance(g_on)
    }

    /// Memristor conductance to *program* so the cell reads as
    /// `g_desired` after the series transistor, clamped to the
    /// programmable window `[g_min, g_max]`.
    ///
    /// Inverts `g_eff = g / (1 + g·r)` to `g = g_eff / (1 − g_eff·r)`.
    /// Desired values at or beyond the `1/r_access` ceiling — or beyond
    /// what `g_max` can reach through the transistor — clamp to `g_max`:
    /// that is the NEAT saturation of the top of the weight range.
    pub fn program_target(&self, g_desired: f64, g_min: f64, g_max: f64) -> f64 {
        match *self {
            CellKind::OneR => g_desired,
            CellKind::OneT1R { r_access } => {
                let denom = 1.0 - g_desired * r_access;
                if denom <= 0.0 {
                    return g_max;
                }
                (g_desired / denom).clamp(g_min, g_max)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_r_is_identity() {
        let cell = CellKind::OneR;
        assert_eq!(cell.effective_conductance(1e-4), 1e-4);
        assert_eq!(cell.program_target(1e-4, 1e-6, 1e-4), 1e-4);
        assert!(cell.is_one_r());
    }

    #[test]
    fn transistor_compresses_lrs_end() {
        let cell = CellKind::one_t1r(5e3).unwrap();
        // g·r = 0.5 at the LRS corner: a third of the conductance is lost.
        let eff = cell.effective_conductance(1e-4);
        assert!((eff - 1e-4 / 1.5).abs() < 1e-18);
        // The HRS corner is nearly untouched (g·r = 5e-3).
        let hrs = cell.effective_conductance(1e-6);
        assert!((hrs - 1e-6).abs() / 1e-6 < 6e-3);
    }

    #[test]
    fn program_target_inverts_effective_conductance() {
        let cell = CellKind::one_t1r(5e3).unwrap();
        let (g_min, g_max) = (1e-6, 1e-4);
        for k in 0..=20 {
            let g = g_min + (g_max - g_min) * f64::from(k) / 20.0;
            let desired = cell.effective_conductance(g);
            let target = cell.program_target(desired, g_min, g_max);
            assert!(
                (target - g).abs() / g < 1e-12,
                "round-trip failed at g={g:e}: target={target:e}"
            );
        }
    }

    #[test]
    fn unreachable_targets_clamp_to_g_max() {
        let cell = CellKind::one_t1r(5e3).unwrap();
        let (g_min, g_max) = (1e-6, 1e-4);
        // 1/r_access = 2e-4: nothing programmable can read that high.
        assert_eq!(cell.program_target(2e-4, g_min, g_max), g_max);
        assert_eq!(cell.program_target(3e-4, g_min, g_max), g_max);
        // Just above what g_max reaches through the transistor also clamps.
        let ceiling = cell.effective_conductance(g_max);
        assert_eq!(cell.program_target(ceiling * 1.01, g_min, g_max), g_max);
    }

    #[test]
    fn invalid_r_access_is_rejected() {
        assert!(CellKind::one_t1r(0.0).is_err());
        assert!(CellKind::one_t1r(-1.0).is_err());
        assert!(CellKind::one_t1r(f64::NAN).is_err());
        assert!(CellKind::one_t1r(f64::INFINITY).is_err());
    }

    #[test]
    fn effective_conductance_is_monotone() {
        let cell = CellKind::one_t1r(8e3).unwrap();
        let mut last = -1.0;
        for k in 0..=50 {
            let g = 1e-6 + (1e-4 - 1e-6) * f64::from(k) / 50.0;
            let eff = cell.effective_conductance(g);
            assert!(eff > last);
            last = eff;
        }
    }
}
