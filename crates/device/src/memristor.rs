//! A stateful memristor instance.
//!
//! [`Memristor`] combines the nominal switching model with the device's own
//! parametric-variation realization `θ` and optional stuck-at defect. The
//! crossbar crate holds a grid of these.

use serde::{Deserialize, Serialize};

use crate::defects::DefectKind;
use crate::params::DeviceParams;
use crate::pulse::Pulse;
use crate::switching;

/// One physical memristor: nominal model + variation + defect state.
///
/// The parametric deviation `θ` is a property of the *device* (fixed at
/// fabrication); it multiplies the realized conductance as `g·e^θ`.
/// Programming moves the internal state `w` according to the *nominal*
/// dynamics — an open-loop programmer that pre-calculates pulses from the
/// nominal model therefore lands at `e^θ` times its intended conductance,
/// which is exactly the paper's variation mechanism.
///
/// # Example
///
/// ```
/// use vortex_device::{DeviceParams, Memristor};
/// use vortex_device::pulse::precalculate_pulse;
///
/// # fn main() -> Result<(), vortex_device::DeviceError> {
/// let params = DeviceParams::default();
/// let mut dev = Memristor::fresh(params); // starts at HRS, θ = 0
/// let pulse = precalculate_pulse(&params, dev.resistance(), 50e3)?;
/// dev.apply_pulse(&pulse);
/// assert!((dev.resistance() - 50e3).abs() / 50e3 < 1e-2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Memristor {
    params: DeviceParams,
    /// Internal state variable in `[0, 1]` (0 = HRS, 1 = LRS).
    w: f64,
    /// Parametric log-domain deviation of this device.
    theta: f64,
    /// Stuck-at defect, if any.
    defect: Option<DefectKind>,
}

impl Memristor {
    /// A fresh, variation-free device at HRS.
    pub fn fresh(params: DeviceParams) -> Self {
        Self {
            params,
            w: 0.0,
            theta: 0.0,
            defect: None,
        }
    }

    /// A device with the given parametric deviation, at HRS.
    pub fn with_theta(params: DeviceParams, theta: f64) -> Self {
        Self {
            params,
            w: 0.0,
            theta,
            defect: None,
        }
    }

    /// Marks the device with a stuck-at defect (builder style).
    pub fn with_defect(mut self, defect: Option<DefectKind>) -> Self {
        self.defect = defect;
        self
    }

    /// The nominal parameter set.
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// Internal state `w ∈ [0, 1]`.
    pub fn state(&self) -> f64 {
        self.w
    }

    /// This device's parametric deviation θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The stuck-at defect, if any.
    pub fn defect(&self) -> Option<DefectKind> {
        self.defect
    }

    /// Realized conductance, including variation and defects.
    pub fn conductance(&self) -> f64 {
        match self.defect {
            Some(DefectKind::StuckLrs) => self.params.g_on(),
            Some(DefectKind::StuckHrs) => self.params.g_off(),
            None => self.params.conductance_from_w(self.w) * self.theta.exp(),
        }
    }

    /// Realized resistance, including variation and defects.
    pub fn resistance(&self) -> f64 {
        1.0 / self.conductance()
    }

    /// Applies a programming pulse, moving the internal state by the
    /// nominal dynamics. Stuck devices ignore pulses.
    pub fn apply_pulse(&mut self, pulse: &Pulse) {
        if self.defect.is_some() || pulse.is_none() {
            return;
        }
        self.w = switching::evolve_state(&self.params, self.w, pulse.voltage(), pulse.width_s());
    }

    /// Applies a pulse with an additional cycle-to-cycle (switching
    /// variation) jitter `ε`: the achieved state *movement* is scaled by
    /// `e^ε`.
    pub fn apply_pulse_with_jitter(&mut self, pulse: &Pulse, epsilon: f64) {
        if self.defect.is_some() || pulse.is_none() {
            return;
        }
        let w0 = self.w;
        let w_nominal = switching::evolve_state(&self.params, w0, pulse.voltage(), pulse.width_s());
        let moved = (w_nominal - w0) * epsilon.exp();
        self.w = (w0 + moved).clamp(0.0, 1.0);
    }

    /// Directly forces the internal state (test/bench helper emulating an
    /// ideal close-loop step). Clamped to `[0, 1]`; stuck devices ignore
    /// it.
    pub fn force_state(&mut self, w: f64) {
        if self.defect.is_none() {
            self.w = w.clamp(0.0, 1.0);
        }
    }

    /// Resets the device to HRS (e.g. before pre-testing). Stuck devices
    /// ignore it.
    pub fn reset_to_hrs(&mut self) {
        self.force_state(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pulse::precalculate_pulse;

    fn params() -> DeviceParams {
        DeviceParams::default()
    }

    #[test]
    fn fresh_device_is_hrs() {
        let d = Memristor::fresh(params());
        assert!((d.resistance() - 1e6).abs() < 1.0);
        assert_eq!(d.state(), 0.0);
        assert_eq!(d.theta(), 0.0);
    }

    #[test]
    fn theta_shifts_conductance_multiplicatively() {
        let p = params();
        let mut a = Memristor::with_theta(p, 0.0);
        let mut b = Memristor::with_theta(p, 0.5);
        a.force_state(1.0);
        b.force_state(1.0);
        assert!((b.conductance() / a.conductance() - 0.5_f64.exp()).abs() < 1e-12);
    }

    #[test]
    fn open_loop_programming_misses_by_e_theta() {
        // The paper's core OLD failure mode, at device level.
        let p = params();
        let theta = 0.4;
        let mut d = Memristor::with_theta(p, theta);
        let target = 50e3;
        // Pre-calculation uses nominal model and the *nominal* resistance
        // trajectory (it can't see theta).
        let pulse = precalculate_pulse(&p, p.r_off(), target).unwrap();
        d.apply_pulse(&pulse);
        // Nominal state landed on target, realized conductance off by e^θ.
        let intended_g = 1.0 / target;
        let realized = d.conductance();
        assert!(
            (realized / intended_g - theta.exp()).abs() < 1e-2,
            "realized/intended = {}",
            realized / intended_g
        );
    }

    #[test]
    fn stuck_devices_ignore_pulses() {
        let p = params();
        let mut lrs = Memristor::fresh(p).with_defect(Some(DefectKind::StuckLrs));
        let mut hrs = Memristor::fresh(p).with_defect(Some(DefectKind::StuckHrs));
        let pulse = precalculate_pulse(&p, 1e6, 20e3).unwrap();
        lrs.apply_pulse(&pulse);
        hrs.apply_pulse(&pulse);
        assert_eq!(lrs.conductance(), p.g_on());
        assert_eq!(hrs.conductance(), p.g_off());
        lrs.force_state(0.5);
        assert_eq!(lrs.conductance(), p.g_on());
    }

    #[test]
    fn jitter_scales_movement() {
        let p = params();
        let pulse = precalculate_pulse(&p, 1e6, 100e3).unwrap();
        let mut nominal = Memristor::fresh(p);
        let mut fast = Memristor::fresh(p);
        let mut slow = Memristor::fresh(p);
        nominal.apply_pulse(&pulse);
        fast.apply_pulse_with_jitter(&pulse, 0.3);
        slow.apply_pulse_with_jitter(&pulse, -0.3);
        assert!(fast.state() > nominal.state());
        assert!(slow.state() < nominal.state());
        // ε = 0 must match the plain pulse exactly.
        let mut zero = Memristor::fresh(p);
        zero.apply_pulse_with_jitter(&pulse, 0.0);
        assert_eq!(zero.state(), nominal.state());
    }

    #[test]
    fn reset_to_hrs() {
        let p = params();
        let mut d = Memristor::fresh(p);
        d.force_state(0.9);
        d.reset_to_hrs();
        assert_eq!(d.state(), 0.0);
    }

    #[test]
    fn force_state_clamps() {
        let p = params();
        let mut d = Memristor::fresh(p);
        d.force_state(7.0);
        assert_eq!(d.state(), 1.0);
        d.force_state(-7.0);
        assert_eq!(d.state(), 0.0);
    }
}
