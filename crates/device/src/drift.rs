//! Retention drift: conductance relaxation over time.
//!
//! Filamentary resistive devices lose conductance after programming,
//! classically modeled as a power law `g(t) = g₀·(1 + t/τ)^{−ν}` with a
//! device-to-device spread in the drift exponent ν. The paper does not
//! evaluate retention, but its variation machinery applies unchanged: a
//! per-device random ν is just one more multiplicative disturbance, so
//! VAT's guard band should buy retention time — an extension this module
//! enables (see `vortex-core::retention`).

use serde::{Deserialize, Serialize};
use vortex_linalg::distributions::Normal;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::Matrix;

use crate::{DeviceError, Result};

/// Power-law retention model with lognormal-ish exponent spread.
///
/// # Example
///
/// ```
/// use vortex_device::drift::RetentionModel;
///
/// # fn main() -> Result<(), vortex_device::DeviceError> {
/// let model = RetentionModel::new(0.05, 0.02, 1.0)?;
/// let after_a_year = model.decay_factor(0.05, 3.15e7);
/// assert!(after_a_year < 1.0 && after_a_year > 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionModel {
    /// Mean drift exponent ν (typical TaOx/HfOx values: 0.01–0.1).
    pub nu_mean: f64,
    /// Device-to-device standard deviation of ν (negative samples clamp
    /// to 0 — some devices simply do not drift).
    pub nu_sigma: f64,
    /// Reference time constant τ in seconds.
    pub tau_s: f64,
}

impl RetentionModel {
    /// Creates a retention model.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for negative/non-finite
    /// parameters or a non-positive τ.
    pub fn new(nu_mean: f64, nu_sigma: f64, tau_s: f64) -> Result<Self> {
        if !(nu_mean.is_finite() && nu_mean >= 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "nu_mean",
                requirement: "must be finite and non-negative",
            });
        }
        if !(nu_sigma.is_finite() && nu_sigma >= 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "nu_sigma",
                requirement: "must be finite and non-negative",
            });
        }
        if !(tau_s.is_finite() && tau_s > 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "tau_s",
                requirement: "must be finite and positive",
            });
        }
        Ok(Self {
            nu_mean,
            nu_sigma,
            tau_s,
        })
    }

    /// Samples one device's drift exponent (clamped at 0).
    pub fn sample_nu(&self, rng: &mut Xoshiro256PlusPlus) -> f64 {
        (self.nu_mean + Normal::standard().sample(rng) * self.nu_sigma).max(0.0)
    }

    /// The decay factor of a device with exponent `nu` after `t_s`
    /// seconds: `(1 + t/τ)^{−ν}` (1 at `t = 0`, monotone decreasing).
    pub fn decay_factor(&self, nu: f64, t_s: f64) -> f64 {
        (1.0 + t_s.max(0.0) / self.tau_s).powf(-nu.max(0.0))
    }

    /// Samples a full per-device decay-factor matrix at time `t_s`.
    pub fn sample_decay_matrix(
        &self,
        rows: usize,
        cols: usize,
        t_s: f64,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| {
            self.decay_factor(self.sample_nu(rng), t_s)
        })
    }

    /// Samples one drift exponent per device, row-major (the sampling
    /// order is part of the determinism contract: the same generator
    /// state always yields the same matrix, bit for bit).
    ///
    /// [`Self::sample_decay_matrix`] resamples ν on every call, so two
    /// calls at different times describe two different populations.
    /// Sampling ν once and evaluating [`Self::decay_matrix`] at several
    /// times instead describes *one* population aging — decay is then
    /// monotone in time per device, which is what lifetime simulations
    /// (drift-aged serving, canary probing) need.
    pub fn sample_nu_matrix(
        &self,
        rows: usize,
        cols: usize,
        rng: &mut Xoshiro256PlusPlus,
    ) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| self.sample_nu(rng))
    }

    /// The per-device decay-factor matrix of a fixed exponent population
    /// `nu` after `t_s` seconds: elementwise `(1 + t/τ)^{−ν}`.
    pub fn decay_matrix(&self, nu: &Matrix, t_s: f64) -> Matrix {
        nu.map(|v| self.decay_factor(v, t_s))
    }
}

/// **The** workspace drift implementation: a [`RetentionModel`] plus the
/// seed its per-device exponents are drawn from.
///
/// Every consumer that ages a differential crossbar pair — the chaos
/// plan's one-shot aging (`CompiledModel::age_with`), the lifetime
/// timeline's continuous aging (`vortex_serve::lifetime`) — goes through
/// this type, so there is exactly one definition of "drift at time t":
/// one generator seeded with [`DriftProcess::seed`], the positive
/// crossbar's ν sampled first (row-major), then the negative crossbar's,
/// each device decaying as `(1 + t/τ)^{−ν}`. That draw order is part of
/// the determinism contract; a regression test pins it bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftProcess {
    /// The power-law retention model ν is drawn from.
    pub retention: RetentionModel,
    /// Seed of the ν draws; equal seeds yield bit-identical populations.
    pub seed: u64,
}

impl DriftProcess {
    /// A drift process drawing its exponents from `retention` under
    /// `seed`.
    pub fn new(retention: RetentionModel, seed: u64) -> Self {
        Self { retention, seed }
    }

    /// The frozen per-device exponent populations of a `rows` × `cols`
    /// differential pair: `(ν_pos, ν_neg)`, positive crossbar sampled
    /// first, row-major, from one generator seeded with
    /// [`Self::seed`].
    pub fn nu_matrices(&self, rows: usize, cols: usize) -> (Matrix, Matrix) {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(self.seed);
        let nu_pos = self.retention.sample_nu_matrix(rows, cols, &mut rng);
        let nu_neg = self.retention.sample_nu_matrix(rows, cols, &mut rng);
        (nu_pos, nu_neg)
    }

    /// The decay-factor matrices `(d_pos, d_neg)` of the pair after
    /// `t_s` seconds — [`Self::nu_matrices`] pushed through
    /// [`RetentionModel::decay_matrix`]. Pure in `(seed, t_s)`: the same
    /// process evaluated at several times describes *one* population
    /// aging monotonically.
    pub fn decay_matrices(&self, rows: usize, cols: usize, t_s: f64) -> (Matrix, Matrix) {
        let (nu_pos, nu_neg) = self.nu_matrices(rows, cols);
        (
            self.retention.decay_matrix(&nu_pos, t_s),
            self.retention.decay_matrix(&nu_neg, t_s),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_linalg::stats;

    fn model() -> RetentionModel {
        RetentionModel::new(0.05, 0.02, 1.0).unwrap()
    }

    #[test]
    fn validation() {
        assert!(RetentionModel::new(-0.1, 0.0, 1.0).is_err());
        assert!(RetentionModel::new(0.05, -0.1, 1.0).is_err());
        assert!(RetentionModel::new(0.05, 0.02, 0.0).is_err());
    }

    #[test]
    fn no_decay_at_time_zero() {
        let m = model();
        assert_eq!(m.decay_factor(0.08, 0.0), 1.0);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let d = m.sample_decay_matrix(5, 5, 0.0, &mut rng);
        assert!(d.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn decay_is_monotone_in_time_and_nu() {
        let m = model();
        let f1 = m.decay_factor(0.05, 1e3);
        let f2 = m.decay_factor(0.05, 1e6);
        assert!(f2 < f1 && f1 < 1.0);
        assert!(m.decay_factor(0.1, 1e3) < m.decay_factor(0.02, 1e3));
        // ν = 0 devices never drift.
        assert_eq!(m.decay_factor(0.0, 1e9), 1.0);
    }

    #[test]
    fn spread_grows_with_time() {
        let m = model();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let early = m.sample_decay_matrix(50, 50, 1e2, &mut rng);
        let late = m.sample_decay_matrix(50, 50, 1e7, &mut rng);
        assert!(
            stats::std_dev(late.as_slice()) > stats::std_dev(early.as_slice()),
            "drift dispersion must grow with time"
        );
    }

    #[test]
    fn fixed_nu_population_ages_monotonically() {
        let m = model();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let nu = m.sample_nu_matrix(8, 8, &mut rng);
        let early = m.decay_matrix(&nu, 1e3);
        let late = m.decay_matrix(&nu, 1e6);
        for (e, l) in early.as_slice().iter().zip(late.as_slice()) {
            assert!(l <= e, "decay must be monotone per device: {l} > {e}");
        }
        // Same generator state ⇒ bit-identical population.
        let mut rng2 = Xoshiro256PlusPlus::seed_from_u64(7);
        let nu2 = m.sample_nu_matrix(8, 8, &mut rng2);
        for (a, b) in nu.as_slice().iter().zip(nu2.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn drift_process_reproduces_pre_refactor_values_bit_for_bit() {
        // Pinned from the pre-unification chaos path (an inline
        // seed_from_u64 → sample_nu_matrix(pos) → sample_nu_matrix(neg)
        // → decay_matrix sequence): the refactor onto DriftProcess must
        // not move a single bit, or every chaos/lifetime replay breaks.
        let process = DriftProcess::new(RetentionModel::new(0.6, 0.3, 1e-3).unwrap(), 0xC0FFEE);
        let (d_pos, d_neg) = process.decay_matrices(3, 2, 1e6);
        let expect_pos: [u64; 6] = [
            4518005782706378296,
            4458723452706915587,
            4472439513132427618,
            4529014695660425918,
            4526183680163417058,
            4572551542985347622,
        ];
        let expect_neg: [u64; 6] = [
            4520508902767501407,
            4560851213747250929,
            4559927379194066258,
            4574849801410893411,
            4536156391521418422,
            4460434047817344323,
        ];
        for (got, want) in d_pos.as_slice().iter().zip(expect_pos) {
            assert_eq!(got.to_bits(), want, "positive-crossbar decay moved");
        }
        for (got, want) in d_neg.as_slice().iter().zip(expect_neg) {
            assert_eq!(got.to_bits(), want, "negative-crossbar decay moved");
        }
    }

    #[test]
    fn drift_process_is_pure_in_seed_and_time() {
        let process = DriftProcess::new(model(), 42);
        assert_eq!(
            process.decay_matrices(4, 3, 1e5),
            process.decay_matrices(4, 3, 1e5)
        );
        // One population aging: ν is frozen, so decay is monotone per
        // device across evaluation times.
        let (early, _) = process.decay_matrices(4, 3, 1e3);
        let (late, _) = process.decay_matrices(4, 3, 1e6);
        for (e, l) in early.as_slice().iter().zip(late.as_slice()) {
            assert!(l <= e);
        }
        let other = DriftProcess::new(model(), 43);
        assert_ne!(
            process.decay_matrices(4, 3, 1e5),
            other.decay_matrices(4, 3, 1e5)
        );
    }

    #[test]
    fn factors_in_unit_interval() {
        let m = model();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(3);
        let d = m.sample_decay_matrix(30, 30, 1e5, &mut rng);
        assert!(d.as_slice().iter().all(|&v| v > 0.0 && v <= 1.0));
    }
}
