//! Nonlinear switching dynamics.
//!
//! The model is a threshold-sinh rate equation with soft boundaries
//! (a first-order window), chosen so that:
//!
//! * switching is *strongly* nonlinear in voltage — a half-selected device
//!   (V/2) moves ~3 orders of magnitude more slowly than a full-selected
//!   one, reproducing Fig. 1(a) of the paper;
//! * the pulse response integrates in closed form, so the OLD pulse
//!   *pre-calculation* (§2.2.3) is an exact model inversion rather than a
//!   numeric search (a numeric fallback is still provided for validation).
//!
//! SET (positive voltage, towards LRS):
//! `dw/dt =  k_set  · f(V) · (1 − w)`  ⇒  `w(t) = 1 − (1 − w₀)·e^{−k·f·t}`
//!
//! RESET (negative voltage, towards HRS):
//! `dw/dt = −k_reset · f(|V|) · w`     ⇒  `w(t) = w₀·e^{−k·f·t}`
//!
//! with drive `f(V) = sinh(|V|/v_char) − sinh(v_th/v_char)` for
//! `|V| > v_th`, else 0.

use crate::params::DeviceParams;

/// Voltage drive term `f(V)`: zero below threshold, sinh-steep above.
///
/// The steepness is what makes the V/2 half-select scheme work: at the
/// default corner `f(2.8 V) / f(1.4 V) ≈ 800`.
pub fn drive(params: &DeviceParams, voltage_magnitude: f64) -> f64 {
    let v = voltage_magnitude.abs();
    if v <= params.v_threshold() {
        return 0.0;
    }
    (v / params.v_char()).sinh() - (params.v_threshold() / params.v_char()).sinh()
}

/// Integrates the state under a constant voltage for `dt` seconds.
///
/// Positive voltage SETs (towards LRS, `w → 1`); negative voltage RESETs
/// (towards HRS, `w → 0`). Sub-threshold voltage leaves the state
/// untouched. The result is clamped to `[0, 1]`.
pub fn evolve_state(params: &DeviceParams, w0: f64, voltage: f64, dt: f64) -> f64 {
    debug_assert!(dt >= 0.0, "negative pulse width");
    let w0 = w0.clamp(0.0, 1.0);
    let f = drive(params, voltage);
    if f == 0.0 || dt == 0.0 {
        return w0;
    }
    if voltage > 0.0 {
        let decay = (-params.rate_set() * f * dt).exp();
        1.0 - (1.0 - w0) * decay
    } else {
        let decay = (-params.rate_reset() * f * dt).exp();
        w0 * decay
    }
}

/// Pulse width that moves the state from `w0` to `w_target` at constant
/// `voltage` (closed-form inversion of [`evolve_state`]).
///
/// Returns `None` when the target is in the wrong direction for the
/// voltage sign, the drive is zero (sub-threshold), or the target sits
/// exactly on a boundary that is only reached asymptotically.
pub fn width_for_target(
    params: &DeviceParams,
    w0: f64,
    w_target: f64,
    voltage: f64,
) -> Option<f64> {
    let w0 = w0.clamp(0.0, 1.0);
    let wt = w_target.clamp(0.0, 1.0);
    let f = drive(params, voltage);
    if f == 0.0 {
        return if (wt - w0).abs() < 1e-15 {
            Some(0.0)
        } else {
            None
        };
    }
    if (wt - w0).abs() < 1e-15 {
        return Some(0.0);
    }
    if voltage > 0.0 {
        // SET: must move upward and cannot reach exactly 1.
        if wt < w0 || wt >= 1.0 {
            return None;
        }
        let ratio = (1.0 - w0) / (1.0 - wt);
        Some(ratio.ln() / (params.rate_set() * f))
    } else {
        // RESET: must move downward and cannot reach exactly 0.
        if wt > w0 || wt <= 0.0 || w0 <= 0.0 {
            return None;
        }
        let ratio = w0 / wt;
        Some(ratio.ln() / (params.rate_reset() * f))
    }
}

/// Numeric (bisection) inversion of [`evolve_state`] — validation fallback
/// for [`width_for_target`], and the tool of choice if the closed form is
/// ever replaced by a tabulated switching characteristic.
pub fn width_for_target_numeric(
    params: &DeviceParams,
    w0: f64,
    w_target: f64,
    voltage: f64,
    max_width: f64,
) -> Option<f64> {
    let f = drive(params, voltage);
    if f == 0.0 {
        return None;
    }
    let w0 = w0.clamp(0.0, 1.0);
    let wt = w_target.clamp(0.0, 1.0);
    let toward = evolve_state(params, w0, voltage, max_width);
    // Monotone in dt: check the target is bracketed.
    let (lo_val, hi_val) = (w0, toward);
    let bracketed = if lo_val <= hi_val {
        (lo_val..=hi_val).contains(&wt)
    } else {
        (hi_val..=lo_val).contains(&wt)
    };
    if !bracketed {
        return None;
    }
    let mut lo = 0.0;
    let mut hi = max_width;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let w = evolve_state(params, w0, voltage, mid);
        let undershoot = if voltage > 0.0 { w < wt } else { w > wt };
        if undershoot {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> DeviceParams {
        DeviceParams::default()
    }

    #[test]
    fn drive_zero_below_threshold() {
        let p = p();
        assert_eq!(drive(&p, 0.0), 0.0);
        assert_eq!(drive(&p, 1.0), 0.0);
        assert_eq!(drive(&p, p.v_threshold()), 0.0);
        assert!(drive(&p, p.v_threshold() + 0.01) > 0.0);
    }

    #[test]
    fn half_select_is_orders_of_magnitude_weaker() {
        let p = p();
        let full = drive(&p, p.v_program());
        let half = drive(&p, p.v_program() / 2.0);
        assert!(
            full / half > 100.0,
            "full/half drive ratio = {}",
            full / half
        );
    }

    #[test]
    fn drive_is_symmetric_in_sign() {
        let p = p();
        assert_eq!(drive(&p, 2.8), drive(&p, -2.8));
    }

    #[test]
    fn set_moves_towards_one() {
        let p = p();
        let w1 = evolve_state(&p, 0.0, p.v_program(), 1e-6);
        assert!(w1 > 0.5, "1 µs full SET should move most of the way: {w1}");
        let w2 = evolve_state(&p, 0.0, p.v_program(), 1e-5);
        assert!(w2 > w1);
        assert!(w2 <= 1.0);
    }

    #[test]
    fn reset_moves_towards_zero() {
        let p = p();
        let w1 = evolve_state(&p, 1.0, -p.v_program(), 1e-6);
        assert!(w1 < 0.5);
        let w2 = evolve_state(&p, 1.0, -p.v_program(), 1e-5);
        assert!(w2 < w1);
        assert!(w2 >= 0.0);
    }

    #[test]
    fn subthreshold_pulse_is_noop() {
        let p = p();
        assert_eq!(evolve_state(&p, 0.3, 1.0, 1.0), 0.3);
        assert_eq!(evolve_state(&p, 0.3, -1.0, 1.0), 0.3);
        // Half-select at V/2 = 1.4 V moves, but only a little in 1 µs.
        let w = evolve_state(&p, 0.3, p.v_program() / 2.0, 1e-6);
        assert!((w - 0.3).abs() < 0.01, "half-select drift {}", w - 0.3);
    }

    #[test]
    fn zero_width_is_noop() {
        let p = p();
        assert_eq!(evolve_state(&p, 0.7, 2.8, 0.0), 0.7);
    }

    #[test]
    fn width_inversion_roundtrip_set() {
        let p = p();
        for &(w0, wt) in &[(0.0, 0.3), (0.1, 0.9), (0.5, 0.6), (0.0, 0.999)] {
            let dt = width_for_target(&p, w0, wt, p.v_program()).expect("reachable");
            let w = evolve_state(&p, w0, p.v_program(), dt);
            assert!((w - wt).abs() < 1e-9, "w0={w0} wt={wt} got {w}");
        }
    }

    #[test]
    fn width_inversion_roundtrip_reset() {
        let p = p();
        for &(w0, wt) in &[(1.0, 0.7), (0.9, 0.1), (0.5, 0.4), (1.0, 0.001)] {
            let dt = width_for_target(&p, w0, wt, -p.v_program()).expect("reachable");
            let w = evolve_state(&p, w0, -p.v_program(), dt);
            assert!((w - wt).abs() < 1e-9, "w0={w0} wt={wt} got {w}");
        }
    }

    #[test]
    fn wrong_direction_is_unreachable() {
        let p = p();
        assert!(width_for_target(&p, 0.5, 0.2, p.v_program()).is_none());
        assert!(width_for_target(&p, 0.5, 0.8, -p.v_program()).is_none());
        assert!(width_for_target(&p, 0.5, 0.8, 1.0).is_none()); // sub-threshold
    }

    #[test]
    fn exact_boundaries_unreachable_in_finite_time() {
        let p = p();
        assert!(width_for_target(&p, 0.5, 1.0, p.v_program()).is_none());
        assert!(width_for_target(&p, 0.5, 0.0, -p.v_program()).is_none());
    }

    #[test]
    fn same_state_takes_zero_width() {
        let p = p();
        assert_eq!(width_for_target(&p, 0.4, 0.4, p.v_program()), Some(0.0));
    }

    #[test]
    fn numeric_inversion_agrees_with_closed_form() {
        let p = p();
        for &(w0, wt, sign) in &[(0.0, 0.5, 1.0), (0.2, 0.8, 1.0), (0.9, 0.3, -1.0)] {
            let v = sign * p.v_program();
            let exact = width_for_target(&p, w0, wt, v).unwrap();
            let numeric = width_for_target_numeric(&p, w0, wt, v, 1e-3).unwrap();
            assert!(
                (exact - numeric).abs() / exact.max(1e-12) < 1e-6,
                "exact {exact} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn lower_voltage_needs_longer_pulse() {
        // The IR-drop mechanism: a degraded programming voltage needs an
        // exponentially longer pulse for the same resistance change.
        let p = p();
        let full = width_for_target(&p, 0.0, 0.5, p.v_program()).unwrap();
        let degraded = width_for_target(&p, 0.0, 0.5, p.v_program() - 0.3).unwrap();
        assert!(
            degraded / full > 3.0,
            "0.3 V degradation should slow switching a lot, ratio {}",
            degraded / full
        );
    }

    #[test]
    fn figure_1a_shape_voltage_sensitivity() {
        // Paper: reducing the programming voltage from 2.9 V to 2.8 V at a
        // fixed 0.5 µs changes the achieved resistance by >2×; reducing to
        // the half-select 1.45 V produces negligible change. Verify the
        // same qualitative shape on a RESET (towards HRS) transition.
        let p = p();
        let dt = 0.5e-6;
        let r29 = p.resistance_from_w(evolve_state(&p, 1.0, -2.9, dt));
        let r28 = p.resistance_from_w(evolve_state(&p, 1.0, -2.8, dt));
        let r145 = p.resistance_from_w(evolve_state(&p, 1.0, -1.45, dt));
        assert!(r29 / r28 > 1.5, "2.9 vs 2.8 V: {r29:.3e} vs {r28:.3e}");
        assert!(
            (r145 - p.r_on()) / p.r_on() < 0.05,
            "half-select should barely move: {r145:.3e}"
        );
    }
}
