//! Behavioural memristor device models for the Vortex reproduction.
//!
//! This crate is the device-level substrate of the simulator:
//!
//! * [`params::DeviceParams`] — nominal device corner (10 kΩ LRS / 1 MΩ HRS
//!   as in the paper) plus the switching-dynamics constants.
//! * [`switching`] — the nonlinear voltage-dependent switching model
//!   (sinh-type rate with a threshold, after Yu et al., APL 2011 — the
//!   paper's Fig. 1(a)), with closed-form pulse integration.
//! * [`pulse`] — programming-pulse representation and the open-loop pulse
//!   *pre-calculation* (model inversion) used by OLD and Vortex.
//! * [`memristor::Memristor`] — a stateful device combining the nominal
//!   model with its parametric-variation realization.
//! * [`variation`] — lognormal parametric variation and Gaussian switching
//!   variation (Lee et al., VLSIT 2012 — the paper's variation model).
//! * [`defects`] — stuck-at-HRS / stuck-at-LRS fabrication defects.
//! * [`cell`] — cell topologies: the paper's passive 1R crossbar vs. a
//!   1T-1R array whose access transistor compresses effective conductance
//!   (NEAT-style program-time compensation).
//!
//! # Example
//!
//! ```
//! use vortex_device::params::DeviceParams;
//! use vortex_device::pulse::precalculate_pulse;
//!
//! # fn main() -> Result<(), vortex_device::DeviceError> {
//! let params = DeviceParams::default(); // 10 kΩ .. 1 MΩ
//! // Pre-calculate the pulse that takes a fresh (HRS) device to 50 kΩ.
//! let pulse = precalculate_pulse(&params, params.r_off(), 50e3)?;
//! assert!(pulse.width_s() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod cell;
pub mod defects;
pub mod drift;
pub mod memristor;
pub mod params;
pub mod pulse;
pub mod switching;
pub mod variation;

pub use cell::CellKind;
pub use memristor::Memristor;
pub use params::DeviceParams;
pub use pulse::Pulse;
pub use variation::VariationModel;

/// Errors produced by the device models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeviceError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The violated requirement.
        requirement: &'static str,
    },
    /// A requested target state cannot be reached from the initial state
    /// with the configured programming voltage.
    TargetUnreachable {
        /// Initial resistance in ohms.
        from_ohms: f64,
        /// Requested resistance in ohms.
        to_ohms: f64,
    },
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::InvalidParameter { name, requirement } => {
                write!(f, "invalid device parameter `{name}`: {requirement}")
            }
            DeviceError::TargetUnreachable { from_ohms, to_ohms } => write!(
                f,
                "target resistance {to_ohms:.3e} ohm unreachable from {from_ohms:.3e} ohm"
            ),
        }
    }
}

impl std::error::Error for DeviceError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, DeviceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_and_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeviceError>();
        let e = DeviceError::TargetUnreachable {
            from_ohms: 1e4,
            to_ohms: 1e6,
        };
        assert!(e.to_string().contains("unreachable"));
    }
}
