//! Programming pulses and open-loop pulse pre-calculation.
//!
//! OLD (and Vortex, which is an OLD-family scheme) programs each device by
//! *pre-calculating* the pulse from the characterized switching model
//! (§2.2.3 of the paper): given the current and target resistance and a
//! programming voltage, invert the model to get the pulse width. Device
//! variation is exactly what this calculation cannot see — the programmed
//! device then lands off target, which is the error Vortex compensates.

use serde::{Deserialize, Serialize};

use crate::params::DeviceParams;
use crate::switching;
use crate::{DeviceError, Result};

/// A rectangular programming pulse: signed voltage and width.
///
/// Positive voltage SETs (towards LRS), negative RESETs (towards HRS).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pulse {
    voltage: f64,
    width_s: f64,
}

impl Pulse {
    /// Creates a pulse.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if the width is negative
    /// or either field is non-finite.
    pub fn new(voltage: f64, width_s: f64) -> Result<Self> {
        if !voltage.is_finite() {
            return Err(DeviceError::InvalidParameter {
                name: "voltage",
                requirement: "must be finite",
            });
        }
        if !(width_s.is_finite() && width_s >= 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "width_s",
                requirement: "must be finite and non-negative",
            });
        }
        Ok(Self { voltage, width_s })
    }

    /// The zero pulse (no effect on any device).
    pub fn none() -> Self {
        Self {
            voltage: 0.0,
            width_s: 0.0,
        }
    }

    /// Signed pulse voltage in volts.
    pub fn voltage(&self) -> f64 {
        self.voltage
    }

    /// Pulse width in seconds.
    pub fn width_s(&self) -> f64 {
        self.width_s
    }

    /// Whether this pulse moves nothing (zero width or zero voltage).
    pub fn is_none(&self) -> bool {
        self.width_s == 0.0 || self.voltage == 0.0
    }

    /// A copy with the voltage scaled by `factor` (e.g. IR-drop
    /// degradation of the voltage actually reaching a device).
    pub fn scaled_voltage(&self, factor: f64) -> Self {
        Self {
            voltage: self.voltage * factor,
            width_s: self.width_s,
        }
    }
}

/// Pre-calculates the pulse that takes a device from `r_from` to `r_to`
/// ohms, assuming the *nominal* switching model (no variation knowledge).
///
/// The pulse voltage is `±v_program` depending on direction. Targets at
/// the exact corner resistances are nudged inside by a relative margin of
/// `1e-6` since the boundaries are only reached asymptotically.
///
/// # Errors
///
/// Returns [`DeviceError::TargetUnreachable`] if the model inversion fails
/// (should not happen for in-range resistances) and
/// [`DeviceError::InvalidParameter`] for non-positive resistances.
pub fn precalculate_pulse(params: &DeviceParams, r_from: f64, r_to: f64) -> Result<Pulse> {
    if !(r_from.is_finite() && r_from > 0.0) {
        return Err(DeviceError::InvalidParameter {
            name: "r_from",
            requirement: "must be finite and positive",
        });
    }
    if !(r_to.is_finite() && r_to > 0.0) {
        return Err(DeviceError::InvalidParameter {
            name: "r_to",
            requirement: "must be finite and positive",
        });
    }
    let w0 = params.w_from_resistance(r_from);
    let mut wt = params.w_from_resistance(r_to);
    // Nudge asymptotic endpoints inward.
    const MARGIN: f64 = 1e-6;
    wt = wt.clamp(MARGIN, 1.0 - MARGIN);
    let w0c = w0.clamp(0.0, 1.0);

    if (wt - w0c).abs() < 1e-12 {
        return Ok(Pulse::none());
    }
    let voltage = if wt > w0c {
        params.v_program()
    } else {
        -params.v_program()
    };
    match switching::width_for_target(params, w0c, wt, voltage) {
        Some(width) => Pulse::new(voltage, width),
        None => Err(DeviceError::TargetUnreachable {
            from_ohms: r_from,
            to_ohms: r_to,
        }),
    }
}

/// Pre-calculates a pulse in the *conductance* domain.
///
/// # Errors
///
/// Same conditions as [`precalculate_pulse`].
pub fn precalculate_pulse_conductance(
    params: &DeviceParams,
    g_from: f64,
    g_to: f64,
) -> Result<Pulse> {
    if !(g_from.is_finite() && g_from > 0.0) {
        return Err(DeviceError::InvalidParameter {
            name: "g_from",
            requirement: "must be finite and positive",
        });
    }
    if !(g_to.is_finite() && g_to > 0.0) {
        return Err(DeviceError::InvalidParameter {
            name: "g_to",
            requirement: "must be finite and positive",
        });
    }
    precalculate_pulse(params, 1.0 / g_from, 1.0 / g_to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::switching::evolve_state;

    fn p() -> DeviceParams {
        DeviceParams::default()
    }

    #[test]
    fn pulse_validation() {
        assert!(Pulse::new(2.8, -1.0).is_err());
        assert!(Pulse::new(f64::NAN, 1.0).is_err());
        assert!(Pulse::new(2.8, 0.0).unwrap().is_none());
        assert!(Pulse::none().is_none());
    }

    #[test]
    fn scaled_voltage_keeps_width() {
        let pl = Pulse::new(2.8, 1e-6).unwrap();
        let sc = pl.scaled_voltage(0.9);
        assert!((sc.voltage() - 2.52).abs() < 1e-12);
        assert_eq!(sc.width_s(), 1e-6);
    }

    #[test]
    fn precalculated_pulse_hits_target_on_nominal_device() {
        let p = p();
        for &(from, to) in &[(1e6, 50e3), (1e6, 10.1e3), (10e3, 500e3), (20e3, 100e3)] {
            let pulse = precalculate_pulse(&p, from, to).unwrap();
            let w0 = p.w_from_resistance(from);
            let w = evolve_state(&p, w0, pulse.voltage(), pulse.width_s());
            let r = p.resistance_from_w(w);
            assert!(
                (r - to).abs() / to < 1e-3,
                "from {from:.1e} to {to:.1e}: landed at {r:.4e}"
            );
        }
    }

    #[test]
    fn direction_is_chosen_from_target() {
        let p = p();
        // Towards lower resistance (higher conductance) ⇒ SET, positive V.
        let set = precalculate_pulse(&p, 1e6, 20e3).unwrap();
        assert!(set.voltage() > 0.0);
        // Towards higher resistance ⇒ RESET, negative V.
        let reset = precalculate_pulse(&p, 20e3, 1e6).unwrap();
        assert!(reset.voltage() < 0.0);
    }

    #[test]
    fn corner_targets_are_nudged_not_errors() {
        let p = p();
        // Exact r_on / r_off are asymptotic; the pre-calculation must still
        // return a finite pulse that lands within a tiny margin.
        let to_on = precalculate_pulse(&p, 1e6, 10e3).unwrap();
        assert!(to_on.width_s().is_finite() && to_on.width_s() > 0.0);
        let to_off = precalculate_pulse(&p, 10e3, 1e6).unwrap();
        assert!(to_off.width_s().is_finite() && to_off.width_s() > 0.0);
    }

    #[test]
    fn no_move_needed_gives_none_pulse() {
        let p = p();
        let pulse = precalculate_pulse(&p, 50e3, 50e3).unwrap();
        assert!(pulse.is_none());
    }

    #[test]
    fn invalid_resistances_rejected() {
        let p = p();
        assert!(precalculate_pulse(&p, -5.0, 1e4).is_err());
        assert!(precalculate_pulse(&p, 1e4, 0.0).is_err());
        assert!(precalculate_pulse(&p, f64::INFINITY, 1e4).is_err());
    }

    #[test]
    fn conductance_domain_agrees_with_resistance_domain() {
        let p = p();
        let a = precalculate_pulse(&p, 1e6, 50e3).unwrap();
        let b = precalculate_pulse_conductance(&p, 1e-6, 2e-5).unwrap();
        assert!((a.voltage() - b.voltage()).abs() < 1e-12);
        assert!((a.width_s() - b.width_s()).abs() / a.width_s() < 1e-9);
    }

    #[test]
    fn out_of_range_targets_clamp_to_corners() {
        let p = p();
        // 1 kΩ is below r_on: clamps to (just inside) r_on.
        let pulse = precalculate_pulse(&p, 1e6, 1e3).unwrap();
        let w = evolve_state(&p, 0.0, pulse.voltage(), pulse.width_s());
        assert!(w > 0.999);
    }
}
