//! Nominal device parameters.
//!
//! The default corner follows the paper's experimental setup (§3.1, §5):
//! on-state (LRS) resistance 10 kΩ, off-state (HRS) resistance 1 MΩ. The
//! switching constants are fitted so that a full HRS→LRS transition under
//! the nominal 2.8 V programming voltage completes in about a microsecond,
//! matching the pulse-width scale of Fig. 1(a) (Yu et al., APL 2011), and so
//! that a half-selected device (V/2 = 1.4 V) moves about three orders of
//! magnitude more slowly — the property the V/2 programming scheme relies
//! on (§2.2.2).

use serde::{Deserialize, Serialize};

use crate::{DeviceError, Result};

/// Nominal (variation-free) memristor parameters.
///
/// The internal state variable `w ∈ [0, 1]` interpolates conductance
/// linearly between the off-state (`w = 0`) and on-state (`w = 1`)
/// conductances.
///
/// # Example
///
/// ```
/// use vortex_device::DeviceParams;
///
/// let p = DeviceParams::default();
/// assert_eq!(p.r_on(), 10e3);
/// assert_eq!(p.r_off(), 1e6);
/// let w = p.w_from_resistance(10e3);
/// assert!((w - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceParams {
    r_on: f64,
    r_off: f64,
    v_threshold: f64,
    v_char: f64,
    rate_set: f64,
    rate_reset: f64,
    v_program: f64,
}

impl Default for DeviceParams {
    fn default() -> Self {
        Self {
            r_on: 10e3,
            r_off: 1e6,
            v_threshold: 1.3,
            v_char: 0.25,
            rate_set: 137.0,
            rate_reset: 137.0,
            v_program: 2.8,
        }
    }
}

impl DeviceParams {
    /// Creates parameters with explicit resistances, defaulting the
    /// switching constants.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] unless
    /// `0 < r_on < r_off` and both are finite.
    pub fn new(r_on: f64, r_off: f64) -> Result<Self> {
        if !(r_on.is_finite() && r_on > 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "r_on",
                requirement: "must be finite and positive",
            });
        }
        if !(r_off.is_finite() && r_off > r_on) {
            return Err(DeviceError::InvalidParameter {
                name: "r_off",
                requirement: "must be finite and greater than r_on",
            });
        }
        Ok(Self {
            r_on,
            r_off,
            ..Self::default()
        })
    }

    /// Sets the switching threshold voltage (below which nothing moves).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] unless
    /// `0 < v_threshold < v_program`.
    pub fn with_threshold(mut self, v_threshold: f64) -> Result<Self> {
        if !(v_threshold > 0.0 && v_threshold < self.v_program) {
            return Err(DeviceError::InvalidParameter {
                name: "v_threshold",
                requirement: "must satisfy 0 < v_threshold < v_program",
            });
        }
        self.v_threshold = v_threshold;
        Ok(self)
    }

    /// Sets the nominal full-select programming voltage.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] unless
    /// `v_program > v_threshold`.
    pub fn with_program_voltage(mut self, v_program: f64) -> Result<Self> {
        if !(v_program.is_finite() && v_program > self.v_threshold) {
            return Err(DeviceError::InvalidParameter {
                name: "v_program",
                requirement: "must be finite and exceed v_threshold",
            });
        }
        self.v_program = v_program;
        Ok(self)
    }

    /// On-state (LRS) resistance in ohms.
    pub fn r_on(&self) -> f64 {
        self.r_on
    }

    /// Off-state (HRS) resistance in ohms.
    pub fn r_off(&self) -> f64 {
        self.r_off
    }

    /// On-state conductance in siemens.
    pub fn g_on(&self) -> f64 {
        1.0 / self.r_on
    }

    /// Off-state conductance in siemens.
    pub fn g_off(&self) -> f64 {
        1.0 / self.r_off
    }

    /// Switching threshold voltage in volts.
    pub fn v_threshold(&self) -> f64 {
        self.v_threshold
    }

    /// Characteristic voltage of the sinh nonlinearity, in volts.
    pub fn v_char(&self) -> f64 {
        self.v_char
    }

    /// SET-direction rate constant (1/s per unit drive).
    pub fn rate_set(&self) -> f64 {
        self.rate_set
    }

    /// RESET-direction rate constant (1/s per unit drive).
    pub fn rate_reset(&self) -> f64 {
        self.rate_reset
    }

    /// Nominal full-select programming voltage magnitude in volts.
    pub fn v_program(&self) -> f64 {
        self.v_program
    }

    /// Conductance at internal state `w` (clamped to `[0, 1]`).
    pub fn conductance_from_w(&self, w: f64) -> f64 {
        let w = w.clamp(0.0, 1.0);
        self.g_off() + w * (self.g_on() - self.g_off())
    }

    /// Internal state reproducing conductance `g` (clamped to the valid
    /// conductance range).
    pub fn w_from_conductance(&self, g: f64) -> f64 {
        let g = g.clamp(self.g_off(), self.g_on());
        (g - self.g_off()) / (self.g_on() - self.g_off())
    }

    /// Internal state reproducing resistance `r`.
    pub fn w_from_resistance(&self, r: f64) -> f64 {
        self.w_from_conductance(1.0 / r)
    }

    /// Resistance at internal state `w`.
    pub fn resistance_from_w(&self, w: f64) -> f64 {
        1.0 / self.conductance_from_w(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_corner() {
        let p = DeviceParams::default();
        assert_eq!(p.r_on(), 10e3);
        assert_eq!(p.r_off(), 1e6);
        assert!(p.v_program() > p.v_threshold());
    }

    #[test]
    fn validation() {
        assert!(DeviceParams::new(-1.0, 1e6).is_err());
        assert!(DeviceParams::new(1e6, 1e4).is_err());
        assert!(DeviceParams::new(1e4, 1e4).is_err());
        assert!(DeviceParams::new(1e4, 1e6).is_ok());
        assert!(DeviceParams::default().with_threshold(0.0).is_err());
        assert!(DeviceParams::default().with_threshold(5.0).is_err());
        assert!(DeviceParams::default().with_program_voltage(1.0).is_err());
        assert!(DeviceParams::default().with_program_voltage(3.2).is_ok());
    }

    #[test]
    fn w_conductance_roundtrip() {
        let p = DeviceParams::default();
        for &w in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let g = p.conductance_from_w(w);
            assert!((p.w_from_conductance(g) - w).abs() < 1e-12);
        }
    }

    #[test]
    fn w_endpoints_map_to_corner_resistances() {
        let p = DeviceParams::default();
        assert!((p.resistance_from_w(1.0) - 10e3).abs() < 1e-6);
        assert!((p.resistance_from_w(0.0) - 1e6).abs() < 1e-3);
    }

    #[test]
    fn out_of_range_inputs_clamp() {
        let p = DeviceParams::default();
        assert_eq!(p.conductance_from_w(2.0), p.g_on());
        assert_eq!(p.conductance_from_w(-1.0), p.g_off());
        assert_eq!(p.w_from_conductance(1.0), 1.0);
        assert_eq!(p.w_from_conductance(0.0), 0.0);
    }

    #[test]
    fn conductance_monotone_in_w() {
        let p = DeviceParams::default();
        let mut prev = 0.0;
        for i in 0..=10 {
            let g = p.conductance_from_w(i as f64 / 10.0);
            assert!(g >= prev);
            prev = g;
        }
    }
}
