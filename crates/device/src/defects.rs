//! Stuck-at fabrication defects.
//!
//! §4.2.2 of the paper: "Defective cell is another reliability issue …
//! causing the device resistance stuck at HRS or LRS. Such defective cells
//! can be detected as memristors with large variations and replaced by
//! following the similar AMP process."

use serde::{Deserialize, Serialize};
use vortex_linalg::rng::Xoshiro256PlusPlus;

use crate::{DeviceError, Result};

/// The two stuck-at failure modes of a crossbar cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DefectKind {
    /// Device is stuck at the low-resistance state regardless of
    /// programming.
    StuckLrs,
    /// Device is stuck at the high-resistance state regardless of
    /// programming.
    StuckHrs,
}

/// Bernoulli defect-injection model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DefectModel {
    p_stuck_lrs: f64,
    p_stuck_hrs: f64,
}

impl DefectModel {
    /// Creates a defect model with the given per-cell probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] if either probability is
    /// outside `[0, 1]` or they sum to more than 1.
    pub fn new(p_stuck_lrs: f64, p_stuck_hrs: f64) -> Result<Self> {
        let valid = |p: f64| (0.0..=1.0).contains(&p);
        if !valid(p_stuck_lrs) || !valid(p_stuck_hrs) || p_stuck_lrs + p_stuck_hrs > 1.0 {
            return Err(DeviceError::InvalidParameter {
                name: "defect probabilities",
                requirement: "each in [0,1] and summing to at most 1",
            });
        }
        Ok(Self {
            p_stuck_lrs,
            p_stuck_hrs,
        })
    }

    /// The defect-free model.
    pub fn none() -> Self {
        Self {
            p_stuck_lrs: 0.0,
            p_stuck_hrs: 0.0,
        }
    }

    /// Probability of a cell being stuck at LRS.
    pub fn p_stuck_lrs(&self) -> f64 {
        self.p_stuck_lrs
    }

    /// Probability of a cell being stuck at HRS.
    pub fn p_stuck_hrs(&self) -> f64 {
        self.p_stuck_hrs
    }

    /// Total defect probability per cell.
    pub fn p_total(&self) -> f64 {
        self.p_stuck_lrs + self.p_stuck_hrs
    }

    /// Samples the defect state of a single cell.
    pub fn sample_cell(&self, rng: &mut Xoshiro256PlusPlus) -> Option<DefectKind> {
        if self.p_total() == 0.0 {
            return None;
        }
        let u = rng.next_f64();
        if u < self.p_stuck_lrs {
            Some(DefectKind::StuckLrs)
        } else if u < self.p_stuck_lrs + self.p_stuck_hrs {
            Some(DefectKind::StuckHrs)
        } else {
            None
        }
    }

    /// Samples a full `rows × cols` defect map.
    pub fn sample_map(&self, rows: usize, cols: usize, rng: &mut Xoshiro256PlusPlus) -> DefectMap {
        let cells = (0..rows * cols).map(|_| self.sample_cell(rng)).collect();
        DefectMap { rows, cols, cells }
    }
}

/// A per-cell defect assignment for a crossbar.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DefectMap {
    rows: usize,
    cols: usize,
    cells: Vec<Option<DefectKind>>,
}

impl DefectMap {
    /// A defect-free map.
    pub fn clean(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            cells: vec![None; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The defect state of cell `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn get(&self, i: usize, j: usize) -> Option<DefectKind> {
        assert!(i < self.rows && j < self.cols, "defect map index oob");
        self.cells[i * self.cols + j]
    }

    /// Marks cell `(i, j)` with a defect (or clears it with `None`).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn set(&mut self, i: usize, j: usize, defect: Option<DefectKind>) {
        assert!(i < self.rows && j < self.cols, "defect map index oob");
        self.cells[i * self.cols + j] = defect;
    }

    /// Total number of defective cells.
    pub fn defect_count(&self) -> usize {
        self.cells.iter().filter(|c| c.is_some()).count()
    }

    /// Rows containing at least one defective cell.
    pub fn defective_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .filter(|&i| (0..self.cols).any(|j| self.get(i, j).is_some()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(DefectModel::new(-0.1, 0.0).is_err());
        assert!(DefectModel::new(0.0, 1.5).is_err());
        assert!(DefectModel::new(0.6, 0.6).is_err());
        assert!(DefectModel::new(0.01, 0.01).is_ok());
    }

    #[test]
    fn none_model_produces_clean_map() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let map = DefectModel::none().sample_map(10, 10, &mut rng);
        assert_eq!(map.defect_count(), 0);
        assert!(map.defective_rows().is_empty());
    }

    #[test]
    fn defect_rates_match_probabilities() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(2);
        let model = DefectModel::new(0.05, 0.10).unwrap();
        let map = model.sample_map(300, 300, &mut rng);
        let n = 300 * 300;
        let lrs = (0..300)
            .flat_map(|i| (0..300).map(move |j| (i, j)))
            .filter(|&(i, j)| map.get(i, j) == Some(DefectKind::StuckLrs))
            .count();
        let hrs = map.defect_count() - lrs;
        assert!((lrs as f64 / n as f64 - 0.05).abs() < 0.01);
        assert!((hrs as f64 / n as f64 - 0.10).abs() < 0.01);
    }

    #[test]
    fn set_and_get() {
        let mut map = DefectMap::clean(3, 3);
        map.set(1, 2, Some(DefectKind::StuckHrs));
        assert_eq!(map.get(1, 2), Some(DefectKind::StuckHrs));
        assert_eq!(map.get(0, 0), None);
        assert_eq!(map.defective_rows(), vec![1]);
        map.set(1, 2, None);
        assert_eq!(map.defect_count(), 0);
    }

    #[test]
    #[should_panic(expected = "oob")]
    fn out_of_bounds_get_panics() {
        let map = DefectMap::clean(2, 2);
        let _ = map.get(2, 0);
    }
}
