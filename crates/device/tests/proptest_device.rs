//! Property-based tests for the memristor device models.

use proptest::prelude::*;
use vortex_device::params::DeviceParams;
use vortex_device::pulse::precalculate_pulse;
use vortex_device::switching::{drive, evolve_state, width_for_target};
use vortex_device::VariationModel;
use vortex_linalg::rng::Xoshiro256PlusPlus;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn state_stays_in_unit_interval(w0 in 0.0..1.0f64,
                                    v in -4.0..4.0f64,
                                    dt in 0.0..1e-3f64) {
        let p = DeviceParams::default();
        let w = evolve_state(&p, w0, v, dt);
        prop_assert!((0.0..=1.0).contains(&w), "w = {w}");
    }

    #[test]
    fn set_is_monotone_in_width(w0 in 0.0..0.9f64, dt in 1e-9..1e-5f64) {
        let p = DeviceParams::default();
        let v = p.v_program();
        let w1 = evolve_state(&p, w0, v, dt);
        let w2 = evolve_state(&p, w0, v, dt * 2.0);
        prop_assert!(w2 >= w1 - 1e-15);
        prop_assert!(w1 >= w0 - 1e-15);
    }

    #[test]
    fn reset_is_monotone_in_width(w0 in 0.1..1.0f64, dt in 1e-9..1e-5f64) {
        let p = DeviceParams::default();
        let v = -p.v_program();
        let w1 = evolve_state(&p, w0, v, dt);
        let w2 = evolve_state(&p, w0, v, dt * 2.0);
        prop_assert!(w2 <= w1 + 1e-15);
        prop_assert!(w1 <= w0 + 1e-15);
    }

    #[test]
    fn drive_is_monotone_in_voltage(v1 in 0.0..4.0f64, dv in 0.0..2.0f64) {
        let p = DeviceParams::default();
        prop_assert!(drive(&p, v1 + dv) >= drive(&p, v1));
    }

    #[test]
    fn pulse_inversion_roundtrip(w0 in 0.0..0.95f64, wt in 0.02..0.98f64) {
        let p = DeviceParams::default();
        let v = if wt > w0 { p.v_program() } else { -p.v_program() };
        if (wt - w0).abs() > 1e-9 {
            if let Some(dt) = width_for_target(&p, w0, wt, v) {
                let w = evolve_state(&p, w0, v, dt);
                prop_assert!((w - wt).abs() < 1e-8, "w0={w0} wt={wt} got {w}");
            }
        }
    }

    #[test]
    fn precalculated_pulse_lands_within_tolerance(r_from in 1.1e4..9.9e5f64,
                                                  r_to in 1.1e4..9.9e5f64) {
        let p = DeviceParams::default();
        let pulse = precalculate_pulse(&p, r_from, r_to).unwrap();
        let w0 = p.w_from_resistance(r_from);
        let w = evolve_state(&p, w0, pulse.voltage(), pulse.width_s());
        let r = p.resistance_from_w(w);
        prop_assert!((r - r_to).abs() / r_to < 1e-2, "from {r_from} to {r_to} landed {r}");
    }

    #[test]
    fn conductance_w_roundtrip(w in 0.0..1.0f64) {
        let p = DeviceParams::default();
        let g = p.conductance_from_w(w);
        prop_assert!((p.w_from_conductance(g) - w).abs() < 1e-12);
        prop_assert!(g >= p.g_off() && g <= p.g_on());
    }

    #[test]
    fn variation_apply_preserves_positivity(g in 1e-7..1e-3f64, theta in -3.0..3.0f64) {
        prop_assert!(VariationModel::apply(g, theta) > 0.0);
    }

    #[test]
    fn theta_samples_bounded_by_tails(sigma in 0.0..1.0f64, seed in proptest::num::u64::ANY) {
        let m = VariationModel::parametric(sigma).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        for _ in 0..20 {
            let t = m.sample_theta(&mut rng);
            // 8σ tails are effectively impossible; catches scale bugs.
            prop_assert!(t.abs() <= 8.0 * sigma + 1e-12);
        }
    }

    #[test]
    fn half_select_always_weaker_than_full(w0 in 0.0..1.0f64, dt in 1e-9..1e-5f64) {
        let p = DeviceParams::default();
        let full = evolve_state(&p, w0, p.v_program(), dt);
        let half = evolve_state(&p, w0, p.v_program() / 2.0, dt);
        // Half-select movement never exceeds full-select movement.
        prop_assert!((half - w0).abs() <= (full - w0).abs() + 1e-15);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn retention_decay_is_monotone_and_bounded(nu in 0.0..0.3f64,
                                               t1 in 0.0..1e9f64,
                                               dt in 0.0..1e9f64) {
        let m = vortex_device::drift::RetentionModel::new(0.05, 0.02, 1.0).unwrap();
        let f1 = m.decay_factor(nu, t1);
        let f2 = m.decay_factor(nu, t1 + dt);
        prop_assert!(f2 <= f1 + 1e-15);
        prop_assert!(f1 > 0.0 && f1 <= 1.0);
    }

    #[test]
    fn retention_nu_spread_is_bit_reproducible_per_seed(seed in 0u64..1u64 << 48,
                                                        sigma in 0.0..0.2f64) {
        let m = vortex_device::drift::RetentionModel::new(0.05, sigma, 1.0).unwrap();
        let a = m.sample_nu_matrix(6, 5, &mut Xoshiro256PlusPlus::seed_from_u64(seed));
        let b = m.sample_nu_matrix(6, 5, &mut Xoshiro256PlusPlus::seed_from_u64(seed));
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
            // Negative draws clamp: some devices simply do not drift.
            prop_assert!(*x >= 0.0);
        }
    }

    #[test]
    fn retention_decay_matrix_of_fixed_population_is_monotone(seed in 0u64..1u64 << 48,
                                                              t1 in 0.0..1e8f64,
                                                              dt in 0.0..1e8f64) {
        let m = vortex_device::drift::RetentionModel::new(0.05, 0.02, 1.0).unwrap();
        let nu = m.sample_nu_matrix(4, 4, &mut Xoshiro256PlusPlus::seed_from_u64(seed));
        let early = m.decay_matrix(&nu, t1);
        let late = m.decay_matrix(&nu, t1 + dt);
        for (e, l) in early.as_slice().iter().zip(late.as_slice()) {
            prop_assert!(*l <= e + 1e-15, "decay grew with time: {} -> {}", e, l);
            prop_assert!(*e > 0.0 && *e <= 1.0);
        }
    }

    #[test]
    fn correlated_total_sigma_is_root_sum_square(a in 0.0..1.0f64, b in 0.0..1.0f64,
                                                 c in 0.0..1.0f64) {
        let m = vortex_device::variation::CorrelatedVariationModel::new(a, b, c).unwrap();
        let expect = (a * a + b * b + c * c).sqrt();
        prop_assert!((m.total_sigma() - expect).abs() < 1e-12);
    }
}
