//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of the `proptest` API the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_filter` / `boxed`;
//! * range strategies for the primitive numeric types;
//! * [`collection::vec`], [`Just`], tuple strategies, [`prop_oneof!`];
//! * the [`proptest!`] macro with `#![proptest_config(...)]` support;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`.
//!
//! Differences from the real crate: input generation is **deterministic**
//! (seeded from the test name, so failures reproduce exactly across runs)
//! and there is **no shrinking** — a failing case reports the generated
//! inputs as-is via the assertion message.

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic generator behind every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }

    /// Uniform integer in `[0, n)` (multiply-shift; `n` must be positive).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below requires n > 0");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// FNV-1a hash of a test name, used to seed its [`TestRng`].
pub fn hash_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Sentinel error string used by `prop_assume!` to signal "reject this
/// case without failing the test".
pub const REJECT_SENTINEL: &str = "__proptest_stub_reject__";

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Generates one value, or `None` to reject the attempt (filters).
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`; `whence` labels the filter.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            _whence: whence.into(),
            pred,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    _whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        let v = self.inner.generate(rng)?;
        if (self.pred)(&v) {
            Some(v)
        } else {
            None
        }
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        self.0.generate(rng)
    }
}

/// Uniform choice among boxed strategies (backs [`prop_oneof!`]).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T: Debug> Union<T> {
    /// Creates a union; panics on an empty list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self(options)
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        debug_assert!(self.start < self.end, "empty f64 range strategy");
        Some(self.start + (self.end - self.start) * rng.next_f64())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> Option<f32> {
        Some(self.start + (self.end - self.start) * rng.next_f64() as f32)
    }
}

macro_rules! unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as u64;
                Some(self.start + rng.below(span) as $t)
            }
        }
    )*};
}
unsigned_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                Some((self.start as i128 + rng.below(span) as i128) as $t)
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Length specification for [`vec()`]: an exact `usize` or a half-open
    /// `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec-length range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    /// A strategy producing `Vec`s of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.generate(rng)?);
            }
            Some(out)
        }
    }
}

/// Full-domain strategies for numeric types.
pub mod num {
    /// Strategies for `u64`.
    pub mod u64 {
        use crate::{Strategy, TestRng};

        /// The full-domain `u64` strategy type.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Any `u64`, uniformly.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = u64;
            fn generate(&self, rng: &mut TestRng) -> Option<u64> {
                Some(rng.next_u64())
            }
        }
    }

    /// Strategies for `u32`.
    pub mod u32 {
        use crate::{Strategy, TestRng};

        /// The full-domain `u32` strategy type.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Any `u32`, uniformly.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = u32;
            fn generate(&self, rng: &mut TestRng) -> Option<u32> {
                Some(rng.next_u64() as u32)
            }
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The body-wrapper result type the assertion macros early-return with.
pub type TestCaseResult = Result<(), String>;

/// Declares property tests. Mirrors the real `proptest!` grammar for the
/// subset used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0.0..1.0f64, n in 1usize..10) { prop_assert!(x < n as f64); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $( $(#[$meta:meta])+ fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new($crate::hash_name(concat!(
                    module_path!(), "::", stringify!($name)
                )));
                let mut accepted: u32 = 0;
                let mut attempts: u64 = 0;
                while accepted < cfg.cases {
                    attempts += 1;
                    assert!(
                        attempts < u64::from(cfg.cases).saturating_mul(200).max(10_000),
                        "proptest `{}`: too many rejected inputs ({} attempts for {} cases)",
                        stringify!($name), attempts, cfg.cases
                    );
                    $(
                        let $arg = match $crate::Strategy::generate(&($strat), &mut rng) {
                            ::core::option::Option::Some(v) => v,
                            ::core::option::Option::None => continue,
                        };
                    )+
                    // Render inputs before the body runs — the body may
                    // consume them by value.
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}  "),+),
                        $(&$arg),+
                    );
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err(msg) if msg == $crate::REJECT_SENTINEL => continue,
                        ::core::result::Result::Err(msg) => panic!(
                            "proptest `{}` failed after {} passing case(s):\n  {}\n  inputs: {}",
                            stringify!($name),
                            accepted,
                            msg,
                            inputs,
                        ),
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        // `if cond {} else` rather than `if !cond` so partially-ordered
        // comparisons don't trip clippy::neg_cmp_op_on_partial_ord at
        // every call site.
        if $cond {
        } else {
            return ::core::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} — {}",
                stringify!($cond),
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(*lhs == *rhs) {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} == {}\n    left: {:?}\n    right: {:?}",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs,
            ));
        }
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if *lhs == *rhs {
            return ::core::result::Result::Err(format!(
                "assertion failed: {} != {}\n    both: {:?}",
                stringify!($a),
                stringify!($b),
                lhs,
            ));
        }
    }};
}

/// Rejects the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::REJECT_SENTINEL.to_string());
        }
    };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Uniform choice among the listed strategies (all must share a value
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let x = (2.0..3.0f64).generate(&mut rng).unwrap();
            assert!((2.0..3.0).contains(&x));
            let n = (5usize..9).generate(&mut rng).unwrap();
            assert!((5..9).contains(&n));
            let s = (-3i32..4).generate(&mut rng).unwrap();
            assert!((-3..4).contains(&s));
        }
    }

    #[test]
    fn vec_strategy_covers_length_range() {
        let mut rng = TestRng::new(2);
        let strat = collection::vec(0.0..1.0f64, 3..6);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = strat.generate(&mut rng).unwrap();
            assert!((3..6).contains(&v.len()));
            seen[v.len() - 3] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn filter_rejects() {
        let mut rng = TestRng::new(3);
        let strat = (0.0..1.0f64).prop_filter("big", |v| *v > 0.5);
        let mut some = 0;
        for _ in 0..100 {
            if let Some(v) = strat.generate(&mut rng) {
                assert!(v > 0.5);
                some += 1;
            }
        }
        assert!(some > 10 && some < 90);
    }

    #[test]
    fn map_transforms() {
        let mut rng = TestRng::new(4);
        let strat = (1usize..5).prop_map(|n| vec![0u8; n]);
        let v = strat.generate(&mut rng).unwrap();
        assert!((1..5).contains(&v.len()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_in_range(x in 0.0..1.0f64, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn macro_supports_oneof_and_assume(k in prop_oneof![Just(2usize), Just(4), Just(8)],
                                           raw in 0usize..20) {
            prop_assume!(raw != 13);
            prop_assert!(k == 2 || k == 4 || k == 8);
            prop_assert_ne!(raw, 13);
        }

        #[test]
        fn macro_tuple_strategies(pair in (0usize..5, 10usize..15)) {
            prop_assert!(pair.0 < 5);
            prop_assert!((10..15).contains(&pair.1));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        // Not a #[test] itself: driven by the should_panic test below.
        #[allow(dead_code)]
        fn always_fails(x in 0.0..1.0f64) {
            prop_assert!(x > 2.0, "x was {x}");
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failing_property_panics_with_inputs() {
        always_fails();
    }
}
