//! End-to-end test of the `experiments` command-line harness: the binary
//! must run each artifact at `--bench` scale and print a well-formed
//! table.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn fig2_at_bench_scale_prints_a_table() {
    let (stdout, _, ok) = run(&["fig2", "--bench"]);
    assert!(ok);
    assert!(stdout.contains("Fig. 2"));
    assert!(stdout.contains("sigma"));
    assert!(stdout.contains("fig2 finished"));
    // Nine σ rows between header and footer.
    let rows = stdout
        .lines()
        .filter(|l| l.trim_start().starts_with("0."))
        .count();
    assert_eq!(rows, 9);
}

#[test]
fn fig3_at_bench_scale_prints_a_table() {
    let (stdout, _, ok) = run(&["fig3", "--bench"]);
    assert!(ok);
    assert!(stdout.contains("Fig. 3"));
    assert!(stdout.contains("update-rate skew"));
}

#[test]
fn unknown_experiment_fails_with_usage() {
    let (_, stderr, ok) = run(&["figX", "--bench"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
    assert!(stderr.contains("figX"));
}

#[test]
fn multiple_experiments_in_one_invocation() {
    let (stdout, _, ok) = run(&["fig2", "fig3", "--bench"]);
    assert!(ok);
    assert!(stdout.contains("Fig. 2"));
    assert!(stdout.contains("Fig. 3"));
}
