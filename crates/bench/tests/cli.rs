//! End-to-end test of the `experiments` command-line harness: the binary
//! must run each artifact at `--bench` scale and print a well-formed
//! table.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn fig2_at_bench_scale_prints_a_table() {
    let (stdout, _, ok) = run(&["fig2", "--bench"]);
    assert!(ok);
    assert!(stdout.contains("Fig. 2"));
    assert!(stdout.contains("sigma"));
    assert!(stdout.contains("fig2 finished"));
    // Nine σ rows between header and footer.
    let rows = stdout
        .lines()
        .filter(|l| l.trim_start().starts_with("0."))
        .count();
    assert_eq!(rows, 9);
}

#[test]
fn fig3_at_bench_scale_prints_a_table() {
    let (stdout, _, ok) = run(&["fig3", "--bench"]);
    assert!(ok);
    assert!(stdout.contains("Fig. 3"));
    assert!(stdout.contains("update-rate skew"));
}

#[test]
fn unknown_experiment_fails_with_usage() {
    let (_, stderr, ok) = run(&["figX", "--bench"]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
    assert!(stderr.contains("figX"));
}

#[test]
fn multiple_experiments_in_one_invocation() {
    let (stdout, _, ok) = run(&["fig2", "fig3", "--bench"]);
    assert!(ok);
    assert!(stdout.contains("Fig. 2"));
    assert!(stdout.contains("Fig. 3"));
}

#[test]
fn serve_writes_a_gateable_json_payload() {
    let dir = std::env::temp_dir().join(format!("vortex-cli-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["serve", "--bench"])
        .current_dir(&dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "experiments failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Serving throughput"));
    assert!(stdout.contains("Degradation ladder"));
    assert!(stdout.contains("wrote BENCH_serve.json"));

    // The payload must carry the keys the CI gate compares, with sane
    // values, so `check_bench BENCH_serve.json bench/baseline_serve.json`
    // has something to gate.
    let json = std::fs::read_to_string(dir.join("BENCH_serve.json")).expect("payload written");
    for key in ["serial_samples_per_sec", "pooled_samples_per_sec"] {
        let v = vortex_bench::gate::extract_number(&json, key)
            .unwrap_or_else(|| panic!("{key} missing from payload"));
        assert!(v > 0.0, "{key} must be positive, got {v}");
    }
    assert!(vortex_bench::gate::extract_number(&json, "recovered").is_none());
    assert!(json.contains("\"recovered\":true"), "ladder must recover");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn runtime_payload_passes_the_checked_in_throughput_gate() {
    let dir = std::env::temp_dir().join(format!("vortex-cli-runtime-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["runtime", "--quick", "--json"])
        .current_dir(&dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "experiments failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Runtime throughput"));
    assert!(stdout.contains("wrote BENCH_runtime.json"));

    // The payload must carry every gated key (reference kernel, serial
    // fast path, pooled parallel) with sane values…
    let json = std::fs::read_to_string(dir.join("BENCH_runtime.json")).expect("payload written");
    for key in [
        "reference_samples_per_sec",
        "serial_samples_per_sec",
        "spawn_samples_per_sec",
        "parallel_samples_per_sec",
    ] {
        let v = vortex_bench::gate::extract_number(&json, key)
            .unwrap_or_else(|| panic!("{key} missing from payload"));
        assert!(v > 0.0, "{key} must be positive, got {v}");
    }

    // …and pass the checked-in baseline the CI bench-smoke step gates
    // with, so a floor recalibration can never land broken.
    let baseline = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench/baseline.json"),
    )
    .expect("baseline readable");
    let report = vortex_bench::gate::check(&json, &baseline, 0.30).expect("gateable payload");
    assert_eq!(report.checks.len(), 3, "baseline gates three runtime keys");
    assert!(
        report.pass(),
        "runtime payload failed its own gate:\n{}",
        report.render()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_writes_a_payload_the_reliability_gate_accepts() {
    let dir = std::env::temp_dir().join(format!("vortex-cli-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["chaos", "--bench"])
        .current_dir(&dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "experiments failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Self-healing chaos"));
    assert!(stdout.contains("wrote BENCH_chaos.json"));

    // The payload must pass the checked-in reliability baseline the CI
    // chaos-smoke step gates with: zero lost requests (exact) and a
    // recovered-accuracy delta under the 0.5 pp ceiling.
    let json = std::fs::read_to_string(dir.join("BENCH_chaos.json")).expect("payload written");
    let baseline = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench/baseline_chaos.json"),
    )
    .expect("baseline readable");
    let report = vortex_bench::gate::check(&json, &baseline, 0.30).expect("gateable payload");
    assert!(
        report.pass(),
        "chaos payload failed its own gate:\n{}",
        report.render()
    );
    assert_eq!(
        vortex_bench::gate::extract_number(&json, "lost_requests"),
        Some(0.0)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fleet_writes_a_payload_the_bench_gate_accepts() {
    let dir = std::env::temp_dir().join(format!("vortex-cli-fleet-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["fleet", "--bench"])
        .current_dir(&dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "experiments failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Ensemble vs single chip"));
    assert!(stdout.contains("Goodput under overload"));
    assert!(stdout.contains("wrote BENCH_fleet.json"));

    // The payload must carry both gated keys with sane values: the
    // measured drain throughput and the ensemble-vs-best-single delta
    // (which the checked-in ceiling pins at <= 0 for sigma >= 0.3).
    let json = std::fs::read_to_string(dir.join("BENCH_fleet.json")).expect("payload written");
    let goodput = vortex_bench::gate::extract_number(&json, "fleet_goodput_samples_per_sec")
        .expect("goodput key present");
    assert!(goodput > 0.0, "goodput must be positive, got {goodput}");
    let delta = vortex_bench::gate::extract_number(&json, "ensemble_accuracy_delta_pp")
        .expect("delta key present");
    assert!(
        delta <= 0.0,
        "5-chip vote must match or beat the best single chip, got {delta} pp"
    );

    // The accuracy sweep and the virtual-time simulation are pure
    // functions of the seed, so the delta ceiling in the checked-in
    // baseline can never flake; only the throughput floor carries a
    // noise margin.
    let baseline = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench/baseline_fleet.json"),
    )
    .expect("baseline readable");
    let report = vortex_bench::gate::check(&json, &baseline, 0.30).expect("gateable payload");
    assert_eq!(report.checks.len(), 2, "baseline gates two fleet keys");
    assert!(
        report.pass(),
        "fleet payload failed its own gate:\n{}",
        report.render()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lifetime_writes_a_payload_the_policy_gate_accepts() {
    // --quick, because that is exactly what the CI bench-smoke step runs
    // and gates; the payload is bit-deterministic, so what passes here
    // passes there.
    let dir = std::env::temp_dir().join(format!("vortex-cli-lifetime-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["lifetime", "--quick"])
        .current_dir(&dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "experiments failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Lifetime policy race"));
    assert!(stdout.contains("drift-predictive"));
    assert!(stdout.contains("wrote BENCH_lifetime.json"));

    let json = std::fs::read_to_string(dir.join("BENCH_lifetime.json")).expect("payload written");
    // The virtual-throughput key and the budget pin must be present and
    // sane; the strict-win key must be negative (predictive beats
    // periodic) before the baseline ceiling even applies.
    let served = vortex_bench::gate::extract_number(&json, "lifetime_served_per_virtual_sec")
        .expect("virtual throughput present");
    assert!(served > 0.0, "served/s must be positive, got {served}");
    assert_eq!(
        vortex_bench::gate::extract_number(&json, "lifetime_recompile_budget_delta"),
        Some(0.0),
        "periodic must spend exactly the predictive budget"
    );
    let win = vortex_bench::gate::extract_number(&json, "predictive_minus_periodic_accuracy_hours")
        .expect("strict-win key present");
    assert!(win < 0.0, "predictive must beat periodic, got {win:+}");

    let baseline = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench/baseline_lifetime.json"),
    )
    .expect("baseline readable");
    let report = vortex_bench::gate::check(&json, &baseline, 0.30).expect("gateable payload");
    assert_eq!(report.checks.len(), 4, "baseline gates four lifetime keys");
    assert!(
        report.pass(),
        "lifetime payload failed its own gate:\n{}",
        report.render()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn encoding_writes_a_payload_the_equal_budget_gate_accepts() {
    // --quick, because that is exactly what the CI bench-smoke step runs
    // and gates; the sweep is pure seeded computation, so what passes
    // here passes there bit-for-bit.
    let dir = std::env::temp_dir().join(format!("vortex-cli-encoding-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["encoding", "--quick"])
        .current_dir(&dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "experiments failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Weight encoding"));
    assert!(stdout.contains("adaptive"));
    assert!(stdout.contains("wrote BENCH_encoding.json"));

    let json = std::fs::read_to_string(dir.join("BENCH_encoding.json")).expect("payload written");
    // The pulse pin must hold exactly (adaptive spends the fixed 4-bit
    // budget) and the accuracy delta must already be non-positive before
    // the baseline ceiling even applies.
    assert_eq!(
        vortex_bench::gate::extract_number(&json, "encoding_pulse_budget_delta"),
        Some(0.0),
        "adaptive must spend exactly the fixed-bit pulse budget"
    );
    let delta = vortex_bench::gate::extract_number(&json, "encoding_fixed_minus_adaptive_pp")
        .expect("accuracy-delta key present");
    assert!(
        delta <= 0.0,
        "adaptive must meet or beat fixed 4-bit at equal budget, got {delta:+} pp"
    );

    let baseline = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench/baseline_encoding.json"),
    )
    .expect("baseline readable");
    let report = vortex_bench::gate::check(&json, &baseline, 0.30).expect("gateable payload");
    assert_eq!(report.checks.len(), 2, "baseline gates two encoding keys");
    assert!(
        report.pass(),
        "encoding payload failed its own gate:\n{}",
        report.render()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn training_writes_a_payload_the_recovery_gate_accepts() {
    // --quick, because that is exactly what the CI bench-smoke step runs
    // and gates; both the real recovery jobs (explicit fixed-size pools)
    // and the virtual-time tail simulation are bit-deterministic, so
    // what passes here passes there.
    let dir = std::env::temp_dir().join(format!("vortex-cli-training-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["training", "--quick"])
        .current_dir(&dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "experiments failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Crash recovery at equal seed"));
    assert!(stdout.contains("co-resident trainer"));
    assert!(stdout.contains("wrote BENCH_training.json"));

    let json = std::fs::read_to_string(dir.join("BENCH_training.json")).expect("payload written");
    // The exactness pin must hold (bit-identical recovery means the
    // accuracy delta is exactly 0) and the chaos plan must actually
    // have bitten: no kills means the recovery path went untested.
    assert_eq!(
        vortex_bench::gate::extract_number(&json, "training_recovery_delta_pp"),
        Some(0.0),
        "recovery must be exact"
    );
    let kills = vortex_bench::gate::extract_number(&json, "training_kills").expect("kills present");
    assert!(
        kills >= 1.0,
        "the chaos plan must kill the job, got {kills}"
    );
    let inflation = vortex_bench::gate::extract_number(&json, "training_p99_inflation_x")
        .expect("inflation key present");
    assert!(
        inflation >= 1.0,
        "co-residency cannot improve the tail, got {inflation}"
    );

    let baseline = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench/baseline_training.json"),
    )
    .expect("baseline readable");
    let report = vortex_bench::gate::check(&json, &baseline, 0.30).expect("gateable payload");
    assert_eq!(report.checks.len(), 2, "baseline gates two training keys");
    assert!(
        report.pass(),
        "training payload failed its own gate:\n{}",
        report.render()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_bench_gates_multiple_pairs_in_one_invocation() {
    let dir = std::env::temp_dir().join(format!("vortex-cli-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let write = |name: &str, body: &str| {
        let path = dir.join(name);
        std::fs::write(&path, body).expect("write fixture");
        path.to_string_lossy().into_owned()
    };
    let base_a = write("base_a.json", r#"{"serial_samples_per_sec":1000.0}"#);
    let cur_ok = write("cur_ok.json", r#"{"serial_samples_per_sec":950.0}"#);
    let base_b = write("base_b.json", r#"{"lost_requests":0}"#);
    let cur_b = write("cur_b.json", r#"{"lost_requests":0}"#);
    let cur_bad = write("cur_bad.json", r#"{"serial_samples_per_sec":100.0}"#);

    // Two passing pairs in one invocation: exit 0, both sections
    // rendered.
    let out = Command::new(env!("CARGO_BIN_EXE_check_bench"))
        .args([&cur_ok, &base_a, &cur_b, &base_b])
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "two clean pairs must pass: {stdout}");
    assert!(stdout.contains("cur_ok.json"));
    assert!(stdout.contains("lost_requests"));
    assert!(stdout.contains("bench gate: ok"));

    // A failing pair fails the whole invocation — but the later pair is
    // still evaluated and rendered (one CI step reports the full
    // matrix).
    let out = Command::new(env!("CARGO_BIN_EXE_check_bench"))
        .args([&cur_bad, &base_a, &cur_b, &base_b])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAIL"));
    assert!(
        stdout.contains("lost_requests"),
        "later pairs must still render after an earlier failure"
    );

    // An odd path count is a usage error.
    let out = Command::new(env!("CARGO_BIN_EXE_check_bench"))
        .args([&cur_ok, &base_a, &cur_b])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_flag_requires_a_path() {
    let (_, stderr, ok) = run(&["fig2", "--bench", "--metrics"]);
    assert!(!ok);
    assert!(stderr.contains("--metrics requires a path"));
    assert!(stderr.contains("usage"));
}

#[test]
fn metrics_flag_writes_a_snapshot_covering_every_instrumented_layer() {
    // fig9 exercises the self-tuner and the OLD/VAT pipeline; runtime
    // exercises compiled-model batched inference. Between them every
    // span family the obs layer instruments must show up non-zero.
    let dir = std::env::temp_dir().join(format!("vortex-cli-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args([
            "fig9",
            "runtime",
            "--bench",
            "--json",
            "--metrics",
            "METRICS_cli.json",
        ])
        .current_dir(&dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "experiments failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("wrote METRICS_cli.json"));

    let json = std::fs::read_to_string(dir.join("METRICS_cli.json")).expect("snapshot written");
    for name in [
        "executor.run_seconds",
        "pipeline.evaluate_seconds",
        "tuning.tune_seconds",
        "runtime.batch_seconds",
    ] {
        let needle = format!("\"{name}\":{{\"count\":");
        let at = json
            .find(&needle)
            .unwrap_or_else(|| panic!("{name} missing from snapshot"));
        let count: u64 = json[at + needle.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .expect("count parses");
        assert!(count > 0, "{name} recorded no spans");
    }
    std::fs::remove_dir_all(&dir).ok();
}
