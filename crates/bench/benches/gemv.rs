//! Criterion microbench of the read kernels: the f64 reference walk
//! against the certified f32 fast path, at bench-dataset shapes.
//!
//! `196x10` is the quick-scale digit classifier (14x14 images), `784x10`
//! the full-scale one (28x28). Each shape benches three variants:
//!
//! * `gemv_ref` — the bit-exact f64 reference (two matrices: the
//!   differential read walks `eff_pos` and `eff_neg` separately),
//! * `gemv_f32` — the pre-combined single-matrix f32 kernel,
//! * `certified_label` — `gemv_f32` plus the argmax margin check, the
//!   operation `infer` actually runs per sample.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vortex_linalg::Matrix;
use vortex_runtime::kernels::{gemv_f32, gemv_ref, FastGemv};

fn pair(rows: usize, cols: usize) -> (Matrix, Matrix, f64) {
    let scale = 2.5e-4;
    let pos = Matrix::from_fn(rows, cols, |i, j| {
        scale * (1.0 + ((i * cols + j) as f64 * 0.13).sin()).abs()
    });
    let neg = Matrix::from_fn(rows, cols, |i, j| {
        scale * (1.0 + ((i * cols + j) as f64 * 0.29).cos()).abs()
    });
    (pos, neg, scale)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemv");
    for &(rows, cols) in &[(196usize, 10usize), (784, 10)] {
        let (pos, neg, scale) = pair(rows, cols);
        let fast = FastGemv::from_effective(&pos, &neg, scale);
        let x: Vec<f64> = (0..rows).map(|i| ((i as f64) * 0.17).sin().abs()).collect();
        let x32: Vec<f32> = x.iter().map(|&v| v as f32).collect();

        group.bench_function(BenchmarkId::new("gemv_ref", rows), |b| {
            let mut ip = vec![0.0; cols];
            let mut in_ = vec![0.0; cols];
            b.iter(|| {
                gemv_ref(black_box(&pos), black_box(&x), &mut ip);
                gemv_ref(black_box(&neg), black_box(&x), &mut in_);
                black_box((ip[0], in_[0]))
            })
        });
        group.bench_function(BenchmarkId::new("gemv_f32", rows), |b| {
            let mut y = vec![0f32; cols];
            b.iter(|| {
                gemv_f32(
                    black_box(fast.matrix()),
                    rows,
                    cols,
                    black_box(&x32),
                    &mut y,
                );
                black_box(y[0])
            })
        });
        group.bench_function(BenchmarkId::new("certified_label", rows), |b| {
            let mut xs = vec![0f32; rows];
            let mut ss = vec![0f32; cols];
            b.iter(|| black_box(fast.certified_label(black_box(&x), &mut xs, &mut ss)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench
}
criterion_main!(benches);
