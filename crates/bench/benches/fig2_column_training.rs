//! Criterion bench regenerating Fig. 2 (column training, CLD vs OLD) at
//! reduced Monte-Carlo depth. Run `experiments fig2` for the paper-scale
//! table.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vortex_bench::experiments::fig2;
use vortex_bench::Scale;

fn bench(c: &mut Criterion) {
    let scale = Scale::bench();
    c.bench_function("fig2_column_training", |b| {
        b.iter(|| black_box(fig2::run(black_box(&scale))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
