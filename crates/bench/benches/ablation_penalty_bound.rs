//! Ablation bench: cost of the VAT penalty-bound evaluation, and a
//! printed tightness report (empirical q95 vs analytic bound).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vortex_bench::experiments::ablation;

fn bench(c: &mut Criterion) {
    let report = ablation::penalty_bound_tightness(784, 0.6, 5_000, 1);
    println!(
        "penalty bound tightness (n=784, sigma=0.6): empirical q95 = {:.4}, bound = {:.4}",
        report.empirical_q95, report.bound
    );
    c.bench_function("penalty_bound_mc_5000", |b| {
        b.iter(|| black_box(ablation::penalty_bound_tightness(784, 0.6, 5_000, 1)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
