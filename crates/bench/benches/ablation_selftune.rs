//! Ablation bench: self-tuned γ vs fixed γ, with a printed quality
//! report.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vortex_bench::experiments::ablation;
use vortex_bench::Scale;

fn bench(c: &mut Criterion) {
    let scale = Scale::bench();
    let report = ablation::selftune_ablation(&scale, 0.8);
    println!(
        "self-tune ablation (sigma=0.8): fixed gamma=0 -> {:.3}, fixed gamma=0.5 -> {:.3}, \
         tuned (gamma={:.2}) -> {:.3}",
        report.fixed_zero, report.fixed_half, report.tuned_gamma, report.tuned
    );
    c.bench_function("selftune_ablation", |b| {
        b.iter(|| black_box(ablation::selftune_ablation(black_box(&scale), 0.8)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
