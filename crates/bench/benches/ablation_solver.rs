//! Ablation bench: iterative vs direct solves of nodal-style systems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vortex_bench::experiments::ablation;
use vortex_linalg::Matrix;
use vortex_xbar::circuit::NodalAnalysis;

fn bench(c: &mut Criterion) {
    let report = ablation::solver_ablation(400, 1);
    println!(
        "solver agreement (n=400): |cg - dense| = {:.2e}, |sor - dense| = {:.2e}, cg iters = {}",
        report.cg_vs_dense, report.sor_vs_dense, report.cg_iterations
    );
    let mut group = c.benchmark_group("nodal_compute_solve");
    for &rows in &[32usize, 128, 392] {
        let na = NodalAnalysis::new(rows, 10, 2.5).expect("mesh");
        let g = Matrix::filled(rows, 10, 5e-5);
        let x = vec![0.5; rows];
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| black_box(na.compute(black_box(&g), black_box(&x)).expect("solve")))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
