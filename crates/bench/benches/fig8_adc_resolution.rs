//! Criterion bench regenerating Fig. 8 (ADC-resolution sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vortex_bench::experiments::fig8;
use vortex_bench::Scale;

fn bench(c: &mut Criterion) {
    let scale = Scale::bench();
    c.bench_function("fig8_adc_resolution", |b| {
        b.iter(|| black_box(fig8::run(black_box(&scale))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
