//! Ablation bench: greedy SWV mapping vs identity/random, on
//! paper-scale row counts, with a printed quality report.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vortex_bench::experiments::ablation;

fn bench(c: &mut Criterion) {
    let report = ablation::mapping_ablation(784, 10, 0.8, 1);
    println!(
        "residual SWV (784 rows, sigma=0.8): greedy = {:.2}, identity = {:.2}, random = {:.2}",
        report.greedy, report.identity, report.random
    );
    c.bench_function("greedy_mapping_784x10", |b| {
        b.iter(|| black_box(ablation::mapping_ablation(784, 10, 0.8, 1)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
