//! Criterion bench regenerating Fig. 9 (design-redundancy sweep).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vortex_bench::experiments::fig9;
use vortex_bench::Scale;

fn bench(c: &mut Criterion) {
    let scale = Scale::bench();
    c.bench_function("fig9_redundancy", |b| {
        b.iter(|| black_box(fig9::run(black_box(&scale))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
