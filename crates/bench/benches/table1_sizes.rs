//! Criterion bench regenerating Table 1 (crossbar-size comparison).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vortex_bench::experiments::table1;
use vortex_bench::Scale;

fn bench(c: &mut Criterion) {
    let scale = Scale::bench();
    c.bench_function("table1_sizes", |b| {
        b.iter(|| black_box(table1::run(black_box(&scale))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
