//! The CI benchmark regression gate behind the `check_bench` binary.
//!
//! CI's `bench-smoke` job runs `experiments serve runtime chaos fleet
//! lifetime encoding training --quick --json`, then compares each fresh
//! `BENCH_<name>.json`
//! against its checked-in
//! `bench/baseline*.json` file: any gated throughput key regressing
//! more than the allowed fraction fails the build. The baseline is
//! intentionally conservative (set well below a warm local run) so
//! ordinary runner noise passes while a genuine hot-path regression — a
//! serialized executor, an accidentally-quadratic read — still trips the
//! gate.
//!
//! Throughput is not the only thing gated: [`EXACT_KEYS`] pin
//! reliability invariants (the chaos run's `lost_requests` must equal
//! the baseline's 0 exactly) and [`CEILING_KEYS`] cap error budgets
//! (the recovered-accuracy delta must stay under the baseline ceiling).
//!
//! The workspace has no JSON parser dependency, so [`extract_number`]
//! performs the one extraction this gate needs: finding a numeric field
//! by key in a flat JSON object.

/// The throughput keys the gate compares (higher is better, samples/sec
/// — or requests per *virtual* second for the lifetime key, which makes
/// that floor noise-free). Baselines opt keys in: `bench/baseline.json`
/// gates the runtime experiment's reference/serial/parallel trio (the
/// f64 reference kernel, the certified-f32 serial fast path, and the
/// pooled parallel batch), `bench/baseline_serve.json` gates the serve
/// experiment's serial/pooled pair, `bench/baseline_fleet.json` gates
/// the fleet experiment's five-replica drain, and
/// `bench/baseline_lifetime.json` floors the virtual throughput the
/// deployed recalibration policy sustains around its blackout windows.
pub const GATED_KEYS: [&str; 6] = [
    "reference_samples_per_sec",
    "serial_samples_per_sec",
    "parallel_samples_per_sec",
    "pooled_samples_per_sec",
    "fleet_goodput_samples_per_sec",
    "lifetime_served_per_virtual_sec",
];

/// Keys that must match the baseline **exactly** — invariants, not
/// throughput. `bench/baseline_chaos.json` pins `lost_requests` at 0:
/// any chaos run that loses an accepted request fails CI outright,
/// whatever the noise budget. `bench/baseline_lifetime.json` pins
/// `lifetime_recompile_budget_delta` at 0: the periodic-vs-predictive
/// comparison is only meaningful when both spend the same number of
/// recompiles. `bench/baseline_encoding.json` likewise pins
/// `encoding_pulse_budget_delta` at 0: the adaptive-vs-fixed accuracy
/// comparison is only honest at an identical programming pulse budget.
/// `bench/baseline_training.json` pins `training_recovery_delta_pp` at
/// 0: a chaos-battered training job must recover onto **exactly** the
/// undisturbed run's weights — any drift in the recovered test
/// accuracy, however small, is a determinism bug, not noise.
pub const EXACT_KEYS: [&str; 4] = [
    "lost_requests",
    "lifetime_recompile_budget_delta",
    "encoding_pulse_budget_delta",
    "training_recovery_delta_pp",
];

/// Keys where the baseline is a **ceiling** — current must not exceed
/// it (lower is better; a negative ceiling demands a strict win).
/// `bench/baseline_chaos.json` caps `recovered_accuracy_delta_pp` at
/// 0.5: the hot-swapped model must land within half a percentage point
/// of a fresh compile. `bench/baseline_fleet.json` caps
/// `ensemble_accuracy_delta_pp` (best single chip minus the 5-chip
/// vote, worst case over sigma ≥ 0.3) at 0: the ensemble read must beat
/// every single replica once variation dominates, or CI fails.
/// `bench/baseline_lifetime.json` caps the predictive policy's
/// accuracy-hours lost and holds
/// `predictive_minus_periodic_accuracy_hours` under a *negative*
/// ceiling: drift-predictive recalibration must strictly beat the blind
/// periodic schedule at equal recompile budget.
/// `bench/baseline_encoding.json` caps
/// `encoding_fixed_minus_adaptive_pp` (fixed 4-bit minus adaptive
/// accuracy, worst case over sigma ≥ 0.3) at 0: sensitivity-driven
/// level allocation must meet or beat the uniform grid at the same
/// pulse budget. `bench/baseline_training.json` caps
/// `training_p99_inflation_x`: the p99 inference latency with a
/// *yielding* co-resident trainer, as a multiple of inference running
/// alone — the priority-class discipline must keep the tail bounded.
pub const CEILING_KEYS: [&str; 6] = [
    "recovered_accuracy_delta_pp",
    "ensemble_accuracy_delta_pp",
    "accuracy_hours_lost_predictive",
    "predictive_minus_periodic_accuracy_hours",
    "encoding_fixed_minus_adaptive_pp",
    "training_p99_inflation_x",
];

/// How a gated key is judged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateKind {
    /// Higher is better; fails beyond the `max_regression` fraction.
    Throughput,
    /// Must equal the baseline exactly.
    Exact,
    /// Must not exceed the baseline.
    Ceiling,
}

/// Extracts the numeric value of `"key":<number>` from a JSON document.
///
/// Matches the first occurrence of the exact quoted key; returns `None`
/// if the key is absent or its value does not parse as a finite number.
pub fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let start = json.find(&needle)? + needle.len();
    let rest = json[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '+' | '-' | '.' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse::<f64>().ok().filter(|v| v.is_finite())
}

/// Why a gate check could not be evaluated (distinct from a check that
/// ran and *failed* — that is a [`GateCheck`] with `pass == false`).
#[derive(Debug, Clone, PartialEq)]
pub enum GateError {
    /// The regression threshold is outside `[0, 1)` or non-finite.
    InvalidThreshold {
        /// The rejected threshold.
        value: f64,
    },
    /// A throughput baseline is zero or negative (a floor of 0 would
    /// pass any regression).
    NonPositiveBaseline {
        /// The offending gated key.
        key: &'static str,
        /// The rejected baseline value.
        value: f64,
    },
    /// The baseline gates a key the current payload does not carry.
    MissingCurrentKey {
        /// The absent gated key.
        key: &'static str,
    },
    /// The baseline opts no gated key in — malformed JSON, NaN values
    /// and absent keys all land here, because [`extract_number`] yields
    /// no finite number for any of them.
    NoGatedKeys,
}

impl std::fmt::Display for GateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidThreshold { value } => {
                write!(f, "max regression must lie in [0, 1), got {value}")
            }
            Self::NonPositiveBaseline { key, value } => {
                write!(f, "baseline `{key}` must be positive, got {value}")
            }
            Self::MissingCurrentKey { key } => {
                write!(f, "current payload is missing gated key `{key}`")
            }
            Self::NoGatedKeys => write!(f, "baseline contains no gated keys"),
        }
    }
}

impl std::error::Error for GateError {}

/// One gated comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCheck {
    /// The JSON key compared.
    pub key: String,
    /// How the key is judged.
    pub kind: GateKind,
    /// Baseline value (floor, pinned value, or ceiling by kind).
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Throughput: fractional regression versus baseline (negative =
    /// improvement). Exact/ceiling: `current - baseline`.
    pub regression: f64,
    /// Whether the check passed.
    pub pass: bool,
}

/// The gate verdict over all gated keys.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Per-key comparisons, in [`GATED_KEYS`] order.
    pub checks: Vec<GateCheck>,
    /// The regression fraction that fails a check (e.g. `0.30`).
    pub max_regression: f64,
}

impl GateReport {
    /// Whether every check passed.
    pub fn pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// A human-readable per-key summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            let verdict = if c.pass { "ok" } else { "FAIL" };
            match c.kind {
                GateKind::Throughput => out.push_str(&format!(
                    "{}: baseline {:.1}, current {:.1}, regression {:+.1}% (limit {:.0}%) — {}\n",
                    c.key,
                    c.baseline,
                    c.current,
                    100.0 * c.regression,
                    100.0 * self.max_regression,
                    verdict
                )),
                GateKind::Exact => out.push_str(&format!(
                    "{}: pinned {}, current {} (must match exactly) — {}\n",
                    c.key, c.baseline, c.current, verdict
                )),
                GateKind::Ceiling => out.push_str(&format!(
                    "{}: ceiling {}, current {} (must not exceed) — {}\n",
                    c.key, c.baseline, c.current, verdict
                )),
            }
        }
        out
    }
}

/// Compares `current_json` against `baseline_json` over [`GATED_KEYS`].
///
/// Keys missing from the baseline are skipped (the baseline opts keys in);
/// a gated baseline key missing from the current payload is an error, as
/// is a non-positive throughput baseline. Malformed inputs surface as
/// typed [`GateError`]s, never panics.
///
/// # Errors
///
/// Returns the [`GateError`] describing the malformed input.
pub fn check(
    current_json: &str,
    baseline_json: &str,
    max_regression: f64,
) -> Result<GateReport, GateError> {
    if !(max_regression.is_finite() && (0.0..1.0).contains(&max_regression)) {
        return Err(GateError::InvalidThreshold {
            value: max_regression,
        });
    }
    let mut checks = Vec::new();
    for key in GATED_KEYS {
        let Some(baseline) = extract_number(baseline_json, key) else {
            continue;
        };
        if baseline <= 0.0 {
            return Err(GateError::NonPositiveBaseline {
                key,
                value: baseline,
            });
        }
        let current =
            extract_number(current_json, key).ok_or(GateError::MissingCurrentKey { key })?;
        let regression = 1.0 - current / baseline;
        checks.push(GateCheck {
            key: key.to_string(),
            kind: GateKind::Throughput,
            baseline,
            current,
            regression,
            pass: regression <= max_regression,
        });
    }
    for (keys, kind) in [
        (EXACT_KEYS.as_slice(), GateKind::Exact),
        (CEILING_KEYS.as_slice(), GateKind::Ceiling),
    ] {
        for &key in keys {
            let Some(baseline) = extract_number(baseline_json, key) else {
                continue;
            };
            let current =
                extract_number(current_json, key).ok_or(GateError::MissingCurrentKey { key })?;
            checks.push(GateCheck {
                key: key.to_string(),
                kind,
                baseline,
                current,
                regression: current - baseline,
                pass: match kind {
                    GateKind::Exact => current == baseline,
                    _ => current <= baseline,
                },
            });
        }
    }
    if checks.is_empty() {
        return Err(GateError::NoGatedKeys);
    }
    Ok(GateReport {
        checks,
        max_regression,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_number_finds_flat_fields() {
        let json = r#"{"a":1,"serial_samples_per_sec":1234.5,"b":-2e3}"#;
        assert_eq!(extract_number(json, "serial_samples_per_sec"), Some(1234.5));
        assert_eq!(extract_number(json, "a"), Some(1.0));
        assert_eq!(extract_number(json, "b"), Some(-2000.0));
        assert_eq!(extract_number(json, "missing"), None);
        assert_eq!(extract_number(r#"{"a":"text"}"#, "a"), None);
        assert_eq!(
            extract_number(r#"{"a": 7}"#, "a"),
            Some(7.0),
            "space after colon"
        );
        assert_eq!(extract_number(r#"{"a":3}"#, "b"), None);
    }

    #[test]
    fn gate_passes_within_threshold_and_fails_beyond() {
        let baseline = r#"{"serial_samples_per_sec":1000.0,"parallel_samples_per_sec":4000.0}"#;
        let ok = r#"{"serial_samples_per_sec":800.0,"parallel_samples_per_sec":4100.0}"#;
        let report = check(ok, baseline, 0.30).unwrap();
        assert!(report.pass());
        assert_eq!(report.checks.len(), 2);
        assert!((report.checks[0].regression - 0.2).abs() < 1e-12);
        assert!(report.checks[1].regression < 0.0, "improvement is negative");

        let bad = r#"{"serial_samples_per_sec":600.0,"parallel_samples_per_sec":4000.0}"#;
        let report = check(bad, baseline, 0.30).unwrap();
        assert!(!report.pass());
        assert!(report.render().contains("FAIL"));
        assert!(report.render().contains("serial_samples_per_sec"));
    }

    #[test]
    fn gate_rejects_malformed_inputs_with_typed_errors() {
        let baseline = r#"{"serial_samples_per_sec":1000.0}"#;
        assert_eq!(
            check("{}", baseline, 0.30),
            Err(GateError::MissingCurrentKey {
                key: "serial_samples_per_sec"
            })
        );
        assert_eq!(check(baseline, "{}", 0.30), Err(GateError::NoGatedKeys));
        assert_eq!(
            check(baseline, r#"{"serial_samples_per_sec":0.0}"#, 0.30),
            Err(GateError::NonPositiveBaseline {
                key: "serial_samples_per_sec",
                value: 0.0
            })
        );
        assert_eq!(
            check(baseline, baseline, 1.5),
            Err(GateError::InvalidThreshold { value: 1.5 })
        );
        assert!(matches!(
            check(baseline, baseline, f64::NAN),
            Err(GateError::InvalidThreshold { .. })
        ));
    }

    #[test]
    fn gate_error_displays_and_boxes() {
        // The binary prints these and callers may `?` them into a boxed
        // error; both paths go through Display/Error.
        let e = GateError::NonPositiveBaseline {
            key: "serial_samples_per_sec",
            value: -3.0,
        };
        assert!(e.to_string().contains("serial_samples_per_sec"));
        assert!(e.to_string().contains("-3"));
        let boxed: Box<dyn std::error::Error> = Box::new(GateError::NoGatedKeys);
        assert_eq!(boxed.to_string(), "baseline contains no gated keys");
        assert!(GateError::MissingCurrentKey {
            key: "lost_requests"
        }
        .to_string()
        .contains("lost_requests"));
        assert!(GateError::InvalidThreshold { value: f64::NAN }
            .to_string()
            .contains("NaN"));
    }

    #[test]
    fn nan_and_negative_values_are_typed_failures_not_panics() {
        // A NaN baseline value never parses as a finite number, so the
        // key is skipped; if it was the only key the gate reports
        // NoGatedKeys rather than comparing against NaN.
        let nan_baseline = r#"{"serial_samples_per_sec":NaN}"#;
        assert_eq!(
            check(r#"{"serial_samples_per_sec":1.0}"#, nan_baseline, 0.30),
            Err(GateError::NoGatedKeys)
        );
        // A NaN *current* value reads as a missing key.
        let baseline = r#"{"serial_samples_per_sec":1000.0}"#;
        assert_eq!(
            check(r#"{"serial_samples_per_sec":NaN}"#, baseline, 0.30),
            Err(GateError::MissingCurrentKey {
                key: "serial_samples_per_sec"
            })
        );
        // Negative throughput floors are rejected, not silently passed.
        assert_eq!(
            check(baseline, r#"{"serial_samples_per_sec":-10.0}"#, 0.30),
            Err(GateError::NonPositiveBaseline {
                key: "serial_samples_per_sec",
                value: -10.0
            })
        );
    }

    #[test]
    fn malformed_baseline_json_is_a_typed_failure() {
        let current = r#"{"serial_samples_per_sec":1000.0}"#;
        for garbage in [
            "",
            "not json at all",
            "{\"serial_samples_per_sec\":",
            r#"{"serial_samples_per_sec":"fast"}"#,
            "[1,2,3]",
        ] {
            assert_eq!(
                check(current, garbage, 0.30),
                Err(GateError::NoGatedKeys),
                "garbage baseline {garbage:?} must fail typed, not panic"
            );
        }
    }

    #[test]
    fn negative_ceilings_demand_a_strict_win() {
        // The lifetime gate holds predictive-minus-periodic under a
        // negative ceiling: zero (a tie) must FAIL the check while a
        // clear win passes, and the ceiling boundary itself passes.
        let baseline = r#"{"predictive_minus_periodic_accuracy_hours":-0.05}"#;
        let win = check(
            r#"{"predictive_minus_periodic_accuracy_hours":-0.8}"#,
            baseline,
            0.30,
        )
        .unwrap();
        assert!(win.pass());
        let tie = check(
            r#"{"predictive_minus_periodic_accuracy_hours":0.0}"#,
            baseline,
            0.30,
        )
        .unwrap();
        assert!(!tie.pass(), "a tie is not a strict win");
        let at = check(
            r#"{"predictive_minus_periodic_accuracy_hours":-0.05}"#,
            baseline,
            0.30,
        )
        .unwrap();
        assert!(at.pass(), "exactly at the ceiling passes");
    }

    #[test]
    fn exact_keys_pin_invariants() {
        let baseline = r#"{"lost_requests":0}"#;
        let report = check(r#"{"lost_requests":0}"#, baseline, 0.30).unwrap();
        assert!(report.pass());
        assert_eq!(report.checks[0].kind, GateKind::Exact);

        // Any loss fails, even one well inside a throughput-style margin.
        let report = check(r#"{"lost_requests":1}"#, baseline, 0.30).unwrap();
        assert!(!report.pass());
        assert!(report.render().contains("must match exactly"));
        assert!(report.render().contains("FAIL"));

        assert!(
            check("{}", baseline, 0.30).is_err(),
            "missing current exact key"
        );
    }

    #[test]
    fn ceiling_keys_cap_error_budgets() {
        let baseline = r#"{"recovered_accuracy_delta_pp":0.5}"#;
        let at = check(r#"{"recovered_accuracy_delta_pp":0.5}"#, baseline, 0.30).unwrap();
        assert!(at.pass(), "exactly at the ceiling passes");
        let under = check(r#"{"recovered_accuracy_delta_pp":0.0}"#, baseline, 0.30).unwrap();
        assert!(under.pass());
        assert_eq!(under.checks[0].kind, GateKind::Ceiling);
        let over = check(r#"{"recovered_accuracy_delta_pp":0.6}"#, baseline, 0.30).unwrap();
        assert!(!over.pass());
        assert!(over.render().contains("must not exceed"));
    }

    #[test]
    fn kinds_compose_in_one_baseline() {
        let baseline = r#"{"serial_samples_per_sec":1000.0,"lost_requests":0,"recovered_accuracy_delta_pp":0.5}"#;
        let current = r#"{"serial_samples_per_sec":900.0,"lost_requests":0,"recovered_accuracy_delta_pp":0.1}"#;
        let report = check(current, baseline, 0.30).unwrap();
        assert_eq!(report.checks.len(), 3);
        assert!(report.pass());
    }

    #[test]
    fn baseline_opts_keys_in() {
        // A baseline that only gates the serial path skips the parallel key.
        let baseline = r#"{"serial_samples_per_sec":100.0,"_note":"serial only"}"#;
        let current = r#"{"serial_samples_per_sec":95.0}"#;
        let report = check(current, baseline, 0.30).unwrap();
        assert_eq!(report.checks.len(), 1);
        assert!(report.pass());
    }
}
