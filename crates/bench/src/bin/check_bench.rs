//! CI benchmark regression gate.
//!
//! ```text
//! check_bench <current.json> <baseline.json> [<current.json> <baseline.json> ...]
//!             [--max-regression <frac>]
//! ```
//!
//! Compares each `(current, baseline)` pair over the gated keys (see
//! `vortex_bench::gate`) and exits non-zero if any gated key in any pair
//! fails — throughput regressing more than the allowed fraction
//! (default 0.30), an exact invariant diverging, or a ceiling exceeded.
//! Every pair is evaluated (and rendered) even after an earlier pair
//! fails, so one CI step reports the whole gate matrix. Exit codes:
//! 0 pass, 1 regression or malformed input, 2 usage error.

use vortex_bench::gate;

fn usage_exit() -> ! {
    eprintln!(
        "usage: check_bench <current.json> <baseline.json> [<current.json> <baseline.json> ...] [--max-regression <frac>]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut max_regression = 0.30;
    let mut iter = args.into_iter();
    while let Some(a) = iter.next() {
        if a == "--max-regression" {
            match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) => max_regression = v,
                None => {
                    eprintln!("--max-regression requires a numeric fraction");
                    usage_exit();
                }
            }
        } else if a.starts_with("--") {
            eprintln!("unknown flag `{a}`");
            usage_exit();
        } else {
            paths.push(a);
        }
    }
    if paths.is_empty() || paths.len() % 2 != 0 {
        usage_exit();
    }

    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("failed to read {path}: {e}");
            std::process::exit(1);
        })
    };

    let mut failed = false;
    for pair in paths.chunks_exact(2) {
        let (current_path, baseline_path) = (&pair[0], &pair[1]);
        println!("== {current_path} vs {baseline_path}");
        let current = read(current_path);
        let baseline = read(baseline_path);
        match gate::check(&current, &baseline, max_regression) {
            Ok(report) => {
                print!("{}", report.render());
                if !report.pass() {
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("bench gate: {e}");
                failed = true;
            }
        }
    }
    if failed {
        eprintln!(
            "bench gate: at least one gated key failed (threshold {:.0}%)",
            100.0 * max_regression
        );
        std::process::exit(1);
    }
    println!("bench gate: ok");
}
