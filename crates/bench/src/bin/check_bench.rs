//! CI benchmark regression gate.
//!
//! ```text
//! check_bench <current BENCH_runtime.json> <baseline.json> [--max-regression <frac>]
//! ```
//!
//! Compares the gated throughput keys (see `vortex_bench::gate`) of a
//! fresh benchmark payload against the checked-in baseline and exits
//! non-zero if any regresses more than the allowed fraction
//! (default 0.30). Exit codes: 0 pass, 1 regression or malformed input,
//! 2 usage error.

use vortex_bench::gate;

fn usage_exit() -> ! {
    eprintln!("usage: check_bench <current.json> <baseline.json> [--max-regression <frac>]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut max_regression = 0.30;
    let mut iter = args.into_iter();
    while let Some(a) = iter.next() {
        if a == "--max-regression" {
            match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) => max_regression = v,
                None => {
                    eprintln!("--max-regression requires a numeric fraction");
                    usage_exit();
                }
            }
        } else if a.starts_with("--") {
            eprintln!("unknown flag `{a}`");
            usage_exit();
        } else {
            paths.push(a);
        }
    }
    let [current_path, baseline_path] = paths.as_slice() else {
        usage_exit();
    };

    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("failed to read {path}: {e}");
            std::process::exit(1);
        })
    };
    let current = read(current_path);
    let baseline = read(baseline_path);

    match gate::check(&current, &baseline, max_regression) {
        Ok(report) => {
            print!("{}", report.render());
            if report.pass() {
                println!("bench gate: ok");
            } else {
                eprintln!(
                    "bench gate: throughput regressed beyond {:.0}%",
                    100.0 * max_regression
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("bench gate: {e}");
            std::process::exit(1);
        }
    }
}
