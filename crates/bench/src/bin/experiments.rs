//! Command-line driver regenerating every table and figure of the paper.
//!
//! ```text
//! experiments [fig2|fig3|…|table1|ext|runtime|all] [--quick|--bench] [--json]
//! ```
//!
//! Without a scale flag the paper-scale configuration runs (minutes);
//! `--quick` shrinks the workloads to seconds, `--bench` further still.
//! With `--json`, each experiment also writes its tables to
//! `BENCH_<name>.json` in the working directory. The `runtime`
//! experiment always writes `BENCH_runtime.json` (its throughput numbers
//! are the point of running it).

use std::time::Instant;

use vortex_bench::experiments::common::tables_to_json;
use vortex_bench::experiments::{
    extensions, fig1, fig2, fig3, fig4, fig7, fig8, fig9, runtime, table1,
};
use vortex_bench::Scale;

fn write_json(name: &str, payload: &str) {
    let path = format!("BENCH_{name}.json");
    match std::fs::write(&path, payload) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--bench") {
        Scale::bench()
    } else if args.iter().any(|a| a == "--quick") {
        Scale::quick()
    } else {
        Scale::paper()
    };
    let json = args.iter().any(|a| a == "--json");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let which: Vec<&str> = if which.is_empty() || which.contains(&"all") {
        vec![
            "fig1", "fig2", "fig3", "fig4", "fig7", "fig8", "fig9", "table1", "ext", "runtime",
        ]
    } else {
        which
    };

    for name in which {
        let start = Instant::now();
        let (output, tables) = match name {
            "fig1" => {
                let r = fig1::run(&scale);
                (r.render(), r.tables())
            }
            "fig2" => {
                let r = fig2::run(&scale);
                (r.render(), r.tables())
            }
            "fig3" => {
                let r = fig3::run(&scale);
                (r.render(), r.tables())
            }
            "fig4" => {
                let r = fig4::run(&scale);
                (r.render(), r.tables())
            }
            "fig7" => {
                let r = fig7::run(&scale);
                let mut s = r.render();
                s.push_str(&format!(
                    "optimal gamma: before AMP {:.2}, after AMP {:.2}\n",
                    r.best_gamma_before(),
                    r.best_gamma_after()
                ));
                (s, r.tables())
            }
            "fig8" => {
                let r = fig8::run(&scale);
                (r.render(), r.tables())
            }
            "fig9" => {
                let r = fig9::run(&scale);
                let mut s = r.render();
                s.push_str(&format!("tuned gamma: {:.2}\n", r.tuned_gamma));
                (s, r.tables())
            }
            "table1" => {
                let r = table1::run(&scale);
                (r.render(), r.tables())
            }
            "ext" => {
                let r = extensions::run(&scale);
                (r.render(), r.tables())
            }
            "runtime" => {
                let r = runtime::run(&scale);
                write_json("runtime", &r.to_json());
                (r.render(), r.tables())
            }
            other => {
                eprintln!("unknown experiment `{other}`");
                eprintln!(
                    "usage: experiments [fig1|fig2|fig3|fig4|fig7|fig8|fig9|table1|ext|runtime|all] [--quick|--bench] [--json]"
                );
                std::process::exit(2);
            }
        };
        // `runtime` already wrote its richer flat-field payload above.
        if json && name != "runtime" {
            write_json(name, &tables_to_json(&tables));
        }
        println!("{output}");
        println!("[{name} finished in {:.1?}]\n", start.elapsed());
    }
}
