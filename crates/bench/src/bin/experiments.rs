//! Command-line driver regenerating every table and figure of the paper.
//!
//! ```text
//! experiments [fig2|fig3|fig4|fig7|fig8|fig9|table1|all] [--quick|--bench]
//! ```
//!
//! Without a scale flag the paper-scale configuration runs (minutes);
//! `--quick` shrinks the workloads to seconds, `--bench` further still.

use std::time::Instant;

use vortex_bench::experiments::{extensions, fig1, fig2, fig3, fig4, fig7, fig8, fig9, table1};
use vortex_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--bench") {
        Scale::bench()
    } else if args.iter().any(|a| a == "--quick") {
        Scale::quick()
    } else {
        Scale::paper()
    };
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let which: Vec<&str> = if which.is_empty() || which.contains(&"all") {
        vec![
            "fig1", "fig2", "fig3", "fig4", "fig7", "fig8", "fig9", "table1", "ext",
        ]
    } else {
        which
    };

    for name in which {
        let start = Instant::now();
        let output = match name {
            "fig1" => fig1::run(&scale).render(),
            "fig2" => fig2::run(&scale).render(),
            "fig3" => fig3::run(&scale).render(),
            "fig4" => fig4::run(&scale).render(),
            "fig7" => {
                let r = fig7::run(&scale);
                let mut s = r.render();
                s.push_str(&format!(
                    "optimal gamma: before AMP {:.2}, after AMP {:.2}\n",
                    r.best_gamma_before(),
                    r.best_gamma_after()
                ));
                s
            }
            "fig8" => fig8::run(&scale).render(),
            "fig9" => {
                let r = fig9::run(&scale);
                let mut s = r.render();
                s.push_str(&format!("tuned gamma: {:.2}\n", r.tuned_gamma));
                s
            }
            "table1" => table1::run(&scale).render(),
            "ext" => extensions::run(&scale).render(),
            other => {
                eprintln!("unknown experiment `{other}`");
                eprintln!(
                    "usage: experiments [fig1|fig2|fig3|fig4|fig7|fig8|fig9|table1|ext|all] [--quick|--bench]"
                );
                std::process::exit(2);
            }
        };
        println!("{output}");
        println!("[{name} finished in {:.1?}]\n", start.elapsed());
    }
}
