//! Command-line driver regenerating every table and figure of the paper.
//!
//! ```text
//! experiments [fig2|fig3|…|table1|ext|runtime|serve|chaos|fleet|lifetime|all] [--quick|--bench]
//!             [--json] [--metrics <path>]
//! ```
//!
//! Without a scale flag the paper-scale configuration runs (minutes);
//! `--quick` shrinks the workloads to seconds, `--bench` further still.
//! With `--json`, each experiment also writes its tables to
//! `BENCH_<name>.json` in the working directory. The `runtime`, `serve`,
//! `chaos`, `fleet`, `lifetime`, `encoding` and `training` experiments
//! always write their `BENCH_<name>.json` (their gated numbers are the
//! point of running them). With `--metrics <path>`, the
//! `vortex_obs` registry snapshot — span timings, counters and gauges
//! collected from every hot path the run touched — is written to `<path>`
//! after all experiments finish, so each benchmark run carries its own
//! profile.

use std::time::Instant;

use vortex_bench::experiments::common::tables_to_json;
use vortex_bench::experiments::{
    chaos, encoding, extensions, fig1, fig2, fig3, fig4, fig7, fig8, fig9, fleet, lifetime,
    runtime, serve, table1, training,
};
use vortex_bench::Scale;

fn write_json(name: &str, payload: &str) {
    let path = format!("BENCH_{name}.json");
    match std::fs::write(&path, payload) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

fn usage_exit() -> ! {
    eprintln!(
        "usage: experiments [fig1|fig2|fig3|fig4|fig7|fig8|fig9|table1|ext|runtime|serve|chaos|fleet|lifetime|encoding|training|all] [--quick|--bench] [--json] [--metrics <path>]"
    );
    std::process::exit(2);
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // Pull out `--metrics <path>` before flag scanning.
    let mut metrics_path: Option<String> = None;
    let mut args: Vec<String> = Vec::with_capacity(raw.len());
    let mut iter = raw.into_iter();
    while let Some(a) = iter.next() {
        if a == "--metrics" {
            match iter.next() {
                Some(path) => metrics_path = Some(path),
                None => {
                    eprintln!("--metrics requires a path argument");
                    usage_exit();
                }
            }
        } else {
            args.push(a);
        }
    }
    let scale = if args.iter().any(|a| a == "--bench") {
        Scale::bench()
    } else if args.iter().any(|a| a == "--quick") {
        Scale::quick()
    } else {
        Scale::paper()
    };
    let json = args.iter().any(|a| a == "--json");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let which: Vec<&str> = if which.is_empty() || which.contains(&"all") {
        vec![
            "fig1", "fig2", "fig3", "fig4", "fig7", "fig8", "fig9", "table1", "ext", "runtime",
            "serve", "chaos", "fleet", "lifetime", "encoding", "training",
        ]
    } else {
        which
    };

    for name in which {
        let start = Instant::now();
        let (output, tables) = match name {
            "fig1" => {
                let r = fig1::run(&scale);
                (r.render(), r.tables())
            }
            "fig2" => {
                let r = fig2::run(&scale);
                (r.render(), r.tables())
            }
            "fig3" => {
                let r = fig3::run(&scale);
                (r.render(), r.tables())
            }
            "fig4" => {
                let r = fig4::run(&scale);
                (r.render(), r.tables())
            }
            "fig7" => {
                let r = fig7::run(&scale);
                let mut s = r.render();
                s.push_str(&format!(
                    "optimal gamma: before AMP {:.2}, after AMP {:.2}\n",
                    r.best_gamma_before(),
                    r.best_gamma_after()
                ));
                (s, r.tables())
            }
            "fig8" => {
                let r = fig8::run(&scale);
                (r.render(), r.tables())
            }
            "fig9" => {
                let r = fig9::run(&scale);
                let mut s = r.render();
                s.push_str(&format!("tuned gamma: {:.2}\n", r.tuned_gamma));
                (s, r.tables())
            }
            "table1" => {
                let r = table1::run(&scale);
                (r.render(), r.tables())
            }
            "ext" => {
                let r = extensions::run(&scale);
                (r.render(), r.tables())
            }
            "runtime" => {
                let r = runtime::run(&scale);
                write_json("runtime", &r.to_json());
                (r.render(), r.tables())
            }
            "serve" => {
                let r = serve::run(&scale);
                write_json("serve", &r.to_json());
                (r.render(), r.tables())
            }
            "chaos" => {
                let r = chaos::run(&scale);
                write_json("chaos", &r.to_json());
                (r.render(), r.tables())
            }
            "fleet" => {
                let r = fleet::run(&scale);
                write_json("fleet", &r.to_json());
                (r.render(), r.tables())
            }
            "lifetime" => {
                let r = lifetime::run(&scale);
                write_json("lifetime", &r.to_json());
                (r.render(), r.tables())
            }
            "encoding" => {
                let r = encoding::run(&scale);
                write_json("encoding", &r.to_json());
                (r.render(), r.tables())
            }
            "training" => {
                let r = training::run(&scale);
                write_json("training", &r.to_json());
                (r.render(), r.tables())
            }
            other => {
                eprintln!("unknown experiment `{other}`");
                usage_exit();
            }
        };
        // `runtime`, `serve`, `chaos`, `fleet`, `lifetime`, `encoding`
        // and `training` already wrote their richer flat-field payloads
        // above.
        if json
            && !matches!(
                name,
                "runtime" | "serve" | "chaos" | "fleet" | "lifetime" | "encoding" | "training"
            )
        {
            write_json(name, &tables_to_json(&tables));
        }
        println!("{output}");
        println!("[{name} finished in {:.1?}]\n", start.elapsed());
    }

    // The snapshot is taken once, after every experiment has reported, so
    // the profile covers the whole invocation.
    if let Some(path) = metrics_path {
        match std::fs::write(&path, vortex_obs::snapshot().to_json()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write metrics snapshot {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
