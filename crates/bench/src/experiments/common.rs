//! Shared experiment scaffolding: scales, dataset preparation, trainers.

use vortex_core::report::Table;
use vortex_core::vat::VatTrainer;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_nn::dataset::{Dataset, DatasetConfig, SynthDigits};
use vortex_nn::gdt::GdtTrainer;
use vortex_nn::split::stratified_split;

/// How big an experiment run is.
///
/// `paper()` matches the paper's setup (4000 train / 2000 test samples on
/// a 784-row crossbar, 1000-run Fig. 2 Monte Carlo); `quick()` shrinks
/// everything to seconds for CI; `bench()` shrinks further for Criterion
/// iterations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Training samples.
    pub n_train: usize,
    /// Test samples.
    pub n_test: usize,
    /// Samples generated per class (must cover train + test).
    pub samples_per_class: usize,
    /// Monte-Carlo fabrication draws for test-rate estimates.
    pub mc_draws: usize,
    /// Monte-Carlo runs for the Fig. 2 column experiment.
    pub column_runs: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Points on γ sweeps.
    pub gamma_points: usize,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// The paper-scale configuration.
    pub fn paper() -> Self {
        Self {
            n_train: 4000,
            n_test: 2000,
            samples_per_class: 600,
            mc_draws: 5,
            column_runs: 1000,
            epochs: 30,
            gamma_points: 11,
            seed: 2015,
        }
    }

    /// A CI-friendly configuration (seconds, not minutes).
    pub fn quick() -> Self {
        Self {
            n_train: 300,
            n_test: 150,
            samples_per_class: 45,
            mc_draws: 2,
            column_runs: 200,
            epochs: 10,
            gamma_points: 5,
            seed: 2015,
        }
    }

    /// An even smaller configuration for Criterion iterations.
    pub fn bench() -> Self {
        Self {
            n_train: 120,
            n_test: 60,
            samples_per_class: 18,
            mc_draws: 1,
            column_runs: 50,
            epochs: 4,
            gamma_points: 3,
            seed: 2015,
        }
    }

    /// The γ sweep grid for this scale.
    pub fn gamma_grid(&self) -> Vec<f64> {
        vortex_linalg::vector::linspace(0.0, 1.0, self.gamma_points.max(2))
    }

    /// Generates the benchmark dataset at the given image side (28, 14 or
    /// 7 — the paper's full and under-sampled benchmarks) and splits it
    /// into train/test.
    ///
    /// # Panics
    ///
    /// Panics if the scale's sample counts exceed the generated dataset,
    /// or the side is not one of 7/14/28.
    pub fn dataset(&self, side: usize) -> (Dataset, Dataset) {
        assert!([7, 14, 28].contains(&side), "side must be 7, 14 or 28");
        let cfg = DatasetConfig {
            samples_per_class: self.samples_per_class,
            ..DatasetConfig::paper()
        };
        let full = SynthDigits::generate(&cfg, self.seed).expect("valid dataset config");
        let full = if side == 28 {
            full
        } else {
            full.downsample(28 / side).expect("side divides 28")
        };
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(self.seed ^ 0xDA7A);
        let split = stratified_split(&full, self.n_train, self.n_test, &mut rng)
            .expect("scale sample counts fit the dataset");
        (split.train, split.test)
    }

    /// The conventional (GDT) trainer at this scale.
    pub fn gdt(&self) -> GdtTrainer {
        GdtTrainer {
            epochs: self.epochs,
            ..Default::default()
        }
    }

    /// The VAT trainer at this scale (γ and σ set per experiment).
    pub fn vat(&self) -> VatTrainer {
        VatTrainer {
            epochs: self.epochs,
            ..Default::default()
        }
    }

    /// The master RNG of an experiment (offset by an experiment tag so
    /// different figures do not share streams).
    pub fn rng(&self, tag: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(self.seed.wrapping_mul(0x9E37).wrapping_add(tag))
    }
}

/// Renders a sequence of tables separated by blank lines — the standard
/// text layout of every experiment's `render()`.
pub fn render_tables(tables: &[Table]) -> String {
    tables
        .iter()
        .map(Table::render)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Serializes a sequence of tables as a JSON array (see
/// [`Table::to_json`]).
pub fn tables_to_json(tables: &[Table]) -> String {
    let mut out = String::from("[");
    for (i, t) in tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&t.to_json());
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let p = Scale::paper();
        let q = Scale::quick();
        let b = Scale::bench();
        assert!(p.n_train > q.n_train && q.n_train > b.n_train);
        assert!(p.column_runs > q.column_runs);
    }

    #[test]
    fn dataset_sides() {
        let s = Scale::bench();
        let (train, test) = s.dataset(14);
        assert_eq!(train.num_features(), 196);
        assert_eq!(train.len(), 120);
        assert_eq!(test.len(), 60);
        let (train7, _) = s.dataset(7);
        assert_eq!(train7.num_features(), 49);
    }

    #[test]
    fn gamma_grid_spans_unit_interval() {
        let g = Scale::quick().gamma_grid();
        assert_eq!(g.first(), Some(&0.0));
        assert_eq!(g.last(), Some(&1.0));
        assert_eq!(g.len(), 5);
    }

    #[test]
    #[should_panic(expected = "side must be")]
    fn bad_side_panics() {
        let _ = Scale::bench().dataset(9);
    }
}
