//! Runtime throughput — samples/sec through a [`CompiledModel`], serial
//! vs parallel (extension beyond the paper).
//!
//! The serving path compiles the digit classifier onto fabricated
//! hardware exactly once (fabricate → map → program → calibrate), then
//! meters `infer_batch` four ways:
//!
//! * **reference** — `Parallelism::Serial` with the f32 fast path
//!   disabled ([`CompiledModel::with_reference_kernel`]): the pure f64
//!   kernel, the semantics everything else must match.
//! * **serial** — `Parallelism::Serial` on the production model (fast
//!   path on): isolates the certified-f32 kernel gain.
//! * **spawn** — the pre-pool fan-out (`run_trials_unpooled`): threads
//!   spawned per batch, the overhead the persistent pool removes.
//! * **parallel** — `Parallelism::Fixed(threads)` on the shared
//!   [`WorkerPool`](vortex_nn::pool::WorkerPool): the production path.
//!
//! Predictions are bit-identical on every row (see
//! `vortex_nn::executor` and `vortex_runtime::kernels`); only wall-clock
//! changes.

use std::time::Instant;

use vortex_core::amp::greedy::RowMapping;
use vortex_core::pipeline::HardwareEnv;
use vortex_core::report::{fixed, json_string, Table};
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_nn::executor::{run_trials_unpooled, Parallelism};
use vortex_runtime::CompiledModel;

use super::common::Scale;

/// Result of the runtime throughput experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeResult {
    /// Physical crossbar rows of the compiled model.
    pub rows: usize,
    /// Crossbar columns (= classes).
    pub cols: usize,
    /// Test samples scored per metered pass.
    pub samples: usize,
    /// Worker count of the parallel pass.
    pub threads: usize,
    /// Serial throughput of the forced-f64 reference kernel, samples/sec.
    pub reference_sps: f64,
    /// Serial throughput (fast path on), samples/sec.
    pub serial_sps: f64,
    /// Spawn-per-batch (unpooled) parallel throughput, samples/sec.
    pub spawn_sps: f64,
    /// Pooled parallel throughput, samples/sec.
    pub parallel_sps: f64,
    /// Size of the serialized model artifact, bytes.
    pub artifact_bytes: usize,
    /// Test-set accuracy of the compiled model (identical on all paths).
    pub accuracy: f64,
}

impl RuntimeResult {
    /// Parallel speedup over serial.
    pub fn speedup(&self) -> f64 {
        if self.serial_sps > 0.0 {
            self.parallel_sps / self.serial_sps
        } else {
            0.0
        }
    }

    /// Certified-f32 kernel gain: serial fast-path over the reference.
    pub fn kernel_gain(&self) -> f64 {
        if self.reference_sps > 0.0 {
            self.serial_sps / self.reference_sps
        } else {
            0.0
        }
    }

    /// The experiment as a structured table.
    pub fn tables(&self) -> Vec<Table> {
        let mut t = Table::new(
            format!(
                "Runtime throughput — {}x{} compiled model, {} samples/pass",
                self.rows, self.cols, self.samples
            ),
            &["path", "workers", "samples/sec"],
        );
        t.add_row([
            "reference (f64)".to_string(),
            "1".to_string(),
            fixed(self.reference_sps, 0),
        ]);
        t.add_row([
            "serial".to_string(),
            "1".to_string(),
            fixed(self.serial_sps, 0),
        ]);
        t.add_row([
            "spawn-per-batch".to_string(),
            self.threads.to_string(),
            fixed(self.spawn_sps, 0),
        ]);
        t.add_row([
            "parallel (pool)".to_string(),
            self.threads.to_string(),
            fixed(self.parallel_sps, 0),
        ]);
        vec![t]
    }

    /// Renders the experiment as a text table plus a summary line.
    pub fn render(&self) -> String {
        let mut out = super::common::render_tables(&self.tables());
        out.push_str(&format!(
            "speedup {:.2}x, kernel gain {:.2}x, artifact {} bytes, accuracy {:.1}%\n",
            self.speedup(),
            self.kernel_gain(),
            self.artifact_bytes,
            100.0 * self.accuracy
        ));
        out
    }

    /// Machine-readable summary (the `BENCH_runtime.json` payload): flat
    /// throughput fields plus the structured table.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"rows\":{},\"cols\":{},\"samples\":{},\"threads\":{},",
                "\"reference_samples_per_sec\":{:.3},",
                "\"serial_samples_per_sec\":{:.3},",
                "\"spawn_samples_per_sec\":{:.3},",
                "\"parallel_samples_per_sec\":{:.3},",
                "\"speedup\":{:.4},\"kernel_gain\":{:.4},",
                "\"artifact_bytes\":{},\"accuracy\":{:.6},",
                "\"tables\":{}}}"
            ),
            self.rows,
            self.cols,
            self.samples,
            self.threads,
            self.reference_sps,
            self.serial_sps,
            self.spawn_sps,
            self.parallel_sps,
            self.speedup(),
            self.kernel_gain(),
            self.artifact_bytes,
            self.accuracy,
            super::common::tables_to_json(&self.tables()),
        )
    }
}

/// Validates a JSON fragment claim used by the binary's writer tests.
pub fn json_field(json: &str, key: &str) -> bool {
    json.contains(&format!("{}:", json_string(key)))
}

fn meter(model: &CompiledModel, samples: &[&[f64]], parallelism: Parallelism) -> f64 {
    // Repeat whole passes until a wall-clock floor so short test sets
    // still give a stable rate.
    let floor_s = 0.15;
    let start = Instant::now();
    let mut scored = 0usize;
    loop {
        model
            .infer_batch(samples, parallelism)
            .expect("compiled model scores the test set");
        scored += samples.len();
        if start.elapsed().as_secs_f64() >= floor_s {
            break;
        }
    }
    scored as f64 / start.elapsed().as_secs_f64()
}

/// The pre-pool comparison row: fan each pass out with
/// `run_trials_unpooled` (threads spawned and joined per batch), chunking
/// the samples the same way `infer_batch` does. Measures the thread
/// start-up overhead the persistent pool amortizes away.
fn meter_unpooled(model: &CompiledModel, samples: &[&[f64]], threads: usize) -> f64 {
    let floor_s = 0.15;
    let chunk = samples.len().div_ceil(threads).max(1);
    let chunks: Vec<&[&[f64]]> = samples.chunks(chunk).collect();
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(0);
    let start = Instant::now();
    let mut scored = 0usize;
    loop {
        let labels = run_trials_unpooled(
            &mut rng,
            chunks.len(),
            Parallelism::Fixed(threads),
            |k, _| {
                model
                    .infer_batch(chunks[k], Parallelism::Serial)
                    .expect("compiled model scores the test set")
            },
        );
        scored += labels.iter().map(Vec::len).sum::<usize>();
        if start.elapsed().as_secs_f64() >= floor_s {
            break;
        }
    }
    scored as f64 / start.elapsed().as_secs_f64()
}

/// Runs the experiment: compile once, meter all four paths.
///
/// # Panics
///
/// Panics only on internal configuration errors (the defaults are valid).
pub fn run(scale: &Scale) -> RuntimeResult {
    let side = if scale.n_train >= 1000 { 28 } else { 14 };
    let (train, test) = scale.dataset(side);
    let weights = scale.gdt().train(&train).expect("training");
    let env = HardwareEnv::with_sigma(0.4)
        .expect("valid sigma")
        .with_ir_drop(5.0);
    let mut rng = scale.rng(42);
    let model = env
        .compiler()
        .with_calibration(&test.mean_input())
        .compile(&weights, &RowMapping::identity(weights.rows()), &mut rng)
        .expect("model compiles");
    let reference = model.clone().with_reference_kernel();

    let samples: Vec<&[f64]> = (0..test.len()).map(|i| test.image(i)).collect();
    let threads = 8;
    let reference_sps = meter(&reference, &samples, Parallelism::Serial);
    let serial_sps = meter(&model, &samples, Parallelism::Serial);
    let spawn_sps = meter_unpooled(&model, &samples, threads);
    let parallel_sps = meter(&model, &samples, Parallelism::Fixed(threads));
    RuntimeResult {
        rows: model.rows(),
        cols: model.classes(),
        samples: samples.len(),
        threads,
        reference_sps,
        serial_sps,
        spawn_sps,
        parallel_sps,
        artifact_bytes: model.to_bytes().len(),
        accuracy: model.accuracy(&test).expect("scoring"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_positive_and_predictions_agree() {
        let r = run(&Scale::bench());
        assert!(r.reference_sps > 0.0 && r.serial_sps > 0.0);
        assert!(r.spawn_sps > 0.0 && r.parallel_sps > 0.0);
        assert!(r.samples > 0 && r.rows > 0 && r.cols == 10);
        assert!(r.artifact_bytes > 0);
        assert!((0.0..=1.0).contains(&r.accuracy));
        // Speedup is hardware-dependent; only require it on real
        // multi-core machines (CI containers often expose one core).
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores >= 8 {
            assert!(
                r.speedup() > 1.0,
                "expected parallel gain on {cores} cores, got {:.2}x",
                r.speedup()
            );
        }
    }

    #[test]
    fn render_and_json_carry_the_headline_fields() {
        let r = run(&Scale::bench());
        let s = r.render();
        assert!(s.contains("Runtime throughput"));
        assert!(s.contains("speedup"));
        assert!(s.contains("reference (f64)"));
        assert!(s.contains("spawn-per-batch"));
        let j = r.to_json();
        for key in [
            "rows",
            "cols",
            "samples",
            "threads",
            "reference_samples_per_sec",
            "serial_samples_per_sec",
            "spawn_samples_per_sec",
            "parallel_samples_per_sec",
            "speedup",
            "kernel_gain",
            "artifact_bytes",
            "tables",
        ] {
            assert!(json_field(&j, key), "missing {key} in {j}");
        }
    }
}
