//! Lifetime policy comparison — recalibration policies raced over a
//! virtual device lifetime (extension beyond the paper).
//!
//! One chip, three operators. The [`DeviceTimeline`] evolves a compiled
//! model over two virtual days of retention drift, write-endurance wear
//! and a diurnal temperature swing (hot afternoons age the chip faster
//! through the Arrhenius clock). Every virtual hour each
//! [`RecalibrationPolicy`] probes the canaries and decides whether to
//! reprogram; a reprogram restores accuracy but blacks the chip out for
//! a recalibration window, dropping every request that arrives inside
//! it.
//!
//! The race is scored on three axes:
//!
//! * **Accuracy-hours lost** — the integral of `max(0, floor − canary)`
//!   over the horizon: how long, and how far, the chip served below its
//!   promised floor.
//! * **Recompiles** — each one costs a blackout window. The periodic
//!   policy is granted *exactly* the drift-predictive policy's budget
//!   (`lifetime_recompile_budget_delta` is CI-gated at 0), so the
//!   comparison isolates *placement* of recalibrations, not their count.
//! * **Requests served** — a seeded diurnal arrival trace
//!   ([`TrafficGen`]) replayed against each policy's blackout windows;
//!   `lifetime_served_per_virtual_sec` is the CI-gated virtual
//!   throughput of the deployed (drift-predictive) policy.
//!
//! The paper's thesis at serving time: variation is not noise to
//! average away but structure to *anticipate*. The drift-predictive
//! policy extrapolates the canary-accuracy slope and recalibrates just
//! before the floor breach; CI gates that it strictly beats the
//! blind periodic schedule on accuracy-hours lost at the same budget
//! (`predictive_minus_periodic_accuracy_hours` ceiling < 0).
//!
//! Everything — the timeline, the policies, the traffic — is a pure
//! function of fixed seeds, so the whole table (and the
//! `BENCH_lifetime.json` payload) is bit-identical across reruns,
//! Monte-Carlo thread counts and pool sizes; the determinism test
//! asserts `run == run`.

use vortex_core::amp::greedy::RowMapping;
use vortex_core::pipeline::HardwareEnv;
use vortex_core::report::{fixed, Table};
use vortex_device::drift::RetentionModel;
use vortex_runtime::CompiledModel;
use vortex_serve::lifetime::{
    CanaryTriggered, DeviceTimeline, DriftPredictive, LifetimeConfig, Periodic, PolicyObservation,
    RecalibrationPolicy, TemperatureProfile, ThermalModel, WearModel,
};

use super::common::Scale;
use crate::traffic::{ArrivalProcess, TrafficGen};

/// Device-timeline master seed.
const LIFETIME_SEED: u64 = 4242;
/// Arrival-trace seed (independent of the device seed).
const TRAFFIC_SEED: u64 = 0x11FE;
/// Virtual horizon: two days.
const HORIZON_S: f64 = 172_800.0;
/// Probe cadence: one virtual hour.
const PROBE_S: f64 = 3_600.0;
/// Canary-accuracy floor the deployment promises.
const ACCURACY_FLOOR: f64 = 0.9;
/// Canary probes frozen into the model.
const CANARIES: usize = 48;
/// Virtual seconds a reprogram blacks the chip out.
const REPROGRAM_S: f64 = 900.0;
/// Retention drift: mean and device spread of the decay exponent ν, and
/// the knee τ (seconds). Tuned so the canaries sag over a working day.
const NU_MEAN: f64 = 0.12;
const NU_SIGMA: f64 = 0.05;
const TAU_S: f64 = 3_600.0;
/// Wear: log-spread of reprogram 1 and the endurance rating.
const WEAR_SIGMA_FRESH: f64 = 0.005;
const WEAR_ENDURANCE: f64 = 200.0;
/// Diurnal ambient swing (°C) on a one-day period.
const BASE_C: f64 = 20.0;
const PEAK_C: f64 = 45.0;
const DAY_S: f64 = 86_400.0;
/// Thermal coupling: mean tempco, device spread, Arrhenius acceleration.
const TEMPCO: f64 = 1e-3;
const TEMPCO_SIGMA: f64 = 5e-4;
const ARRHENIUS: f64 = 0.02;
/// Drift-predictive fit window (probes) and lookahead (virtual seconds).
const PREDICT_WINDOW: usize = 6;
const PREDICT_LEAD_S: f64 = 3.0 * PROBE_S;
/// Diurnal arrival rates (requests per virtual second).
const ARRIVAL_BASE: f64 = 0.02;
const ARRIVAL_PEAK: f64 = 0.10;

/// How one policy fared over the horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyOutcome {
    /// Policy name (from [`RecalibrationPolicy::name`]).
    pub name: &'static str,
    /// Reprograms the policy spent.
    pub recompiles: u64,
    /// Integral of `max(0, floor − canary accuracy)` over the horizon,
    /// in accuracy·hours — the headline cost.
    pub accuracy_hours_lost: f64,
    /// Probes that found the canaries below the floor.
    pub breach_probes: usize,
    /// Worst canary accuracy any probe observed.
    pub min_canary_accuracy: f64,
    /// Arrivals answered (outside every recalibration blackout).
    pub served: usize,
    /// Arrivals dropped inside recalibration blackouts.
    pub missed_in_blackout: usize,
}

/// Result of the lifetime policy race.
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeBenchResult {
    /// Physical crossbar rows of the compiled model.
    pub rows: usize,
    /// Crossbar columns (= classes).
    pub cols: usize,
    /// Virtual horizon (seconds).
    pub horizon_s: f64,
    /// Probe cadence (virtual seconds).
    pub probe_s: f64,
    /// The promised canary-accuracy floor.
    pub accuracy_floor: f64,
    /// Arrivals in the traffic trace.
    pub arrivals: usize,
    /// Outcomes in `[canary-triggered, periodic, drift-predictive]`
    /// order.
    pub outcomes: Vec<PolicyOutcome>,
}

impl LifetimeBenchResult {
    fn outcome(&self, name: &str) -> &PolicyOutcome {
        self.outcomes
            .iter()
            .find(|o| o.name == name)
            .expect("all three policies ran")
    }

    /// The reactive baseline (today's `HealthMonitor`).
    pub fn canary(&self) -> &PolicyOutcome {
        self.outcome("canary-triggered")
    }

    /// The blind cadence at the predictive policy's budget.
    pub fn periodic(&self) -> &PolicyOutcome {
        self.outcome("periodic")
    }

    /// The slope-extrapolating policy — the one a deployment would run.
    pub fn predictive(&self) -> &PolicyOutcome {
        self.outcome("drift-predictive")
    }

    /// Accuracy-hours advantage of predictive over periodic (negative =
    /// predictive wins); the CI-gated ceiling.
    pub fn predictive_minus_periodic_accuracy_hours(&self) -> f64 {
        self.predictive().accuracy_hours_lost - self.periodic().accuracy_hours_lost
    }

    /// Periodic-minus-predictive recompile count — pinned at 0 in CI so
    /// the comparison stays budget-fair.
    pub fn recompile_budget_delta(&self) -> i64 {
        self.periodic().recompiles as i64 - self.predictive().recompiles as i64
    }

    /// Requests the deployed (predictive) policy answers per virtual
    /// second — the CI-gated virtual throughput. No wall clock is
    /// involved, so the value is bit-deterministic.
    pub fn served_per_virtual_sec(&self) -> f64 {
        self.predictive().served as f64 / self.horizon_s
    }

    /// The experiment as structured tables.
    pub fn tables(&self) -> Vec<Table> {
        let mut t = Table::new(
            format!(
                "Lifetime policy race — {}x{} model, {:.0} h horizon, floor {:.2}, {} arrivals",
                self.rows,
                self.cols,
                self.horizon_s / 3600.0,
                self.accuracy_floor,
                self.arrivals
            ),
            &[
                "policy",
                "recompiles",
                "acc-hours lost",
                "breach probes",
                "min canary",
                "served",
                "missed",
            ],
        );
        for o in &self.outcomes {
            t.add_row([
                o.name.to_string(),
                o.recompiles.to_string(),
                fixed(o.accuracy_hours_lost, 4),
                o.breach_probes.to_string(),
                fixed(o.min_canary_accuracy, 4),
                o.served.to_string(),
                o.missed_in_blackout.to_string(),
            ]);
        }
        vec![t]
    }

    /// Renders the race as a text table plus the verdict line.
    pub fn render(&self) -> String {
        let mut out = super::common::render_tables(&self.tables());
        out.push_str(&format!(
            "predictive vs periodic at equal budget ({} recompiles): {:+.4} accuracy-hours\n",
            self.predictive().recompiles,
            self.predictive_minus_periodic_accuracy_hours()
        ));
        out
    }

    /// Machine-readable summary (the `BENCH_lifetime.json` payload): the
    /// flat CI-gated fields plus the structured tables. Contains no
    /// wall-clock quantity, so reruns produce byte-identical files.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            concat!(
                "{{\"rows\":{},\"cols\":{},\"horizon_s\":{:.1},\"probe_s\":{:.1},",
                "\"accuracy_floor\":{:.3},\"arrivals\":{},",
                "\"lifetime_served_per_virtual_sec\":{:.6},",
                "\"accuracy_hours_lost_predictive\":{:.6},",
                "\"predictive_minus_periodic_accuracy_hours\":{:.6},",
                "\"lifetime_recompile_budget_delta\":{}"
            ),
            self.rows,
            self.cols,
            self.horizon_s,
            self.probe_s,
            self.accuracy_floor,
            self.arrivals,
            self.served_per_virtual_sec(),
            self.predictive().accuracy_hours_lost,
            self.predictive_minus_periodic_accuracy_hours(),
            self.recompile_budget_delta(),
        );
        for o in &self.outcomes {
            let tag = o.name.replace('-', "_");
            out.push_str(&format!(
                concat!(
                    ",\"recompiles_{tag}\":{},\"accuracy_hours_lost_{tag}\":{:.6},",
                    "\"served_{tag}\":{},\"missed_{tag}\":{},\"min_canary_{tag}\":{:.6}"
                ),
                o.recompiles,
                o.accuracy_hours_lost,
                o.served,
                o.missed_in_blackout,
                o.min_canary_accuracy,
                tag = tag,
            ));
        }
        out.push_str(&format!(
            ",\"tables\":{}}}",
            super::common::tables_to_json(&self.tables())
        ));
        out
    }
}

/// The shared timeline configuration: every policy races the *same*
/// chip (same seed, same mechanisms).
fn lifetime_config() -> LifetimeConfig {
    LifetimeConfig::new(
        LIFETIME_SEED,
        RetentionModel::new(NU_MEAN, NU_SIGMA, TAU_S).expect("valid retention"),
    )
    .expect("valid defaults")
    .with_wear(WearModel::new(WEAR_SIGMA_FRESH, WEAR_ENDURANCE, 1.0).expect("valid wear"))
    .with_temperature(TemperatureProfile::Diurnal {
        base_c: BASE_C,
        peak_c: PEAK_C,
        period_s: DAY_S,
    })
    .expect("valid profile")
    .with_thermal(ThermalModel::new(TEMPCO, TEMPCO_SIGMA, ARRHENIUS).expect("valid thermal"))
    .with_reprogram_window(REPROGRAM_S)
    .expect("valid window")
}

/// Replays one policy over the horizon: probe every [`PROBE_S`], act on
/// a trigger (up to `budget` reprograms), and score the blackout windows
/// against the arrival trace. Pure in its arguments.
fn run_policy(
    fresh: &CompiledModel,
    mut policy: Box<dyn RecalibrationPolicy>,
    budget: Option<u64>,
    arrivals: &[f64],
) -> PolicyOutcome {
    let mut timeline = DeviceTimeline::new(lifetime_config(), fresh.clone());
    let probes = (HORIZON_S / PROBE_S) as usize;
    let mut accuracy_hours_lost = 0.0;
    let mut breach_probes = 0;
    let mut min_canary_accuracy = f64::INFINITY;
    let mut blackouts: Vec<(f64, f64)> = Vec::new();
    for k in 1..=probes {
        let t = k as f64 * PROBE_S;
        let acc = timeline
            .model_at(t)
            .expect("monotone probe times")
            .canary_accuracy()
            .expect("model carries canaries");
        accuracy_hours_lost += (ACCURACY_FLOOR - acc).max(0.0) * PROBE_S / 3600.0;
        if acc < ACCURACY_FLOOR {
            breach_probes += 1;
        }
        min_canary_accuracy = min_canary_accuracy.min(acc);
        let triggered = policy.decide(&PolicyObservation {
            t_s: t,
            canary_accuracy: acc,
            accuracy_floor: ACCURACY_FLOOR,
            since_reprogram_s: t - timeline.last_program_s(),
            reprograms: timeline.reprograms(),
        });
        if triggered && budget.map_or(true, |b| timeline.reprograms() < b) {
            timeline.reprogram(t).expect("monotone reprogram times");
            policy.notify_reprogrammed(t);
            blackouts.push((t, t + REPROGRAM_S));
        }
    }
    let missed_in_blackout = arrivals
        .iter()
        .filter(|&&a| blackouts.iter().any(|&(s, e)| a >= s && a < e))
        .count();
    PolicyOutcome {
        name: policy.name(),
        recompiles: timeline.reprograms(),
        accuracy_hours_lost,
        breach_probes,
        min_canary_accuracy,
        served: arrivals.len() - missed_in_blackout,
        missed_in_blackout,
    }
}

/// Runs the experiment: compile one chip, race the three policies over
/// the same virtual lifetime, score against the same traffic trace.
/// Deterministic end to end.
///
/// # Panics
///
/// Panics only on internal configuration errors (the constants are
/// valid) or if the drift never forces a single recalibration (the
/// constants are tuned so it always does).
pub fn run(scale: &Scale) -> LifetimeBenchResult {
    let (train, test) = scale.dataset(7);
    let weights = scale.gdt().train(&train).expect("training");
    let mapping = RowMapping::identity(weights.rows());
    let env = HardwareEnv::with_sigma(0.4)
        .expect("valid sigma")
        .with_ir_drop(5.0);
    let calibration = test.mean_input();
    let canaries: Vec<Vec<f64>> = (0..CANARIES)
        .map(|k| test.image(k % test.len()).to_vec())
        .collect();
    let fresh = env
        .compiler()
        .with_calibration(&calibration)
        .compile(&weights, &mapping, &mut scale.rng(78))
        .expect("compile")
        .with_canary_inputs(canaries)
        .expect("canary freeze");

    let arrivals: Vec<f64> = TrafficGen::new(
        ArrivalProcess::diurnal_ramp(ARRIVAL_BASE, ARRIVAL_PEAK, DAY_S),
        TRAFFIC_SEED,
    )
    .take_while(|&t| t < HORIZON_S)
    .collect();

    // The predictive policy runs first and sets the recompile budget;
    // the periodic policy then gets the same number of reprograms,
    // spread evenly (its cadence is the horizon divided by the budget,
    // snapped to the probe grid), so the race compares *placement* at
    // equal cost.
    let predictive = run_policy(
        &fresh,
        Box::new(DriftPredictive::new(PREDICT_WINDOW, PREDICT_LEAD_S).expect("valid predictor")),
        None,
        &arrivals,
    );
    let budget = predictive.recompiles;
    assert!(budget > 0, "drift must force at least one recalibration");
    let probes = (HORIZON_S / PROBE_S) as u64;
    let cadence_probes = (probes / budget).max(1);
    let periodic = run_policy(
        &fresh,
        Box::new(Periodic::new(cadence_probes as f64 * PROBE_S).expect("valid cadence")),
        Some(budget),
        &arrivals,
    );
    let canary = run_policy(&fresh, Box::new(CanaryTriggered), None, &arrivals);

    LifetimeBenchResult {
        rows: fresh.rows(),
        cols: fresh.classes(),
        horizon_s: HORIZON_S,
        probe_s: PROBE_S,
        accuracy_floor: ACCURACY_FLOOR,
        arrivals: arrivals.len(),
        outcomes: vec![canary, periodic, predictive],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::chaos::json_field;

    #[test]
    fn lifetime_run_is_deterministic() {
        let a = run(&Scale::bench());
        let b = run(&Scale::bench());
        assert_eq!(a, b, "same seeds must replay the same lifetime");
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn predictive_beats_periodic_at_equal_budget() {
        let r = run(&Scale::bench());
        assert_eq!(r.recompile_budget_delta(), 0, "budgets must match");
        assert!(r.predictive().recompiles > 0);
        assert!(
            r.predictive_minus_periodic_accuracy_hours() < 0.0,
            "predictive must strictly beat periodic: {:+.4}",
            r.predictive_minus_periodic_accuracy_hours()
        );
        // The reactive baseline breaches by construction — it only acts
        // after the floor is gone.
        assert!(r.canary().breach_probes > 0);
        assert!(r.served_per_virtual_sec() > 0.0);
        for o in &r.outcomes {
            assert_eq!(o.served + o.missed_in_blackout, r.arrivals);
        }
    }

    #[test]
    fn json_carries_the_gated_fields() {
        let r = run(&Scale::bench());
        let j = r.to_json();
        for key in [
            "rows",
            "cols",
            "horizon_s",
            "probe_s",
            "accuracy_floor",
            "arrivals",
            "lifetime_served_per_virtual_sec",
            "accuracy_hours_lost_predictive",
            "predictive_minus_periodic_accuracy_hours",
            "lifetime_recompile_budget_delta",
            "recompiles_periodic",
            "accuracy_hours_lost_canary_triggered",
            "served_drift_predictive",
            "tables",
        ] {
            assert!(json_field(&j, key), "missing {key} in {j}");
        }
        assert_eq!(
            crate::gate::extract_number(&j, "lifetime_recompile_budget_delta"),
            Some(0.0),
            "the gate must see a zero budget delta"
        );
    }
}
