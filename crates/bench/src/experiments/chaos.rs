//! Self-healing chaos — the full fault-and-recovery loop under a seeded
//! [`ChaosPlan`] (extension beyond the paper).
//!
//! One run tells the whole reliability story, deterministically:
//!
//! 1. **Compile** a calibrated model with a frozen canary set and score
//!    it (`fresh_accuracy`).
//! 2. **Break it** the way hardware breaks: retention drift plus
//!    stuck-at devices from the plan (`aged_accuracy` drops).
//! 3. **Serve through the storm**: the degraded model serves a traffic
//!    trace while the plan panics worker dispatches mid-drain. The
//!    supervisor requeues and respawns; every accepted request resolves
//!    — `lost_requests` must be **0** and is CI-gated exactly.
//! 4. **Heal**: the health monitor replays the canaries, sees the floor
//!    breach, recompiles with the *same* seed and hot-swaps the fresh
//!    replica into the running scheduler, then serves a second trace.
//!    `recovered_accuracy_delta_pp` (fresh minus recovered, in
//!    percentage points) is CI-gated against a 0.5 pp ceiling — and is
//!    exactly 0.0 here, because a fixed-seed recompile is bit-identical.
//!
//! Everything is drawn from fixed seeds and the scheduler runs in its
//! deterministic configuration, so the result — counts included — is a
//! pure value: the unit test asserts `run == run`.

use std::sync::Arc;
use std::time::Duration;

use vortex_core::amp::greedy::RowMapping;
use vortex_core::pipeline::HardwareEnv;
use vortex_core::report::{fixed, json_string, Table};
use vortex_device::drift::RetentionModel;
use vortex_nn::executor::Parallelism;
use vortex_runtime::CompiledModel;
use vortex_serve::chaos::{ChaosConfig, ChaosPlan};
use vortex_serve::{HealthConfig, HealthMonitor, ProbeOutcome, Scheduler, SchedulerConfig, Ticket};

use super::common::Scale;

/// Chaos-plan master seed.
const CHAOS_SEED: u64 = 2024;
/// Requests per traffic phase (before and after healing).
const TRACE_LEN: usize = 128;
/// Micro-batch ceiling; with `TRACE_LEN` this yields 16 batches a phase.
const MAX_BATCH: usize = 16;
/// Batch window the plan draws its panics and slowdowns from — the first
/// (pre-healing) phase.
const HORIZON: u64 = (TRACE_LEN / MAX_BATCH) as u64;
/// Worker panics injected while the degraded model serves.
const PANICS: usize = 2;
/// Batches served slow.
const SLOW: usize = 1;
/// Stuck-at-off devices injected alongside drift.
const STUCK_CELLS: usize = 8;
/// Retention age applied to the serving model (seconds).
const DRIFT_T_S: f64 = 1e8;
/// Canary probes frozen into the model.
const CANARIES: usize = 24;
/// Canary-accuracy floor that triggers recalibration.
const ACCURACY_FLOOR: f64 = 1.0;

/// Result of the self-healing chaos experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosBenchResult {
    /// Physical crossbar rows of the compiled model.
    pub rows: usize,
    /// Crossbar columns (= classes).
    pub cols: usize,
    /// Requests accepted across both traffic phases.
    pub accepted: usize,
    /// Requests answered with a prediction.
    pub answered: usize,
    /// Requests answered with a typed error (e.g. a double worker crash).
    pub typed_errors: usize,
    /// Accepted requests that never resolved — the zero-loss invariant,
    /// gated exactly in CI.
    pub lost_requests: usize,
    /// Injected worker panics that actually fired.
    pub panics: usize,
    /// Test accuracy of the fresh compile.
    pub fresh_accuracy: f64,
    /// Test accuracy after drift + stuck-at faults.
    pub aged_accuracy: f64,
    /// Test accuracy of the model serving after the hot swap.
    pub recovered_accuracy: f64,
    /// Canary accuracy that triggered healing (below the floor).
    pub canary_before: f64,
    /// Canary accuracy of the hot-swapped replacement.
    pub canary_after: f64,
    /// Whether the monitor actually recompiled and swapped.
    pub swapped: bool,
}

impl ChaosBenchResult {
    /// Fresh-minus-recovered test accuracy in percentage points — the
    /// CI-gated ceiling metric (0.0 when the fixed-seed recompile is
    /// bit-identical to the original).
    pub fn recovered_accuracy_delta_pp(&self) -> f64 {
        (self.fresh_accuracy - self.recovered_accuracy) * 100.0
    }

    /// The experiment as structured tables.
    pub fn tables(&self) -> Vec<Table> {
        let mut t = Table::new(
            format!(
                "Self-healing chaos — {}x{} model, {} requests, {} injected panics",
                self.rows, self.cols, self.accepted, self.panics
            ),
            &["outcome", "requests"],
        );
        t.add_row(["accepted".to_string(), self.accepted.to_string()]);
        t.add_row(["answered".to_string(), self.answered.to_string()]);
        t.add_row(["typed errors".to_string(), self.typed_errors.to_string()]);
        t.add_row(["lost".to_string(), self.lost_requests.to_string()]);
        let mut a = Table::new(
            "Recovery — canary-triggered recompile and hot swap".to_string(),
            &["stage", "test accuracy", "canary accuracy"],
        );
        a.add_row([
            "fresh".to_string(),
            fixed(self.fresh_accuracy, 4),
            "1.0000".to_string(),
        ]);
        a.add_row([
            "aged (drift + stuck cells)".to_string(),
            fixed(self.aged_accuracy, 4),
            fixed(self.canary_before, 4),
        ]);
        a.add_row([
            "recovered (hot-swapped)".to_string(),
            fixed(self.recovered_accuracy, 4),
            fixed(self.canary_after, 4),
        ]);
        vec![t, a]
    }

    /// Renders the experiment as text tables plus a summary line.
    pub fn render(&self) -> String {
        let mut out = super::common::render_tables(&self.tables());
        out.push_str(&format!(
            "lost {} of {} accepted; recovered within {:.3} pp of fresh\n",
            self.lost_requests,
            self.accepted,
            self.recovered_accuracy_delta_pp()
        ));
        out
    }

    /// Machine-readable summary (the `BENCH_chaos.json` payload): the
    /// flat CI-gated fields plus the structured tables.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"rows\":{},\"cols\":{},\"accepted\":{},\"answered\":{},",
                "\"typed_errors\":{},\"lost_requests\":{},\"panics\":{},",
                "\"fresh_accuracy\":{:.6},\"aged_accuracy\":{:.6},",
                "\"recovered_accuracy\":{:.6},",
                "\"recovered_accuracy_delta_pp\":{:.6},",
                "\"canary_before\":{:.6},\"canary_after\":{:.6},",
                "\"swapped\":{},\"tables\":{}}}"
            ),
            self.rows,
            self.cols,
            self.accepted,
            self.answered,
            self.typed_errors,
            self.lost_requests,
            self.panics,
            self.fresh_accuracy,
            self.aged_accuracy,
            self.recovered_accuracy,
            self.recovered_accuracy_delta_pp(),
            self.canary_before,
            self.canary_after,
            self.swapped,
            super::common::tables_to_json(&self.tables()),
        )
    }
}

/// Validates a JSON fragment claim used by the tests.
pub fn json_field(json: &str, key: &str) -> bool {
    json.contains(&format!("{}:", json_string(key)))
}

/// Drains one prefilled traffic phase through the scheduler, counting
/// answered predictions and typed errors. The queue is built paused so
/// batch composition — and with it every chaos trigger — is
/// deterministic.
fn serve_phase(scheduler: &Scheduler, trace: &[Vec<f64>]) -> (usize, usize, usize) {
    scheduler.pause();
    let mut accepted = 0usize;
    let tickets: Vec<Ticket> = trace
        .iter()
        .map(|x| {
            accepted += 1;
            scheduler
                .try_submit(x.clone(), None)
                .expect("prefill fits the queue")
        })
        .collect();
    scheduler.resume();
    let mut answered = 0usize;
    let mut typed_errors = 0usize;
    for ticket in tickets {
        match ticket.wait() {
            Ok(_) => answered += 1,
            Err(_) => typed_errors += 1,
        }
    }
    (accepted, answered, typed_errors)
}

/// Runs the experiment: compile → break → serve through panics → heal →
/// serve again. Deterministic end to end.
///
/// # Panics
///
/// Panics only on internal configuration errors (the defaults are valid).
pub fn run(scale: &Scale) -> ChaosBenchResult {
    let (train, test) = scale.dataset(7);
    let weights = scale.gdt().train(&train).expect("training");
    let mapping = RowMapping::identity(weights.rows());
    let env = HardwareEnv::with_sigma(0.4)
        .expect("valid sigma")
        .with_ir_drop(5.0);
    let calibration = test.mean_input();
    let canaries: Vec<Vec<f64>> = (0..CANARIES)
        .map(|k| test.image(k % test.len()).to_vec())
        .collect();

    // The deterministic compile path, reused verbatim by the recompile
    // hook: same seed, same substrate, bit-identical model.
    let compile_fresh = {
        let (env, weights, mapping) = (env, weights.clone(), mapping.clone());
        let (calibration, canaries) = (calibration.clone(), canaries.clone());
        let seed_rng = scale.rng(77);
        move || -> CompiledModel {
            env.compiler()
                .with_calibration(&calibration)
                .compile(&weights, &mapping, &mut seed_rng.clone())
                .expect("compile")
                .with_canary_inputs(canaries.clone())
                .expect("canary freeze")
        }
    };

    let fresh = compile_fresh();
    let fresh_accuracy = fresh.accuracy(&test).expect("fresh scoring");

    let plan = ChaosPlan::generate(
        &ChaosConfig::new(CHAOS_SEED, fresh.rows(), fresh.classes())
            .with_horizon(HORIZON)
            .with_worker_panics(PANICS)
            .with_slow_batches(SLOW, Duration::from_micros(500))
            .with_stuck_cells(STUCK_CELLS, 0.0)
            .with_drift(DRIFT_T_S),
    );
    let (t_s, drift_seed) = plan.drift().expect("plan carries drift");
    let retention = RetentionModel::new(0.6, 0.3, 1e-3).expect("retention model");
    let aged = fresh
        .age_with(&retention, t_s, drift_seed)
        .expect("aging")
        .with_cell_faults(plan.cell_faults())
        .expect("stuck cells");
    let aged_accuracy = aged.accuracy(&test).expect("aged scoring");

    let scheduler = Arc::new(
        Scheduler::with_chaos(
            Arc::new(aged),
            None,
            SchedulerConfig::new(Parallelism::Fixed(1))
                .with_queue_capacity(TRACE_LEN)
                .with_batching(MAX_BATCH, Duration::ZERO)
                .with_respawn_backoff(Duration::ZERO, Duration::ZERO)
                .paused(),
            Some(plan.clone()),
        )
        .expect("valid scheduler config"),
    );
    let trace: Vec<Vec<f64>> = (0..TRACE_LEN)
        .map(|k| test.image(k % test.len()).to_vec())
        .collect();

    // Phase one: the degraded model serves while the plan panics workers
    // mid-drain. The supervisor requeues and respawns; nothing is lost.
    let (accepted1, answered1, errors1) = serve_phase(&scheduler, &trace);
    let panics = plan
        .panic_batches()
        .iter()
        .filter(|&&seq| seq < scheduler.batches_dispatched())
        .count();

    // Heal: canary breach → fixed-seed recompile → hot swap, while the
    // scheduler keeps running.
    let canary_before = scheduler
        .primary()
        .canary_accuracy()
        .expect("canary replay");
    let monitor = HealthMonitor::new(
        Arc::clone(&scheduler),
        HealthConfig::new(ACCURACY_FLOOR, Duration::from_millis(50)).expect("valid floor"),
        move || Ok(Arc::new(compile_fresh())),
    );
    let (canary_after, swapped) = match monitor.probe().expect("probe") {
        ProbeOutcome::Recovered { after, .. } => (after, true),
        ProbeOutcome::Healthy { canary_accuracy }
        | ProbeOutcome::RecompileFailed {
            canary_accuracy, ..
        } => (canary_accuracy, false),
    };

    // Phase two: traffic against the hot-swapped replica (the plan's
    // horizon is behind us, so this phase runs clean).
    let (accepted2, answered2, errors2) = serve_phase(&scheduler, &trace);
    let recovered_accuracy = scheduler
        .primary()
        .accuracy(&test)
        .expect("recovered scoring");

    let accepted = accepted1 + accepted2;
    let answered = answered1 + answered2;
    let typed_errors = errors1 + errors2;
    ChaosBenchResult {
        rows: scheduler.primary().rows(),
        cols: scheduler.primary().classes(),
        accepted,
        answered,
        typed_errors,
        lost_requests: accepted - answered - typed_errors,
        panics,
        fresh_accuracy,
        aged_accuracy,
        recovered_accuracy,
        canary_before,
        canary_after,
        swapped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_run_loses_nothing_and_recovers_exactly() {
        let r = run(&Scale::bench());
        assert_eq!(r.accepted, 2 * TRACE_LEN);
        assert_eq!(r.lost_requests, 0, "accepted requests must all resolve");
        assert_eq!(r.answered + r.typed_errors, r.accepted);
        assert_eq!(r.panics, PANICS, "every planned panic fires");
        assert!(
            r.canary_before < 1.0,
            "drift must break the canaries (got {})",
            r.canary_before
        );
        assert!(r.swapped, "the monitor must recompile and swap");
        assert_eq!(r.canary_after, 1.0, "a fixed-seed recompile is perfect");
        assert_eq!(
            r.recovered_accuracy_delta_pp(),
            0.0,
            "bit-identical recompile ⇒ zero accuracy delta"
        );
        assert!(r.recovered_accuracy_delta_pp() <= 0.5, "CI ceiling");
    }

    #[test]
    fn chaos_run_is_deterministic() {
        assert_eq!(run(&Scale::bench()), run(&Scale::bench()));
    }

    #[test]
    fn render_and_json_carry_the_gated_fields() {
        let r = run(&Scale::bench());
        let s = r.render();
        assert!(s.contains("Self-healing chaos"));
        assert!(s.contains("Recovery"));
        let j = r.to_json();
        for key in [
            "rows",
            "cols",
            "accepted",
            "answered",
            "typed_errors",
            "lost_requests",
            "panics",
            "fresh_accuracy",
            "aged_accuracy",
            "recovered_accuracy",
            "recovered_accuracy_delta_pp",
            "canary_before",
            "canary_after",
            "swapped",
            "tables",
        ] {
            assert!(json_field(&j, key), "missing {key} in {j}");
        }
        assert_eq!(
            crate::gate::extract_number(&j, "lost_requests"),
            Some(0.0),
            "the gate must see zero lost requests"
        );
    }
}
