//! Fleet serving — ensemble-vs-single accuracy, tail latency under
//! open-loop load, and goodput under overload (extension beyond the
//! paper).
//!
//! Three measurements, three determinism regimes:
//!
//! * **Ensemble accuracy** — five replicas compiled from distinct
//!   variation seeds
//!   ([`ModelCompiler::compile_replicas`](vortex_core::pipeline::ModelCompiler::compile_replicas))
//!   classify a
//!   dedicated evaluation set at each sigma; the per-sample majority
//!   vote is scored against every single chip. A deliberately large
//!   eval set (600 samples at every scale) keeps the *best single chip*
//!   an honest baseline: with a small set the max over five chips is
//!   mostly binomial luck. Pure seeded computation — bit-identical on
//!   every run. CI gates `ensemble_accuracy_delta_pp` (best single
//!   minus ensemble, percentage points, worst case over sigma ≥ 0.3)
//!   with a ceiling of 0: the vote must beat every chip once variation
//!   dominates.
//! * **Tail latency / goodput under load** — a virtual-time
//!   discrete-event simulation: seeded arrivals from
//!   [`traffic`](crate::traffic) (Poisson at 1×, a square-wave 2×
//!   overload burst), the *real* [`Router`] deciding placement (the
//!   same code path live serving runs), and five single-server queues
//!   with micro-batching at fixed virtual service costs. No wall clock
//!   anywhere, so p50/p99/p999, shed rates and per-tenant goodput are
//!   bit-identical on every run — the experiment's tables are a pure
//!   function of the seed.
//! * **Measured goodput** — the one wall-clock number: a real five
//!   replica [`Fleet`] on the process worker pool drains a prefilled
//!   backlog, metered exactly like the `serve` experiment. Gated as
//!   `fleet_goodput_samples_per_sec` with the usual noise margin; it is
//!   a flat JSON field only, never a table cell, so the determinism
//!   contract on tables holds.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use vortex_core::amp::greedy::RowMapping;
use vortex_core::pipeline::HardwareEnv;
use vortex_core::report::{fixed, Table};
use vortex_fleet::ensemble::ensemble_accuracy;
use vortex_fleet::routing::{Router, RoutingPolicy};
use vortex_fleet::{Fleet, FleetConfig};
use vortex_nn::dataset::{DatasetConfig, SynthDigits};
use vortex_nn::executor::Parallelism;
use vortex_runtime::CompiledModel;
use vortex_serve::{SchedulerConfig, Ticket};

use super::common::Scale;
use crate::traffic::{ArrivalProcess, Request, Tenant, Workload};

/// Replicas in the fleet — five distinct simulated chips.
pub const REPLICAS: usize = 5;
/// Sigma grid of the accuracy sweep; the delta gate covers ≥ 0.3.
pub const SIGMAS: [f64; 3] = [0.15, 0.30, 0.45];
/// Eval samples per class (600 total): large enough that the best
/// single chip is signal, not max-order-statistic luck.
const EVAL_PER_CLASS: usize = 60;
/// Fabrication-seed stream tag for the replica compiles.
const REPLICA_SEED_TAG: u64 = 0xF1EE7;

// ---- virtual-time simulation constants (virtual seconds) ----
/// Fixed per-batch dispatch overhead.
const T_BATCH: f64 = 4.0e-4;
/// Fixed per-sample service cost.
const T_SAMPLE: f64 = 1.0e-4;
/// Micro-batch ceiling of a simulated replica.
const SIM_MAX_BATCH: usize = 16;
/// Per-replica queue capacity; arrivals beyond it are shed.
const SIM_QUEUE_CAP: usize = 64;
/// 1× offered load, arrivals/s — 70% of the fleet's 40 000/s ceiling
/// (five replicas × 16 samples per 2 ms batch).
const RATE_1X: f64 = 28_000.0;
/// Burst-window offered load of the overload scenario — 2× the ceiling.
const RATE_BURST: f64 = 80_000.0;
/// Burst cycle length and in-burst fraction.
const BURST_PERIOD: f64 = 0.25;
const BURST_FRACTION: f64 = 0.3;
/// Virtual horizon of each scenario.
const HORIZON: f64 = 0.5;
/// Arrival-trace seed (independent of the scale's model seed).
const TRAFFIC_SEED: u64 = 0x70AD;
/// Interactive tenant deadline — 8 virtual ms, tight enough that a
/// burst-deep queue (the cap bounds sojourn near 10 ms) blows it: under
/// overload the interactive tenant loses goodput to *lateness*, not
/// just shedding, while the batch tenant's 200 ms budget absorbs the
/// queueing.
const DEADLINE_INTERACTIVE: f64 = 0.008;
/// Batch tenant deadline — 200 virtual ms.
const DEADLINE_BATCH: f64 = 0.200;

/// Requests per metered wall-clock drain pass.
const METER_TRACE: usize = 320;

/// One sigma row of the accuracy sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyRow {
    /// Programming-noise sigma.
    pub sigma: f64,
    /// Every replica's accuracy, fleet order.
    pub singles: Vec<f64>,
    /// The best single chip.
    pub best: f64,
    /// The 5-chip majority vote.
    pub ensemble: f64,
}

impl AccuracyRow {
    /// Mean single-chip accuracy.
    pub fn mean_single(&self) -> f64 {
        self.singles.iter().sum::<f64>() / self.singles.len().max(1) as f64
    }

    /// `best single − ensemble`, percentage points (≤ 0 = vote wins).
    pub fn delta_pp(&self) -> f64 {
        (self.best - self.ensemble) * 100.0
    }
}

/// One (policy, scenario) row of the virtual-time simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRow {
    /// Routing policy name.
    pub policy: &'static str,
    /// Offered arrivals over the horizon.
    pub arrivals: usize,
    /// Arrivals shed at a full replica queue.
    pub shed: usize,
    /// Completions inside their tenant deadline.
    pub on_time: usize,
    /// Latency percentiles over completions, virtual milliseconds.
    pub p50_ms: f64,
    /// 99th percentile, virtual milliseconds.
    pub p99_ms: f64,
    /// 99.9th percentile, virtual milliseconds.
    pub p999_ms: f64,
    /// Per-tenant `(arrivals, on-time)` in tenant order.
    pub tenant_on_time: Vec<(usize, usize)>,
}

impl SimRow {
    /// On-time completions as a share of *offered* load, percent —
    /// shed requests count against goodput.
    pub fn goodput_pct(&self) -> f64 {
        100.0 * self.on_time as f64 / self.arrivals.max(1) as f64
    }

    /// Shed share of offered load, percent.
    pub fn shed_pct(&self) -> f64 {
        100.0 * self.shed as f64 / self.arrivals.max(1) as f64
    }
}

/// Result of the fleet experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetResult {
    /// Replicas per fleet.
    pub replicas: usize,
    /// Eval samples behind the accuracy sweep.
    pub eval_samples: usize,
    /// The accuracy sweep, one row per sigma.
    pub accuracy: Vec<AccuracyRow>,
    /// 1× Poisson simulation, one row per routing policy.
    pub load_1x: Vec<SimRow>,
    /// 2× overload-burst simulation, one row per routing policy.
    pub load_2x: Vec<SimRow>,
    /// Tenant names, in the order `SimRow::tenant_on_time` uses.
    pub tenants: Vec<&'static str>,
    /// Measured wall-clock fleet goodput, samples/sec (flat field only —
    /// never in a table).
    pub goodput_sps: f64,
}

impl FleetResult {
    /// Worst-case `best single − ensemble` (pp) over sigma ≥ 0.3 — the
    /// gated ceiling key: ≤ 0 means the vote beats every chip wherever
    /// variation dominates.
    pub fn ensemble_accuracy_delta_pp(&self) -> f64 {
        self.accuracy
            .iter()
            .filter(|r| r.sigma >= 0.3)
            .map(AccuracyRow::delta_pp)
            .fold(f64::MIN, f64::max)
    }

    /// The high-sigma accuracy row (the headline comparison).
    fn high_sigma(&self) -> &AccuracyRow {
        self.accuracy.last().expect("non-empty sigma grid")
    }

    /// The least-loaded overload row (the headline tail).
    fn overload_headline(&self) -> &SimRow {
        self.load_2x
            .iter()
            .find(|r| r.policy == "least_loaded")
            .expect("least_loaded runs in every scenario")
    }

    /// The experiment as structured tables.
    pub fn tables(&self) -> Vec<Table> {
        let mut acc = Table::new(
            format!(
                "Ensemble vs single chip — {} replicas, {}-sample eval",
                self.replicas, self.eval_samples
            ),
            &["sigma", "worst", "mean", "best", "ensemble", "delta pp"],
        );
        for row in &self.accuracy {
            let worst = row.singles.iter().cloned().fold(f64::MAX, f64::min);
            acc.add_row([
                fixed(row.sigma, 2),
                fixed(worst, 3),
                fixed(row.mean_single(), 3),
                fixed(row.best, 3),
                fixed(row.ensemble, 3),
                fixed(row.delta_pp(), 1),
            ]);
        }
        let sim_table = |title: String, rows: &[SimRow]| {
            let mut t = Table::new(
                title,
                &[
                    "policy",
                    "arrivals",
                    "shed %",
                    "p50 ms",
                    "p99 ms",
                    "p999 ms",
                    "goodput %",
                ],
            );
            for r in rows {
                t.add_row([
                    r.policy.to_string(),
                    r.arrivals.to_string(),
                    fixed(r.shed_pct(), 1),
                    fixed(r.p50_ms, 2),
                    fixed(r.p99_ms, 2),
                    fixed(r.p999_ms, 2),
                    fixed(r.goodput_pct(), 1),
                ]);
            }
            t
        };
        let one_x = sim_table(
            format!(
                "Virtual-time tail latency — 1x Poisson ({:.0}/s over {:.1}s, {} replicas)",
                RATE_1X, HORIZON, self.replicas
            ),
            &self.load_1x,
        );
        let two_x = sim_table(
            format!(
                "Goodput under overload — 2x burst ({:.0}/s for {:.0}% of each {:.2}s cycle)",
                RATE_BURST,
                BURST_FRACTION * 100.0,
                BURST_PERIOD
            ),
            &self.load_2x,
        );
        let mut tenants = Table::new(
            "Per-tenant on-time share under the 2x burst".to_string(),
            &["policy", "tenant", "arrivals", "on-time %"],
        );
        for row in &self.load_2x {
            for (i, &(arrived, on_time)) in row.tenant_on_time.iter().enumerate() {
                tenants.add_row([
                    row.policy.to_string(),
                    self.tenants[i].to_string(),
                    arrived.to_string(),
                    fixed(100.0 * on_time as f64 / arrived.max(1) as f64, 1),
                ]);
            }
        }
        vec![acc, one_x, two_x, tenants]
    }

    /// Renders the experiment as text tables plus a summary line.
    pub fn render(&self) -> String {
        let mut out = super::common::render_tables(&self.tables());
        let high = self.high_sigma();
        out.push_str(&format!(
            "sigma {:.2}: 5-chip vote {:.3} vs best single {:.3} ({:+.1} pp); measured fleet goodput {:.0} samples/s\n",
            high.sigma,
            high.ensemble,
            high.best,
            -high.delta_pp(),
            self.goodput_sps
        ));
        out
    }

    /// Machine-readable summary (the `BENCH_fleet.json` payload): flat
    /// gated fields plus the structured tables.
    pub fn to_json(&self) -> String {
        let high = self.high_sigma();
        let over = self.overload_headline();
        format!(
            concat!(
                "{{\"replicas\":{},\"eval_samples\":{},",
                "\"best_single_accuracy\":{:.4},\"ensemble_accuracy\":{:.4},",
                "\"ensemble_accuracy_delta_pp\":{:.2},",
                "\"fleet_goodput_samples_per_sec\":{:.3},",
                "\"p999_overload_ms\":{:.3},\"goodput_overload_pct\":{:.2},",
                "\"shed_overload_pct\":{:.2},\"tables\":{}}}"
            ),
            self.replicas,
            self.eval_samples,
            high.best,
            high.ensemble,
            self.ensemble_accuracy_delta_pp(),
            self.goodput_sps,
            over.p999_ms,
            over.goodput_pct(),
            over.shed_pct(),
            super::common::tables_to_json(&self.tables()),
        )
    }
}

/// The tenant mix every scenario runs: latency-sensitive interactive
/// traffic over a best-effort batch floor.
fn tenant_mix() -> Vec<Tenant> {
    vec![
        Tenant {
            name: "interactive",
            weight: 4.0,
            deadline: Some(DEADLINE_INTERACTIVE),
        },
        Tenant {
            name: "batch",
            weight: 1.0,
            deadline: Some(DEADLINE_BATCH),
        },
    ]
}

/// One simulated replica: a single server with micro-batching at fixed
/// virtual costs behind a bounded queue.
struct SimReplica {
    busy_until: f64,
    queue: VecDeque<Request>,
}

/// A completed request: when it finished and whether it made its
/// deadline.
struct Completion {
    latency: f64,
    on_time: bool,
    tenant: usize,
}

impl SimReplica {
    fn new() -> Self {
        Self {
            busy_until: 0.0,
            queue: VecDeque::new(),
        }
    }

    /// Runs every batch that *starts* before virtual time `t`. The
    /// server is non-idling: whenever it frees up it takes whatever has
    /// arrived (up to [`SIM_MAX_BATCH`]); requests arriving mid-batch
    /// wait for the next one.
    fn advance(&mut self, t: f64, completions: &mut Vec<Completion>) {
        while let Some(head) = self.queue.front() {
            let start = self.busy_until.max(head.time);
            if start >= t {
                break;
            }
            let batch = self
                .queue
                .iter()
                .take(SIM_MAX_BATCH)
                .take_while(|r| r.time <= start)
                .count();
            let done = start + T_BATCH + batch as f64 * T_SAMPLE;
            for _ in 0..batch {
                let req = self.queue.pop_front().expect("counted above");
                completions.push(Completion {
                    latency: done - req.time,
                    on_time: req.deadline.map_or(true, |d| done <= d),
                    tenant: req.tenant,
                });
            }
            self.busy_until = done;
        }
    }
}

/// Exact percentile over a sorted slice (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Replays one arrival trace through the real [`Router`] and the
/// virtual-time replicas. Everything is a pure function of the trace
/// and the policy — no wall clock, no threads.
fn simulate(policy: RoutingPolicy, name: &'static str, trace: &[Request]) -> SimRow {
    let router = Router::new(policy, REPLICAS).expect("non-empty fleet");
    let routable = vec![true; REPLICAS];
    let mut replicas: Vec<SimReplica> = (0..REPLICAS).map(|_| SimReplica::new()).collect();
    let mut completions = Vec::with_capacity(trace.len());
    let mut shed = 0usize;
    let mut tenant_counts = vec![(0usize, 0usize); tenant_mix().len()];
    for (i, req) in trace.iter().enumerate() {
        for r in &mut replicas {
            r.advance(req.time, &mut completions);
        }
        let depths: Vec<usize> = replicas.iter().map(|r| r.queue.len()).collect();
        let target = router
            .route(i as u64, &routable, &depths)
            .expect("all replicas routable");
        tenant_counts[req.tenant].0 += 1;
        if replicas[target].queue.len() >= SIM_QUEUE_CAP {
            shed += 1;
        } else {
            replicas[target].queue.push_back(req.clone());
        }
    }
    for r in &mut replicas {
        r.advance(f64::INFINITY, &mut completions);
    }
    let mut latencies: Vec<f64> = completions.iter().map(|c| c.latency).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mut on_time = 0usize;
    for c in &completions {
        if c.on_time {
            on_time += 1;
            tenant_counts[c.tenant].1 += 1;
        }
    }
    SimRow {
        policy: name,
        arrivals: trace.len(),
        shed,
        on_time,
        p50_ms: 1e3 * percentile(&latencies, 50.0),
        p99_ms: 1e3 * percentile(&latencies, 99.0),
        p999_ms: 1e3 * percentile(&latencies, 99.9),
        tenant_on_time: tenant_counts,
    }
}

/// Collects one open-loop trace and runs it under every routing policy.
fn simulate_scenario(process: ArrivalProcess) -> Vec<SimRow> {
    let trace: Vec<Request> = Workload::new(process, tenant_mix(), TRAFFIC_SEED)
        .take_while(|r| r.time < HORIZON)
        .collect();
    [
        (RoutingPolicy::RoundRobin, "round_robin"),
        (RoutingPolicy::ConsistentHash, "consistent_hash"),
        (RoutingPolicy::LeastLoaded, "least_loaded"),
    ]
    .into_iter()
    .map(|(policy, name)| simulate(policy, name, &trace))
    .collect()
}

/// Meters the real fleet as repeated pure queue drains (the `serve`
/// experiment's meter, fleet-wide): prefill every paused replica round
/// robin, then time `resume_all()` → last response.
fn meter_fleet(models: &[(u64, Arc<CompiledModel>)], trace: &[Vec<f64>]) -> f64 {
    let floor_s = 0.15;
    let mut drained_s = 0.0;
    let mut served = 0usize;
    while drained_s < floor_s {
        let fleet = Fleet::new(
            models.to_vec(),
            FleetConfig::new(RoutingPolicy::RoundRobin).with_scheduler(
                SchedulerConfig::new(Parallelism::Fixed(1))
                    .with_queue_capacity(trace.len())
                    .with_batching(SIM_MAX_BATCH, Duration::ZERO)
                    .paused(),
            ),
        )
        .expect("replicas share one shape");
        let tickets: Vec<Ticket> = trace
            .iter()
            .enumerate()
            .map(|(k, x)| {
                fleet
                    .submit(k as u64, x.clone(), None)
                    .expect("prefill fits the queues")
                    .1
            })
            .collect();
        let start = Instant::now();
        fleet.resume_all();
        for ticket in tickets.into_iter().rev() {
            ticket.wait().expect("drain answers every request");
        }
        drained_s += start.elapsed().as_secs_f64();
        served += trace.len();
        fleet.shutdown();
    }
    served as f64 / drained_s
}

/// Runs the experiment: accuracy sweep, virtual-time load scenarios,
/// then the measured fleet drain.
///
/// # Panics
///
/// Panics only on internal configuration errors (the defaults are valid).
pub fn run(scale: &Scale) -> FleetResult {
    // One trained model; every replica is a different fabrication of it.
    // The trainer gets an epoch floor independent of the scale: a
    // half-trained model's mistakes are *shared* by every replica, and
    // no amount of voting fixes correlated errors. Training the side-7
    // model out properly is cheap and leaves the residual errors
    // variation-dominated — the regime the ensemble claim is about.
    let (train, _) = scale.dataset(7);
    let mut trainer = scale.gdt();
    trainer.epochs = trainer.epochs.max(30);
    let weights = trainer.train(&train).expect("training");
    let mapping = RowMapping::identity(weights.rows());
    // The dedicated eval set: fixed 600 samples at every scale, so the
    // best-single baseline measures chips, not sampling luck.
    let eval = SynthDigits::generate(
        &DatasetConfig {
            samples_per_class: EVAL_PER_CLASS,
            ..DatasetConfig::paper()
        },
        scale.seed ^ 0x5CA1E,
    )
    .expect("valid dataset config")
    .downsample(4)
    .expect("7 divides 28");

    let base_seed = scale.rng(REPLICA_SEED_TAG).next_u64();
    let mut accuracy = Vec::with_capacity(SIGMAS.len());
    let mut high_sigma_models: Vec<(u64, Arc<CompiledModel>)> = Vec::new();
    for &sigma in &SIGMAS {
        let env = HardwareEnv::with_sigma(sigma)
            .expect("valid sigma")
            .with_ir_drop(5.0);
        let compiler = env.compiler().with_calibration(&eval.mean_input());
        let replicas = compiler
            .compile_replicas(&weights, &mapping, base_seed, REPLICAS)
            .expect("compilation");
        let singles: Vec<f64> = replicas
            .iter()
            .map(|(_, m)| m.accuracy(&eval).expect("eval read"))
            .collect();
        let refs: Vec<&CompiledModel> = replicas.iter().map(|(_, m)| m).collect();
        let ensemble = ensemble_accuracy(&refs, &eval).expect("eval read");
        let best = singles.iter().cloned().fold(f64::MIN, f64::max);
        accuracy.push(AccuracyRow {
            sigma,
            singles,
            best,
            ensemble,
        });
        high_sigma_models = replicas
            .into_iter()
            .map(|(seed, m)| (seed, Arc::new(m)))
            .collect();
    }

    let load_1x = simulate_scenario(ArrivalProcess::poisson(RATE_1X));
    let load_2x = simulate_scenario(ArrivalProcess::poisson_burst(
        RATE_1X,
        RATE_BURST,
        BURST_PERIOD,
        BURST_FRACTION,
    ));

    let meter_trace: Vec<Vec<f64>> = (0..METER_TRACE)
        .map(|k| eval.image(k % eval.len()).to_vec())
        .collect();
    let goodput_sps = meter_fleet(&high_sigma_models, &meter_trace);

    FleetResult {
        replicas: REPLICAS,
        eval_samples: eval.len(),
        accuracy,
        load_1x,
        load_2x,
        tenants: tenant_mix().iter().map(|t| t.name).collect(),
        goodput_sps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::serve::json_field;

    #[test]
    fn ensemble_beats_every_single_chip_at_high_sigma() {
        let r = run(&Scale::bench());
        for row in r.accuracy.iter().filter(|row| row.sigma >= 0.3) {
            assert!(
                row.ensemble >= row.best,
                "sigma {}: vote {:.3} below best single {:.3}",
                row.sigma,
                row.ensemble,
                row.best
            );
        }
        assert!(r.ensemble_accuracy_delta_pp() <= 0.0);
        assert_eq!(r.eval_samples, 600);
    }

    #[test]
    fn virtual_tables_are_bit_identical_across_runs() {
        let scale = Scale::bench();
        let a = run(&scale);
        let b = run(&scale);
        // Everything but the wall-clock goodput field is a pure
        // function of the seed — including every table cell.
        assert_eq!(
            super::super::common::tables_to_json(&a.tables()),
            super::super::common::tables_to_json(&b.tables())
        );
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.load_1x, b.load_1x);
        assert_eq!(a.load_2x, b.load_2x);
    }

    #[test]
    fn overload_sheds_and_stretches_the_tail() {
        let r = run(&Scale::bench());
        for (one, two) in r.load_1x.iter().zip(&r.load_2x) {
            assert_eq!(one.policy, two.policy);
            assert!(one.p50_ms <= one.p99_ms && one.p99_ms <= one.p999_ms);
            assert!(
                two.shed + 50 > one.shed,
                "{}: overload should shed at least as much",
                one.policy
            );
            assert!(one.goodput_pct() > 95.0, "{} healthy at 1x", one.policy);
            assert!(
                two.goodput_pct() < one.goodput_pct(),
                "{}: overload must cost goodput",
                two.policy
            );
        }
        // Balancing by live depth beats blind rotation when the load is
        // bursty.
        let rr = &r.load_2x[0];
        let ll = r.overload_headline();
        assert!(ll.goodput_pct() >= rr.goodput_pct());
    }

    #[test]
    fn render_and_json_carry_the_gated_fields() {
        let r = run(&Scale::bench());
        assert!(r.goodput_sps > 0.0);
        let s = r.render();
        assert!(s.contains("Ensemble vs single chip"));
        assert!(s.contains("Goodput under overload"));
        let j = r.to_json();
        for key in [
            "replicas",
            "eval_samples",
            "best_single_accuracy",
            "ensemble_accuracy",
            "ensemble_accuracy_delta_pp",
            "fleet_goodput_samples_per_sec",
            "p999_overload_ms",
            "goodput_overload_pct",
            "shed_overload_pct",
            "tables",
        ] {
            assert!(json_field(&j, key), "missing {key} in {j}");
        }
    }
}
