//! Fig. 4 — the variation-tolerance vs training-rate tradeoff of VAT
//! (§4.1.2).
//!
//! Sweeping the penalty scale γ from 0 to 1: the training rate falls
//! monotonically (tighter constraints), the no-variation test rate falls
//! gently, and the *with-variation* test rate rises to an interior peak
//! before the penalty's disturbance dominates.

use vortex_core::amp::greedy::RowMapping;
use vortex_core::pipeline::{evaluate_hardware_with, HardwareEnv};
use vortex_core::report::{fixed, pct, Table};
use vortex_nn::executor::Parallelism;
use vortex_nn::metrics::accuracy_of_weights;

use super::common::Scale;

/// One γ point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Point {
    /// Penalty scale γ.
    pub gamma: f64,
    /// Fraction of training samples fitted.
    pub training_rate: f64,
    /// Test rate with no device variation (software evaluation).
    pub test_rate_without_variation: f64,
    /// Mean hardware test rate under variation.
    pub test_rate_with_variation: f64,
}

/// Full Fig. 4 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Result {
    /// Sweep points in γ order.
    pub points: Vec<Fig4Point>,
    /// The device-variation σ used.
    pub sigma: f64,
}

impl Fig4Result {
    /// The γ with the best with-variation test rate.
    pub fn best_gamma(&self) -> f64 {
        self.points
            .iter()
            .max_by(|a, b| {
                a.test_rate_with_variation
                    .partial_cmp(&b.test_rate_with_variation)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map_or(0.0, |p| p.gamma)
    }

    /// The figure as a structured table.
    pub fn tables(&self) -> Vec<Table> {
        let mut t = Table::new(
            format!("Fig. 4 — gamma tradeoff at sigma = {}", self.sigma),
            &[
                "gamma",
                "training rate",
                "test rate (w/o var)",
                "test rate (w/ var)",
            ],
        );
        for p in &self.points {
            t.add_row([
                fixed(p.gamma, 2),
                pct(p.training_rate),
                pct(p.test_rate_without_variation),
                pct(p.test_rate_with_variation),
            ]);
        }
        vec![t]
    }

    /// Renders the figure as a text table.
    pub fn render(&self) -> String {
        super::common::render_tables(&self.tables())
    }
}

/// Runs the experiment at the paper's default σ = 0.6.
pub fn run(scale: &Scale) -> Fig4Result {
    run_with_sigma(scale, 0.6)
}

/// Runs the experiment at an explicit σ.
///
/// # Panics
///
/// Panics only on internal configuration errors.
pub fn run_with_sigma(scale: &Scale, sigma: f64) -> Fig4Result {
    let side = if scale.n_train >= 1000 { 28 } else { 14 };
    let (train, test) = scale.dataset(side);
    let env = HardwareEnv::with_sigma(sigma).expect("valid sigma");
    let mut rng = scale.rng(4);
    let mapping = RowMapping::identity(train.num_features());
    let mut points = Vec::new();
    for gamma in scale.gamma_grid() {
        let trainer = scale.vat().with_sigma(sigma).with_gamma(gamma);
        let w = trainer.train(&train).expect("valid trainer");
        let training_rate = accuracy_of_weights(&w, &train);
        let clean = accuracy_of_weights(&w, &test);
        let eval = evaluate_hardware_with(
            &w,
            &mapping,
            &env,
            &test,
            scale.mc_draws,
            &mut rng,
            Parallelism::Auto,
        )
        .expect("hardware evaluation");
        points.push(Fig4Point {
            gamma,
            training_rate,
            test_rate_without_variation: clean,
            test_rate_with_variation: eval.mean_test_rate,
        });
    }
    Fig4Result { points, sigma }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tradeoff_shape() {
        let r = run_with_sigma(&Scale::bench(), 0.8);
        assert!(r.points.len() >= 3);
        let first = r.points.first().unwrap();
        let last = r.points.last().unwrap();
        // Training rate does not grow with γ (allow small optimizer noise).
        assert!(
            last.training_rate <= first.training_rate + 0.05,
            "training rate γ=0 {} vs γ=1 {}",
            first.training_rate,
            last.training_rate
        );
        // With-variation is below without-variation at γ = 0 (variation
        // hurts an unprotected network).
        assert!(first.test_rate_with_variation <= first.test_rate_without_variation + 0.05);
    }

    #[test]
    fn render_and_best_gamma() {
        let r = run_with_sigma(&Scale::bench(), 0.6);
        assert!(r.render().contains("Fig. 4"));
        let g = r.best_gamma();
        assert!((0.0..=1.0).contains(&g));
    }
}
