//! Fig. 1 — device preliminaries (§2.1).
//!
//! (a) the analogue switching characteristic: programmed resistance vs
//! programming voltage at a fixed pulse width, reproducing the paper's
//! anecdote that moving from 2.9 V to 2.8 V at 0.5 µs changes the landed
//! resistance by more than 2× while the half-select 1.45 V barely moves
//! the device; (c) the lognormal spread of resistances after programming
//! a population of devices to LRS.

use vortex_core::report::{fixed, Table};
use vortex_device::switching::evolve_state;
use vortex_device::{DeviceParams, VariationModel};
use vortex_linalg::stats::Histogram;

use super::common::Scale;

/// One voltage point of the switching characteristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig1aPoint {
    /// Programming voltage magnitude (RESET direction), volts.
    pub voltage: f64,
    /// Resistance landed from LRS after the fixed-width pulse, ohms.
    pub resistance_ohms: f64,
}

/// Full Fig. 1 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Result {
    /// (a) switching characteristic at the fixed pulse width.
    pub characteristic: Vec<Fig1aPoint>,
    /// Pulse width used for (a), seconds.
    pub pulse_width_s: f64,
    /// (c) histogram counts of log10(resistance) for the LRS population.
    pub lrs_histogram: Vec<usize>,
    /// (c) bin centers in log10(ohms).
    pub lrs_bin_centers: Vec<f64>,
    /// (c) population σ used.
    pub sigma: f64,
}

impl Fig1Result {
    /// Both panels as structured tables.
    pub fn tables(&self) -> Vec<Table> {
        let mut a = Table::new(
            format!(
                "Fig. 1(a) — resistance vs programming voltage at {:.1} us (RESET from LRS)",
                self.pulse_width_s * 1e6
            ),
            &["voltage (V)", "landed resistance (kohm)"],
        );
        for p in &self.characteristic {
            a.add_row([fixed(p.voltage, 2), fixed(p.resistance_ohms / 1e3, 1)]);
        }
        let mut c = Table::new(
            format!(
                "Fig. 1(c) — LRS population after programming (lognormal, sigma = {})",
                self.sigma
            ),
            &["log10(R/ohm) bin center", "count"],
        );
        for (center, count) in self.lrs_bin_centers.iter().zip(&self.lrs_histogram) {
            c.add_row([fixed(*center, 2), count.to_string()]);
        }
        vec![a, c]
    }

    /// Renders both panels as text tables.
    pub fn render(&self) -> String {
        super::common::render_tables(&self.tables())
    }

    /// The resistance ratio between two voltages of panel (a).
    pub fn resistance_ratio(&self, v_hi: f64, v_lo: f64) -> Option<f64> {
        let find = |v: f64| {
            self.characteristic
                .iter()
                .find(|p| (p.voltage - v).abs() < 1e-9)
                .map(|p| p.resistance_ohms)
        };
        Some(find(v_hi)? / find(v_lo)?)
    }
}

/// Runs the experiment.
pub fn run(scale: &Scale) -> Fig1Result {
    let device = DeviceParams::default();
    let width = 0.5e-6; // the paper's 0.5 µs anecdote
    let voltages = [1.45, 2.0, 2.2, 2.4, 2.6, 2.8, 2.9];
    let characteristic = voltages
        .iter()
        .map(|&v| {
            let w = evolve_state(&device, 1.0, -v, width);
            Fig1aPoint {
                voltage: v,
                resistance_ohms: device.resistance_from_w(w),
            }
        })
        .collect();

    // (c): program a population to LRS, histogram log10(R).
    let sigma = 0.4;
    let variation = VariationModel::parametric(sigma).expect("valid sigma");
    let mut rng = scale.rng(1);
    let mut hist = Histogram::new(3.0, 6.0, 24); // 1 kΩ .. 1 MΩ
    let n = (scale.column_runs * 10).max(1000);
    for _ in 0..n {
        let theta = variation.sample_theta(&mut rng);
        let r = 1.0 / VariationModel::apply(device.g_on(), theta);
        hist.add(r.log10());
    }
    let centers = (0..24).map(|i| hist.bin_center(i)).collect();
    Fig1Result {
        characteristic,
        pulse_width_s: width,
        lrs_histogram: hist.counts().to_vec(),
        lrs_bin_centers: centers,
        sigma,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_a_reproduces_the_paper_anecdote() {
        let r = run(&Scale::bench());
        // 2.9 V vs 2.8 V at 0.5 µs: >1.5× resistance difference.
        let ratio = r.resistance_ratio(2.9, 2.8).unwrap();
        assert!(ratio > 1.5, "2.9/2.8 V ratio {ratio}");
        // Half-select 1.45 V leaves the device essentially at LRS.
        let half = r
            .characteristic
            .iter()
            .find(|p| (p.voltage - 1.45).abs() < 1e-9)
            .unwrap();
        assert!(
            (half.resistance_ohms - 10e3).abs() / 10e3 < 0.05,
            "half-select landed {}",
            half.resistance_ohms
        );
        // Resistance is monotone in programming voltage.
        for w in r.characteristic.windows(2) {
            assert!(w[1].resistance_ohms >= w[0].resistance_ohms - 1e-6);
        }
    }

    #[test]
    fn panel_c_is_unimodal_around_lrs() {
        let r = run(&Scale::bench());
        let total: usize = r.lrs_histogram.iter().sum();
        assert!(total >= 1000);
        // The modal bin should sit near log10(10 kΩ) = 4.
        let modal = r
            .lrs_bin_centers
            .iter()
            .zip(&r.lrs_histogram)
            .max_by_key(|(_, &c)| c)
            .map(|(b, _)| *b)
            .unwrap();
        assert!((modal - 4.0).abs() < 0.3, "modal bin at {modal}");
    }

    #[test]
    fn render_contains_both_panels() {
        let r = run(&Scale::bench());
        let s = r.render();
        assert!(s.contains("Fig. 1(a)"));
        assert!(s.contains("Fig. 1(c)"));
    }
}
