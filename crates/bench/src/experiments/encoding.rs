//! Weight-encoding comparison — continuous differential pairs versus
//! fixed multi-level quantization versus sensitivity-driven adaptive
//! row quantization (extension beyond the paper).
//!
//! One trained side-14 model (196 physical rows — an even count, so the
//! adaptive 3/5-bit split at fine fraction ½ spends *exactly* the fixed
//! 4-bit pulse budget) is compiled under every encoding at each sigma,
//! averaged over the scale's Monte-Carlo fabrication seeds. The table
//! reports accuracy, effective bits per device and the total programming
//! pulse budget; a 1T-1R row shows the NEAT-style pre-distorted compile
//! on the same substrate. Everything is seeded computation —
//! bit-identical on every run — so CI gates two flat keys exactly:
//!
//! * `encoding_pulse_budget_delta` (adaptive pulses − fixed pulses) is
//!   pinned at 0 — the comparison is only meaningful at equal budget.
//! * `encoding_fixed_minus_adaptive_pp` (fixed 4-bit accuracy minus
//!   adaptive accuracy, percentage points, worst case over sigma ≥ 0.3)
//!   has a ceiling of 0 — spending the same pulses where the AMP
//!   sensitivity `|x̄·w|` says they matter must not lose accuracy.

use vortex_core::amp::greedy::RowMapping;
use vortex_core::pipeline::HardwareEnv;
use vortex_core::report::{fixed, Table};
use vortex_device::cell::CellKind;
use vortex_xbar::encoding::EncodingSpec;

use vortex_nn::dataset::{DatasetConfig, SynthDigits};

use super::common::Scale;

/// Sigma grid of the sweep; the accuracy gate covers ≥ 0.3.
pub const SIGMAS: [f64; 3] = [0.15, 0.30, 0.45];
/// Image side of the benchmark model: 196 physical rows, an even count
/// (see the module docs — equal pulse budget needs one).
const SIDE: usize = 14;
/// Bits per device of the fixed multi-level encoding.
const FIXED_BITS: u8 = 4;
/// Coarse/fine bits of the adaptive encoding; at fine fraction ½ the
/// mean pulse cost equals the fixed encoding's exactly. A 3/5 split
/// quadruples the coarse rows' squared quantization error versus the
/// uniform grid — mild enough that the sensitivity skew pays for it (a
/// 2/6 split's 16× coarse penalty measurably does not on this model).
const LOW_BITS: u8 = 3;
const HIGH_BITS: u8 = 5;
const FINE_FRACTION: f64 = 0.5;
/// Access-transistor series resistance of the 1T-1R row (Ω).
const R_ACCESS: f64 = 3.0e3;
/// Fabrication-seed stream tag.
const SEED_TAG: u64 = 0xE9C0D;
/// Eval samples per class (600 total) and the fabrication-draw floor:
/// the adaptive-vs-fixed margin is well under a percentage point, so a
/// scale's 2-draw / 150-sample quick settings would measure sampling
/// luck, not encodings (the same reasoning as the fleet experiment's
/// dedicated eval set).
const EVAL_PER_CLASS: usize = 60;
const MIN_DRAWS: usize = 16;

/// One (sigma, encoding) cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodingRow {
    /// Programming-noise sigma.
    pub sigma: f64,
    /// Encoding name.
    pub encoding: &'static str,
    /// Mean accuracy over the Monte-Carlo draws.
    pub accuracy: f64,
    /// Mean bits per quantized device (infinite for continuous rows).
    pub effective_bits: f64,
    /// Total programming pulses for the whole differential pair.
    pub pulses: u64,
}

/// Result of the encoding experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodingResult {
    /// The sweep, grouped by sigma in encoding order.
    pub rows: Vec<EncodingRow>,
    /// Fabrication draws behind each accuracy cell.
    pub mc_draws: usize,
}

impl EncodingResult {
    fn rows_named(&self, name: &'static str) -> impl Iterator<Item = &EncodingRow> {
        self.rows.iter().filter(move |r| r.encoding == name)
    }

    fn high_sigma_accuracy(&self, name: &'static str) -> f64 {
        self.rows_named(name)
            .last()
            .map(|r| r.accuracy)
            .unwrap_or(f64::NAN)
    }

    fn pulses_of(&self, name: &'static str) -> u64 {
        self.rows_named(name).map(|r| r.pulses).max().unwrap_or(0)
    }

    /// Adaptive minus fixed total programming pulses — the pinned gate
    /// key: 0 means the two encodings spend the same budget.
    pub fn encoding_pulse_budget_delta(&self) -> i64 {
        self.pulses_of("adaptive") as i64 - self.pulses_of("mlc4") as i64
    }

    /// Fixed 4-bit accuracy minus adaptive accuracy (pp), worst case
    /// over sigma ≥ 0.3 — the gated ceiling key: ≤ 0 means adaptive
    /// allocation wins (or ties) wherever variation dominates.
    pub fn encoding_fixed_minus_adaptive_pp(&self) -> f64 {
        self.rows_named("mlc4")
            .filter(|r| r.sigma >= 0.3)
            .map(|f| {
                let adaptive = self
                    .rows_named("adaptive")
                    .find(|a| a.sigma == f.sigma)
                    .expect("adaptive runs at every sigma");
                (f.accuracy - adaptive.accuracy) * 100.0
            })
            .fold(f64::MIN, f64::max)
    }

    /// The experiment as structured tables.
    pub fn tables(&self) -> Vec<Table> {
        let mut t = Table::new(
            format!(
                "Weight encodings — side-{SIDE} model, {} draw(s) per cell",
                self.mc_draws
            ),
            &["sigma", "encoding", "accuracy", "eff bits", "pulses"],
        );
        for r in &self.rows {
            let bits = if r.effective_bits.is_finite() {
                fixed(r.effective_bits, 1)
            } else {
                "analog".to_string()
            };
            t.add_row([
                fixed(r.sigma, 2),
                r.encoding.to_string(),
                fixed(r.accuracy, 3),
                bits,
                r.pulses.to_string(),
            ]);
        }
        vec![t]
    }

    /// Renders the experiment as a text table plus a summary line.
    pub fn render(&self) -> String {
        let mut out = super::common::render_tables(&self.tables());
        out.push_str(&format!(
            "equal pulse budget ({} pulses): adaptive {}/{}-bit {:.3} vs fixed {}-bit {:.3} at sigma {:.2} ({:+.1} pp)\n",
            self.pulses_of("adaptive"),
            LOW_BITS,
            HIGH_BITS,
            self.high_sigma_accuracy("adaptive"),
            FIXED_BITS,
            self.high_sigma_accuracy("mlc4"),
            SIGMAS[SIGMAS.len() - 1],
            (self.high_sigma_accuracy("adaptive") - self.high_sigma_accuracy("mlc4")) * 100.0,
        ));
        out
    }

    /// Machine-readable summary (the `BENCH_encoding.json` payload):
    /// flat gated fields plus the structured tables.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"mc_draws\":{},\"pulses_fixed\":{},\"pulses_adaptive\":{},",
                "\"encoding_pulse_budget_delta\":{},",
                "\"encoding_fixed_minus_adaptive_pp\":{:.2},",
                "\"differential_accuracy\":{:.4},\"mlc_accuracy\":{:.4},",
                "\"adaptive_accuracy\":{:.4},\"one_t1r_accuracy\":{:.4},",
                "\"tables\":{}}}"
            ),
            self.mc_draws,
            self.pulses_of("mlc4"),
            self.pulses_of("adaptive"),
            self.encoding_pulse_budget_delta(),
            self.encoding_fixed_minus_adaptive_pp(),
            self.high_sigma_accuracy("differential"),
            self.high_sigma_accuracy("mlc4"),
            self.high_sigma_accuracy("adaptive"),
            self.high_sigma_accuracy("differential-1t1r"),
            super::common::tables_to_json(&self.tables()),
        )
    }
}

/// The encodings under comparison, in table order.
fn encodings() -> [(&'static str, EncodingSpec, CellKind); 4] {
    let one_t1r = CellKind::one_t1r(R_ACCESS).expect("valid access resistance");
    [
        (
            "differential",
            EncodingSpec::DifferentialPair,
            CellKind::OneR,
        ),
        (
            "mlc4",
            EncodingSpec::MultiLevelCell { bits: FIXED_BITS },
            CellKind::OneR,
        ),
        (
            "adaptive",
            EncodingSpec::AdaptiveRowQuant {
                low_bits: LOW_BITS,
                high_bits: HIGH_BITS,
                fine_fraction: FINE_FRACTION,
            },
            CellKind::OneR,
        ),
        ("differential-1t1r", EncodingSpec::DifferentialPair, one_t1r),
    ]
}

/// Runs the sweep: every encoding at every sigma, each accuracy averaged
/// over the scale's Monte-Carlo fabrication seeds.
///
/// # Panics
///
/// Panics only on internal configuration errors (the defaults are valid).
pub fn run(scale: &Scale) -> EncodingResult {
    // The trainer gets an epoch floor independent of the scale: a
    // half-trained model's soft margins amplify sampling noise, and the
    // encoding margins under test are fractions of a percentage point.
    let (train, _) = scale.dataset(SIDE);
    let mut trainer = scale.gdt();
    trainer.epochs = trainer.epochs.max(30);
    let weights = trainer.train(&train).expect("training");
    let mapping = RowMapping::identity(weights.rows());
    // A dedicated fixed-size eval set for the same reason (see the
    // constants above).
    let eval = SynthDigits::generate(
        &DatasetConfig {
            samples_per_class: EVAL_PER_CLASS,
            ..DatasetConfig::paper()
        },
        scale.seed ^ 0xE9C,
    )
    .expect("valid dataset config")
    .downsample(28 / SIDE)
    .expect("side divides 28");
    let test = eval;
    let mut seed_rng = scale.rng(SEED_TAG);
    let seeds: Vec<u64> = (0..scale.mc_draws.max(MIN_DRAWS))
        .map(|_| seed_rng.next_u64())
        .collect();

    let mut rows = Vec::with_capacity(SIGMAS.len() * encodings().len());
    for &sigma in &SIGMAS {
        for (name, spec, cell) in encodings() {
            let mut env = HardwareEnv::with_sigma(sigma).expect("valid sigma");
            env.cell = cell;
            let compiler = env.compiler().with_calibration(&test.mean_input());
            let mut accuracy = 0.0;
            let mut effective_bits = f64::NAN;
            let mut pulses = 0u64;
            for &seed in &seeds {
                let model = compiler
                    .request(&weights, &mapping)
                    .encoding(spec)
                    .seed(seed)
                    .compile()
                    .expect("compilation");
                accuracy += model.accuracy(&test).expect("test read");
                effective_bits = model.encoding().effective_bits();
                pulses = model.encoding().programming_pulses(weights.cols());
            }
            rows.push(EncodingRow {
                sigma,
                encoding: name,
                accuracy: accuracy / seeds.len() as f64,
                effective_bits,
                pulses,
            });
        }
    }
    EncodingResult {
        rows,
        mc_draws: seeds.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::serve::json_field;

    #[test]
    fn pulse_budgets_match_and_tables_are_deterministic() {
        let scale = Scale::bench();
        let a = run(&scale);
        assert_eq!(a.encoding_pulse_budget_delta(), 0, "unequal pulse budget");
        // Continuous encodings program with two pulses per device; any
        // quantized encoding spends strictly more.
        assert!(a.pulses_of("differential") < a.pulses_of("mlc4"));
        let b = run(&scale);
        assert_eq!(a, b, "the sweep must be a pure function of the seed");
    }

    #[test]
    fn render_and_json_carry_the_gated_fields() {
        let r = run(&Scale::bench());
        let s = r.render();
        assert!(s.contains("Weight encodings"));
        assert!(s.contains("analog"), "continuous rows render as analog");
        let j = r.to_json();
        for key in [
            "mc_draws",
            "pulses_fixed",
            "pulses_adaptive",
            "encoding_pulse_budget_delta",
            "encoding_fixed_minus_adaptive_pp",
            "differential_accuracy",
            "mlc_accuracy",
            "adaptive_accuracy",
            "one_t1r_accuracy",
            "tables",
        ] {
            assert!(json_field(&j, key), "missing {key} in {j}");
        }
        assert!(!j.contains("inf"), "no infinities may leak into JSON");
    }

    #[test]
    fn every_encoding_stays_above_chance() {
        let r = run(&Scale::bench());
        for row in &r.rows {
            assert!(
                row.accuracy > 0.3,
                "{} at sigma {} collapsed to {}",
                row.encoding,
                row.sigma,
                row.accuracy
            );
        }
    }
}
