//! Fig. 2 — output discrepancy of a 100-memristor column trained by CLD
//! vs OLD as device variation σ grows (§3.1).
//!
//! Paper setup: nominal 10 kΩ / 1 MΩ devices, all inputs at 1 V, target
//! output 1 mA, 1000-run Monte Carlo per σ. Expected shape: OLD's
//! discrepancy grows steadily with σ; CLD's stays near zero.

use vortex_core::column::ColumnExperiment;
use vortex_core::report::{fixed, Table};
use vortex_device::VariationModel;
use vortex_nn::executor::{run_trials, Parallelism};

use super::common::Scale;

/// One σ point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig2Point {
    /// Device-variation σ.
    pub sigma: f64,
    /// Mean relative discrepancy of OLD-trained columns.
    pub old_discrepancy: f64,
    /// Mean relative discrepancy of CLD-trained columns.
    pub cld_discrepancy: f64,
}

/// Full Fig. 2 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Result {
    /// Sweep points, in σ order.
    pub points: Vec<Fig2Point>,
}

impl Fig2Result {
    /// The figure as a structured table.
    pub fn tables(&self) -> Vec<Table> {
        let mut t = Table::new(
            "Fig. 2 — column output discrepancy vs sigma (CLD vs OLD)",
            &["sigma", "OLD mean |dI|/I", "CLD mean |dI|/I"],
        );
        for p in &self.points {
            t.add_row([
                fixed(p.sigma, 2),
                fixed(p.old_discrepancy, 4),
                fixed(p.cld_discrepancy, 4),
            ]);
        }
        vec![t]
    }

    /// Renders the figure as a text table.
    pub fn render(&self) -> String {
        super::common::render_tables(&self.tables())
    }
}

/// Runs the experiment on the default worker pool
/// ([`Parallelism::Auto`]).
///
/// # Panics
///
/// Panics only on internal configuration errors (the defaults are valid).
pub fn run(scale: &Scale) -> Fig2Result {
    run_with(scale, Parallelism::Auto)
}

/// [`run`] with an explicit worker-pool setting. Every setting produces
/// bit-identical statistics (the determinism harness asserts this); only
/// wall-clock time changes.
///
/// # Panics
///
/// Panics only on internal configuration errors (the defaults are valid).
pub fn run_with(scale: &Scale, parallelism: Parallelism) -> Fig2Result {
    let experiment = ColumnExperiment::default();
    let sigmas = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    let mut rng = scale.rng(2);
    let mut points = Vec::with_capacity(sigmas.len());
    for &sigma in &sigmas {
        let variation = VariationModel::parametric(sigma).expect("valid sigma");
        // Each Monte-Carlo run draws its OLD and CLD columns from its own
        // pre-split stream, so the sweep is bit-identical on any worker
        // count (see `vortex_nn::executor`).
        let runs = run_trials(&mut rng, scale.column_runs, parallelism, |_, run_rng| {
            let old = experiment
                .old_discrepancy(&variation, run_rng)
                .expect("valid column experiment");
            let cld = experiment
                .cld_discrepancy(&variation, run_rng)
                .expect("valid column experiment");
            (old, cld)
        });
        let (old_acc, cld_acc) = runs
            .iter()
            .fold((0.0, 0.0), |(o, c), &(old, cld)| (o + old, c + cld));
        points.push(Fig2Point {
            sigma,
            old_discrepancy: old_acc / scale.column_runs as f64,
            cld_discrepancy: cld_acc / scale.column_runs as f64,
        });
    }
    Fig2Result { points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let r = run(&Scale::bench());
        assert_eq!(r.points.len(), 9);
        // OLD grows with σ (compare endpoints).
        let first = r.points.first().unwrap();
        let last = r.points.last().unwrap();
        assert!(
            last.old_discrepancy > 2.0 * first.old_discrepancy,
            "OLD must grow: {} → {}",
            first.old_discrepancy,
            last.old_discrepancy
        );
        // CLD stays small everywhere.
        for p in &r.points {
            assert!(
                p.cld_discrepancy < 0.05,
                "CLD at σ={}: {}",
                p.sigma,
                p.cld_discrepancy
            );
            assert!(p.old_discrepancy >= 0.0);
        }
        // And OLD is worse than CLD at high σ.
        assert!(last.old_discrepancy > last.cld_discrepancy);
    }

    #[test]
    fn render_contains_all_rows() {
        let r = run(&Scale::bench());
        let s = r.render();
        assert!(s.contains("Fig. 2"));
        assert_eq!(s.lines().count(), 3 + 9);
    }
}
