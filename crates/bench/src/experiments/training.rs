//! Training co-residency — crash-recovery exactness and the inference
//! tail next to a co-resident training job (robustness extension).
//!
//! Two measurements, both bit-deterministic:
//!
//! * **Crash recovery** — two *real* [`TrainingJob`] runs at the same
//!   seed on explicit fixed-size worker pools: one undisturbed, one
//!   battered by a seeded chaos plan (mini-epoch kills plus bit flips in
//!   the newest checkpoint). The determinism contract says the battered
//!   job must recover onto **exactly** the clean run's trajectory, so
//!   the test-set accuracy delta `training_recovery_delta_pp` is pinned
//!   **exactly 0** by `bench/baseline_training.json` — any recovery
//!   drift, however small, fails CI outright.
//! * **Tail under co-residency** — a virtual-time discrete-event
//!   simulation of one shared worker: seeded Poisson inference arrivals
//!   (70% load) contend with training mini-epochs under the job
//!   engine's high/low-water yield discipline, against two controls
//!   (inference alone; a greedy trainer that never yields). The gated
//!   ceiling `training_p99_inflation_x` caps the p99 inflation the
//!   *yielding* trainer may impose over inference running alone; the
//!   greedy row documents what the priority class is buying. No wall
//!   clock anywhere — every number in the payload is a pure function of
//!   the seeds, so `BENCH_training.json` is bit-identical at any
//!   `VORTEX_MC_THREADS` / `VORTEX_POOL_THREADS` setting.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use vortex_core::pipeline::HardwareEnv;
use vortex_core::report::{fixed, Table};
use vortex_nn::dataset::Dataset;
use vortex_nn::metrics::accuracy_of_weights;
use vortex_nn::pool::WorkerPool;
use vortex_serve::chaos::{ChaosConfig, ChaosPlan};
use vortex_train::{JobConfig, JobReport, TrainerConfig, TrainingJob};

use super::common::Scale;
use crate::traffic::{ArrivalProcess, TrafficGen};

/// Seed of the chaos plan injecting kills and checkpoint bit flips.
const CHAOS_SEED: u64 = 41;
/// Seed of both training jobs (same seed — that is the point).
const TRAIN_SEED: u64 = 21;
/// Checkpoint cadence, in mini-epochs.
const CHECKPOINT_EVERY: u64 = 3;
/// Explicit pool size of the recovery jobs: fixed here, NOT inherited
/// from `VORTEX_POOL_THREADS`, so the payload cannot depend on it.
const RECOVERY_POOL: usize = 2;

// ---- virtual-time co-residency constants (virtual seconds) ----
/// Fixed per-batch dispatch overhead.
const T_BATCH: f64 = 4.0e-4;
/// Fixed per-sample service cost.
const T_SAMPLE: f64 = 1.0e-4;
/// Micro-batch ceiling of the simulated worker.
const SIM_MAX_BATCH: usize = 16;
/// Offered inference load, arrivals/s — 70% of the worker's 8 000/s
/// ceiling (16 samples per 2 ms batch).
const RATE: f64 = 5_600.0;
/// Virtual horizon of the arrival trace.
const HORIZON: f64 = 0.5;
/// Virtual cost of one training mini-epoch.
const T_EPOCH: f64 = 3.0e-3;
/// Mini-epochs the simulated job wants to run.
const SIM_EPOCHS: usize = 40;
/// Queue depth at which the yielding trainer parks…
const HIGH_WATER: usize = 8;
/// …and the depth it waits for before taking the worker again.
const LOW_WATER: usize = 2;
/// Arrival-trace seed (independent of the scale's model seed).
const TRAFFIC_SEED: u64 = 0x7EA1;

/// Distinguishes concurrent `run()` invocations' checkpoint
/// directories (tests run experiments in parallel threads).
static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// One real training run of the recovery comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryRun {
    /// Row label.
    pub label: &'static str,
    /// Mini-epochs completed.
    pub epochs: u64,
    /// Injected kills survived.
    pub kills: u64,
    /// Supervisor restarts.
    pub restarts: u32,
    /// Checkpoints rejected during recovery (corrupted slots).
    pub rejected_checkpoints: u64,
    /// Test-set accuracy of the final weights (software evaluation).
    pub accuracy: f64,
}

/// One scenario row of the virtual-time co-residency simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRow {
    /// Scenario label.
    pub scenario: &'static str,
    /// Inference arrivals over the horizon.
    pub arrivals: usize,
    /// Virtual time the last training mini-epoch finished (0 when the
    /// scenario runs no training).
    pub train_done_ms: f64,
    /// Median inference latency, virtual milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile inference latency, virtual milliseconds.
    pub p99_ms: f64,
}

/// Result of the training experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingResult {
    /// The undisturbed job.
    pub clean: RecoveryRun,
    /// The chaos-battered job (same seed, same config).
    pub recovered: RecoveryRun,
    /// `clean − recovered` test accuracy, percentage points — the
    /// exactness gate (bit-identical recovery makes this exactly 0).
    pub recovery_delta_pp: f64,
    /// Simulation rows: inference alone, yielding trainer, greedy
    /// trainer — in that order.
    pub sims: Vec<SimRow>,
}

impl TrainingResult {
    /// p99 with the *yielding* trainer over p99 alone — the gated
    /// ceiling key.
    pub fn p99_inflation_x(&self) -> f64 {
        self.sims[1].p99_ms / self.sims[0].p99_ms
    }

    /// The experiment as structured tables.
    pub fn tables(&self) -> Vec<Table> {
        let mut rec = Table::new(
            "Crash recovery at equal seed — clean vs chaos-battered".to_string(),
            &[
                "run",
                "epochs",
                "kills",
                "restarts",
                "rejected ckpts",
                "test accuracy",
            ],
        );
        for r in [&self.clean, &self.recovered] {
            rec.add_row([
                r.label.to_string(),
                r.epochs.to_string(),
                r.kills.to_string(),
                r.restarts.to_string(),
                r.rejected_checkpoints.to_string(),
                fixed(r.accuracy, 4),
            ]);
        }
        let mut sim = Table::new(
            format!(
                "Inference tail with a co-resident trainer — {:.0}/s over {:.1}s, {} x {:.0}ms epochs",
                RATE,
                HORIZON,
                SIM_EPOCHS,
                1e3 * T_EPOCH
            ),
            &[
                "scenario",
                "arrivals",
                "train done ms",
                "p50 ms",
                "p99 ms",
                "p99 x",
            ],
        );
        let alone_p99 = self.sims[0].p99_ms;
        for r in &self.sims {
            sim.add_row([
                r.scenario.to_string(),
                r.arrivals.to_string(),
                if r.train_done_ms > 0.0 {
                    fixed(r.train_done_ms, 1)
                } else {
                    "-".to_string()
                },
                fixed(r.p50_ms, 2),
                fixed(r.p99_ms, 2),
                fixed(r.p99_ms / alone_p99, 2),
            ]);
        }
        vec![rec, sim]
    }

    /// Renders the experiment as text tables plus a summary line.
    pub fn render(&self) -> String {
        let mut out = super::common::render_tables(&self.tables());
        out.push_str(&format!(
            "recovery: {} kills + {} rejected checkpoints, accuracy delta {:+.2} pp; \
             co-residency: p99 {:.2} ms alone -> {:.2} ms yielding ({:.2}x) vs {:.2} ms greedy\n",
            self.recovered.kills,
            self.recovered.rejected_checkpoints,
            self.recovery_delta_pp,
            self.sims[0].p99_ms,
            self.sims[1].p99_ms,
            self.p99_inflation_x(),
            self.sims[2].p99_ms,
        ));
        out
    }

    /// Machine-readable summary (the `BENCH_training.json` payload):
    /// flat gated fields plus the structured tables.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"training_recovery_delta_pp\":{:.2},",
                "\"training_clean_accuracy\":{:.4},",
                "\"training_recovered_accuracy\":{:.4},",
                "\"training_epochs\":{},\"training_kills\":{},",
                "\"training_restarts\":{},\"training_rejected_checkpoints\":{},",
                "\"training_p99_inflation_x\":{:.3},",
                "\"training_p99_alone_ms\":{:.3},",
                "\"training_p99_yield_ms\":{:.3},",
                "\"training_p99_greedy_ms\":{:.3},",
                "\"tables\":{}}}"
            ),
            self.recovery_delta_pp,
            self.clean.accuracy,
            self.recovered.accuracy,
            self.recovered.epochs,
            self.recovered.kills,
            self.recovered.restarts,
            self.recovered.rejected_checkpoints,
            self.p99_inflation_x(),
            self.sims[0].p99_ms,
            self.sims[1].p99_ms,
            self.sims[2].p99_ms,
            super::common::tables_to_json(&self.tables()),
        )
    }
}

/// Exact percentile over a sorted slice (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Replays one arrival trace through a single simulated worker shared
/// with a training job. Whenever the worker frees up, the trainer takes
/// it for one `T_EPOCH` mini-epoch unless it has parked (queue depth
/// reached [`HIGH_WATER`]; it unparks at [`LOW_WATER`] — the job
/// engine's hysteresis); otherwise the worker serves one micro-batch of
/// everything already arrived. A greedy trainer (`yields == false`)
/// never parks. Pure virtual time — no wall clock, no threads.
fn simulate(trace: &[f64], scenario: &'static str, epochs: usize, yields: bool) -> SimRow {
    let mut t = 0.0_f64;
    let mut idx = 0usize;
    let mut queue: VecDeque<f64> = VecDeque::new();
    let mut latencies: Vec<f64> = Vec::with_capacity(trace.len());
    let mut epochs_left = epochs;
    let mut parked = false;
    let mut train_done = 0.0_f64;
    loop {
        while idx < trace.len() && trace[idx] <= t {
            queue.push_back(trace[idx]);
            idx += 1;
        }
        if queue.len() >= HIGH_WATER {
            parked = true;
        } else if queue.len() <= LOW_WATER {
            parked = false;
        }
        if epochs_left > 0 && (!yields || !parked) {
            t += T_EPOCH;
            epochs_left -= 1;
            if epochs_left == 0 {
                train_done = t;
            }
            continue;
        }
        if !queue.is_empty() {
            let n = queue.len().min(SIM_MAX_BATCH);
            let done = t + T_BATCH + n as f64 * T_SAMPLE;
            for _ in 0..n {
                let arrived = queue.pop_front().expect("counted above");
                latencies.push(done - arrived);
            }
            t = done;
            continue;
        }
        if idx < trace.len() {
            t = trace[idx];
            continue;
        }
        break;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    SimRow {
        scenario,
        arrivals: trace.len(),
        train_done_ms: 1e3 * train_done,
        p50_ms: 1e3 * percentile(&latencies, 50.0),
        p99_ms: 1e3 * percentile(&latencies, 99.0),
    }
}

/// Runs one real training job on an explicit fixed-size pool and
/// returns its report.
fn run_job(scale: &Scale, train: &Dataset, chaos: Option<ChaosPlan>, tag: &str) -> JobReport {
    let dir = std::env::temp_dir().join(format!(
        "vortex-bench-training-{tag}-{}-{}",
        std::process::id(),
        RUN_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = JobConfig {
        max_epochs: scale.epochs as u64,
        checkpoint_every: CHECKPOINT_EVERY,
        restart_base: Duration::from_millis(1),
        restart_cap: Duration::from_millis(4),
        ..JobConfig::new(
            TrainerConfig {
                seed: TRAIN_SEED,
                ..TrainerConfig::default()
            },
            &dir,
        )
    };
    let env = HardwareEnv::with_sigma(0.5).expect("valid sigma");
    let mut job = TrainingJob::new(cfg, Arc::new(train.clone()), env)
        .expect("valid job config")
        .with_pool(Arc::new(WorkerPool::new(RECOVERY_POOL)));
    if let Some(plan) = chaos {
        job = job.with_chaos(plan);
    }
    let report = job.run().expect("job inside its restart budget");
    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// Runs the experiment: the clean-vs-battered recovery comparison, then
/// the virtual-time co-residency scenarios.
///
/// # Panics
///
/// Panics only on internal configuration errors (the defaults are
/// valid) or a job exceeding its restart budget (the chaos plan injects
/// fewer kills than the budget allows).
pub fn run(scale: &Scale) -> TrainingResult {
    let (train, test) = scale.dataset(7);

    let clean = run_job(scale, &train, None, "clean");
    // Kills land inside the epoch budget by construction; the bit flips
    // corrupt the newest checkpoint slot after each kill.
    let plan = ChaosPlan::generate(
        &ChaosConfig::new(CHAOS_SEED, train.num_features(), train.num_classes())
            .with_train_kills(2, scale.epochs as u64)
            .with_checkpoint_bit_flips(4),
    );
    let battered = run_job(scale, &train, Some(plan), "chaos");

    let clean = RecoveryRun {
        label: "clean",
        epochs: clean.epochs,
        kills: clean.kills,
        restarts: clean.restarts,
        rejected_checkpoints: clean.rejected_checkpoints,
        accuracy: accuracy_of_weights(&clean.weights, &test),
    };
    let recovered = RecoveryRun {
        label: "chaos-battered",
        epochs: battered.epochs,
        kills: battered.kills,
        restarts: battered.restarts,
        rejected_checkpoints: battered.rejected_checkpoints,
        accuracy: accuracy_of_weights(&battered.weights, &test),
    };
    let recovery_delta_pp = (clean.accuracy - recovered.accuracy) * 100.0;

    let trace: Vec<f64> = TrafficGen::new(ArrivalProcess::poisson(RATE), TRAFFIC_SEED)
        .take_while(|&t| t < HORIZON)
        .collect();
    let sims = vec![
        simulate(&trace, "inference alone", 0, true),
        simulate(&trace, "training, yielding", SIM_EPOCHS, true),
        simulate(&trace, "training, greedy", SIM_EPOCHS, false),
    ];

    TrainingResult {
        clean,
        recovered,
        recovery_delta_pp,
        sims,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::serve::json_field;

    #[test]
    fn recovery_is_exact_and_chaos_actually_bites() {
        let r = run(&Scale::bench());
        assert_eq!(r.clean.kills, 0);
        assert_eq!(r.clean.restarts, 0);
        assert!(
            r.recovered.kills >= 1,
            "the chaos plan must actually kill the job"
        );
        assert_eq!(r.recovered.kills as u32, r.recovered.restarts);
        assert_eq!(r.clean.epochs, r.recovered.epochs);
        // Bit-identical recovery: not merely close, *exactly* zero.
        assert_eq!(
            r.recovery_delta_pp, 0.0,
            "recovered weights must score exactly like the clean run"
        );
        assert_eq!(r.clean.accuracy.to_bits(), r.recovered.accuracy.to_bits());
    }

    #[test]
    fn yield_discipline_bounds_the_tail() {
        let r = run(&Scale::bench());
        let (alone, yielding, greedy) = (&r.sims[0], &r.sims[1], &r.sims[2]);
        assert_eq!(alone.train_done_ms, 0.0);
        assert!(yielding.train_done_ms > 0.0, "yielding trainer finishes");
        assert!(greedy.train_done_ms > 0.0, "greedy trainer finishes");
        assert!(alone.p50_ms <= alone.p99_ms);
        assert!(
            alone.p99_ms <= yielding.p99_ms,
            "co-residency cannot improve the tail"
        );
        assert!(
            greedy.p99_ms > 4.0 * yielding.p99_ms,
            "the greedy control must show what yielding buys: {} !> 4x {}",
            greedy.p99_ms,
            yielding.p99_ms
        );
        assert!(
            r.p99_inflation_x() < 4.0,
            "yielding inflation out of range: {}",
            r.p99_inflation_x()
        );
    }

    #[test]
    fn payload_is_bit_identical_across_runs() {
        // Real jobs recover deterministically and the simulation is
        // virtual-time, so the *entire* payload — accuracies, counters
        // and every latency cell — is a pure function of the seeds.
        let scale = Scale::bench();
        let a = run(&scale);
        let b = run(&scale);
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn render_and_json_carry_the_gated_fields() {
        let r = run(&Scale::bench());
        let s = r.render();
        assert!(s.contains("Crash recovery at equal seed"));
        assert!(s.contains("co-resident trainer"));
        let j = r.to_json();
        for key in [
            "training_recovery_delta_pp",
            "training_clean_accuracy",
            "training_recovered_accuracy",
            "training_epochs",
            "training_kills",
            "training_restarts",
            "training_rejected_checkpoints",
            "training_p99_inflation_x",
            "training_p99_alone_ms",
            "training_p99_yield_ms",
            "training_p99_greedy_ms",
            "tables",
        ] {
            assert!(json_field(&j, key), "missing {key} in {j}");
        }
        assert_eq!(
            crate::gate::extract_number(&j, "training_recovery_delta_pp"),
            Some(0.0)
        );
        let infl = crate::gate::extract_number(&j, "training_p99_inflation_x")
            .expect("inflation key parses");
        assert!((1.0..4.0).contains(&infl), "inflation {infl} out of range");
    }
}
