//! Extension experiments beyond the paper: crossbar tiling, pre-test
//! target compensation, and the scheme-level cost comparison.

use vortex_core::amp::greedy::RowMapping;
use vortex_core::amp::sensitivity::mean_abs_inputs;
use vortex_core::pipeline::{evaluate_hardware, HardwareEnv};
use vortex_core::report::{pct, Table};
use vortex_core::tiling::TiledEvaluator;
use vortex_core::vortex::{amp_evaluate, AmpChipOptions};
use vortex_xbar::cost::SchemeCostModel;

use super::common::Scale;

/// Results of the extension suite.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtensionsResult {
    /// Monolithic test rate under heavy IR-drop (uncompensated).
    pub monolithic_irdrop: f64,
    /// Tiled test rate under the same conditions.
    pub tiled_irdrop: f64,
    /// Tile size used.
    pub tile_rows: usize,
    /// AMP-only test rate at σ.
    pub amp_plain: f64,
    /// AMP plus per-cell pre-test compensation.
    pub amp_compensated: f64,
    /// σ used for the compensation comparison.
    pub sigma: f64,
    /// Scheme cost comparison (closed-form estimates).
    pub cost_table: Table,
}

impl ExtensionsResult {
    /// The suite as structured tables (headline + cost comparison).
    pub fn tables(&self) -> Vec<Table> {
        let mut t = Table::new(
            "Extensions beyond the paper",
            &["experiment", "baseline", "extension"],
        );
        t.add_row([
            format!("tiling ({}-row tiles) under heavy IR-drop", self.tile_rows),
            pct(self.monolithic_irdrop),
            pct(self.tiled_irdrop),
        ]);
        t.add_row([
            format!("pre-test target compensation (sigma = {})", self.sigma),
            pct(self.amp_plain),
            pct(self.amp_compensated),
        ]);
        vec![t, self.cost_table.clone()]
    }

    /// Renders the suite as text tables.
    pub fn render(&self) -> String {
        super::common::render_tables(&self.tables())
    }
}

/// Runs the extension suite.
///
/// # Panics
///
/// Panics only on internal configuration errors.
pub fn run(scale: &Scale) -> ExtensionsResult {
    let side = if scale.n_train >= 1000 { 28 } else { 14 };
    let (train, test) = scale.dataset(side);
    let mean_abs = mean_abs_inputs(&train);
    let weights = scale.gdt().train(&train).expect("training");
    let mut rng = scale.rng(99);

    // 1. Tiling vs monolithic under heavy, uncompensated IR-drop.
    let r_wire = if side == 28 { 2.5 } else { 10.0 };
    let env_ir = HardwareEnv::ideal().with_ir_drop(r_wire);
    let mono = evaluate_hardware(
        &weights,
        &RowMapping::identity(weights.rows()),
        &env_ir,
        &test,
        scale.mc_draws,
        &mut rng,
    )
    .expect("monolithic")
    .mean_test_rate;
    let tile_rows = (weights.rows() / 6).max(16);
    let tiled = TiledEvaluator::new(tile_rows)
        .expect("tile size")
        .evaluate(
            &weights,
            &mean_abs,
            &env_ir,
            &test,
            scale.mc_draws,
            &mut rng,
        )
        .expect("tiled")
        .mean_test_rate;

    // 2. Pre-test per-cell compensation at strong variation.
    let sigma = 0.8;
    let env_var = HardwareEnv::with_sigma(sigma).expect("env");
    let plain = amp_evaluate(
        &weights,
        &mean_abs,
        &AmpChipOptions::default(),
        &env_var,
        &test,
        scale.mc_draws,
        &mut rng,
    )
    .expect("plain amp")
    .mean_test_rate;
    let compensated = amp_evaluate(
        &weights,
        &mean_abs,
        &AmpChipOptions {
            pretest_compensation: true,
            pretest_bits: 8,
            ..AmpChipOptions::default()
        },
        &env_var,
        &test,
        scale.mc_draws,
        &mut rng,
    )
    .expect("compensated amp")
    .mean_test_rate;

    // 3. Scheme cost comparison (closed-form).
    let cost_model = SchemeCostModel {
        rows: weights.rows(),
        cols: weights.cols(),
        redundant_rows: 100.min(weights.rows() / 4),
        mean_pulse_width_s: 1e-6,
        pretest_repeats: 3,
        samples: train.len(),
        epochs: scale.epochs,
    };
    let old = cost_model.old_cost().expect("old cost");
    let cld = cost_model.cld_cost().expect("cld cost");
    let vortex = cost_model.vortex_cost().expect("vortex cost");
    let mut ct = Table::new(
        "Scheme overhead (closed-form estimates)",
        &[
            "scheme",
            "pulses",
            "program time",
            "ADC conversions",
            "cells",
        ],
    );
    for (name, c) in [("OLD", old), ("CLD", cld), ("Vortex", vortex)] {
        ct.add_row([
            name.to_string(),
            c.pulse_count.to_string(),
            format!("{:.2e} s", c.program_time_s),
            c.adc_conversions.to_string(),
            c.cells_used.to_string(),
        ]);
    }

    ExtensionsResult {
        monolithic_irdrop: mono,
        tiled_irdrop: tiled,
        tile_rows,
        amp_plain: plain,
        amp_compensated: compensated,
        sigma,
        cost_table: ct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extensions_hold_their_claims() {
        let r = run(&Scale::bench());
        assert!(
            r.tiled_irdrop > r.monolithic_irdrop,
            "tiling {} must beat monolithic {} under heavy IR-drop",
            r.tiled_irdrop,
            r.monolithic_irdrop
        );
        assert!(
            r.amp_compensated >= r.amp_plain - 0.03,
            "compensation {} should not lose to plain {}",
            r.amp_compensated,
            r.amp_plain
        );
        let s = r.render();
        assert!(s.contains("tiling"));
        assert!(s.contains("Scheme overhead"));
    }
}
