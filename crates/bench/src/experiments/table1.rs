//! Table 1 — Vortex vs CLD at different crossbar sizes (§5.4).
//!
//! The benchmark is under-sampled from 28×28 to 14×14 and 7×7 (784 / 196
//! / 49 crossbar rows). With wire resistance 2.5 Ω:
//!
//! * CLD **with** IR-drop collapses on the large crossbar (skewed update
//!   rates leave most rows untrainable) and recovers as the array
//!   shrinks;
//! * Vortex **with** IR-drop stays near the CLD-without-IR-drop ceiling on
//!   the large crossbar (open-loop pulse pre-calculation compensates
//!   IR-drop) and loses only on the small, feature-starved benchmark;
//! * CLD **without** IR-drop tracks the intrinsic difficulty of the
//!   under-sampled images.

use vortex_core::cld::CldTrainer;
use vortex_core::pipeline::HardwareEnv;
use vortex_core::report::{pct, Table};
use vortex_core::tuning::SelfTuner;
use vortex_core::vortex::{VortexConfig, VortexPipeline};
use vortex_nn::executor::Parallelism;
use vortex_nn::metrics::Rates;

use super::common::Scale;

/// One crossbar-size column of the table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Column {
    /// Number of crossbar rows (784 / 196 / 49).
    pub rows: usize,
    /// CLD with IR-drop.
    pub cld_with_irdrop: Rates,
    /// Vortex with IR-drop.
    pub vortex_with_irdrop: Rates,
    /// CLD without IR-drop.
    pub cld_without_irdrop: Rates,
}

/// Full Table 1 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Result {
    /// One entry per crossbar size, largest first.
    pub columns: Vec<Table1Column>,
    /// Wire resistance used for the IR-drop rows.
    pub r_wire: f64,
    /// Device-variation σ.
    pub sigma: f64,
}

impl Table1Result {
    /// The table in the paper's layout, structured.
    pub fn tables(&self) -> Vec<Table> {
        let headers: Vec<String> = std::iter::once("scheme".to_string())
            .chain(self.columns.iter().map(|c| format!("{} rows", c.rows)))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(
            format!(
                "Table 1 — Vortex vs CLD at different sizes (r_wire = {} ohm, sigma = {})",
                self.r_wire, self.sigma
            ),
            &header_refs,
        );
        let row = |label: &str, f: &dyn Fn(&Table1Column) -> f64| {
            let mut cells = vec![label.to_string()];
            cells.extend(self.columns.iter().map(|c| pct(f(c))));
            cells
        };
        t.add_row(row("test: CLD w/ IR-drop", &|c| {
            c.cld_with_irdrop.test_rate
        }));
        t.add_row(row("test: Vortex w/ IR-drop", &|c| {
            c.vortex_with_irdrop.test_rate
        }));
        t.add_row(row("test: CLD w/o IR-drop", &|c| {
            c.cld_without_irdrop.test_rate
        }));
        t.add_row(row("train: CLD w/ IR-drop", &|c| {
            c.cld_with_irdrop.training_rate
        }));
        t.add_row(row("train: Vortex w/ IR-drop", &|c| {
            c.vortex_with_irdrop.training_rate
        }));
        t.add_row(row("train: CLD w/o IR-drop", &|c| {
            c.cld_without_irdrop.training_rate
        }));
        vec![t]
    }

    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        super::common::render_tables(&self.tables())
    }
}

/// Runs the experiment with the paper's r_wire = 2.5 Ω and σ = 0.6.
pub fn run(scale: &Scale) -> Table1Result {
    run_with(scale, 2.5, 0.6)
}

/// Runs the experiment with explicit wire resistance and σ.
///
/// # Panics
///
/// Panics only on internal configuration errors.
pub fn run_with(scale: &Scale, r_wire: f64, sigma: f64) -> Table1Result {
    let sides: &[usize] = if scale.n_train >= 1000 {
        &[28, 14, 7]
    } else {
        &[14, 7]
    };
    let redundant = if scale.n_train >= 1000 { 100 } else { 20 };
    let mut columns = Vec::with_capacity(sides.len());
    for &side in sides {
        let (train, test) = scale.dataset(side);
        let mut rng = scale.rng(100 + side as u64);

        let env_var = HardwareEnv::with_sigma(sigma).expect("valid sigma");
        let env_irdrop = env_var.with_ir_drop(r_wire);
        // Vortex compensates programming IR-drop (an OLD-family strength).
        let mut env_vortex = env_irdrop;
        env_vortex.compensate_program_irdrop = true;

        let cld = CldTrainer {
            epochs: scale.epochs.max(12),
            mc_draws: scale.mc_draws,
            ..CldTrainer::default()
        };
        // The paper's Table 1 assumes the pessimistic all-LRS loading for
        // the IR-drop profile (§3.2's worst case) — that is what collapses
        // CLD on the 784-row crossbar.
        let cld_with = CldTrainer {
            model_irdrop: true,
            worst_case_irdrop_profile: true,
            ..cld
        };
        let cld_with_irdrop = cld_with
            .run(&train, &test, &env_irdrop, &mut rng)
            .expect("CLD w/ IR-drop")
            .rates;
        let cld_without_irdrop = cld
            .run(&train, &test, &env_var, &mut rng)
            .expect("CLD w/o IR-drop")
            .rates;

        let vortex_cfg = VortexConfig {
            vat: scale.vat(),
            tuner: SelfTuner {
                gamma_grid: scale.gamma_grid(),
                mc_draws: scale.mc_draws.max(3),
                parallelism: Parallelism::Auto,
                ..SelfTuner::default()
            },
            redundant_rows: redundant,
            mc_draws: scale.mc_draws,
            parallelism: Parallelism::Auto,
            ..VortexConfig::default()
        };
        let vortex_with_irdrop = VortexPipeline::new(vortex_cfg)
            .run(&train, &test, &env_vortex, &mut rng)
            .expect("Vortex w/ IR-drop")
            .rates;

        columns.push(Table1Column {
            rows: side * side,
            cld_with_irdrop,
            vortex_with_irdrop,
            cld_without_irdrop,
        });
    }
    Table1Result {
        columns,
        r_wire,
        sigma,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ir_drop_does_not_help_cld() {
        let r = run_with(&Scale::bench(), 10.0, 0.6);
        for c in &r.columns {
            assert!(
                c.cld_with_irdrop.test_rate <= c.cld_without_irdrop.test_rate + 0.08,
                "{} rows: w/ {} vs w/o {}",
                c.rows,
                c.cld_with_irdrop.test_rate,
                c.cld_without_irdrop.test_rate
            );
        }
    }

    #[test]
    fn render_works() {
        let r = run_with(&Scale::bench(), 2.5, 0.6);
        let s = r.render();
        assert!(s.contains("Table 1"));
        assert!(s.contains("Vortex w/ IR-drop"));
        assert!(s.contains("196 rows"));
    }
}
