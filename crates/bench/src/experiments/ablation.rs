//! Ablation studies for the design choices called out in `DESIGN.md`:
//!
//! * how loose is the Chi-square penalty bound of Eq. (7);
//! * greedy SWV mapping vs cheaper mapping policies;
//! * iterative (CG/SOR) vs direct (dense LU) nodal solves;
//! * self-tuned γ vs a fixed γ across variation corners.

use vortex_core::amp::greedy::{greedy_map, RowMapping};
use vortex_core::amp::{sensitivity, swv};
use vortex_core::pipeline::{evaluate_hardware, HardwareEnv};
use vortex_core::rho::RhoConfig;
use vortex_core::tuning::SelfTuner;
use vortex_linalg::distributions::standard_normal;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::sparse::TripletBuilder;
use vortex_linalg::{iterative, lu, vector, Matrix};
use vortex_nn::metrics::accuracy_of_weights;

use super::common::Scale;

/// Tightness of the VAT penalty bound: the empirical 95th percentile of
/// the realized output deviation `|Σ x_q w_q θ_q|` vs the RMS-normalized
/// bound `ρ_rms·‖x ∘ w‖₂`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PenaltyBoundReport {
    /// Empirical 95th percentile of the deviation.
    pub empirical_q95: f64,
    /// The analytic bound used by VAT.
    pub bound: f64,
}

/// Measures the penalty-bound tightness by Monte Carlo.
///
/// # Panics
///
/// Panics only on invalid internal parameters.
pub fn penalty_bound_tightness(
    n: usize,
    sigma: f64,
    draws: usize,
    seed: u64,
) -> PenaltyBoundReport {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    // A representative input/weight pair.
    let x: Vec<f64> = (0..n).map(|_| rng.range_f64(0.0, 1.0)).collect();
    let w: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng) * 0.1).collect();
    let xw = vector::hadamard(&x, &w);
    let mut deviations: Vec<f64> = Vec::with_capacity(draws);
    for _ in 0..draws {
        let dev: f64 = xw
            .iter()
            .map(|&v| v * standard_normal(&mut rng) * sigma)
            .sum();
        deviations.push(dev.abs());
    }
    let empirical_q95 = vortex_linalg::stats::quantile(&deviations, 0.95);
    let rho_rms = RhoConfig::default().rho_rms(sigma, n).expect("valid rho");
    PenaltyBoundReport {
        empirical_q95,
        bound: rho_rms * vector::norm2(&xw),
    }
}

/// Residual summed weighted variation of three mapping policies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappingAblation {
    /// Greedy Algorithm 1 (sensitivity-ordered min-SWV).
    pub greedy: f64,
    /// Identity (no remapping).
    pub identity: f64,
    /// Random permutation.
    pub random: f64,
}

/// Compares mapping policies on random weights/multipliers.
///
/// # Panics
///
/// Panics only on invalid internal parameters.
pub fn mapping_ablation(m: usize, cols: usize, sigma: f64, seed: u64) -> MappingAblation {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let w = Matrix::from_fn(m, cols, |_, _| standard_normal(&mut rng));
    let mult = Matrix::from_fn(m, cols, |_, _| (standard_normal(&mut rng) * sigma).exp());
    let swv_m = swv::swv_matrix(&w, &mult).expect("swv");
    let xbar_sens = vec![1.0; m];
    let sens = sensitivity::row_sensitivity(&w, &xbar_sens);

    let total = |mapping: &RowMapping| -> f64 {
        (0..m)
            .map(|p| swv_m[(p, mapping.physical_row(p))])
            .sum::<f64>()
    };
    let greedy = total(&greedy_map(&sens, &swv_m).expect("greedy"));
    let identity = total(&RowMapping::identity(m));
    let mut perm: Vec<usize> = (0..m).collect();
    rng.shuffle(&mut perm);
    let random = total(&RowMapping::from_assignment(perm, m).expect("perm"));
    MappingAblation {
        greedy,
        identity,
        random,
    }
}

/// Agreement between the three solvers on one nodal-style system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverAblation {
    /// ∞-norm disagreement between CG and dense LU.
    pub cg_vs_dense: f64,
    /// ∞-norm disagreement between SOR and dense LU.
    pub sor_vs_dense: f64,
    /// CG iterations used.
    pub cg_iterations: usize,
}

/// Cross-validates the iterative solvers against dense LU on a mesh-like
/// SPD system of dimension `n`.
///
/// # Panics
///
/// Panics if any solver fails (they must not on this well-conditioned
/// system).
pub fn solver_ablation(n: usize, seed: u64) -> SolverAblation {
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
    let mut t = TripletBuilder::new(n, n);
    for i in 0..n {
        let device = 10f64.powf(rng.range_f64(-6.0, -4.0));
        t.add(i, i, 0.8 + device);
        if i > 0 {
            t.add(i, i - 1, -0.4);
            t.add(i - 1, i, -0.4);
        }
    }
    let a = t.build();
    let b: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).collect();
    // SOR on long chains converges slowly; give it a realistic budget.
    let opts = iterative::SolveOptions {
        max_iterations: 500_000,
        tolerance: 1e-9,
        omega: 1.6,
    };
    let cg = iterative::conjugate_gradient(&a, &b, None, &opts).expect("cg");
    let sor = iterative::sor(&a, &b, None, &opts).expect("sor");
    let dense = lu::solve(&a.to_dense(), &b).expect("lu");
    let diff = |x: &[f64], y: &[f64]| {
        x.iter()
            .zip(y)
            .map(|(u, v)| (u - v).abs())
            .fold(0.0_f64, f64::max)
    };
    SolverAblation {
        cg_vs_dense: diff(&cg.x, &dense),
        sor_vs_dense: diff(&sor.x, &dense),
        cg_iterations: cg.iterations,
    }
}

/// Hardware test rates of fixed-γ vs self-tuned VAT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelfTuneAblation {
    /// Fixed γ = 0 (conventional training).
    pub fixed_zero: f64,
    /// Fixed γ = 0.5.
    pub fixed_half: f64,
    /// Self-tuned γ.
    pub tuned: f64,
    /// The γ the tuner chose.
    pub tuned_gamma: f64,
}

/// Runs the self-tuning ablation at the given σ.
///
/// # Panics
///
/// Panics only on internal configuration errors.
pub fn selftune_ablation(scale: &Scale, sigma: f64) -> SelfTuneAblation {
    let (train, test) = scale.dataset(14);
    let env = HardwareEnv::with_sigma(sigma).expect("env");
    let mapping = RowMapping::identity(train.num_features());
    let mut rng = scale.rng(77);
    let eval = |w: &Matrix, rng: &mut Xoshiro256PlusPlus| {
        evaluate_hardware(w, &mapping, &env, &test, scale.mc_draws, rng)
            .expect("eval")
            .mean_test_rate
    };
    let base = scale.vat().with_sigma(sigma);
    let w0 = base.with_gamma(0.0).train(&train).expect("train");
    let w5 = base.with_gamma(0.5).train(&train).expect("train");
    let tuner = SelfTuner {
        gamma_grid: scale.gamma_grid(),
        mc_draws: scale.mc_draws.max(3),
        ..SelfTuner::default()
    };
    let tuned = tuner.tune(&base, &train).expect("tune");
    let _ = accuracy_of_weights(&tuned.weights, &train);
    SelfTuneAblation {
        fixed_zero: eval(&w0, &mut rng),
        fixed_half: eval(&w5, &mut rng),
        tuned: eval(&tuned.weights, &mut rng),
        tuned_gamma: tuned.best_gamma,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalty_bound_is_an_upper_guard_at_scale() {
        let r = penalty_bound_tightness(200, 0.6, 3000, 1);
        // The RMS bound should be of the right order: above the typical
        // deviation but not 10× above the 95th percentile.
        assert!(r.bound > 0.0);
        assert!(
            r.bound > r.empirical_q95 * 0.3,
            "bound {} vs q95 {}",
            r.bound,
            r.empirical_q95
        );
        assert!(
            r.bound < r.empirical_q95 * 3.0,
            "bound {} should not be wildly loose vs q95 {}",
            r.bound,
            r.empirical_q95
        );
    }

    #[test]
    fn greedy_mapping_beats_identity_and_random() {
        let r = mapping_ablation(40, 10, 0.8, 2);
        assert!(
            r.greedy <= r.identity,
            "greedy {} identity {}",
            r.greedy,
            r.identity
        );
        assert!(
            r.greedy <= r.random,
            "greedy {} random {}",
            r.greedy,
            r.random
        );
    }

    #[test]
    fn solvers_agree() {
        let r = solver_ablation(80, 3);
        assert!(r.cg_vs_dense < 1e-6, "cg vs dense {}", r.cg_vs_dense);
        assert!(r.sor_vs_dense < 1e-5, "sor vs dense {}", r.sor_vs_dense);
        assert!(r.cg_iterations > 0);
    }

    #[test]
    fn selftuned_gamma_is_competitive() {
        // Quick scale: a bench-scale validation split is too noisy for a
        // meaningful comparison.
        let r = selftune_ablation(&Scale::quick(), 0.8);
        let best_fixed = r.fixed_zero.max(r.fixed_half);
        assert!(
            r.tuned >= best_fixed - 0.08,
            "tuned {} should be near the best fixed {}",
            r.tuned,
            best_fixed
        );
        assert!((0.0..=1.0).contains(&r.tuned_gamma));
    }
}
