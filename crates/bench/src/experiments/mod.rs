//! One module per paper artifact. See the crate-level table.

pub mod ablation;
pub mod chaos;
pub mod common;
pub mod encoding;
pub mod extensions;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fleet;
pub mod lifetime;
pub mod runtime;
pub mod serve;
pub mod table1;
pub mod training;
