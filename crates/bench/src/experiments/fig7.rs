//! Fig. 7 — effectiveness of AMP (§5.1).
//!
//! The γ sweep of Fig. 4 repeated with and without per-chip adaptive
//! mapping. AMP reduces the *effective* variation the weights see, so the
//! with-AMP curve sits higher and peaks at a smaller γ.

use vortex_core::amp::greedy::RowMapping;
use vortex_core::amp::sensitivity::mean_abs_inputs;
use vortex_core::pipeline::{evaluate_hardware_with, HardwareEnv};
use vortex_core::report::{fixed, pct, Table};
use vortex_core::vortex::{amp_evaluate_with, AmpChipOptions};
use vortex_nn::executor::Parallelism;
use vortex_nn::metrics::accuracy_of_weights;

use super::common::Scale;

/// One γ point with both readings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig7Point {
    /// Penalty scale γ.
    pub gamma: f64,
    /// Training rate of the VAT weights.
    pub training_rate: f64,
    /// Hardware test rate without AMP (identity mapping).
    pub test_rate_before_amp: f64,
    /// Hardware test rate with AMP (pre-test + greedy mapping, no
    /// redundancy).
    pub test_rate_after_amp: f64,
}

/// Full Fig. 7 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Result {
    /// Sweep points in γ order.
    pub points: Vec<Fig7Point>,
    /// The device-variation σ used.
    pub sigma: f64,
}

impl Fig7Result {
    /// γ maximizing the before-AMP curve.
    pub fn best_gamma_before(&self) -> f64 {
        best_gamma(&self.points, |p| p.test_rate_before_amp)
    }

    /// γ maximizing the after-AMP curve.
    pub fn best_gamma_after(&self) -> f64 {
        best_gamma(&self.points, |p| p.test_rate_after_amp)
    }

    /// The figure as a structured table.
    pub fn tables(&self) -> Vec<Table> {
        let mut t = Table::new(
            format!("Fig. 7 — AMP effectiveness at sigma = {}", self.sigma),
            &[
                "gamma",
                "training rate",
                "test (before AMP)",
                "test (after AMP)",
            ],
        );
        for p in &self.points {
            t.add_row([
                fixed(p.gamma, 2),
                pct(p.training_rate),
                pct(p.test_rate_before_amp),
                pct(p.test_rate_after_amp),
            ]);
        }
        vec![t]
    }

    /// Renders the figure as a text table.
    pub fn render(&self) -> String {
        super::common::render_tables(&self.tables())
    }
}

fn best_gamma(points: &[Fig7Point], f: impl Fn(&Fig7Point) -> f64) -> f64 {
    points
        .iter()
        .max_by(|a, b| f(a).partial_cmp(&f(b)).unwrap_or(std::cmp::Ordering::Equal))
        .map_or(0.0, |p| p.gamma)
}

/// Runs the experiment at the paper's σ = 0.8 (Fig. 7/9 setting).
pub fn run(scale: &Scale) -> Fig7Result {
    run_with_sigma(scale, 0.8)
}

/// Runs the experiment at an explicit σ.
///
/// # Panics
///
/// Panics only on internal configuration errors.
pub fn run_with_sigma(scale: &Scale, sigma: f64) -> Fig7Result {
    let side = if scale.n_train >= 1000 { 28 } else { 14 };
    let (train, test) = scale.dataset(side);
    let env = HardwareEnv::with_sigma(sigma).expect("valid sigma");
    let mean_abs = mean_abs_inputs(&train);
    let amp_opts = AmpChipOptions::default();
    let identity = RowMapping::identity(train.num_features());
    let mut rng = scale.rng(7);
    let mut points = Vec::new();
    for gamma in scale.gamma_grid() {
        let trainer = scale.vat().with_sigma(sigma).with_gamma(gamma);
        let w = trainer.train(&train).expect("valid trainer");
        let training_rate = accuracy_of_weights(&w, &train);
        let before = evaluate_hardware_with(
            &w,
            &identity,
            &env,
            &test,
            scale.mc_draws,
            &mut rng,
            Parallelism::Auto,
        )
        .expect("hardware evaluation");
        let after = amp_evaluate_with(
            &w,
            &mean_abs,
            &amp_opts,
            &env,
            &test,
            scale.mc_draws,
            &mut rng,
            Parallelism::Auto,
        )
        .expect("AMP evaluation");
        points.push(Fig7Point {
            gamma,
            training_rate,
            test_rate_before_amp: before.mean_test_rate,
            test_rate_after_amp: after.mean_test_rate,
        });
    }
    Fig7Result { points, sigma }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amp_helps_on_average() {
        let r = run_with_sigma(&Scale::bench(), 0.8);
        let mean_before: f64 =
            r.points.iter().map(|p| p.test_rate_before_amp).sum::<f64>() / r.points.len() as f64;
        let mean_after: f64 =
            r.points.iter().map(|p| p.test_rate_after_amp).sum::<f64>() / r.points.len() as f64;
        assert!(
            mean_after > mean_before - 0.02,
            "AMP should help: before {mean_before} after {mean_after}"
        );
    }

    #[test]
    fn render_works() {
        let r = run_with_sigma(&Scale::bench(), 0.6);
        let s = r.render();
        assert!(s.contains("Fig. 7"));
        assert!((0.0..=1.0).contains(&r.best_gamma_before()));
        assert!((0.0..=1.0).contains(&r.best_gamma_after()));
    }
}
