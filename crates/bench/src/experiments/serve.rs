//! Serving throughput — requests/sec through the `vortex-serve`
//! scheduler, serial vs pooled micro-batching, plus a deterministic
//! degradation-ladder scenario (extension beyond the paper).
//!
//! The model is compiled once (fabricate → map → program → calibrate)
//! and shared across scheduler configurations via `Arc`. Two scenarios
//! are metered on the calibrated read path:
//!
//! * **serial** — closed-loop dispatch: one request in flight at a time
//!   (`submit_wait`, pool of one, `max_batch 1`). Every request pays the
//!   full round trip on its own — queue transaction, worker hand-off,
//!   inference, response hand-off — which is what request-at-a-time
//!   serving costs.
//! * **pooled** — open-loop burst: the whole trace is admitted while the
//!   scheduler is paused, then four workers drain it in micro-batches of
//!   up to `max_batch 64`, so those fixed costs amortize across a batch.
//!
//! The pooled clock runs from `resume()` to the last response — a pure
//! queue drain. On a single-core host the pooled gain is therefore the
//! batching gain, not hardware parallelism — which is the point: batching
//! pays even where threads cannot.
//!
//! The degradation scenario bursts more traffic than an `Exact`-fidelity
//! (per-sample IR-drop solve) primary can queue: admissions above the
//! high-water mark are downgraded to the `Calibrated` fallback, overflow
//! is rejected, and the run asserts the ladder releases after the drain.

use std::sync::Arc;
use std::time::{Duration, Instant};

use vortex_core::amp::greedy::RowMapping;
use vortex_core::pipeline::{HardwareEnv, ReadFidelity};
use vortex_core::report::{fixed, json_string, Table};
use vortex_nn::executor::Parallelism;
use vortex_runtime::CompiledModel;
use vortex_serve::{Scheduler, SchedulerConfig, ServeError, Ticket};

use super::common::Scale;

/// Pool size of the pooled scenario.
const POOL: usize = 4;
/// Micro-batch ceiling of the pooled scenario.
const MAX_BATCH: usize = 64;
/// Requests per metered drain pass.
const TRACE_LEN: usize = 256;
/// Degradation scenario: burst size and queue geometry.
const BURST: usize = 200;
const BURST_CAPACITY: usize = 128;
const HIGH_WATER: usize = 64;
const LOW_WATER: usize = 16;

/// Result of the serving throughput experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResult {
    /// Physical crossbar rows of the compiled model.
    pub rows: usize,
    /// Crossbar columns (= classes).
    pub cols: usize,
    /// Requests per metered drain pass.
    pub requests: usize,
    /// Worker count of the pooled scenario.
    pub pool: usize,
    /// Micro-batch ceiling of the pooled scenario.
    pub max_batch: usize,
    /// Serial (closed-loop, one request in flight) throughput,
    /// requests/sec.
    pub serial_sps: f64,
    /// Pooled micro-batching throughput, requests/sec.
    pub pooled_sps: f64,
    /// Degradation burst: requests admitted at `Exact` fidelity.
    pub exact_served: usize,
    /// Degradation burst: requests downgraded to the fallback.
    pub degraded_served: usize,
    /// Degradation burst: requests rejected by backpressure.
    pub rejected_full: usize,
    /// Whether the ladder released after the burst drained.
    pub recovered: bool,
}

impl ServeResult {
    /// Pooled speedup over serial.
    pub fn speedup(&self) -> f64 {
        if self.serial_sps > 0.0 {
            self.pooled_sps / self.serial_sps
        } else {
            0.0
        }
    }

    /// The experiment as structured tables.
    pub fn tables(&self) -> Vec<Table> {
        let mut t = Table::new(
            format!(
                "Serving throughput — {}x{} compiled model, {} requests/pass",
                self.rows, self.cols, self.requests
            ),
            &["scenario", "workers", "max batch", "requests/sec"],
        );
        t.add_row([
            "serial".to_string(),
            "1".to_string(),
            "1".to_string(),
            fixed(self.serial_sps, 0),
        ]);
        t.add_row([
            "pooled".to_string(),
            self.pool.to_string(),
            self.max_batch.to_string(),
            fixed(self.pooled_sps, 0),
        ]);
        let mut d = Table::new(
            format!(
                "Degradation ladder — burst {} at capacity {}, watermarks {}/{}",
                BURST, BURST_CAPACITY, HIGH_WATER, LOW_WATER
            ),
            &["outcome", "requests"],
        );
        d.add_row(["served exact".to_string(), self.exact_served.to_string()]);
        d.add_row([
            "served degraded".to_string(),
            self.degraded_served.to_string(),
        ]);
        d.add_row([
            "rejected (queue full)".to_string(),
            self.rejected_full.to_string(),
        ]);
        d.add_row(["ladder recovered".to_string(), self.recovered.to_string()]);
        vec![t, d]
    }

    /// Renders the experiment as text tables plus a summary line.
    pub fn render(&self) -> String {
        let mut out = super::common::render_tables(&self.tables());
        out.push_str(&format!(
            "pooled speedup {:.2}x over serial dispatch\n",
            self.speedup()
        ));
        out
    }

    /// Machine-readable summary (the `BENCH_serve.json` payload): flat
    /// throughput fields plus the structured tables.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"rows\":{},\"cols\":{},\"requests\":{},\"pool\":{},\"max_batch\":{},",
                "\"serial_samples_per_sec\":{:.3},\"pooled_samples_per_sec\":{:.3},",
                "\"speedup\":{:.4},\"exact_served\":{},\"degraded_served\":{},",
                "\"rejected_full\":{},\"recovered\":{},\"tables\":{}}}"
            ),
            self.rows,
            self.cols,
            self.requests,
            self.pool,
            self.max_batch,
            self.serial_sps,
            self.pooled_sps,
            self.speedup(),
            self.exact_served,
            self.degraded_served,
            self.rejected_full,
            self.recovered,
            super::common::tables_to_json(&self.tables()),
        )
    }
}

/// Validates a JSON fragment claim used by the binary's writer tests.
pub fn json_field(json: &str, key: &str) -> bool {
    json.contains(&format!("{}:", json_string(key)))
}

/// Meters closed-loop serial dispatch: one scheduler worker, `max_batch
/// 1`, and a synchronous client — each request is submitted with
/// [`Scheduler::submit_wait`] only after the previous response arrived,
/// so exactly one request is ever in flight.
fn meter_closed_loop(model: &Arc<CompiledModel>, trace: &[Vec<f64>]) -> f64 {
    let floor_s = 0.15;
    let scheduler = Scheduler::new(
        Arc::clone(model),
        None,
        SchedulerConfig::new(Parallelism::Fixed(1))
            .with_queue_capacity(trace.len())
            .with_batching(1, Duration::ZERO),
    )
    .expect("valid scheduler config");
    let start = Instant::now();
    let mut served = 0usize;
    loop {
        for x in trace {
            scheduler
                .submit_wait(x.clone())
                .expect("closed-loop response");
        }
        served += trace.len();
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= floor_s {
            return served as f64 / elapsed;
        }
    }
}

/// Meters one pooled scheduler configuration as repeated pure queue
/// drains: prefill the paused queue with the whole trace, then time
/// `resume()` → last response, repeating passes until a wall-clock floor.
fn meter(
    model: &Arc<CompiledModel>,
    trace: &[Vec<f64>],
    pool: Parallelism,
    max_batch: usize,
) -> f64 {
    let floor_s = 0.15;
    let mut drained_s = 0.0;
    let mut served = 0usize;
    while drained_s < floor_s {
        let scheduler = Scheduler::new(
            Arc::clone(model),
            None,
            SchedulerConfig::new(pool)
                .with_queue_capacity(trace.len())
                .with_batching(max_batch, Duration::ZERO)
                .paused(),
        )
        .expect("valid scheduler config");
        let tickets: Vec<Ticket> = trace
            .iter()
            .map(|x| {
                scheduler
                    .try_submit(x.clone(), None)
                    .expect("prefill fits the queue")
            })
            .collect();
        let start = Instant::now();
        scheduler.resume();
        // Wait back-to-front: the last response lands near the end of the
        // drain, so the remaining waits find their channel already filled
        // and the meter measures the scheduler, not 256 thread parks.
        for ticket in tickets.into_iter().rev() {
            ticket.wait().expect("drain answers every request");
        }
        drained_s += start.elapsed().as_secs_f64();
        served += trace.len();
        scheduler.shutdown();
    }
    served as f64 / drained_s
}

/// Runs the experiment: compile once, meter serial vs pooled drains, then
/// the deterministic degradation burst.
///
/// # Panics
///
/// Panics only on internal configuration errors (the defaults are valid).
pub fn run(scale: &Scale) -> ServeResult {
    // The side-7 benchmark keeps the per-sample read cheap, so the
    // scheduler's dispatch overhead — the thing micro-batching amortizes —
    // dominates the serial scenario.
    let (train, test) = scale.dataset(7);
    let weights = scale.gdt().train(&train).expect("training");
    let mapping = RowMapping::identity(weights.rows());
    let env = HardwareEnv::with_sigma(0.4)
        .expect("valid sigma")
        .with_ir_drop(5.0);
    let mut rng = scale.rng(77);
    let compiler = env.compiler().with_calibration(&test.mean_input());
    // One programmed pair, frozen twice: the calibrated model serves the
    // throughput scenarios and doubles as the degradation fallback; the
    // exact freeze is the degradation primary.
    let pair = compiler
        .program(&weights, &mapping, &mut rng)
        .expect("programming");
    let calibrated = Arc::new(compiler.freeze(&pair, &mapping).expect("calibrated freeze"));
    let mut exact_env = env;
    exact_env.read_fidelity = ReadFidelity::ExactIrDrop;
    let exact = Arc::new(
        exact_env
            .compiler()
            .with_calibration(&test.mean_input())
            .freeze(&pair, &mapping)
            .expect("exact freeze"),
    );

    let trace: Vec<Vec<f64>> = (0..TRACE_LEN)
        .map(|k| test.image(k % test.len()).to_vec())
        .collect();
    let serial_sps = meter_closed_loop(&calibrated, &trace);
    let pooled_sps = meter(&calibrated, &trace, Parallelism::Fixed(POOL), MAX_BATCH);

    let (exact_served, degraded_served, rejected_full, recovered) =
        degradation_burst(&exact, &calibrated, &trace);

    ServeResult {
        rows: calibrated.rows(),
        cols: calibrated.classes(),
        requests: trace.len(),
        pool: POOL,
        max_batch: MAX_BATCH,
        serial_sps,
        pooled_sps,
        exact_served,
        degraded_served,
        rejected_full,
        recovered,
    }
}

/// The deterministic overload burst: more traffic than the queue holds,
/// admitted while the pool is paused so every ladder decision is a pure
/// function of queue depth.
fn degradation_burst(
    exact: &Arc<CompiledModel>,
    calibrated: &Arc<CompiledModel>,
    trace: &[Vec<f64>],
) -> (usize, usize, usize, bool) {
    let scheduler = Scheduler::new(
        Arc::clone(exact),
        Some(Arc::clone(calibrated)),
        SchedulerConfig::new(Parallelism::Fixed(1))
            .with_queue_capacity(BURST_CAPACITY)
            .with_batching(MAX_BATCH, Duration::ZERO)
            .with_watermarks(HIGH_WATER, LOW_WATER)
            .paused(),
    )
    .expect("valid scheduler config");
    let mut tickets = Vec::new();
    let mut rejected_full = 0usize;
    for k in 0..BURST {
        match scheduler.try_submit(trace[k % trace.len()].clone(), None) {
            Ok(t) => tickets.push(t),
            Err(ServeError::QueueFull { .. }) => rejected_full += 1,
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    scheduler.resume();
    let mut exact_served = 0usize;
    let mut degraded_served = 0usize;
    for ticket in tickets {
        let p = ticket.wait().expect("burst responses");
        if p.downgraded {
            degraded_served += 1;
        } else {
            exact_served += 1;
        }
    }
    // The drain crossed the low-water mark, so a fresh probe must be
    // served at primary fidelity again.
    let probe = scheduler
        .submit_wait(trace[0].clone())
        .expect("probe after drain");
    let recovered = !scheduler.is_degraded() && !probe.downgraded;
    (exact_served, degraded_served, rejected_full, recovered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_positive_and_degradation_is_exact() {
        let r = run(&Scale::bench());
        assert!(r.serial_sps > 0.0 && r.pooled_sps > 0.0);
        assert_eq!(r.requests, TRACE_LEN);
        assert_eq!(r.rows, 49, "side-7 physical rows");
        assert_eq!(r.cols, 10);
        // The burst's admission decisions are a pure function of queue
        // depth, so the split is exact: the ladder engages on the push
        // that reaches the high-water mark and every later admission is
        // degraded until the queue fills.
        assert_eq!(r.exact_served, HIGH_WATER - 1);
        assert_eq!(r.degraded_served, BURST_CAPACITY - (HIGH_WATER - 1));
        assert_eq!(r.rejected_full, BURST - BURST_CAPACITY);
        assert!(r.recovered, "ladder must release after the drain");
    }

    #[test]
    fn render_and_json_carry_the_headline_fields() {
        let r = run(&Scale::bench());
        let s = r.render();
        assert!(s.contains("Serving throughput"));
        assert!(s.contains("Degradation ladder"));
        let j = r.to_json();
        for key in [
            "rows",
            "cols",
            "requests",
            "pool",
            "max_batch",
            "serial_samples_per_sec",
            "pooled_samples_per_sec",
            "speedup",
            "exact_served",
            "degraded_served",
            "rejected_full",
            "recovered",
            "tables",
        ] {
            assert!(json_field(&j, key), "missing {key} in {j}");
        }
    }
}
