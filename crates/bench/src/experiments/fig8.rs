//! Fig. 8 — ADC resolution vs test rate (§5.2).
//!
//! The pre-test ADC bounds how accurately AMP can estimate each device's
//! variation, and therefore how well its mapping works. Sweeping 4–10
//! bits at several σ: low resolution (4/5-bit) visibly limits the test
//! rate; the curves saturate around 6 bits.

use vortex_core::amp::sensitivity::mean_abs_inputs;
use vortex_core::pipeline::HardwareEnv;
use vortex_core::report::{pct, Table};
use vortex_core::vortex::{amp_evaluate_with, AmpChipOptions};

use super::common::Scale;
use vortex_nn::executor::Parallelism;

/// One (bits, σ) measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Point {
    /// Pre-test ADC resolution in bits.
    pub bits: u32,
    /// Device-variation σ.
    pub sigma: f64,
    /// Mean hardware test rate (VAT weights + AMP mapping).
    pub test_rate: f64,
}

/// Full Fig. 8 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Result {
    /// Points, grouped by σ then bits.
    pub points: Vec<Fig8Point>,
    /// σ values swept.
    pub sigmas: Vec<f64>,
    /// Bit range swept.
    pub bits: Vec<u32>,
}

impl Fig8Result {
    /// The test rate at a given (bits, σ), if measured.
    pub fn at(&self, bits: u32, sigma: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.bits == bits && (p.sigma - sigma).abs() < 1e-12)
            .map(|p| p.test_rate)
    }

    /// The figure as a structured table (one row per bit count).
    pub fn tables(&self) -> Vec<Table> {
        let headers: Vec<String> = std::iter::once("ADC bits".to_string())
            .chain(self.sigmas.iter().map(|s| format!("sigma={s}")))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(
            "Fig. 8 — pre-test ADC resolution vs test rate",
            &header_refs,
        );
        for &bits in &self.bits {
            let mut row = vec![bits.to_string()];
            for &sigma in &self.sigmas {
                row.push(self.at(bits, sigma).map_or("-".into(), pct));
            }
            t.add_row(row);
        }
        vec![t]
    }

    /// Renders the figure as a text table.
    pub fn render(&self) -> String {
        super::common::render_tables(&self.tables())
    }
}

/// Runs the experiment (γ fixed at 0.2 — the paper's post-AMP optimum —
/// no redundancy, as §5.2 specifies).
///
/// # Panics
///
/// Panics only on internal configuration errors.
pub fn run(scale: &Scale) -> Fig8Result {
    let side = if scale.n_train >= 1000 { 28 } else { 14 };
    let (train, test) = scale.dataset(side);
    let mean_abs = mean_abs_inputs(&train);
    let sigmas = vec![0.4, 0.6, 0.8];
    let bits: Vec<u32> = (4..=10).collect();
    let mut rng = scale.rng(8);
    let mut points = Vec::new();
    for &sigma in &sigmas {
        let trainer = scale.vat().with_sigma(sigma).with_gamma(0.2);
        let w = trainer.train(&train).expect("valid trainer");
        let env = HardwareEnv::with_sigma(sigma).expect("valid sigma");
        for &b in &bits {
            let opts = AmpChipOptions {
                pretest_bits: b,
                ..AmpChipOptions::default()
            };
            let eval = amp_evaluate_with(
                &w,
                &mean_abs,
                &opts,
                &env,
                &test,
                scale.mc_draws,
                &mut rng,
                Parallelism::Auto,
            )
            .expect("AMP evaluation");
            points.push(Fig8Point {
                bits: b,
                sigma,
                test_rate: eval.mean_test_rate,
            });
        }
    }
    Fig8Result {
        points,
        sigmas,
        bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_around_six_bits() {
        let r = run(&Scale::bench());
        for &sigma in &r.sigmas {
            let at6 = r.at(6, sigma).unwrap();
            let at10 = r.at(10, sigma).unwrap();
            // Going past 6 bits buys little.
            assert!(
                at10 - at6 < 0.15,
                "σ={sigma}: 6-bit {at6} vs 10-bit {at10} — should be near saturation"
            );
        }
    }

    #[test]
    fn larger_sigma_lower_rate_at_fixed_bits() {
        let r = run(&Scale::bench());
        let low = r.at(8, 0.4).unwrap();
        let high = r.at(8, 0.8).unwrap();
        assert!(
            high <= low + 0.1,
            "σ=0.8 ({high}) should not beat σ=0.4 ({low}) by much"
        );
    }

    #[test]
    fn render_works() {
        let r = run(&Scale::bench());
        let s = r.render();
        assert!(s.contains("Fig. 8"));
        assert!(s.contains("sigma=0.6"));
    }
}
