//! Fig. 9 — design redundancy vs test rate (§5.3).
//!
//! At σ = 0.8 and increasing redundant-row budgets `p`, compare Vortex
//! (VAT + AMP), VAT alone, and AMP alone, against the OLD and CLD
//! baselines (which use no redundancy). Expected shape: redundancy helps,
//! but the test rate is dominated by variation; Vortex without redundancy
//! already beats both baselines.

use vortex_core::amp::greedy::RowMapping;
use vortex_core::amp::sensitivity::mean_abs_inputs;
use vortex_core::cld::CldTrainer;
use vortex_core::old::OldPipeline;
use vortex_core::pipeline::{evaluate_hardware_with, HardwareEnv};
use vortex_core::report::{pct, Table};
use vortex_core::tuning::SelfTuner;
use vortex_core::vortex::{amp_evaluate_with, AmpChipOptions};
use vortex_nn::executor::Parallelism;
use vortex_nn::metrics::accuracy_of_weights;

use super::common::Scale;

/// One redundancy point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig9Point {
    /// Redundant rows `p`.
    pub redundant_rows: usize,
    /// Vortex (tuned VAT + AMP).
    pub vortex: f64,
    /// VAT alone (tuned γ, identity mapping — redundancy unused).
    pub vat_only: f64,
    /// AMP alone (plain GDT weights + AMP mapping).
    pub amp_only: f64,
}

/// Full Fig. 9 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Result {
    /// Redundancy sweep.
    pub points: Vec<Fig9Point>,
    /// OLD baseline test rate (no redundancy).
    pub old_baseline: f64,
    /// CLD baseline test rate (no redundancy).
    pub cld_baseline: f64,
    /// σ used.
    pub sigma: f64,
    /// The tuned γ Vortex selected.
    pub tuned_gamma: f64,
}

impl Fig9Result {
    /// The figure as a structured table.
    pub fn tables(&self) -> Vec<Table> {
        let mut t = Table::new(
            format!(
                "Fig. 9 — redundancy vs test rate at sigma = {} (OLD {} / CLD {})",
                self.sigma,
                pct(self.old_baseline),
                pct(self.cld_baseline)
            ),
            &["extra rows p", "Vortex", "VAT only", "AMP only"],
        );
        for p in &self.points {
            t.add_row([
                p.redundant_rows.to_string(),
                pct(p.vortex),
                pct(p.vat_only),
                pct(p.amp_only),
            ]);
        }
        vec![t]
    }

    /// Renders the figure as a text table.
    pub fn render(&self) -> String {
        super::common::render_tables(&self.tables())
    }
}

/// Runs the experiment at the paper's σ = 0.8.
pub fn run(scale: &Scale) -> Fig9Result {
    run_with_sigma(scale, 0.8)
}

/// Runs the experiment at an explicit σ.
///
/// # Panics
///
/// Panics only on internal configuration errors.
pub fn run_with_sigma(scale: &Scale, sigma: f64) -> Fig9Result {
    let side = if scale.n_train >= 1000 { 28 } else { 14 };
    let (train, test) = scale.dataset(side);
    let n = train.num_features();
    let env = HardwareEnv::with_sigma(sigma).expect("valid sigma");
    let mean_abs = mean_abs_inputs(&train);
    let mut rng = scale.rng(9);

    // Tune γ once (the paper fixes the scheme, then sweeps p).
    let tuner = SelfTuner {
        gamma_grid: scale.gamma_grid(),
        mc_draws: scale.mc_draws.max(3),
        parallelism: Parallelism::Auto,
        ..SelfTuner::default()
    };
    let tuned = tuner
        .tune(&scale.vat().with_sigma(sigma), &train)
        .expect("tuning");
    let w_vat = tuned.weights.clone();
    let w_gdt = scale.gdt().train(&train).expect("gdt training");
    let identity = RowMapping::identity(n);

    // Baselines (no redundancy).
    let old = OldPipeline {
        trainer: scale.gdt(),
        mc_draws: scale.mc_draws,
    }
    .run(&train, &test, &env, &mut rng)
    .expect("OLD baseline");
    let cld = CldTrainer {
        epochs: scale.epochs.max(12),
        mc_draws: scale.mc_draws,
        ..CldTrainer::default()
    }
    .run(&train, &test, &env, &mut rng)
    .expect("CLD baseline");

    let redundancies: &[usize] = if scale.n_train >= 1000 {
        &[0, 50, 100, 200]
    } else {
        &[0, 10, 25, 50]
    };
    let mut points = Vec::with_capacity(redundancies.len());
    // VAT-only does not use redundancy: evaluate once.
    let vat_only = evaluate_hardware_with(
        &w_vat,
        &identity,
        &env,
        &test,
        scale.mc_draws,
        &mut rng,
        Parallelism::Auto,
    )
    .expect("VAT-only evaluation")
    .mean_test_rate;
    for &p in redundancies {
        let opts = AmpChipOptions {
            redundant_rows: p,
            ..AmpChipOptions::default()
        };
        let vortex = amp_evaluate_with(
            &w_vat,
            &mean_abs,
            &opts,
            &env,
            &test,
            scale.mc_draws,
            &mut rng,
            Parallelism::Auto,
        )
        .expect("Vortex evaluation")
        .mean_test_rate;
        let amp_only = amp_evaluate_with(
            &w_gdt,
            &mean_abs,
            &opts,
            &env,
            &test,
            scale.mc_draws,
            &mut rng,
            Parallelism::Auto,
        )
        .expect("AMP-only evaluation")
        .mean_test_rate;
        points.push(Fig9Point {
            redundant_rows: p,
            vortex,
            vat_only,
            amp_only,
        });
    }
    let _ = accuracy_of_weights(&w_vat, &train);
    Fig9Result {
        points,
        old_baseline: old.rates.test_rate,
        cld_baseline: cld.rates.test_rate,
        sigma,
        tuned_gamma: tuned.best_gamma,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vortex_beats_old_baseline() {
        let r = run_with_sigma(&Scale::bench(), 0.8);
        let no_redundancy = &r.points[0];
        assert!(
            no_redundancy.vortex > r.old_baseline - 0.03,
            "Vortex {} vs OLD {}",
            no_redundancy.vortex,
            r.old_baseline
        );
    }

    #[test]
    fn redundancy_does_not_hurt() {
        let r = run_with_sigma(&Scale::bench(), 0.8);
        let first = r.points.first().unwrap().vortex;
        let last = r.points.last().unwrap().vortex;
        assert!(
            last > first - 0.06,
            "more redundancy should not hurt much: p=0 {first} vs max {last}"
        );
    }

    #[test]
    fn render_works() {
        let r = run_with_sigma(&Scale::bench(), 0.6);
        let s = r.render();
        assert!(s.contains("Fig. 9"));
        assert!(s.contains("Vortex"));
    }
}
