//! Fig. 3 — IR-drop programming-voltage degradation and its β/D
//! decomposition (§3.2).
//!
//! For the all-LRS worst case the paper decomposes the degradation trend
//! into a horizontal per-column factor β and a vertical diagonal `D`, and
//! reports that the skew of `D` passes 2 as the crossbar grows past the
//! low hundreds of rows; through the sinh switching nonlinearity the
//! *update-rate* skew grows much faster still (the "Δw₁ⱼ < Δwₙⱼ/1000"
//! remark).

use vortex_core::report::{fixed, Table};
use vortex_device::DeviceParams;
use vortex_linalg::Matrix;
use vortex_nn::executor::{run_trials, Parallelism};
use vortex_xbar::circuit::NodalAnalysis;
use vortex_xbar::irdrop::{decompose_beta_d, skewness, update_rate_profile, ProgramVoltageMap};

use super::common::Scale;

/// One crossbar-size point.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Point {
    /// Number of rows n (columns fixed at 10, as in the paper's NCS).
    pub rows: usize,
    /// Worst programming-voltage factor over the array.
    pub worst_voltage_factor: f64,
    /// Skew `max(d)/min(d)` of the vertical voltage profile.
    pub voltage_skew: f64,
    /// Skew of the switching-domain update-rate profile (column 0).
    pub update_rate_skew: f64,
    /// Mean horizontal factor β.
    pub beta_mean: f64,
    /// Whether the analytic map was cross-checked against the exact mesh
    /// solve (small sizes only).
    pub exact_checked: bool,
    /// Max |analytic − exact| factor error when checked.
    pub exact_error: f64,
}

/// Full Fig. 3 result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Result {
    /// Size-sweep points.
    pub points: Vec<Fig3Point>,
    /// Wire resistance used.
    pub r_wire: f64,
}

impl Fig3Result {
    /// The figure as a structured table.
    pub fn tables(&self) -> Vec<Table> {
        let mut t = Table::new(
            format!(
                "Fig. 3 — IR-drop degradation, all-LRS worst case (r_wire = {} ohm)",
                self.r_wire
            ),
            &[
                "rows",
                "worst V factor",
                "voltage skew",
                "update-rate skew",
                "beta mean",
                "exact err",
            ],
        );
        for p in &self.points {
            t.add_row([
                p.rows.to_string(),
                fixed(p.worst_voltage_factor, 3),
                fixed(p.voltage_skew, 3),
                if p.update_rate_skew.is_finite() {
                    fixed(p.update_rate_skew, 1)
                } else {
                    "inf".to_string()
                },
                fixed(p.beta_mean, 3),
                if p.exact_checked {
                    fixed(p.exact_error, 3)
                } else {
                    "-".to_string()
                },
            ]);
        }
        vec![t]
    }

    /// Renders the figure as a text table.
    pub fn render(&self) -> String {
        super::common::render_tables(&self.tables())
    }
}

/// Runs the experiment with the paper's r_wire = 2.5 Ω.
pub fn run(scale: &Scale) -> Fig3Result {
    run_with_wire(scale, 2.5)
}

/// Runs the experiment with an explicit wire resistance.
///
/// # Panics
///
/// Panics only on internal model errors (inputs are fixed valid values).
pub fn run_with_wire(scale: &Scale, r_wire: f64) -> Fig3Result {
    let device = DeviceParams::default();
    let cols = 10;
    let sizes: &[usize] = if scale.n_train >= 1000 {
        &[16, 32, 64, 128, 256, 512, 784]
    } else {
        &[16, 32, 64, 128]
    };
    // The IR-drop analysis is deterministic (no variation draws), but each
    // size point solves an independent mesh, so the sweep shards cleanly
    // over the worker pool; output order and values are identical to the
    // serial loop.
    let mut rng = scale.rng(3);
    let points = run_trials(&mut rng, sizes.len(), Parallelism::Auto, |k, _| {
        let rows = sizes[k];
        let g = Matrix::filled(rows, cols, device.g_on()); // all LRS
        let map =
            ProgramVoltageMap::analytic(&g, r_wire, device.v_program()).expect("valid params");
        let (beta, d) = decompose_beta_d(&map);
        let rate_profile = update_rate_profile(&map, &device, 0);
        let (exact_checked, exact_error) = if rows <= 32 {
            let na = NodalAnalysis::new(rows, cols, r_wire).expect("valid mesh");
            let exact =
                ProgramVoltageMap::from_exact(&na, &g, device.v_program()).expect("mesh solve");
            let mut err = 0.0_f64;
            for i in 0..rows {
                for j in 0..cols {
                    err = err.max((map.factor(i, j) - exact.factor(i, j)).abs());
                }
            }
            (true, err)
        } else {
            (false, 0.0)
        };
        Fig3Point {
            rows,
            worst_voltage_factor: map.worst_factor(),
            voltage_skew: skewness(&d),
            update_rate_skew: skewness(&rate_profile),
            beta_mean: beta.iter().sum::<f64>() / beta.len() as f64,
            exact_checked,
            exact_error,
        }
    });
    Fig3Result { points, r_wire }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_grows_with_size() {
        let r = run(&Scale::bench());
        assert!(r.points.len() >= 4);
        let first = r.points.first().unwrap();
        let last = r.points.last().unwrap();
        assert!(last.voltage_skew > first.voltage_skew);
        assert!(last.worst_voltage_factor < first.worst_voltage_factor);
        // Update-rate skew dominates voltage skew everywhere.
        for p in &r.points {
            assert!(
                p.update_rate_skew >= p.voltage_skew - 1e-9,
                "rows {}: rate skew {} < voltage skew {}",
                p.rows,
                p.update_rate_skew,
                p.voltage_skew
            );
        }
    }

    #[test]
    fn analytic_matches_exact_on_small_meshes() {
        let r = run(&Scale::bench());
        for p in r.points.iter().filter(|p| p.exact_checked) {
            assert!(
                p.exact_error < 0.12,
                "rows {}: analytic vs exact error {}",
                p.rows,
                p.exact_error
            );
        }
    }

    #[test]
    fn update_rate_skew_crosses_two_by_the_low_hundreds() {
        // The paper's d₁₁/dₙₙ > 2 claim for n > 128 (all-LRS worst case).
        let r = run(&Scale::bench());
        let at_128 = r.points.iter().find(|p| p.rows == 128).unwrap();
        assert!(
            at_128.update_rate_skew > 2.0,
            "update-rate skew at 128 rows: {}",
            at_128.update_rate_skew
        );
    }

    #[test]
    fn render_works() {
        let r = run(&Scale::bench());
        assert!(r.render().contains("Fig. 3"));
    }
}
