//! Experiment harness regenerating every table and figure of the Vortex
//! paper (DAC 2015).
//!
//! Each module under [`experiments`] implements one figure/table as a
//! pure function from an [`experiments::common::Scale`] to a structured
//! result with a text renderer. The `experiments` binary drives them from
//! the command line; the Criterion benches time reduced-scale versions;
//! the workspace integration tests assert the qualitative shapes.
//!
//! | Paper artifact | Module |
//! |---|---|
//! | Fig. 1 (device preliminaries) | [`experiments::fig1`] |
//! | Fig. 2 (column training vs σ) | [`experiments::fig2`] |
//! | Fig. 3 (IR-drop decomposition) | [`experiments::fig3`] |
//! | Fig. 4 (γ tradeoff) | [`experiments::fig4`] |
//! | Fig. 7 (AMP effectiveness) | [`experiments::fig7`] |
//! | Fig. 8 (ADC resolution) | [`experiments::fig8`] |
//! | Fig. 9 (design redundancy) | [`experiments::fig9`] |
//! | Table 1 (crossbar sizes) | [`experiments::table1`] |
//! | Runtime throughput (extension) | [`experiments::runtime`] |
//! | Serving throughput (extension) | [`experiments::serve`] |
//! | Self-healing chaos (extension) | [`experiments::chaos`] |
//! | Fleet serving + ensemble (extension) | [`experiments::fleet`] |
//! | Lifetime policy race (extension) | [`experiments::lifetime`] |

#![warn(missing_docs)]

pub mod experiments;
pub mod gate;
pub mod traffic;

pub use experiments::common::Scale;
