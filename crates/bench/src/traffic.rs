//! Seeded open-loop traffic generation: arrival processes for the fleet
//! load harness.
//!
//! Serving experiments need *open-loop* traffic — arrivals that keep
//! coming whether or not the server keeps up, because that is the regime
//! where queues actually grow and tails actually form. This module
//! provides the arrival side as a standalone, fully deterministic
//! iterator: a [`TrafficGen`] seeded with the same value yields a
//! bit-identical sequence of `f64` arrival times, which is what makes
//! the `fleet` experiment's latency tables exactly reproducible.
//!
//! Three processes cover the scenarios the fleet harness drives:
//!
//! * [`ArrivalProcess::poisson`] — memoryless arrivals at a constant
//!   rate; the classic open-loop baseline.
//! * [`ArrivalProcess::poisson_burst`] — a square-wave rate: every
//!   `period` virtual seconds the rate jumps from `base_rate` to
//!   `burst_rate` for `burst_fraction` of the period. This is the 2×
//!   overload burst of the fleet experiment.
//! * [`ArrivalProcess::diurnal_ramp`] — a raised-cosine rate between
//!   `base_rate` and `peak_rate` with period `period`; a one-day load
//!   curve compressed to virtual seconds.
//!
//! Non-homogeneous processes are sampled by Lewis–Shedler thinning
//! against the peak rate, which is *exact* (not a piecewise
//! approximation) and consumes randomness in a fixed order, so
//! determinism holds regardless of the rate shape.
//!
//! [`Workload`] layers a multi-tenant mix on top: each arrival is
//! assigned a tenant (weighted, from an independent substream so the
//! arrival-time trace is identical with or without a mix) carrying that
//! tenant's relative deadline.

use vortex_linalg::rng::Xoshiro256PlusPlus;

/// The rate shape of an open-loop arrival process. Times and rates are
/// in *virtual* seconds — the fleet experiment replays them through a
/// discrete-event simulation, so no wall clock is involved.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at `rate` per virtual second.
    Poisson {
        /// Mean arrivals per virtual second.
        rate: f64,
    },
    /// Square-wave rate: `burst_rate` for the first `burst_fraction` of
    /// every `period`, `base_rate` for the rest.
    PoissonBurst {
        /// Off-burst arrivals per virtual second.
        base_rate: f64,
        /// In-burst arrivals per virtual second.
        burst_rate: f64,
        /// Length of one base+burst cycle, virtual seconds.
        period: f64,
        /// Fraction of each period spent bursting, in `(0, 1)`.
        burst_fraction: f64,
    },
    /// Raised-cosine rate between `base_rate` (at phase 0) and
    /// `peak_rate` (at phase ½) with the given `period` — a diurnal
    /// load curve.
    DiurnalRamp {
        /// Trough arrivals per virtual second.
        base_rate: f64,
        /// Peak arrivals per virtual second.
        peak_rate: f64,
        /// Length of one day, virtual seconds.
        period: f64,
    },
}

impl ArrivalProcess {
    /// Constant-rate Poisson arrivals.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is finite and positive.
    pub fn poisson(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        Self::Poisson { rate }
    }

    /// Square-wave burst arrivals (see [`ArrivalProcess::PoissonBurst`]).
    ///
    /// # Panics
    ///
    /// Panics unless both rates are finite and positive with
    /// `burst_rate >= base_rate`, `period` is finite and positive, and
    /// `burst_fraction` lies in `(0, 1)`.
    pub fn poisson_burst(
        base_rate: f64,
        burst_rate: f64,
        period: f64,
        burst_fraction: f64,
    ) -> Self {
        assert!(
            base_rate.is_finite() && base_rate > 0.0,
            "base_rate must be positive"
        );
        assert!(
            burst_rate.is_finite() && burst_rate >= base_rate,
            "burst_rate must be >= base_rate"
        );
        assert!(
            period.is_finite() && period > 0.0,
            "period must be positive"
        );
        assert!(
            burst_fraction > 0.0 && burst_fraction < 1.0,
            "burst_fraction must lie in (0, 1)"
        );
        Self::PoissonBurst {
            base_rate,
            burst_rate,
            period,
            burst_fraction,
        }
    }

    /// Raised-cosine diurnal arrivals (see [`ArrivalProcess::DiurnalRamp`]).
    ///
    /// # Panics
    ///
    /// Panics unless both rates are finite and positive with
    /// `peak_rate >= base_rate` and `period` is finite and positive.
    pub fn diurnal_ramp(base_rate: f64, peak_rate: f64, period: f64) -> Self {
        assert!(
            base_rate.is_finite() && base_rate > 0.0,
            "base_rate must be positive"
        );
        assert!(
            peak_rate.is_finite() && peak_rate >= base_rate,
            "peak_rate must be >= base_rate"
        );
        assert!(
            period.is_finite() && period > 0.0,
            "period must be positive"
        );
        Self::DiurnalRamp {
            base_rate,
            peak_rate,
            period,
        }
    }

    /// The instantaneous rate at virtual time `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        match *self {
            Self::Poisson { rate } => rate,
            Self::PoissonBurst {
                base_rate,
                burst_rate,
                period,
                burst_fraction,
            } => {
                let phase = t.rem_euclid(period) / period;
                if phase < burst_fraction {
                    burst_rate
                } else {
                    base_rate
                }
            }
            Self::DiurnalRamp {
                base_rate,
                peak_rate,
                period,
            } => {
                let phase = t.rem_euclid(period) / period;
                base_rate
                    + (peak_rate - base_rate)
                        * 0.5
                        * (1.0 - (2.0 * std::f64::consts::PI * phase).cos())
            }
        }
    }

    /// The supremum of [`rate_at`](Self::rate_at) — the thinning
    /// envelope.
    pub fn max_rate(&self) -> f64 {
        match *self {
            Self::Poisson { rate } => rate,
            Self::PoissonBurst { burst_rate, .. } => burst_rate,
            Self::DiurnalRamp { peak_rate, .. } => peak_rate,
        }
    }
}

/// An infinite, seeded iterator of strictly increasing arrival times.
///
/// Two generators built from the same process and seed yield
/// *bit-identical* `f64` sequences (asserted by this module's tests) —
/// the property the fleet experiment's determinism gate rests on.
///
/// # Example
///
/// ```
/// use vortex_bench::traffic::{ArrivalProcess, TrafficGen};
///
/// let arrivals: Vec<f64> = TrafficGen::new(ArrivalProcess::poisson(100.0), 7)
///     .take_while(|&t| t < 1.0)
///     .collect();
/// // ~100 arrivals in one virtual second, identical on every run.
/// assert!(!arrivals.is_empty());
/// assert!(arrivals.windows(2).all(|w| w[0] < w[1]));
/// ```
#[derive(Debug, Clone)]
pub struct TrafficGen {
    process: ArrivalProcess,
    rng: Xoshiro256PlusPlus,
    now: f64,
}

impl TrafficGen {
    /// Creates a generator over `process` seeded with `seed`; the first
    /// arrival follows virtual time zero.
    pub fn new(process: ArrivalProcess, seed: u64) -> Self {
        Self {
            process,
            rng: Xoshiro256PlusPlus::seed_from_u64(seed),
            now: 0.0,
        }
    }

    /// The process this generator samples.
    pub fn process(&self) -> &ArrivalProcess {
        &self.process
    }

    /// An exponential inter-arrival draw at the envelope rate.
    fn next_candidate_gap(&mut self) -> f64 {
        // 1 - u lies in (0, 1], so ln() is finite and the gap positive.
        -(1.0 - self.rng.next_f64()).ln() / self.process.max_rate()
    }
}

impl Iterator for TrafficGen {
    type Item = f64;

    /// The next arrival time (Lewis–Shedler thinning: candidates at the
    /// envelope rate, accepted with probability `rate(t) / max_rate`).
    fn next(&mut self) -> Option<f64> {
        let max = self.process.max_rate();
        loop {
            self.now += self.next_candidate_gap();
            let accept = self.process.rate_at(self.now) / max;
            // The homogeneous case accepts unconditionally *without*
            // drawing, so plain Poisson consumes one draw per arrival.
            if accept >= 1.0 || self.rng.next_f64() < accept {
                return Some(self.now);
            }
        }
    }
}

/// One tenant of a multi-tenant workload mix.
#[derive(Debug, Clone, PartialEq)]
pub struct Tenant {
    /// Display name (used in experiment tables).
    pub name: &'static str,
    /// Relative traffic share; weights are normalized over the mix.
    pub weight: f64,
    /// Relative deadline in virtual seconds (`None` = best-effort).
    pub deadline: Option<f64>,
}

/// One request of an open-loop trace: when it arrives, who sent it, and
/// how long they are willing to wait.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Arrival time, virtual seconds.
    pub time: f64,
    /// Index into the workload's tenant mix.
    pub tenant: usize,
    /// Absolute deadline (`time + tenant deadline`), virtual seconds.
    pub deadline: Option<f64>,
}

/// A multi-tenant open-loop workload: a [`TrafficGen`] for arrival
/// times plus a weighted tenant assignment from an *independent*
/// substream, so the arrival-time trace of a given `(process, seed)` is
/// identical whatever the mix.
#[derive(Debug, Clone)]
pub struct Workload {
    gen: TrafficGen,
    tenants: Vec<Tenant>,
    cumulative: Vec<f64>,
    assign_rng: Xoshiro256PlusPlus,
}

impl Workload {
    /// Builds a workload over `process` with the given tenant mix.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is empty or any weight is non-finite or
    /// non-positive.
    pub fn new(process: ArrivalProcess, tenants: Vec<Tenant>, seed: u64) -> Self {
        assert!(!tenants.is_empty(), "a workload needs at least one tenant");
        assert!(
            tenants
                .iter()
                .all(|t| t.weight.is_finite() && t.weight > 0.0),
            "tenant weights must be positive"
        );
        let total: f64 = tenants.iter().map(|t| t.weight).sum();
        let mut acc = 0.0;
        let cumulative = tenants
            .iter()
            .map(|t| {
                acc += t.weight / total;
                acc
            })
            .collect();
        Self {
            gen: TrafficGen::new(process, seed),
            tenants,
            cumulative,
            // A fixed offset keeps the assignment stream disjoint from
            // the arrival stream for every seed.
            assign_rng: Xoshiro256PlusPlus::seed_from_u64(seed ^ 0x7E4A_4715_u64),
        }
    }

    /// The tenant mix, in assignment order.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }
}

impl Iterator for Workload {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        let time = self.gen.next()?;
        let u = self.assign_rng.next_f64();
        let tenant = self
            .cumulative
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.tenants.len() - 1);
        Request {
            time,
            tenant,
            deadline: self.tenants[tenant].deadline.map(|d| time + d),
        }
        .into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(process: ArrivalProcess, seed: u64, n: usize) -> Vec<f64> {
        TrafficGen::new(process, seed).take(n).collect()
    }

    #[test]
    fn same_seed_traces_are_bit_identical() {
        for process in [
            ArrivalProcess::poisson(120.0),
            ArrivalProcess::poisson_burst(50.0, 400.0, 1.0, 0.25),
            ArrivalProcess::diurnal_ramp(30.0, 300.0, 4.0),
        ] {
            let a = trace(process.clone(), 0x5EED, 500);
            let b = trace(process, 0x5EED, 500);
            // Vec<f64> equality is exact — any drift in the sampling
            // path would flip at least one bit somewhere in 500 draws.
            assert_eq!(a, b);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let a = trace(ArrivalProcess::poisson(120.0), 1, 64);
        let b = trace(ArrivalProcess::poisson(120.0), 2, 64);
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_strictly_increase() {
        for process in [
            ArrivalProcess::poisson(80.0),
            ArrivalProcess::poisson_burst(20.0, 200.0, 0.5, 0.3),
            ArrivalProcess::diurnal_ramp(10.0, 90.0, 2.0),
        ] {
            let t = trace(process, 9, 1000);
            assert!(t.windows(2).all(|w| w[0] < w[1]));
            assert!(t[0] > 0.0);
        }
    }

    #[test]
    fn poisson_hits_its_rate() {
        let rate = 200.0;
        let horizon = 50.0;
        let n = TrafficGen::new(ArrivalProcess::poisson(rate), 42)
            .take_while(|&t| t < horizon)
            .count() as f64;
        let expected = rate * horizon;
        // 10k expected arrivals; 5 sigma is ~500.
        assert!((n - expected).abs() < 500.0, "{n} vs {expected}");
    }

    #[test]
    fn burst_concentrates_arrivals_in_the_burst_window() {
        let process = ArrivalProcess::poisson_burst(50.0, 500.0, 1.0, 0.2);
        let arrivals: Vec<f64> = TrafficGen::new(process, 7)
            .take_while(|&t| t < 40.0)
            .collect();
        let in_burst = arrivals.iter().filter(|t| t.rem_euclid(1.0) < 0.2).count() as f64;
        let share = in_burst / arrivals.len() as f64;
        // Expected share: 500*0.2 / (500*0.2 + 50*0.8) = 0.714.
        assert!(share > 0.6, "burst share {share}");
    }

    #[test]
    fn ramp_peaks_at_half_period() {
        let process = ArrivalProcess::diurnal_ramp(20.0, 400.0, 2.0);
        let arrivals: Vec<f64> = TrafficGen::new(process.clone(), 11)
            .take_while(|&t| t < 60.0)
            .collect();
        let near_peak = arrivals
            .iter()
            .filter(|t| (t.rem_euclid(2.0) - 1.0).abs() < 0.25)
            .count();
        let near_trough = arrivals
            .iter()
            .filter(|t| {
                let p = t.rem_euclid(2.0);
                !(0.25..=1.75).contains(&p)
            })
            .count();
        assert!(near_peak > 3 * near_trough, "{near_peak} vs {near_trough}");
        assert!((process.rate_at(1.0) - 400.0).abs() < 1e-9);
        assert!((process.rate_at(0.0) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn workload_mix_follows_weights_and_stamps_deadlines() {
        let tenants = vec![
            Tenant {
                name: "interactive",
                weight: 3.0,
                deadline: Some(0.01),
            },
            Tenant {
                name: "batch",
                weight: 1.0,
                deadline: None,
            },
        ];
        let requests: Vec<Request> = Workload::new(ArrivalProcess::poisson(100.0), tenants, 3)
            .take(4000)
            .collect();
        let interactive = requests.iter().filter(|r| r.tenant == 0).count() as f64;
        let share = interactive / requests.len() as f64;
        assert!((share - 0.75).abs() < 0.05, "share {share}");
        for r in &requests {
            match r.tenant {
                0 => assert_eq!(r.deadline, Some(r.time + 0.01)),
                _ => assert_eq!(r.deadline, None),
            }
        }
    }

    #[test]
    fn workload_arrival_times_match_the_bare_generator() {
        let tenants = vec![
            Tenant {
                name: "a",
                weight: 1.0,
                deadline: Some(0.5),
            },
            Tenant {
                name: "b",
                weight: 2.0,
                deadline: Some(1.5),
            },
        ];
        let process = ArrivalProcess::poisson_burst(40.0, 160.0, 1.0, 0.5);
        let bare = trace(process.clone(), 77, 300);
        let mixed: Vec<f64> = Workload::new(process, tenants, 77)
            .take(300)
            .map(|r| r.time)
            .collect();
        // The tenant substream is independent, so layering a mix on top
        // leaves the arrival-time trace bit-identical.
        assert_eq!(bare, mixed);
    }

    #[test]
    #[should_panic(expected = "burst_fraction")]
    fn invalid_burst_fraction_panics() {
        let _ = ArrivalProcess::poisson_burst(10.0, 20.0, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_rate_panics() {
        let _ = ArrivalProcess::poisson(0.0);
    }
}
