//! No-op derive macros standing in for `serde_derive`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal `serde` facade (see `crates/serde`). Nothing in the workspace
//! actually serializes — the derives only need to *exist* so that
//! `#[derive(Serialize, Deserialize)]` attributes compile. Each derive
//! expands to an empty token stream.

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
