//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this shim implements
//! the slice of the criterion API the workspace benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], `sample_size`,
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! There is no statistical analysis: each benchmark runs `sample_size`
//! timed iterations after one warm-up and prints min / mean / max
//! per-iteration wall time. The numbers are honest but unfitted — good
//! enough to compare orders of magnitude offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark time budget (accepted for API parity; the
    /// shim stops after `sample_size` iterations regardless).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Times `f` under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// Runs and times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` calls of `f` (after one untimed warm-up).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{name:<40} min {min:>12.3?}  mean {mean:>12.3?}  max {max:>12.3?}  ({} iters)",
            self.samples.len()
        );
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Times `f` with the given input under `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        let mut b = Bencher {
            samples: Vec::with_capacity(self.criterion.sample_size),
            sample_size: self.criterion.sample_size,
        };
        f(&mut b, input);
        b.report(&label);
        self
    }

    /// Times `f` under `id` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        let mut b = Bencher {
            samples: Vec::with_capacity(self.criterion.sample_size),
            sample_size: self.criterion.sample_size,
        };
        f(&mut b);
        b.report(&label);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// A benchmark label, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// Just the parameter value as the label.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        c.bench_function("sum_1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        for &n in &[10u64, 100] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        }
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = work
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
