//! Stroke prototypes for the digits '0'–'9'.
//!
//! Each glyph is a set of polylines in the unit square, pen-down point
//! sequences traced roughly the way a seven-segment-plus-curves rendering
//! of the digit looks. The generator perturbs these prototypes per sample.

/// A 2-D point in glyph space (`[0, 1]²`, y grows downward).
pub type Point = (f64, f64);

/// A polyline stroke: consecutive points are connected.
pub type Stroke = Vec<Point>;

/// Returns the stroke prototype of `digit`.
///
/// # Panics
///
/// Panics if `digit > 9`.
pub fn glyph_strokes(digit: u8) -> Vec<Stroke> {
    assert!(digit <= 9, "digit must be 0..=9, got {digit}");
    match digit {
        0 => vec![closed(vec![
            (0.50, 0.12),
            (0.74, 0.22),
            (0.80, 0.50),
            (0.74, 0.78),
            (0.50, 0.88),
            (0.26, 0.78),
            (0.20, 0.50),
            (0.26, 0.22),
        ])],
        1 => vec![
            vec![(0.35, 0.28), (0.52, 0.12), (0.52, 0.88)],
            vec![(0.32, 0.88), (0.72, 0.88)],
        ],
        2 => vec![vec![
            (0.24, 0.28),
            (0.38, 0.12),
            (0.62, 0.12),
            (0.76, 0.28),
            (0.72, 0.46),
            (0.45, 0.64),
            (0.24, 0.88),
            (0.78, 0.88),
        ]],
        3 => vec![vec![
            (0.25, 0.18),
            (0.55, 0.12),
            (0.74, 0.26),
            (0.58, 0.45),
            (0.40, 0.48),
            (0.58, 0.51),
            (0.76, 0.68),
            (0.56, 0.88),
            (0.25, 0.82),
        ]],
        4 => vec![vec![(0.62, 0.88), (0.62, 0.12), (0.22, 0.62), (0.80, 0.62)]],
        5 => vec![vec![
            (0.74, 0.12),
            (0.30, 0.12),
            (0.27, 0.46),
            (0.55, 0.42),
            (0.76, 0.58),
            (0.72, 0.80),
            (0.48, 0.90),
            (0.24, 0.82),
        ]],
        6 => vec![vec![
            (0.68, 0.14),
            (0.42, 0.24),
            (0.27, 0.50),
            (0.26, 0.72),
            (0.44, 0.88),
            (0.66, 0.84),
            (0.75, 0.66),
            (0.62, 0.50),
            (0.40, 0.52),
            (0.28, 0.64),
        ]],
        7 => vec![
            vec![(0.24, 0.12), (0.78, 0.12), (0.46, 0.88)],
            vec![(0.34, 0.52), (0.66, 0.52)],
        ],
        8 => vec![
            closed(vec![
                (0.50, 0.12),
                (0.68, 0.20),
                (0.68, 0.38),
                (0.50, 0.48),
                (0.32, 0.38),
                (0.32, 0.20),
            ]),
            closed(vec![
                (0.50, 0.48),
                (0.72, 0.58),
                (0.72, 0.78),
                (0.50, 0.88),
                (0.28, 0.78),
                (0.28, 0.58),
            ]),
        ],
        9 => vec![vec![
            (0.72, 0.40),
            (0.58, 0.50),
            (0.36, 0.46),
            (0.26, 0.30),
            (0.38, 0.14),
            (0.60, 0.12),
            (0.73, 0.26),
            (0.73, 0.55),
            (0.66, 0.78),
            (0.46, 0.90),
        ]],
        _ => unreachable!(),
    }
}

/// Closes a polyline by appending its first point.
fn closed(mut stroke: Stroke) -> Stroke {
    if let Some(&first) = stroke.first() {
        stroke.push(first);
    }
    stroke
}

/// Total pen length of a glyph (used by tests to sanity-check shapes).
pub fn glyph_length(digit: u8) -> f64 {
    glyph_strokes(digit)
        .iter()
        .map(|s| {
            s.windows(2)
                .map(|w| {
                    let (x0, y0) = w[0];
                    let (x1, y1) = w[1];
                    ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt()
                })
                .sum::<f64>()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_digits_have_strokes() {
        for d in 0..=9u8 {
            let strokes = glyph_strokes(d);
            assert!(!strokes.is_empty(), "digit {d} has no strokes");
            assert!(
                strokes.iter().all(|s| s.len() >= 2),
                "digit {d} has degenerate strokes"
            );
        }
    }

    #[test]
    fn all_points_inside_unit_square() {
        for d in 0..=9u8 {
            for s in glyph_strokes(d) {
                for (x, y) in s {
                    assert!((0.0..=1.0).contains(&x), "digit {d}: x {x}");
                    assert!((0.0..=1.0).contains(&y), "digit {d}: y {y}");
                }
            }
        }
    }

    #[test]
    fn glyphs_have_reasonable_ink() {
        for d in 0..=9u8 {
            let len = glyph_length(d);
            assert!(len > 0.8, "digit {d} too short: {len}");
            assert!(len < 6.0, "digit {d} too long: {len}");
        }
    }

    #[test]
    fn zero_and_eight_are_closed() {
        let zero = &glyph_strokes(0)[0];
        assert_eq!(zero.first(), zero.last());
        for ring in glyph_strokes(8) {
            assert_eq!(ring.first(), ring.last());
        }
    }

    #[test]
    #[should_panic(expected = "0..=9")]
    fn out_of_range_digit_panics() {
        let _ = glyph_strokes(10);
    }
}
