//! Polyline rasterization onto a square pixel grid.

use super::glyphs::Stroke;

/// Rasterizes strokes onto a `side × side` grayscale grid in `[0, 1]`.
///
/// Each stroke is walked at sub-pixel resolution; every sample point
/// deposits a Gaussian brush of radius `stroke_width` (in glyph units,
/// where the image spans `[0, 1]`). Intensities saturate at 1.
pub fn rasterize(strokes: &[Stroke], side: usize, stroke_width: f64) -> Vec<f64> {
    assert!(side > 0, "raster side must be positive");
    let mut img = vec![0.0_f64; side * side];
    let sigma = (stroke_width * side as f64).max(0.35);
    let radius = (2.5 * sigma).ceil() as isize;
    let step = 0.5 / side as f64; // half-pixel walking step

    for stroke in strokes {
        for w in stroke.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            let len = ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt();
            let n_steps = (len / step).ceil().max(1.0) as usize;
            for k in 0..=n_steps {
                let t = k as f64 / n_steps as f64;
                let px = (x0 + t * (x1 - x0)) * side as f64 - 0.5;
                let py = (y0 + t * (y1 - y0)) * side as f64 - 0.5;
                stamp(&mut img, side, px, py, sigma, radius);
            }
        }
    }
    for v in &mut img {
        *v = v.min(1.0);
    }
    img
}

/// Deposits a Gaussian brush at sub-pixel center `(px, py)`.
fn stamp(img: &mut [f64], side: usize, px: f64, py: f64, sigma: f64, radius: isize) {
    let cx = px.round() as isize;
    let cy = py.round() as isize;
    for dy in -radius..=radius {
        for dx in -radius..=radius {
            let x = cx + dx;
            let y = cy + dy;
            if x < 0 || y < 0 || x >= side as isize || y >= side as isize {
                continue;
            }
            let ddx = x as f64 - px;
            let ddy = y as f64 - py;
            let d2 = ddx * ddx + ddy * ddy;
            // A fraction of full intensity per sample; the walk overlaps
            // samples, so the accumulated ink saturates along the stroke.
            let ink = 0.6 * (-d2 / (2.0 * sigma * sigma)).exp();
            img[y as usize * side + x as usize] += ink;
        }
    }
}

/// Block-average under-sampling: `side × side` → `(side/factor)²`.
///
/// This is the paper's benchmark down-sampling (28×28 → 14×14 → 7×7,
/// §5.4).
///
/// # Panics
///
/// Panics if `factor` does not divide `side` or the image length is not
/// `side²`.
pub fn downsample(img: &[f64], side: usize, factor: usize) -> Vec<f64> {
    assert!(factor > 0 && side % factor == 0, "factor must divide side");
    assert_eq!(img.len(), side * side, "image length mismatch");
    let out_side = side / factor;
    let mut out = vec![0.0; out_side * out_side];
    let norm = 1.0 / (factor * factor) as f64;
    for oy in 0..out_side {
        for ox in 0..out_side {
            let mut acc = 0.0;
            for dy in 0..factor {
                for dx in 0..factor {
                    acc += img[(oy * factor + dy) * side + (ox * factor + dx)];
                }
            }
            out[oy * out_side + ox] = acc * norm;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::glyphs::glyph_strokes;

    #[test]
    fn rasterized_glyph_has_ink_in_range() {
        for d in 0..=9u8 {
            let img = rasterize(&glyph_strokes(d), 28, 0.04);
            assert_eq!(img.len(), 28 * 28);
            assert!(img.iter().all(|&v| (0.0..=1.0).contains(&v)));
            let total: f64 = img.iter().sum();
            assert!(total > 10.0, "digit {d} too faint: {total}");
            assert!(total < 500.0, "digit {d} too heavy: {total}");
        }
    }

    #[test]
    fn different_digits_render_differently() {
        let a = rasterize(&glyph_strokes(1), 28, 0.04);
        let b = rasterize(&glyph_strokes(8), 28, 0.04);
        let dist: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(dist > 20.0, "digits 1 and 8 must differ: {dist}");
    }

    #[test]
    fn thicker_stroke_more_ink() {
        let thin = rasterize(&glyph_strokes(3), 28, 0.02);
        let thick = rasterize(&glyph_strokes(3), 28, 0.07);
        let sum = |v: &[f64]| v.iter().sum::<f64>();
        assert!(sum(&thick) > sum(&thin));
    }

    #[test]
    fn downsample_preserves_mean() {
        let img = rasterize(&glyph_strokes(5), 28, 0.04);
        let half = downsample(&img, 28, 2);
        assert_eq!(half.len(), 14 * 14);
        let mean_full: f64 = img.iter().sum::<f64>() / img.len() as f64;
        let mean_half: f64 = half.iter().sum::<f64>() / half.len() as f64;
        assert!((mean_full - mean_half).abs() < 1e-12);
    }

    #[test]
    fn downsample_chain_28_14_7() {
        let img = rasterize(&glyph_strokes(2), 28, 0.04);
        let d14 = downsample(&img, 28, 2);
        let d7 = downsample(&d14, 14, 2);
        assert_eq!(d7.len(), 49);
        // Direct 4× downsample must agree with the chained one.
        let direct = downsample(&img, 28, 4);
        for (a, b) in d7.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn bad_factor_panics() {
        let img = vec![0.0; 28 * 28];
        let _ = downsample(&img, 28, 3);
    }

    #[test]
    fn uniform_image_downsamples_to_uniform() {
        let img = vec![0.7; 16 * 16];
        let d = downsample(&img, 16, 4);
        assert!(d.iter().all(|&v| (v - 0.7).abs() < 1e-12));
    }
}
