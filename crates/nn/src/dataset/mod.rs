//! SynthDigits: a deterministic synthetic digit-classification benchmark.
//!
//! MNIST is not available offline, so the experiments run on images
//! rendered from the stroke prototypes in [`glyphs`], perturbed per sample
//! with a random affine transform (rotation / scale / translation), random
//! stroke width, and additive pixel noise. The perturbation strength is
//! tuned so that a linear "1 vs. all" classifier tops out well below 100 %
//! — mirroring the paper's "theoretical maximum test rate ~85 %" remark
//! for its linear model on MNIST (§5.3).

pub mod glyphs;
pub mod raster;

use serde::{Deserialize, Serialize};
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::Matrix;

use crate::{NnError, Result};

/// Generation parameters for [`SynthDigits`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Image side length (the paper uses 28, under-sampled to 14 and 7).
    pub side: usize,
    /// Number of samples to generate per class.
    pub samples_per_class: usize,
    /// Maximum rotation magnitude, radians.
    pub max_rotation: f64,
    /// Maximum |scale − 1|.
    pub max_scale_jitter: f64,
    /// Maximum translation, in glyph units.
    pub max_translation: f64,
    /// Nominal stroke width in glyph units.
    pub stroke_width: f64,
    /// Relative stroke-width jitter.
    pub stroke_jitter: f64,
    /// Additive Gaussian pixel-noise standard deviation.
    pub pixel_noise: f64,
}

impl DatasetConfig {
    /// The default experiment configuration: 28×28 with enough deformation
    /// and noise that linear classifiers cannot saturate.
    pub fn paper() -> Self {
        Self {
            side: 28,
            samples_per_class: 600, // 6000 total: 4000 train + 2000 test
            max_rotation: 0.30,
            max_scale_jitter: 0.18,
            max_translation: 0.10,
            stroke_width: 0.045,
            stroke_jitter: 0.35,
            pixel_noise: 0.22,
        }
    }

    /// A small configuration for unit tests (fast to generate and train).
    pub fn tiny() -> Self {
        Self {
            side: 14,
            samples_per_class: 30,
            ..Self::paper()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] for degenerate sizes or
    /// negative jitter magnitudes.
    pub fn validate(&self) -> Result<()> {
        if self.side == 0 {
            return Err(NnError::InvalidParameter {
                name: "side",
                requirement: "must be positive",
            });
        }
        if self.samples_per_class == 0 {
            return Err(NnError::InvalidParameter {
                name: "samples_per_class",
                requirement: "must be positive",
            });
        }
        let nonneg = [
            self.max_rotation,
            self.max_scale_jitter,
            self.max_translation,
            self.stroke_width,
            self.stroke_jitter,
            self.pixel_noise,
        ];
        if nonneg.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err(NnError::InvalidParameter {
                name: "jitter parameters",
                requirement: "must all be finite and non-negative",
            });
        }
        Ok(())
    }
}

/// A labelled image dataset: one image per row, flattened row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Matrix,
    labels: Vec<u8>,
    side: usize,
}

impl Dataset {
    /// Builds a dataset from parts.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if rows ≠ labels or pixel count
    /// ≠ `side²`.
    pub fn from_parts(images: Matrix, labels: Vec<u8>, side: usize) -> Result<Self> {
        if images.rows() != labels.len() {
            return Err(NnError::ShapeMismatch {
                context: "Dataset::from_parts (rows vs labels)",
                expected: images.rows(),
                actual: labels.len(),
            });
        }
        if images.cols() != side * side {
            return Err(NnError::ShapeMismatch {
                context: "Dataset::from_parts (pixels vs side²)",
                expected: side * side,
                actual: images.cols(),
            });
        }
        Ok(Self {
            images,
            labels,
            side,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of input features (pixels) per sample.
    pub fn num_features(&self) -> usize {
        self.images.cols()
    }

    /// Number of distinct classes (always 10 for SynthDigits).
    pub fn num_classes(&self) -> usize {
        10
    }

    /// Image side length.
    pub fn side(&self) -> usize {
        self.side
    }

    /// The image matrix (`samples × pixels`).
    pub fn images(&self) -> &Matrix {
        &self.images
    }

    /// Sample `i`'s pixel vector.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn image(&self, i: usize) -> &[f64] {
        self.images.row(i)
    }

    /// Sample `i`'s label.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn label(&self, i: usize) -> u8 {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[u8] {
        &self.labels
    }

    /// A new dataset containing the given sample indices (cloned).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let images = self.images.select_rows(indices);
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        Dataset {
            images,
            labels,
            side: self.side,
        }
    }

    /// Block-average under-sampled copy (side divided by `factor`) —
    /// the paper's 28→14→7 benchmark reduction.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] if `factor` does not divide
    /// the side.
    pub fn downsample(&self, factor: usize) -> Result<Dataset> {
        if factor == 0 || self.side % factor != 0 {
            return Err(NnError::InvalidParameter {
                name: "factor",
                requirement: "must divide the image side",
            });
        }
        let new_side = self.side / factor;
        let mut rows = Vec::with_capacity(self.len());
        for i in 0..self.len() {
            rows.push(raster::downsample(self.image(i), self.side, factor));
        }
        let images = Matrix::from_rows(&rows);
        Ok(Dataset {
            images,
            labels: self.labels.clone(),
            side: new_side,
        })
    }

    /// Mean pixel vector over all samples — the reference input used to
    /// calibrate fast IR-drop readout models.
    pub fn mean_input(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.num_features()];
        for i in 0..self.len() {
            for (a, &v) in acc.iter_mut().zip(self.image(i)) {
                *a += v;
            }
        }
        let n = self.len().max(1) as f64;
        for a in &mut acc {
            *a /= n;
        }
        acc
    }
}

/// The SynthDigits generator.
#[derive(Debug, Clone, Copy)]
pub struct SynthDigits;

impl SynthDigits {
    /// Generates a dataset: `10 · samples_per_class` labelled images,
    /// deterministic for a given `(config, seed)` pair. Samples are
    /// interleaved by class (0,1,…,9,0,1,…) so any prefix is roughly
    /// class-balanced.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] if the configuration is
    /// invalid.
    pub fn generate(config: &DatasetConfig, seed: u64) -> Result<Dataset> {
        config.validate()?;
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let n = 10 * config.samples_per_class;
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for k in 0..config.samples_per_class {
            for digit in 0..10u8 {
                let _ = k;
                rows.push(Self::render_sample(config, digit, &mut rng));
                labels.push(digit);
            }
        }
        let images = Matrix::from_rows(&rows);
        Dataset::from_parts(images, labels, config.side)
    }

    /// Renders one jittered sample of `digit`.
    fn render_sample(config: &DatasetConfig, digit: u8, rng: &mut Xoshiro256PlusPlus) -> Vec<f64> {
        let strokes = glyphs::glyph_strokes(digit);
        // Random affine about the glyph center (0.5, 0.5).
        let angle = rng.range_f64(-config.max_rotation, config.max_rotation);
        let scale = 1.0 + rng.range_f64(-config.max_scale_jitter, config.max_scale_jitter);
        let tx = rng.range_f64(-config.max_translation, config.max_translation);
        let ty = rng.range_f64(-config.max_translation, config.max_translation);
        let (sin, cos) = angle.sin_cos();
        let transformed: Vec<glyphs::Stroke> = strokes
            .iter()
            .map(|s| {
                s.iter()
                    .map(|&(x, y)| {
                        let dx = x - 0.5;
                        let dy = y - 0.5;
                        let rx = scale * (cos * dx - sin * dy);
                        let ry = scale * (sin * dx + cos * dy);
                        (
                            (0.5 + rx + tx).clamp(0.0, 1.0),
                            (0.5 + ry + ty).clamp(0.0, 1.0),
                        )
                    })
                    .collect()
            })
            .collect();
        let width = config.stroke_width
            * (1.0 + rng.range_f64(-config.stroke_jitter, config.stroke_jitter));
        let mut img = raster::rasterize(&transformed, config.side, width.max(0.005));
        if config.pixel_noise > 0.0 {
            for v in &mut img {
                let noise = vortex_linalg::distributions::standard_normal(rng) * config.pixel_noise;
                *v = (*v + noise).clamp(0.0, 1.0);
            }
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = DatasetConfig::tiny();
        let a = SynthDigits::generate(&cfg, 7).unwrap();
        let b = SynthDigits::generate(&cfg, 7).unwrap();
        assert_eq!(a, b);
        let c = SynthDigits::generate(&cfg, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn class_balance_and_interleaving() {
        let cfg = DatasetConfig::tiny();
        let d = SynthDigits::generate(&cfg, 1).unwrap();
        assert_eq!(d.len(), 300);
        for digit in 0..10u8 {
            let count = d.labels().iter().filter(|&&l| l == digit).count();
            assert_eq!(count, 30);
        }
        // Any prefix of 10 contains each class once.
        let first10: Vec<u8> = d.labels()[..10].to_vec();
        let mut sorted = first10.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn pixels_in_unit_range() {
        let d = SynthDigits::generate(&DatasetConfig::tiny(), 2).unwrap();
        assert!(d
            .images()
            .as_slice()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn same_class_samples_differ() {
        let cfg = DatasetConfig::tiny();
        let d = SynthDigits::generate(&cfg, 3).unwrap();
        // Samples 0 and 10 are both digit '0'.
        assert_eq!(d.label(0), 0);
        assert_eq!(d.label(10), 0);
        let dist: f64 = d
            .image(0)
            .iter()
            .zip(d.image(10))
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(dist > 1.0, "augmentation must vary samples: {dist}");
    }

    #[test]
    fn downsample_dataset() {
        let cfg = DatasetConfig {
            side: 28,
            samples_per_class: 3,
            ..DatasetConfig::paper()
        };
        let d = SynthDigits::generate(&cfg, 4).unwrap();
        let d14 = d.downsample(2).unwrap();
        assert_eq!(d14.side(), 14);
        assert_eq!(d14.num_features(), 196);
        assert_eq!(d14.labels(), d.labels());
        let d7 = d.downsample(4).unwrap();
        assert_eq!(d7.num_features(), 49);
        assert!(d.downsample(3).is_err());
    }

    #[test]
    fn subset_selects_rows() {
        let d = SynthDigits::generate(&DatasetConfig::tiny(), 5).unwrap();
        let s = d.subset(&[0, 11, 22]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.label(0), d.label(0));
        assert_eq!(s.label(1), d.label(11));
        assert_eq!(s.image(2), d.image(22));
    }

    #[test]
    fn mean_input_is_average() {
        let d = SynthDigits::generate(&DatasetConfig::tiny(), 6).unwrap();
        let m = d.mean_input();
        assert_eq!(m.len(), d.num_features());
        let manual: f64 = (0..d.len()).map(|i| d.image(i)[50]).sum::<f64>() / d.len() as f64;
        assert!((m[50] - manual).abs() < 1e-12);
    }

    #[test]
    fn from_parts_validates() {
        let images = Matrix::zeros(5, 16);
        assert!(Dataset::from_parts(images.clone(), vec![0; 4], 4).is_err());
        assert!(Dataset::from_parts(images.clone(), vec![0; 5], 5).is_err());
        assert!(Dataset::from_parts(images, vec![0; 5], 4).is_ok());
    }

    #[test]
    fn config_validation() {
        let mut cfg = DatasetConfig::tiny();
        cfg.side = 0;
        assert!(cfg.validate().is_err());
        cfg = DatasetConfig::tiny();
        cfg.pixel_noise = -1.0;
        assert!(cfg.validate().is_err());
        cfg = DatasetConfig::tiny();
        cfg.samples_per_class = 0;
        assert!(cfg.validate().is_err());
    }
}
