//! The linear "1 vs. all" classifier realized by a crossbar.
//!
//! §4.1.1: the computation is `y = x·W` with `W` an `n × m` weight matrix
//! (one column per class); the predicted class is the argmax output.

use vortex_linalg::{vector, Matrix};

use crate::dataset::Dataset;
use crate::{NnError, Result};

/// A linear multi-class classifier `y = x·W`, class = argmax(y).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearClassifier {
    weights: Matrix,
}

impl LinearClassifier {
    /// Wraps a weight matrix (`features × classes`).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] for an empty matrix.
    pub fn new(weights: Matrix) -> Result<Self> {
        if weights.rows() == 0 || weights.cols() == 0 {
            return Err(NnError::InvalidParameter {
                name: "weights",
                requirement: "must be non-empty",
            });
        }
        Ok(Self { weights })
    }

    /// The weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Consumes the classifier, returning its weights.
    pub fn into_weights(self) -> Matrix {
        self.weights
    }

    /// Number of input features.
    pub fn num_features(&self) -> usize {
        self.weights.rows()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.weights.cols()
    }

    /// Raw class scores `x·W`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `x` has the wrong length.
    pub fn scores(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.num_features() {
            return Err(NnError::ShapeMismatch {
                context: "LinearClassifier::scores",
                expected: self.num_features(),
                actual: x.len(),
            });
        }
        Ok(self.weights.vecmat(x))
    }

    /// Predicted class of one sample.
    ///
    /// # Errors
    ///
    /// See [`Self::scores`].
    pub fn predict(&self, x: &[f64]) -> Result<u8> {
        let s = self.scores(x)?;
        Ok(vector::argmax(&s).unwrap_or(0) as u8)
    }

    /// Fraction of `data` classified correctly.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if feature counts disagree.
    pub fn accuracy(&self, data: &Dataset) -> Result<f64> {
        if data.num_features() != self.num_features() {
            return Err(NnError::ShapeMismatch {
                context: "LinearClassifier::accuracy",
                expected: self.num_features(),
                actual: data.num_features(),
            });
        }
        if data.is_empty() {
            return Ok(0.0);
        }
        let mut correct = 0usize;
        for i in 0..data.len() {
            if self.predict(data.image(i))? == data.label(i) {
                correct += 1;
            }
        }
        Ok(correct as f64 / data.len() as f64)
    }
}

/// Classifies every sample of `data` through an arbitrary score function
/// (e.g. a programmed crossbar readout) and returns the accuracy.
///
/// The score function receives the pixel vector and must return one score
/// per class.
pub fn accuracy_with<F>(data: &Dataset, mut score_fn: F) -> f64
where
    F: FnMut(&[f64]) -> Vec<f64>,
{
    if data.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for i in 0..data.len() {
        let scores = score_fn(data.image(i));
        let pred = vector::argmax(&scores).unwrap_or(0) as u8;
        if pred == data.label(i) {
            correct += 1;
        }
    }
    correct as f64 / data.len() as f64
}

/// Predicted class for every sample of `data` through an arbitrary score
/// function, in sample order — the batch-scoring counterpart of
/// [`accuracy_with`] for callers that need the predictions themselves
/// (e.g. a serving runtime comparing saved vs. loaded models).
pub fn predictions_with<F>(data: &Dataset, mut score_fn: F) -> Vec<u8>
where
    F: FnMut(&[f64]) -> Vec<f64>,
{
    (0..data.len())
        .map(|i| {
            let scores = score_fn(data.image(i));
            vector::argmax(&scores).unwrap_or(0) as u8
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetConfig, SynthDigits};

    #[test]
    fn validation() {
        assert!(LinearClassifier::new(Matrix::zeros(0, 3)).is_err());
        assert!(LinearClassifier::new(Matrix::zeros(4, 0)).is_err());
        assert!(LinearClassifier::new(Matrix::zeros(4, 3)).is_ok());
    }

    #[test]
    fn predict_argmax() {
        // Weights that route feature k to class k.
        let w = Matrix::identity(3);
        let c = LinearClassifier::new(w).unwrap();
        assert_eq!(c.predict(&[0.1, 0.9, 0.2]).unwrap(), 1);
        assert_eq!(c.predict(&[1.0, 0.0, 0.0]).unwrap(), 0);
        assert!(c.predict(&[1.0, 0.0]).is_err());
    }

    #[test]
    fn accuracy_of_perfect_oracle() {
        let data = SynthDigits::generate(&DatasetConfig::tiny(), 17).unwrap();
        // Oracle score function peeks at the label through a captured map.
        let labels: Vec<u8> = data.labels().to_vec();
        let mut i = 0usize;
        let acc = accuracy_with(&data, |_| {
            let mut s = vec![0.0; 10];
            s[labels[i] as usize] = 1.0;
            i += 1;
            s
        });
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn accuracy_of_constant_classifier_is_class_rate() {
        let data = SynthDigits::generate(&DatasetConfig::tiny(), 18).unwrap();
        let acc = accuracy_with(&data, |_| {
            let mut s = vec![0.0; 10];
            s[3] = 1.0;
            s
        });
        assert!((acc - 0.1).abs() < 1e-9); // balanced classes
    }

    #[test]
    fn accuracy_checks_shapes() {
        let data = SynthDigits::generate(&DatasetConfig::tiny(), 19).unwrap();
        let c = LinearClassifier::new(Matrix::zeros(5, 10)).unwrap();
        assert!(c.accuracy(&data).is_err());
    }
}
