//! Seeded Monte-Carlo averaging.
//!
//! Every experiment in the paper reports statistics over repeated random
//! variation draws (e.g. the 1000-run sweep of Fig. 2). This harness keeps
//! those loops deterministic: trial `k` of a run seeded with `s` always
//! sees the same generator stream.

use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::stats::Summary;

/// Runs `trials` independent evaluations of `f`, each with its own child
/// generator split deterministically from `seed`, and summarizes the
/// returned statistic.
pub fn run<F>(seed: u64, trials: usize, mut f: F) -> MonteCarloResult
where
    F: FnMut(&mut Xoshiro256PlusPlus) -> f64,
{
    let mut parent = Xoshiro256PlusPlus::seed_from_u64(seed);
    let mut values = Vec::with_capacity(trials);
    for _ in 0..trials {
        let mut child = parent.split();
        values.push(f(&mut child));
    }
    MonteCarloResult { values }
}

/// The raw samples and summary of a Monte-Carlo run.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloResult {
    /// Per-trial statistic values, in trial order.
    pub values: Vec<f64>,
}

impl MonteCarloResult {
    /// Sample mean.
    pub fn mean(&self) -> f64 {
        vortex_linalg::stats::mean(&self.values)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        vortex_linalg::stats::std_dev(&self.values)
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        vortex_linalg::stats::std_error(&self.values)
    }

    /// Full summary.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_are_deterministic() {
        let f = |rng: &mut Xoshiro256PlusPlus| rng.next_f64();
        let a = run(9, 50, f);
        let b = run(9, 50, f);
        assert_eq!(a, b);
        let c = run(10, 50, f);
        assert_ne!(a, c);
    }

    #[test]
    fn trials_are_independent_streams() {
        let r = run(1, 100, |rng| rng.next_f64());
        // All values distinct with overwhelming probability.
        let mut v = r.values.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.dedup();
        assert_eq!(v.len(), 100);
    }

    #[test]
    fn statistics_are_consistent() {
        let r = run(2, 2000, |rng| rng.next_f64());
        assert!((r.mean() - 0.5).abs() < 0.02);
        // Uniform std = 1/sqrt(12) ≈ 0.2887.
        assert!((r.std_dev() - 0.2887).abs() < 0.02);
        assert!(r.std_error() < r.std_dev());
        assert_eq!(r.summary().n, 2000);
    }

    #[test]
    fn zero_trials_is_empty() {
        let r = run(3, 0, |rng| rng.next_f64());
        assert!(r.values.is_empty());
        assert_eq!(r.mean(), 0.0);
    }
}
