//! Seeded Monte-Carlo averaging.
//!
//! Every experiment in the paper reports statistics over repeated random
//! variation draws (e.g. the 1000-run sweep of Fig. 2). This harness keeps
//! those loops deterministic: trial `k` of a run seeded with `s` always
//! sees the same generator stream.
//!
//! # Determinism contract
//!
//! [`run`] and [`run_with`] produce **bit-identical** `values` for the
//! same `(seed, trials, f)` regardless of the [`Parallelism`] setting.
//! Three mechanisms (implemented in [`crate::executor`]) guarantee it:
//!
//! * **Pre-split seed streams** — the parent generator splits one child
//!   per trial serially, *before* any worker starts, so child `k` is a
//!   pure function of `(seed, k)`;
//! * **ordered reassembly** — parallel results are written into a slot
//!   vector by trial index, so `values[k]` is trial `k`'s output no
//!   matter which worker computed it or when it finished;
//! * **isolated trials** — `f` only sees its own child generator, so no
//!   trial can perturb another's stream.
//!
//! The worker pool defaults to [`Parallelism::Auto`], which honors the
//! `VORTEX_MC_THREADS` environment variable and otherwise uses
//! [`std::thread::available_parallelism`]. Parallel runs are therefore
//! reproducible across machines with different core counts — only the
//! wall-clock time changes.

use crate::executor::{run_trials, Parallelism};
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::stats::Summary;

/// Runs `trials` independent evaluations of `f` serially, each with its
/// own child generator split deterministically from `seed`, and
/// summarizes the returned statistic.
///
/// This is the `FnMut` entry point; closures that need `&mut` state run
/// here on one thread. Pure closures should prefer [`run_with`], which
/// produces bit-identical output on any number of threads.
pub fn run<F>(seed: u64, trials: usize, mut f: F) -> MonteCarloResult
where
    F: FnMut(&mut Xoshiro256PlusPlus) -> f64,
{
    let _span = vortex_obs::span!("montecarlo.run_seconds");
    vortex_obs::counter!("montecarlo.trials").add(trials as u64);
    let mut parent = Xoshiro256PlusPlus::seed_from_u64(seed);
    let mut values = Vec::with_capacity(trials);
    for _ in 0..trials {
        let mut child = parent.split();
        values.push(f(&mut child));
    }
    MonteCarloResult { values }
}

/// Parallel [`run`]: identical output, sharded over `parallelism`.
///
/// `f` must be `Fn + Sync` so workers can share it; each invocation still
/// receives its own pre-split child generator, so `values` is bit-exact
/// with the serial loop for every thread count (see the module docs).
pub fn run_with<F>(seed: u64, trials: usize, parallelism: Parallelism, f: F) -> MonteCarloResult
where
    F: Fn(&mut Xoshiro256PlusPlus) -> f64 + Sync,
{
    let _span = vortex_obs::span!("montecarlo.run_seconds");
    vortex_obs::counter!("montecarlo.trials").add(trials as u64);
    let mut parent = Xoshiro256PlusPlus::seed_from_u64(seed);
    let values = run_trials(&mut parent, trials, parallelism, |_, child| f(child));
    MonteCarloResult { values }
}

/// The raw samples and summary of a Monte-Carlo run.
///
/// # Zero-trial convention
///
/// An empty result (zero trials) is valid: [`mean`](Self::mean),
/// [`std_dev`](Self::std_dev) and [`std_error`](Self::std_error) all
/// return `0.0` rather than NaN, matching [`vortex_linalg::stats`]. A
/// single trial likewise has `std_dev() == 0.0` (the unbiased estimator
/// is undefined at `n = 1`; the workspace convention is zero spread).
/// Use [`is_empty`](Self::is_empty) / [`len`](Self::len) to distinguish
/// "no data" from "zero-valued data".
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloResult {
    /// Per-trial statistic values, in trial order.
    pub values: Vec<f64>,
}

impl MonteCarloResult {
    /// Number of trials.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the run had zero trials (see the type-level docs for the
    /// statistics' zero-trial convention).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sample mean (`0.0` for an empty run).
    pub fn mean(&self) -> f64 {
        vortex_linalg::stats::mean(&self.values)
    }

    /// Sample standard deviation (`0.0` for fewer than two trials).
    pub fn std_dev(&self) -> f64 {
        vortex_linalg::stats::std_dev(&self.values)
    }

    /// Standard error of the mean (`0.0` for an empty run).
    pub fn std_error(&self) -> f64 {
        vortex_linalg::stats::std_error(&self.values)
    }

    /// Full summary.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_are_deterministic() {
        let f = |rng: &mut Xoshiro256PlusPlus| rng.next_f64();
        let a = run(9, 50, f);
        let b = run(9, 50, f);
        assert_eq!(a, b);
        let c = run(10, 50, f);
        assert_ne!(a, c);
    }

    #[test]
    fn trials_are_independent_streams() {
        let r = run(1, 100, |rng| rng.next_f64());
        // All values distinct with overwhelming probability.
        let mut v = r.values.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.dedup();
        assert_eq!(v.len(), 100);
    }

    #[test]
    fn statistics_are_consistent() {
        let r = run(2, 2000, |rng| rng.next_f64());
        assert!((r.mean() - 0.5).abs() < 0.02);
        // Uniform std = 1/sqrt(12) ≈ 0.2887.
        assert!((r.std_dev() - 0.2887).abs() < 0.02);
        assert!(r.std_error() < r.std_dev());
        assert_eq!(r.summary().n, 2000);
    }

    #[test]
    fn zero_trials_is_empty() {
        let r = run(3, 0, |rng| rng.next_f64());
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        // Documented convention: empty statistics are 0.0, never NaN.
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.std_dev(), 0.0);
        assert_eq!(r.std_error(), 0.0);
    }

    #[test]
    fn single_trial_statistics() {
        let r = run(4, 1, |rng| 0.25 + rng.next_f64());
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
        // Mean of one sample is the sample; spread is 0 by convention.
        assert_eq!(r.mean(), r.values[0]);
        assert_eq!(r.std_dev(), 0.0);
        assert_eq!(r.std_error(), 0.0);
        assert_eq!(r.summary().n, 1);
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let f = |rng: &mut Xoshiro256PlusPlus| rng.next_f64();
        let serial = run(11, 37, f);
        for parallelism in [
            Parallelism::Serial,
            Parallelism::Fixed(1),
            Parallelism::Fixed(2),
            Parallelism::Fixed(8),
            Parallelism::Auto,
        ] {
            let par = run_with(11, 37, parallelism, f);
            assert_eq!(serial, par, "{parallelism:?} diverged from the serial loop");
        }
    }

    #[test]
    fn parallel_zero_and_single_trials() {
        let f = |rng: &mut Xoshiro256PlusPlus| rng.next_f64();
        let zero = run_with(5, 0, Parallelism::Fixed(4), f);
        assert!(zero.is_empty());
        assert_eq!(zero.mean(), 0.0);
        let one = run_with(5, 1, Parallelism::Fixed(4), f);
        assert_eq!(one, run(5, 1, f));
    }
}
