//! Neural-network substrate for the Vortex reproduction.
//!
//! The paper trains a single weight layer (a `784 × 10` crossbar, one
//! column per class, "1 vs. all") on the MNIST digit task. MNIST itself is
//! not available in this environment, so [`dataset`] provides
//! **SynthDigits** — a deterministic synthetic 10-class digit benchmark
//! rendered from stroke prototypes with affine jitter and pixel noise (see
//! `DESIGN.md` for the substitution rationale). Everything downstream
//! (training-rate/test-rate methodology, under-sampling to 14×14 and 7×7,
//! train/validation/test splits) follows the paper.
//!
//! * [`dataset`] — SynthDigits generation, block-average under-sampling.
//! * [`split`] — stratified train/validation/test splits.
//! * [`classifier::LinearClassifier`] — the `y = x·W`, argmax model.
//! * [`gdt`] — hinge-loss (sub)gradient-descent training (the paper's GDT,
//!   Eq. (3)).
//! * [`metrics`] — training rate, test rate, confusion matrices.
//! * [`montecarlo`] — seeded Monte-Carlo averaging used by every
//!   experiment.
//! * [`executor`] — the deterministic parallel trial executor behind
//!   every Monte-Carlo loop (pre-split seed streams, ordered reassembly;
//!   bit-exact across thread counts).
//! * [`pool`] — the persistent worker pool every fan-out in the
//!   workspace rides (the executor's scoped fan-outs and the serve
//!   scheduler's batch pumps share one pool).
//!
//! # Example
//!
//! ```
//! use vortex_nn::dataset::{SynthDigits, DatasetConfig};
//! use vortex_nn::gdt::GdtTrainer;
//! use vortex_nn::metrics;
//!
//! # fn main() -> Result<(), vortex_nn::NnError> {
//! let data = SynthDigits::generate(&DatasetConfig::tiny(), 42)?;
//! let w = GdtTrainer::default().train(&data)?;
//! let acc = metrics::accuracy_of_weights(&w, &data);
//! assert!(acc > 0.5); // well above the 0.1 chance level
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod classifier;
pub mod dataset;
pub mod executor;
pub mod gdt;
pub mod metrics;
pub mod montecarlo;
pub mod pool;
pub mod split;

pub use classifier::LinearClassifier;
pub use dataset::{Dataset, DatasetConfig, SynthDigits};

/// Errors produced by the NN substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The violated requirement.
        requirement: &'static str,
    },
    /// Dataset/model dimensions do not agree.
    ShapeMismatch {
        /// Description of the operation.
        context: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Supplied dimension.
        actual: usize,
    },
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::InvalidParameter { name, requirement } => {
                write!(f, "invalid parameter `{name}`: {requirement}")
            }
            NnError::ShapeMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "shape mismatch in {context}: expected {expected}, got {actual}"
            ),
        }
    }
}

impl std::error::Error for NnError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, NnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = NnError::ShapeMismatch {
            context: "predict",
            expected: 784,
            actual: 196,
        };
        assert!(e.to_string().contains("predict"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
