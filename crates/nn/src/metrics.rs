//! Classification metrics: training rate, test rate, confusion matrices.
//!
//! The paper's vocabulary (§2.2.3): "training rate" is the fraction of
//! *training* samples fitted by the trained network; "test rate" is the
//! fraction of *test* samples classified correctly by the *programmed*
//! (hardware, variation-bearing) network.

use vortex_linalg::Matrix;

use crate::classifier::LinearClassifier;
use crate::dataset::Dataset;
use crate::Result;

/// Fraction of samples classified correctly by a weight matrix under
/// ideal (software) evaluation.
///
/// Returns 0 for an empty dataset; panics only if shapes mismatch inside
/// [`LinearClassifier`] (propagated as error).
pub fn accuracy_of_weights(weights: &Matrix, data: &Dataset) -> f64 {
    match LinearClassifier::new(weights.clone()) {
        Ok(c) => c.accuracy(data).unwrap_or(0.0),
        Err(_) => 0.0,
    }
}

/// Fraction of `data` whose label matches the given per-sample
/// predictions (0 for an empty dataset).
///
/// The arithmetic (`correct / len`) is identical to
/// [`crate::classifier::accuracy_with`], so scoring through a prediction
/// vector is bit-exact with scoring inline.
///
/// # Panics
///
/// Panics if `predictions.len() != data.len()`.
pub fn accuracy_of_predictions(predictions: &[u8], data: &Dataset) -> f64 {
    assert_eq!(
        predictions.len(),
        data.len(),
        "accuracy_of_predictions: length mismatch"
    );
    if data.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .enumerate()
        .filter(|&(i, &p)| p == data.label(i))
        .count();
    correct as f64 / data.len() as f64
}

/// Confusion matrix (`true class × predicted class`, counts).
///
/// # Errors
///
/// Returns a shape error if the classifier and dataset disagree.
pub fn confusion_matrix(classifier: &LinearClassifier, data: &Dataset) -> Result<Matrix> {
    let k = data.num_classes();
    let mut cm = Matrix::zeros(k, k);
    for i in 0..data.len() {
        let pred = classifier.predict(data.image(i))? as usize;
        let truth = data.label(i) as usize;
        cm[(truth, pred.min(k - 1))] += 1.0;
    }
    Ok(cm)
}

/// Per-class recall (diagonal of the row-normalized confusion matrix).
pub fn per_class_recall(cm: &Matrix) -> Vec<f64> {
    (0..cm.rows())
        .map(|i| {
            let total: f64 = (0..cm.cols()).map(|j| cm[(i, j)]).sum();
            if total > 0.0 {
                cm[(i, i)] / total
            } else {
                0.0
            }
        })
        .collect()
}

/// A labelled pair of the paper's two headline rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rates {
    /// Fraction of training samples fitted (ideal weights).
    pub training_rate: f64,
    /// Fraction of test samples classified correctly (programmed
    /// hardware).
    pub test_rate: f64,
}

impl std::fmt::Display for Rates {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "training rate {:.1}%, test rate {:.1}%",
            100.0 * self.training_rate,
            100.0 * self.test_rate
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetConfig, SynthDigits};
    use crate::gdt::GdtTrainer;

    fn data() -> Dataset {
        SynthDigits::generate(&DatasetConfig::tiny(), 55).unwrap()
    }

    #[test]
    fn accuracy_of_weights_matches_classifier() {
        let d = data();
        let w = GdtTrainer::default().train(&d).unwrap();
        let via_helper = accuracy_of_weights(&w, &d);
        let via_classifier = LinearClassifier::new(w).unwrap().accuracy(&d).unwrap();
        assert_eq!(via_helper, via_classifier);
    }

    #[test]
    fn confusion_matrix_row_sums_are_class_counts() {
        let d = data();
        let w = GdtTrainer::default().train(&d).unwrap();
        let c = LinearClassifier::new(w).unwrap();
        let cm = confusion_matrix(&c, &d).unwrap();
        for digit in 0..10 {
            let row_sum: f64 = (0..10).map(|j| cm[(digit, j)]).sum();
            assert_eq!(row_sum as usize, 30);
        }
        let total: f64 = cm.as_slice().iter().sum();
        assert_eq!(total as usize, d.len());
    }

    #[test]
    fn recall_matches_diagonal() {
        let d = data();
        let w = GdtTrainer::default().train(&d).unwrap();
        let c = LinearClassifier::new(w).unwrap();
        let cm = confusion_matrix(&c, &d).unwrap();
        let recall = per_class_recall(&cm);
        assert_eq!(recall.len(), 10);
        for (digit, r) in recall.iter().enumerate() {
            assert!((*r - cm[(digit, digit)] / 30.0).abs() < 1e-12);
        }
        // Overall accuracy equals the mean recall (balanced classes).
        let acc = c.accuracy(&d).unwrap();
        let mean_recall: f64 = recall.iter().sum::<f64>() / 10.0;
        assert!((acc - mean_recall).abs() < 1e-9);
    }

    #[test]
    fn rates_display() {
        let r = Rates {
            training_rate: 0.947,
            test_rate: 0.849,
        };
        let s = r.to_string();
        assert!(s.contains("94.7"));
        assert!(s.contains("84.9"));
    }
}
