//! Deterministic parallel trial execution.
//!
//! Every Monte-Carlo loop in the workspace follows the same shape: a
//! parent [`Xoshiro256PlusPlus`] splits one child generator per trial, and
//! each trial consumes only its own child. Because the children depend
//! *only* on the parent stream — never on what previous trials did with
//! their children — the whole set of child generators can be pre-split
//! **before** fan-out. That is the determinism contract of this module:
//!
//! 1. **Pre-split**: child generator `k` is `parent.split()` number `k`,
//!    taken serially from the parent before any worker starts. The parent
//!    ends in exactly the state the serial loop would leave it in.
//! 2. **Pooled execution**: trials are claimed dynamically from the
//!    persistent [`WorkerPool`] — no per-call
//!    thread spawn, no channel setup (see [`crate::pool`]).
//! 3. **Ordered reassembly**: results land in a slot vector by trial
//!    index, so the output `Vec` is in trial order regardless of which
//!    worker finished first.
//!
//! Consequently [`run_trials`] is **bit-exact** across thread counts *and*
//! across claiming orders: trial `k` sees only child `k`, so one thread,
//! eight threads and the serial fallback all produce identical output for
//! the same seed. `tests/determinism.rs` in the bench crate enforces this,
//! including across many `run_trials` calls reusing one pool and with the
//! serve scheduler sharing that pool concurrently.
//!
//! The fan-out width comes from [`Parallelism`]: `Serial` forces the
//! in-place loop, `Fixed(n)` uses `n` claiming threads, and `Auto` (the
//! default everywhere) honors the `VORTEX_MC_THREADS` environment
//! variable, falling back to [`std::thread::available_parallelism`].
//!
//! [`run_trials_unpooled`] keeps the original per-call
//! `std::thread::scope` + mpsc implementation. It is not used by any
//! pipeline — it exists so the `runtime` bench experiment can quantify
//! exactly what pool reuse saves, against the same contract.
//!
//! # Observability
//!
//! Every [`run_trials`] call reports to the `vortex_obs` global registry:
//! `executor.runs` / `executor.trials` (counters), `executor.workers`
//! (gauge), and the histograms `executor.run_seconds` (whole fan-out) and
//! `executor.split_seconds` (serial pre-split). Metrics observe timing
//! only — no RNG, no control flow — so they cannot perturb the
//! bit-exactness contract above.

use std::sync::mpsc;
use std::time::Instant;
use vortex_linalg::rng::Xoshiro256PlusPlus;

use crate::pool::WorkerPool;

/// Name of the environment variable that overrides the `Auto` pool size.
pub const THREADS_ENV_VAR: &str = "VORTEX_MC_THREADS";

/// How many workers a Monte-Carlo loop fans out over.
///
/// All variants produce bit-identical results — the choice only affects
/// wall-clock time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Parallelism {
    /// Run trials in the calling thread, in order.
    Serial,
    /// Use exactly this many worker threads (values below 1 behave as 1).
    Fixed(usize),
    /// Use `VORTEX_MC_THREADS` if set to a positive integer, otherwise
    /// [`std::thread::available_parallelism`].
    #[default]
    Auto,
}

impl Parallelism {
    /// Resolves to a concrete worker count (always ≥ 1).
    pub fn resolve(self) -> usize {
        match self {
            Self::Serial => 1,
            Self::Fixed(n) => n.max(1),
            Self::Auto => env_threads().unwrap_or_else(available_threads),
        }
    }
}

fn env_threads() -> Option<usize> {
    std::env::var(THREADS_ENV_VAR)
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `trials` independent evaluations of `f`, each with its own child
/// generator pre-split from `parent`, and returns the results **in trial
/// order**. Fan-out runs on the process-wide [`WorkerPool::global`].
///
/// `f` receives the trial index and the trial's child generator. The
/// output is bit-identical for every [`Parallelism`] setting; see the
/// module docs for the mechanism. `parent` is left in the same state the
/// equivalent serial split-per-trial loop would leave it in, so callers
/// may keep drawing from it afterwards.
pub fn run_trials<T, F>(
    parent: &mut Xoshiro256PlusPlus,
    trials: usize,
    parallelism: Parallelism,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut Xoshiro256PlusPlus) -> T + Sync,
{
    run_trials_on(WorkerPool::global(), parent, trials, parallelism, f)
}

/// [`run_trials`] on an explicit pool. Library code and tests that need
/// an isolated or specifically-sized pool (the determinism harness pins
/// pool sizes 1, 2 and 8) call this directly.
pub fn run_trials_on<T, F>(
    pool: &WorkerPool,
    parent: &mut Xoshiro256PlusPlus,
    trials: usize,
    parallelism: Parallelism,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut Xoshiro256PlusPlus) -> T + Sync,
{
    let _run_span = vortex_obs::span!("executor.run_seconds");
    vortex_obs::counter!("executor.runs").incr();
    vortex_obs::counter!("executor.trials").add(trials as u64);

    // Step 1 of the contract: split every child serially, up front.
    let split_start = Instant::now();
    let children: Vec<Xoshiro256PlusPlus> = (0..trials).map(|_| parent.split()).collect();
    vortex_obs::histogram!("executor.split_seconds").record(split_start.elapsed().as_secs_f64());
    let workers = parallelism.resolve().min(trials.max(1));
    vortex_obs::gauge!("executor.workers").set(workers as f64);
    if workers <= 1 {
        return children
            .into_iter()
            .enumerate()
            .map(|(k, mut child)| f(k, &mut child))
            .collect();
    }

    // Steps 2 + 3: dynamic claiming over the persistent pool, results
    // reassembled by index. Trial `k` clones child `k` out of the
    // pre-split vector, so the value stream is a pure function of `k` —
    // which thread runs it, and in what order, cannot matter.
    pool.run_indexed(trials, workers, |k| {
        let mut child = children[k].clone();
        f(k, &mut child)
    })
}

/// The pre-pool implementation: per-call `std::thread::scope` spawn with
/// static striping and an mpsc result channel. Same contract and
/// bit-identical output to [`run_trials`]; kept so the `runtime` bench
/// experiment can measure what persistent-pool reuse saves. Not used by
/// any pipeline.
pub fn run_trials_unpooled<T, F>(
    parent: &mut Xoshiro256PlusPlus,
    trials: usize,
    parallelism: Parallelism,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut Xoshiro256PlusPlus) -> T + Sync,
{
    let children: Vec<Xoshiro256PlusPlus> = (0..trials).map(|_| parent.split()).collect();
    let workers = parallelism.resolve().min(trials.max(1));
    if workers <= 1 {
        return children
            .into_iter()
            .enumerate()
            .map(|(k, mut child)| f(k, &mut child))
            .collect();
    }
    // Stripe trials over freshly spawned workers: worker `w` owns trials
    // w, w + workers, w + 2·workers, …
    let mut shards: Vec<Vec<(usize, Xoshiro256PlusPlus)>> = (0..workers)
        .map(|_| Vec::with_capacity(trials / workers + 1))
        .collect();
    for (k, child) in children.into_iter().enumerate() {
        shards[k % workers].push((k, child));
    }
    let mut slots: Vec<Option<T>> = Vec::with_capacity(trials);
    slots.resize_with(trials, || None);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for shard in shards {
            let tx = tx.clone();
            let f = &f;
            scope.spawn(move || {
                for (k, mut child) in shard {
                    // A send only fails if the receiver is gone, which
                    // means the parent scope is already unwinding.
                    if tx.send((k, f(k, &mut child))).is_err() {
                        return;
                    }
                }
            });
        }
        drop(tx);
        for (k, value) in rx {
            slots[k] = Some(value);
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every trial index sends exactly one result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parent(seed: u64) -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(seed)
    }

    #[test]
    fn serial_and_parallel_agree_bit_for_bit() {
        let f = |k: usize, rng: &mut Xoshiro256PlusPlus| (k as f64) + rng.next_f64();
        let baseline = run_trials(&mut parent(7), 23, Parallelism::Serial, f);
        for threads in [1, 2, 3, 8, 64] {
            let got = run_trials(&mut parent(7), 23, Parallelism::Fixed(threads), f);
            let same = baseline
                .iter()
                .zip(&got)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "thread count {threads} changed the output");
        }
    }

    #[test]
    fn unpooled_matches_pooled_bit_for_bit() {
        let f = |k: usize, rng: &mut Xoshiro256PlusPlus| (k as u64) ^ rng.next_u64();
        let pooled = run_trials(&mut parent(11), 31, Parallelism::Fixed(4), f);
        let unpooled = run_trials_unpooled(&mut parent(11), 31, Parallelism::Fixed(4), f);
        assert_eq!(pooled, unpooled);
    }

    #[test]
    fn explicit_pool_matches_global_pool() {
        let f = |k: usize, rng: &mut Xoshiro256PlusPlus| (k as u64, rng.next_u64());
        let global = run_trials(&mut parent(13), 19, Parallelism::Fixed(3), f);
        for size in [1, 2, 8] {
            let pool = WorkerPool::new(size);
            let got = run_trials_on(&pool, &mut parent(13), 19, Parallelism::Fixed(3), f);
            assert_eq!(global, got, "pool size {size} changed the output");
        }
    }

    #[test]
    fn parent_state_matches_serial_loop() {
        let mut serial = parent(9);
        for _ in 0..10 {
            let _ = serial.split();
        }
        let mut fanned = parent(9);
        let _ = run_trials(&mut fanned, 10, Parallelism::Fixed(4), |_, rng| {
            rng.next_u64()
        });
        assert_eq!(serial.next_u64(), fanned.next_u64());
    }

    #[test]
    fn results_are_in_trial_order() {
        let out = run_trials(&mut parent(1), 101, Parallelism::Fixed(8), |k, _| k);
        assert_eq!(out, (0..101).collect::<Vec<_>>());
    }

    #[test]
    fn zero_trials_is_empty() {
        let out = run_trials(&mut parent(2), 0, Parallelism::Auto, |k, _| k);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_trials_is_fine() {
        let out = run_trials(&mut parent(3), 2, Parallelism::Fixed(16), |k, rng| {
            (k, rng.next_u64())
        });
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, 0);
        assert_eq!(out[1].0, 1);
    }

    #[test]
    fn resolve_is_at_least_one() {
        assert_eq!(Parallelism::Serial.resolve(), 1);
        assert_eq!(Parallelism::Fixed(0).resolve(), 1);
        assert_eq!(Parallelism::Fixed(5).resolve(), 5);
        assert!(Parallelism::Auto.resolve() >= 1);
    }
}
