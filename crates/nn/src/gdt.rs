//! Gradient-descent training (GDT) of the linear classifier.
//!
//! Eq. (3) of the paper: each column `W_r` is trained independently to
//! satisfy the soft margin constraints
//! `ŷ_r⁽ⁱ⁾ · (x⁽ⁱ⁾·W_r) ≥ 1 − ε⁽ⁱ⁾` with `ŷ ∈ {−1, +1}` ("1 vs. all"),
//! minimizing `Σ ε⁽ⁱ⁾` — i.e. per-column hinge loss, optimized here with
//! epoch-shuffled subgradient descent and an inverse-time step decay.

use serde::{Deserialize, Serialize};
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::{vector, Matrix};

use crate::dataset::Dataset;
use crate::{NnError, Result};

/// Hinge-loss subgradient trainer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GdtTrainer {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Initial learning rate.
    pub learning_rate: f64,
    /// L2 regularization coefficient (0 disables).
    pub l2: f64,
    /// Target margin (the paper's constraints use 1).
    pub margin: f64,
    /// Shuffle seed, so training is deterministic.
    pub seed: u64,
}

impl Default for GdtTrainer {
    fn default() -> Self {
        Self {
            epochs: 30,
            learning_rate: 0.05,
            l2: 1e-4,
            margin: 1.0,
            seed: 0x5EED,
        }
    }
}

impl GdtTrainer {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] on non-positive epochs,
    /// learning rate or margin, or a negative `l2`.
    pub fn validate(&self) -> Result<()> {
        if self.epochs == 0 {
            return Err(NnError::InvalidParameter {
                name: "epochs",
                requirement: "must be positive",
            });
        }
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err(NnError::InvalidParameter {
                name: "learning_rate",
                requirement: "must be finite and positive",
            });
        }
        if !(self.l2.is_finite() && self.l2 >= 0.0) {
            return Err(NnError::InvalidParameter {
                name: "l2",
                requirement: "must be finite and non-negative",
            });
        }
        if !(self.margin.is_finite() && self.margin > 0.0) {
            return Err(NnError::InvalidParameter {
                name: "margin",
                requirement: "must be finite and positive",
            });
        }
        Ok(())
    }

    /// Trains all 10 columns on `data`, returning the
    /// `features × classes` weight matrix.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidParameter`] for an invalid configuration
    /// or empty dataset.
    pub fn train(&self, data: &Dataset) -> Result<Matrix> {
        self.validate()?;
        if data.is_empty() {
            return Err(NnError::InvalidParameter {
                name: "data",
                requirement: "must be non-empty",
            });
        }
        let n = data.num_features();
        let m = data.num_classes();
        let mut w = Matrix::zeros(n, m);
        for class in 0..m {
            let col = self.train_column(data, class as u8)?;
            w.set_col(class, &col);
        }
        Ok(w)
    }

    /// Trains the single column for `class` ("1 vs. all" targets).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::train`].
    pub fn train_column(&self, data: &Dataset, class: u8) -> Result<Vec<f64>> {
        self.validate()?;
        if data.is_empty() {
            return Err(NnError::InvalidParameter {
                name: "data",
                requirement: "must be non-empty",
            });
        }
        let n = data.num_features();
        let mut w = vec![0.0_f64; n];
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(self.seed ^ (class as u64) << 32);
        let mut step_count = 0usize;
        for _epoch in 0..self.epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                step_count += 1;
                let alpha = self.learning_rate / (1.0 + step_count as f64 * self.l2.max(1e-6));
                let x = data.image(i);
                let target = if data.label(i) == class { 1.0 } else { -1.0 };
                let score = vector::dot(x, &w);
                // L2 shrink (applied regardless of margin violation).
                if self.l2 > 0.0 {
                    vector::scale(1.0 - alpha * self.l2, &mut w);
                }
                if target * score < self.margin {
                    vector::axpy(alpha * target, x, &mut w);
                }
            }
        }
        Ok(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::LinearClassifier;
    use crate::dataset::{DatasetConfig, SynthDigits};

    fn data() -> Dataset {
        SynthDigits::generate(&DatasetConfig::tiny(), 33).unwrap()
    }

    #[test]
    fn config_validation() {
        let t = GdtTrainer {
            epochs: 0,
            ..Default::default()
        };
        assert!(t.validate().is_err());
        let t = GdtTrainer {
            learning_rate: 0.0,
            ..Default::default()
        };
        assert!(t.validate().is_err());
        let t = GdtTrainer {
            l2: -1.0,
            ..Default::default()
        };
        assert!(t.validate().is_err());
        let t = GdtTrainer {
            margin: 0.0,
            ..Default::default()
        };
        assert!(t.validate().is_err());
        assert!(GdtTrainer::default().validate().is_ok());
    }

    #[test]
    fn training_beats_chance_significantly() {
        let d = data();
        let w = GdtTrainer::default().train(&d).unwrap();
        let c = LinearClassifier::new(w).unwrap();
        let acc = c.accuracy(&d).unwrap();
        assert!(acc > 0.6, "training accuracy {acc}");
    }

    #[test]
    fn training_is_deterministic() {
        let d = data();
        let t = GdtTrainer::default();
        let w1 = t.train(&d).unwrap();
        let w2 = t.train(&d).unwrap();
        assert_eq!(w1, w2);
    }

    #[test]
    fn more_epochs_do_not_hurt_much() {
        let d = data();
        let short = GdtTrainer {
            epochs: 2,
            ..Default::default()
        };
        let long = GdtTrainer {
            epochs: 40,
            ..Default::default()
        };
        let acc = |t: &GdtTrainer| {
            LinearClassifier::new(t.train(&d).unwrap())
                .unwrap()
                .accuracy(&d)
                .unwrap()
        };
        let a_short = acc(&short);
        let a_long = acc(&long);
        assert!(a_long >= a_short - 0.05, "short {a_short} long {a_long}");
    }

    #[test]
    fn column_targets_its_own_class() {
        let d = data();
        let t = GdtTrainer::default();
        let col3 = t.train_column(&d, 3).unwrap();
        // Mean score of class-3 samples must exceed mean score of others.
        let mut pos = 0.0;
        let mut npos = 0;
        let mut negv = 0.0;
        let mut nneg = 0;
        for i in 0..d.len() {
            let s = vortex_linalg::vector::dot(d.image(i), &col3);
            if d.label(i) == 3 {
                pos += s;
                npos += 1;
            } else {
                negv += s;
                nneg += 1;
            }
        }
        assert!(pos / npos as f64 > negv / nneg as f64 + 0.5);
    }

    #[test]
    fn full_train_matches_per_column() {
        let d = data();
        let t = GdtTrainer::default();
        let w = t.train(&d).unwrap();
        let col5 = t.train_column(&d, 5).unwrap();
        assert_eq!(w.col(5), col5);
    }

    #[test]
    fn empty_dataset_rejected() {
        let d = data().subset(&[]);
        assert!(GdtTrainer::default().train(&d).is_err());
    }
}
