//! A persistent worker pool shared by every fan-out in the workspace.
//!
//! Before this module existed, each Monte-Carlo [`run_trials`](crate::executor::run_trials) call and
//! each serve-scheduler batch paid for its own `std::thread::spawn` +
//! `mpsc` channel pair — measurably slower than serial once trials got
//! cheap (see `BENCH_runtime.json` history). A [`WorkerPool`] is created
//! **once** (usually via [`WorkerPool::global`]) and amortizes thread
//! creation across every fan-out for the life of the process. Two very
//! different clients ride the same abstraction:
//!
//! * the Monte-Carlo executor ([`crate::executor::run_trials`]) uses the
//!   scoped, blocking [`WorkerPool::run_indexed`] fan-out;
//! * the serve scheduler submits long-lived detached "pump" jobs via
//!   [`WorkerPool::submit`].
//!
//! # Work claiming
//!
//! [`WorkerPool::run_indexed`] is a *scoped* fan-out: it enqueues up to
//! `concurrency - 1` helper jobs and then **participates from the calling
//! thread**. Caller and helpers claim task indices from a shared atomic
//! cursor — an idle thread simply claims the next undone index, which is
//! the degenerate (and contention-free) form of work stealing: there is
//! one global deque of remaining indices and every worker steals from its
//! head. Dynamic claiming also load-balances skewed task costs for free,
//! where the old per-call implementation striped tasks statically.
//!
//! Caller participation is what makes the pool deadlock-free under
//! nesting and undersizing: even if every pool thread is busy (or the
//! pool has a single thread occupied by a serve pump), the caller alone
//! drains all indices and `run_indexed` completes.
//!
//! # Determinism
//!
//! The pool itself is order-agnostic: `run_indexed(tasks, c, f)` calls
//! `f(k)` exactly once per `k` and returns results indexed by `k`. Any
//! determinism contract (such as the executor's pre-split RNG streams) is
//! layered on top by making `f(k)` depend only on `k` — never on which
//! thread runs it or in which order. `tests/determinism.rs` in the bench
//! crate pins that contract at pool sizes 1, 2 and 8.
//!
//! # Panics
//!
//! A panicking task does **not** poison the pool. Per-task panics inside
//! `run_indexed` are caught, the fan-out runs to quiescence, and the
//! first payload is re-raised on the *calling* thread (matching
//! `std::thread::scope` semantics). Panics escaping a detached
//! [`WorkerPool::submit`] job are caught and counted
//! (`pool.job_panics`); the worker thread survives and keeps serving the
//! queue — the slot is immediately reusable.

use std::any::Any;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Environment variable overriding the size of the global pool.
pub const POOL_THREADS_ENV_VAR: &str = "VORTEX_POOL_THREADS";

/// Distinguishes fan-outs in the shared queue so one fan-out can purge
/// its own unstarted helpers without touching anyone else's jobs.
/// `DETACHED_RUN` marks fire-and-forget jobs, which are never purged.
const DETACHED_RUN: u64 = 0;

static NEXT_RUN_ID: AtomicU64 = AtomicU64::new(1);

struct Job {
    run: u64,
    call: Box<dyn FnOnce() + Send>,
}

struct JobQueue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<JobQueue>,
    available: Condvar,
}

/// A persistent pool of worker threads. See the module docs.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    size: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("size", &self.size)
            .finish()
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue lock");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.available.wait(queue).expect("pool queue lock");
            }
        };
        // A panicking job must not take the worker thread down with it:
        // catch, count, keep serving. (Scoped fan-outs catch their own
        // panics before this point; this is the detached-job backstop.)
        if catch_unwind(AssertUnwindSafe(job.call)).is_err() {
            vortex_obs::counter!("pool.job_panics").incr();
        }
    }
}

impl WorkerPool {
    /// Creates a pool with `size` worker threads (at least 1).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(JobQueue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let threads = (0..size)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vortex-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("pool worker thread spawns")
            })
            .collect();
        vortex_obs::gauge!("pool.threads").set(size as f64);
        Self {
            shared,
            threads: Mutex::new(threads),
            size,
        }
    }

    /// The process-wide pool: every `Parallelism`-driven fan-out that
    /// does not carry an explicit pool runs here, so thread creation is
    /// paid once per process instead of once per call.
    ///
    /// Sized from `VORTEX_POOL_THREADS` when set, otherwise
    /// `available_parallelism` clamped to `[8, 32]` — oversizing relative
    /// to the core count is deliberate, so that `Fixed(n)` fan-outs with
    /// `n` above the core count still get `n`-way interleaving (parked
    /// threads are cheap; the clamp keeps huge hosts bounded).
    pub fn global() -> &'static Arc<WorkerPool> {
        static GLOBAL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let size = std::env::var(POOL_THREADS_ENV_VAR)
                .ok()
                .and_then(|raw| raw.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(std::num::NonZeroUsize::get)
                        .unwrap_or(1)
                        .clamp(8, 32)
                });
            Arc::new(WorkerPool::new(size))
        })
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Enqueues a detached fire-and-forget job. Used by long-lived
    /// clients (the serve scheduler's batch pumps); a panic in `f` is
    /// caught and counted, and the worker thread keeps serving.
    pub fn submit<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        vortex_obs::counter!("pool.jobs").incr();
        let mut queue = self.shared.queue.lock().expect("pool queue lock");
        queue.jobs.push_back(Job {
            run: DETACHED_RUN,
            call: Box::new(f),
        });
        drop(queue);
        self.shared.available.notify_one();
    }

    /// Runs `f(k)` once for every `k < tasks` using up to `concurrency`
    /// threads (the caller plus at most `concurrency - 1` pool helpers),
    /// returning results in index order. Blocks until every task is done
    /// and every helper has left the fan-out.
    ///
    /// Tasks are claimed dynamically from a shared cursor, so the
    /// assignment of tasks to threads is load-balanced but unspecified —
    /// `f` must depend only on `k` for deterministic output.
    ///
    /// # Panics
    ///
    /// If any task panics, the fan-out still runs to completion (every
    /// index is claimed; panicked tasks produce no value) and the first
    /// panic payload is re-raised here, on the calling thread.
    pub fn run_indexed<T, F>(&self, tasks: usize, concurrency: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if tasks == 0 {
            return Vec::new();
        }
        let helpers = concurrency.saturating_sub(1).min(tasks - 1).min(self.size);
        if helpers == 0 {
            return (0..tasks).map(f).collect();
        }

        let mut slots: Vec<UnsafeCell<Option<T>>> = Vec::with_capacity(tasks);
        slots.resize_with(tasks, || UnsafeCell::new(None));
        let run = Run {
            f: &f,
            slots: slots.as_ptr(),
            tasks,
            cursor: AtomicUsize::new(0),
            progress: Mutex::new(Progress {
                completed: 0,
                helpers,
            }),
            done: Condvar::new(),
            panic: Mutex::new(None),
        };
        let run_id = NEXT_RUN_ID.fetch_add(1, Ordering::Relaxed);
        vortex_obs::counter!("pool.jobs").add(helpers as u64);
        {
            // All helpers are enqueued (and counted in `progress.helpers`)
            // before any can run, so the quiescence wait below can never
            // miss one.
            let ptr = SendPtr(&run as *const Run<'_, T, F> as *const ());
            let enter: unsafe fn(*const ()) = enter_run::<T, F>;
            let mut queue = self.shared.queue.lock().expect("pool queue lock");
            for _ in 0..helpers {
                queue.jobs.push_back(Job {
                    run: run_id,
                    // SAFETY (deferred): see `Run` — the pointer stays
                    // valid because this function does not return while
                    // any enqueued-or-running helper can still touch it.
                    // `ptr.get()` keeps 2021 precise capture from peeling
                    // the non-`Send` raw pointer out of the `Send` wrapper.
                    call: Box::new(move || unsafe { enter(ptr.get()) }),
                });
            }
        }
        self.shared.available.notify_all();

        // The caller participates: this is what makes the fan-out
        // deadlock-free even when every pool thread is busy elsewhere.
        run.claim();

        // Wait until every index has produced a value (or a caught
        // panic) ...
        {
            let mut progress = run.progress.lock().expect("pool run progress lock");
            while progress.completed < tasks {
                progress = run.done.wait(progress).expect("pool run progress lock");
            }
        }
        // ... then purge helpers that never left the queue and wait for
        // the ones that did to step out of the run. After this, no other
        // thread holds a pointer into our stack frame.
        let purged = {
            let mut queue = self.shared.queue.lock().expect("pool queue lock");
            let before = queue.jobs.len();
            queue.jobs.retain(|job| job.run != run_id);
            before - queue.jobs.len()
        };
        {
            let mut progress = run.progress.lock().expect("pool run progress lock");
            progress.helpers -= purged;
            while progress.helpers > 0 {
                progress = run.done.wait(progress).expect("pool run progress lock");
            }
        }
        if let Some(payload) = run.panic.lock().expect("pool run panic lock").take() {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|cell| {
                cell.into_inner()
                    .expect("no panic was re-raised, so every task wrote its slot")
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("pool queue lock");
            queue.shutdown = true;
        }
        self.shared.available.notify_all();
        for handle in self.threads.lock().expect("pool thread handles").drain(..) {
            let _ = handle.join();
        }
    }
}

/// Progress of one scoped fan-out, guarded by `Run::progress`.
struct Progress {
    /// Task indices whose closure has returned (or panicked-and-been-
    /// caught).
    completed: usize,
    /// Helpers that are enqueued or inside the run. Decremented when a
    /// helper leaves `enter_run`, or by the purge for helpers that never
    /// started.
    helpers: usize,
}

/// Shared state of one `run_indexed` call, living on the caller's stack.
///
/// Raw pointers (not references) so the type has no lifetime parameter
/// and a plain `fn(*const ())` can recover it inside a `'static` boxed
/// job.
///
/// # Safety
///
/// * `f` and `slots` point into `run_indexed`'s frame, which outlives
///   every access: `run_indexed` returns (or unwinds) only after the
///   queue purge and the `helpers == 0` quiescence wait prove no helper
///   can touch the `Run` again.
/// * `slots[k]` is written by exactly one thread — the one that claimed
///   `k` from the cursor — and read only after quiescence.
struct Run<'f, T, F> {
    f: &'f F,
    slots: *const UnsafeCell<Option<T>>,
    tasks: usize,
    cursor: AtomicUsize,
    progress: Mutex<Progress>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

unsafe impl<T: Send, F: Sync> Sync for Run<'_, T, F> {}

impl<T, F> Run<'_, T, F>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    /// Claims and runs task indices until the cursor runs past the end.
    fn claim(&self) {
        loop {
            let k = self.cursor.fetch_add(1, Ordering::Relaxed);
            if k >= self.tasks {
                return;
            }
            match catch_unwind(AssertUnwindSafe(|| (self.f)(k))) {
                // SAFETY: `k` was claimed from the cursor exactly once,
                // so this thread has exclusive access to slot `k`.
                Ok(value) => unsafe {
                    *(*self.slots.add(k)).get() = Some(value);
                },
                Err(payload) => {
                    let mut first = self.panic.lock().expect("pool run panic lock");
                    first.get_or_insert(payload);
                }
            }
            let mut progress = self.progress.lock().expect("pool run progress lock");
            progress.completed += 1;
            if progress.completed == self.tasks {
                self.done.notify_all();
            }
        }
    }
}

/// Type-erased pointer to a `Run`, `Send` so it can ride a boxed job to
/// a worker thread; the `Run` it points to is `Sync` (asserted above).
#[derive(Clone, Copy)]
struct SendPtr(*const ());

unsafe impl Send for SendPtr {}

impl SendPtr {
    fn get(self) -> *const () {
        self.0
    }
}

/// Helper-side entry: claim tasks, then check out of the run. The
/// check-out notification under the progress lock is the last touch of
/// the `Run`; after it, `run_indexed` is free to return.
unsafe fn enter_run<T, F>(ptr: *const ())
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let run = &*(ptr as *const Run<'_, T, F>);
    run.claim();
    let mut progress = run.progress.lock().expect("pool run progress lock");
    progress.helpers -= 1;
    if progress.helpers == 0 {
        run.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn run_indexed_returns_results_in_index_order() {
        let pool = WorkerPool::new(4);
        let out = pool.run_indexed(100, 4, |k| k * k);
        assert_eq!(out, (0..100).map(|k| k * k).collect::<Vec<_>>());
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let pool = WorkerPool::new(8);
        let hits: Vec<AtomicU32> = (0..500).map(|_| AtomicU32::new(0)).collect();
        let _ = pool.run_indexed(500, 8, |k| hits[k].fetch_add(1, Ordering::Relaxed));
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_tasks_is_empty() {
        let pool = WorkerPool::new(2);
        let out: Vec<u32> = pool.run_indexed(0, 2, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn concurrency_one_runs_inline() {
        let pool = WorkerPool::new(4);
        let caller = std::thread::current().id();
        let out = pool.run_indexed(10, 1, |k| {
            assert_eq!(std::thread::current().id(), caller);
            k
        });
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn pool_is_reusable_across_many_fan_outs() {
        let pool = WorkerPool::new(3);
        for round in 0..50 {
            let out = pool.run_indexed(17, 3, move |k| k + round);
            assert_eq!(out, (0..17).map(|k| k + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn task_panic_is_reraised_on_the_caller_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(20, 2, |k| {
                if k == 7 {
                    panic!("boom at 7");
                }
                k
            })
        }));
        assert!(caught.is_err(), "task panic must surface to the caller");
        // The pool is not poisoned: the same threads serve the next run.
        let out = pool.run_indexed(20, 2, |k| k);
        assert_eq!(out.len(), 20);
    }

    #[test]
    fn detached_job_panic_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1);
        pool.submit(|| panic!("detached boom"));
        // The single worker survives the panic and still serves fan-outs
        // (the caller would finish alone anyway, but the helper check-in
        // below proves the thread is alive).
        let ran = Arc::new(AtomicU32::new(0));
        let flag = Arc::clone(&ran);
        pool.submit(move || {
            flag.fetch_add(1, Ordering::Relaxed);
        });
        for _ in 0..200 {
            if ran.load(Ordering::Relaxed) == 1 {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("worker thread died after a detached job panic");
    }

    #[test]
    fn undersized_pool_still_completes_via_caller_participation() {
        // One pool thread, deliberately wedged by a detached job; the
        // caller drains the whole fan-out alone.
        let pool = WorkerPool::new(1);
        let (wedge_tx, wedge_rx) = std::sync::mpsc::channel::<()>();
        pool.submit(move || {
            let _ = wedge_rx.recv();
        });
        let out = pool.run_indexed(25, 4, |k| k);
        assert_eq!(out, (0..25).collect::<Vec<_>>());
        wedge_tx.send(()).expect("wedged worker still listening");
    }

    #[test]
    fn nested_fan_outs_do_not_deadlock() {
        let pool = Arc::new(WorkerPool::new(2));
        let inner = Arc::clone(&pool);
        let out = pool.run_indexed(4, 2, move |k| {
            let sub = inner.run_indexed(3, 2, |j| j + k);
            sub.iter().sum::<usize>()
        });
        assert_eq!(out, vec![3, 6, 9, 12]);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = Arc::as_ptr(WorkerPool::global());
        let b = Arc::as_ptr(WorkerPool::global());
        assert_eq!(a, b);
        assert!(WorkerPool::global().size() >= 1);
    }
}
