//! Stratified dataset splits.
//!
//! The paper's protocol: 4000 training samples, 2000 test samples (§5.4),
//! and inside training a large/small split for VAT's self-tuning
//! validation loop (§4.1.3, Fig. 5).

use vortex_linalg::rng::Xoshiro256PlusPlus;

use crate::dataset::Dataset;
use crate::{NnError, Result};

/// A train/test (or train/validation) partition of a dataset.
#[derive(Debug, Clone)]
pub struct Split {
    /// First part (training).
    pub train: Dataset,
    /// Second part (test or validation).
    pub test: Dataset,
}

/// Splits `data` into `n_train`/`n_test` samples, stratified by class:
/// each class contributes proportionally to both parts. Sample order
/// within each part is shuffled.
///
/// # Errors
///
/// Returns [`NnError::InvalidParameter`] if `n_train + n_test` exceeds the
/// dataset size or either count is zero.
pub fn stratified_split(
    data: &Dataset,
    n_train: usize,
    n_test: usize,
    rng: &mut Xoshiro256PlusPlus,
) -> Result<Split> {
    if n_train == 0 || n_test == 0 {
        return Err(NnError::InvalidParameter {
            name: "n_train/n_test",
            requirement: "must both be positive",
        });
    }
    if n_train + n_test > data.len() {
        return Err(NnError::InvalidParameter {
            name: "n_train + n_test",
            requirement: "must not exceed the dataset size",
        });
    }
    // Group indices by class, shuffle within class.
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); data.num_classes()];
    for i in 0..data.len() {
        by_class[data.label(i) as usize].push(i);
    }
    for idx in &mut by_class {
        rng.shuffle(idx);
    }

    // Take per-class quotas round-robin so totals land exactly.
    let mut train_idx = Vec::with_capacity(n_train);
    let mut test_idx = Vec::with_capacity(n_test);
    let mut cursors = vec![0usize; by_class.len()];
    let mut class = 0usize;
    let take = |want: usize, out: &mut Vec<usize>, cursors: &mut Vec<usize>, class: &mut usize| {
        let mut stalled = 0;
        while out.len() < want {
            let c = *class % by_class.len();
            *class += 1;
            if cursors[c] < by_class[c].len() {
                out.push(by_class[c][cursors[c]]);
                cursors[c] += 1;
                stalled = 0;
            } else {
                stalled += 1;
                if stalled > by_class.len() {
                    break; // every class exhausted
                }
            }
        }
    };
    take(n_train, &mut train_idx, &mut cursors, &mut class);
    take(n_test, &mut test_idx, &mut cursors, &mut class);

    rng.shuffle(&mut train_idx);
    rng.shuffle(&mut test_idx);
    Ok(Split {
        train: data.subset(&train_idx),
        test: data.subset(&test_idx),
    })
}

/// Splits a *training* set into the large/small groups of VAT's
/// self-tuning loop; `validation_fraction` of the samples go to the small
/// group.
///
/// # Errors
///
/// Returns [`NnError::InvalidParameter`] if the fraction is outside
/// `(0, 1)` or produces an empty part.
pub fn tuning_split(
    train: &Dataset,
    validation_fraction: f64,
    rng: &mut Xoshiro256PlusPlus,
) -> Result<Split> {
    if !(validation_fraction > 0.0 && validation_fraction < 1.0) {
        return Err(NnError::InvalidParameter {
            name: "validation_fraction",
            requirement: "must lie strictly between 0 and 1",
        });
    }
    let n_valid = ((train.len() as f64) * validation_fraction).round() as usize;
    let n_train = train.len() - n_valid;
    if n_valid == 0 || n_train == 0 {
        return Err(NnError::InvalidParameter {
            name: "validation_fraction",
            requirement: "must leave both parts non-empty",
        });
    }
    stratified_split(train, n_train, n_valid, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetConfig, SynthDigits};

    fn data() -> Dataset {
        SynthDigits::generate(&DatasetConfig::tiny(), 9).unwrap()
    }

    fn rng() -> Xoshiro256PlusPlus {
        Xoshiro256PlusPlus::seed_from_u64(100)
    }

    #[test]
    fn split_sizes_exact() {
        let d = data();
        let s = stratified_split(&d, 200, 80, &mut rng()).unwrap();
        assert_eq!(s.train.len(), 200);
        assert_eq!(s.test.len(), 80);
    }

    #[test]
    fn split_is_stratified() {
        let d = data(); // 30 per class
        let s = stratified_split(&d, 200, 100, &mut rng()).unwrap();
        for digit in 0..10u8 {
            let tr = s.train.labels().iter().filter(|&&l| l == digit).count();
            let te = s.test.labels().iter().filter(|&&l| l == digit).count();
            assert!((tr as i64 - 20).abs() <= 1, "class {digit} train {tr}");
            assert!((te as i64 - 10).abs() <= 1, "class {digit} test {te}");
        }
    }

    #[test]
    fn split_parts_are_disjoint() {
        let d = data();
        let s = stratified_split(&d, 150, 150, &mut rng()).unwrap();
        // No image may appear in both parts: compare by content hash-ish sum.
        let key = |img: &[f64]| -> u64 {
            img.iter()
                .enumerate()
                .map(|(i, &v)| (i as u64 + 1).wrapping_mul((v * 1e6) as u64))
                .fold(0u64, u64::wrapping_add)
        };
        let train_keys: std::collections::HashSet<u64> =
            (0..s.train.len()).map(|i| key(s.train.image(i))).collect();
        for i in 0..s.test.len() {
            assert!(!train_keys.contains(&key(s.test.image(i))));
        }
    }

    #[test]
    fn split_validation() {
        let d = data();
        assert!(stratified_split(&d, 0, 10, &mut rng()).is_err());
        assert!(stratified_split(&d, 400, 10, &mut rng()).is_err());
    }

    #[test]
    fn tuning_split_fraction() {
        let d = data();
        let s = tuning_split(&d, 0.2, &mut rng()).unwrap();
        assert_eq!(s.test.len(), 60);
        assert_eq!(s.train.len(), 240);
        assert!(tuning_split(&d, 0.0, &mut rng()).is_err());
        assert!(tuning_split(&d, 1.0, &mut rng()).is_err());
    }

    #[test]
    fn different_seeds_give_different_splits() {
        let d = data();
        let mut r1 = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut r2 = Xoshiro256PlusPlus::seed_from_u64(2);
        let s1 = stratified_split(&d, 100, 50, &mut r1).unwrap();
        let s2 = stratified_split(&d, 100, 50, &mut r2).unwrap();
        assert_ne!(s1.train.images(), s2.train.images());
    }
}
