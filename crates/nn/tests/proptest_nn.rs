//! Property-based tests for the NN substrate.

use proptest::prelude::*;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::Matrix;
use vortex_nn::dataset::glyphs::glyph_strokes;
use vortex_nn::dataset::raster::{downsample, rasterize};
use vortex_nn::dataset::{Dataset, DatasetConfig, SynthDigits};
use vortex_nn::executor::Parallelism;
use vortex_nn::montecarlo;
use vortex_nn::split::stratified_split;

fn tiny_dataset(seed: u64) -> Dataset {
    SynthDigits::generate(&DatasetConfig::tiny(), seed).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generation_is_deterministic_per_seed(seed in proptest::num::u64::ANY) {
        let a = tiny_dataset(seed);
        let b = tiny_dataset(seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn downsample_preserves_mean(img in proptest::collection::vec(0.0..1.0f64, 16 * 16),
                                 factor in prop_oneof![Just(2usize), Just(4), Just(8)]) {
        let d = downsample(&img, 16, factor);
        let mean_in: f64 = img.iter().sum::<f64>() / img.len() as f64;
        let mean_out: f64 = d.iter().sum::<f64>() / d.len() as f64;
        prop_assert!((mean_in - mean_out).abs() < 1e-9);
        prop_assert_eq!(d.len(), (16 / factor) * (16 / factor));
    }

    #[test]
    fn rasterized_digits_stay_in_unit_range(digit in 0u8..10, side in 8usize..32,
                                            width in 0.01..0.1f64) {
        let img = rasterize(&glyph_strokes(digit), side, width);
        prop_assert_eq!(img.len(), side * side);
        for &v in &img {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn split_partitions_exactly(seed in proptest::num::u64::ANY,
                                n_train in 50usize..150, n_test in 20usize..100) {
        let data = tiny_dataset(1);
        prop_assume!(n_train + n_test <= data.len());
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let s = stratified_split(&data, n_train, n_test, &mut rng).unwrap();
        prop_assert_eq!(s.train.len(), n_train);
        prop_assert_eq!(s.test.len(), n_test);
        prop_assert_eq!(s.train.num_features(), data.num_features());
    }

    #[test]
    fn subset_preserves_labels(seed in proptest::num::u64::ANY) {
        let data = tiny_dataset(2);
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(seed);
        let k = 1 + rng.next_below(data.len() - 1);
        let idx = rng.sample_indices(data.len(), k);
        let sub = data.subset(&idx);
        prop_assert_eq!(sub.len(), k);
        for (pos, &i) in idx.iter().enumerate() {
            prop_assert_eq!(sub.label(pos), data.label(i));
            prop_assert_eq!(sub.image(pos), data.image(i));
        }
    }

    #[test]
    fn classifier_scores_are_linear_in_input(w_vals in proptest::collection::vec(-1.0..1.0f64, 6 * 10),
                                             x in proptest::collection::vec(0.0..1.0f64, 6),
                                             k in 0.1..3.0f64) {
        let w = Matrix::from_vec(6, 10, w_vals).unwrap();
        let c = vortex_nn::classifier::LinearClassifier::new(w).unwrap();
        let s1 = c.scores(&x).unwrap();
        let xk: Vec<f64> = x.iter().map(|v| v * k).collect();
        let s2 = c.scores(&xk).unwrap();
        for (a, b) in s1.iter().zip(&s2) {
            prop_assert!((b - k * a).abs() < 1e-9 * (1.0 + a.abs()));
        }
        // Scaling all inputs uniformly never changes the argmax decision
        // (analog amplitude invariance of the crossbar classifier).
        prop_assert_eq!(c.predict(&x).unwrap(), c.predict(&xk).unwrap());
    }

    #[test]
    fn montecarlo_statistics_invariant_under_thread_count(seed in proptest::num::u64::ANY,
                                                          trials in 1usize..40,
                                                          threads in 2usize..9) {
        // The determinism contract: the same (seed, trials) produce
        // bit-identical values — hence bit-identical mean and spread — on
        // any worker-pool size, including odd trial/thread combinations.
        let f = |rng: &mut Xoshiro256PlusPlus| rng.next_f64();
        let serial = montecarlo::run(seed, trials, f);
        let parallel = montecarlo::run_with(seed, trials, Parallelism::Fixed(threads), f);
        prop_assert_eq!(&serial.values, &parallel.values);
        prop_assert_eq!(serial.mean().to_bits(), parallel.mean().to_bits());
        prop_assert_eq!(serial.std_dev().to_bits(), parallel.std_dev().to_bits());
        prop_assert_eq!(serial.std_error().to_bits(), parallel.std_error().to_bits());
    }
}
