//! # vortex-train — fault-tolerant close-loop training jobs
//!
//! The paper's CLD baseline (`vortex_core::cld`) runs delta-rule learning
//! against the simulated crossbar as an *offline* pipeline: one call, one
//! trained weight matrix, nothing survives a crash. This crate turns that
//! loop into a production job subsystem that trains *next to* live
//! inference traffic and survives everything the chaos layer throws at
//! serving:
//!
//! * **Resumable stepper** ([`stepper::DeltaStepper`]): the delta rule is
//!   refactored into mini-epochs whose complete state — weights, the
//!   normalized-LMS step scale, the epoch counter and the exact RNG
//!   stream position — freezes into a
//!   [`vortex_runtime::TrainingCheckpoint`] at any epoch boundary.
//!   A restored stepper replays the remaining epochs bit-identically to a
//!   run that was never interrupted, at any pool size (each mini-epoch is
//!   serial by construction; the *job* is the unit of parallelism).
//! * **Priority classes** ([`job::TrainingJob`]): training runs as
//!   preemptible units of work on the shared [`vortex_nn::pool::WorkerPool`],
//!   one mini-epoch at a time, and *yields between mini-epochs* whenever
//!   the serving scheduler's queue depth crosses its high-water mark —
//!   inference always outranks learning.
//! * **Crash recovery**: every mini-epoch executes under `catch_unwind`;
//!   a panic (organic or injected by a seeded
//!   [`vortex_serve::chaos::ChaosPlan`] kill) discards the in-memory
//!   state and the supervisor restarts from the newest checkpoint that
//!   still decodes, with bounded backoff. Checkpoints alternate between
//!   two slots and are written atomically, so a corrupted or torn newest
//!   checkpoint falls back to the older good one — and the replayed run
//!   still lands on the same final weights, bit for bit.
//! * **Promotion**: a converged job compiles its weights through the
//!   [`CompileRequest`](vortex_core::pipeline::CompileRequest) builder
//!   and hot-swaps the live model through the existing
//!   [`vortex_serve::health::HealthMonitor`] acceptance path.
//!
//! Everything is observable through `vortex-obs` `train.*` counters and
//! gauges: epochs, checkpoints, restarts, injected kills, rejected
//! checkpoints, yields and promotions.

#![warn(missing_docs)]

pub mod job;
pub mod stepper;

pub use job::{JobConfig, JobReport, TrainingJob};
pub use stepper::{DeltaStepper, TrainerConfig};

/// Canonical imports for training jobs:
/// `use vortex_train::prelude::*;`.
pub mod prelude {
    pub use crate::{DeltaStepper, JobConfig, JobReport, TrainError, TrainerConfig, TrainingJob};
    pub use vortex_runtime::TrainingCheckpoint;
}

/// Errors produced by the training-job subsystem.
#[derive(Debug)]
#[non_exhaustive]
pub enum TrainError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The violated requirement.
        requirement: &'static str,
    },
    /// A checkpoint decoded cleanly but does not belong to this job
    /// (wrong seed, wrong shape) and must not be resumed from.
    CheckpointMismatch {
        /// What was found to be inconsistent.
        context: &'static str,
    },
    /// The supervisor exhausted its restart budget: the job crashed more
    /// times than [`JobConfig::max_restarts`] allows.
    RestartsExhausted {
        /// How many restarts were attempted before giving up.
        restarts: u32,
    },
    /// A compile/simulation operation of the core pipeline failed.
    Core(vortex_core::CoreError),
    /// A runtime (artifact/checkpoint/model) operation failed.
    Runtime(vortex_runtime::RuntimeError),
    /// A serving-layer operation (scheduler, health monitor) failed.
    Serve(vortex_serve::ServeError),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidParameter { name, requirement } => {
                write!(f, "invalid parameter `{name}`: {requirement}")
            }
            Self::CheckpointMismatch { context } => {
                write!(f, "checkpoint does not belong to this job: {context}")
            }
            Self::RestartsExhausted { restarts } => {
                write!(
                    f,
                    "training job crashed past its restart budget ({restarts} restarts)"
                )
            }
            Self::Core(e) => write!(f, "core pipeline error: {e}"),
            Self::Runtime(e) => write!(f, "runtime error: {e}"),
            Self::Serve(e) => write!(f, "serving error: {e}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Core(e) => Some(e),
            Self::Runtime(e) => Some(e),
            Self::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vortex_core::CoreError> for TrainError {
    fn from(e: vortex_core::CoreError) -> Self {
        Self::Core(e)
    }
}

impl From<vortex_runtime::RuntimeError> for TrainError {
    fn from(e: vortex_runtime::RuntimeError) -> Self {
        Self::Runtime(e)
    }
}

impl From<vortex_serve::ServeError> for TrainError {
    fn from(e: vortex_serve::ServeError) -> Self {
        Self::Serve(e)
    }
}

/// Convenient result alias for training operations.
pub type Result<T> = std::result::Result<T, TrainError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = TrainError::InvalidParameter {
            name: "x",
            requirement: "y",
        };
        assert!(e.to_string().contains("invalid parameter"));
        let e = TrainError::RestartsExhausted { restarts: 3 };
        assert!(e.to_string().contains("restart budget"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TrainError>();
    }
}
