//! The resumable delta-rule stepper.
//!
//! [`DeltaStepper`] is the CLD training loop of `vortex_core::cld`
//! re-cut into *mini-epochs*: one call to [`DeltaStepper::step`] is one
//! full shuffled pass over the training set, and between any two calls
//! the complete training state freezes into a
//! [`TrainingCheckpoint`] — weights, normalized-LMS step scale, epoch
//! and sample counters, and the exact position of the RNG stream.
//!
//! # Determinism contract
//!
//! A stepper restored via [`DeltaStepper::resume`] continues the run
//! **bit-identically**: for the same dataset, environment and
//! [`TrainerConfig`], `fresh → step×k → checkpoint → resume → step×m`
//! produces exactly the same weights as `fresh → step×(k+m)`. Two
//! ingredients make this hold:
//!
//! * the shuffle order and nothing else consumes the training RNG, and
//!   its full 256-bit state rides in the checkpoint
//!   ([`Xoshiro256PlusPlus::state`]);
//! * the per-cell `e^θ` variation multipliers are *not* checkpointed —
//!   they model the fabricated array, which does not change across a
//!   process restart — and are re-derived from a **separate** RNG stream
//!   seeded from `config.seed`, so re-deriving them never perturbs the
//!   training stream.

use vortex_core::pipeline::HardwareEnv;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_linalg::Matrix;
use vortex_nn::dataset::Dataset;
use vortex_runtime::TrainingCheckpoint;
use vortex_xbar::sensing::Adc;

use crate::{Result, TrainError};

/// Domain-separation constant for the variation-matrix RNG stream: the
/// fabricated array's `e^θ` draws must not share a stream with the
/// epoch shuffles (resuming re-derives the former but restores the
/// latter from the checkpoint).
const VARIATION_STREAM: u64 = 0x56_41_52_5f_53_54_52_4d; // "VAR_STRM"

/// Hyper-parameters of a resumable delta-rule job.
///
/// The subset of [`vortex_core::cld::CldTrainer`] that is meaningful
/// per-mini-epoch (the epoch budget and Monte-Carlo draw count live on
/// [`crate::JobConfig`]; IR-drop modelling is out of scope for the
/// serving-side job engine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerConfig {
    /// Learning rate α of the delta rule (Eq. (1) of the paper).
    pub learning_rate: f64,
    /// Sensing ADC resolution in bits (`None` = ideal sensing).
    pub sense_bits: Option<u32>,
    /// Full scale of the sensed output, in weight-domain output units.
    pub sense_full_scale: f64,
    /// Convergence threshold on the mean squared sensed error.
    pub tolerance: f64,
    /// Seed of the job: fixes the fabricated array, the shuffle stream
    /// and (downstream) the compile seed of the promoted model.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.01,
            sense_bits: Some(6),
            sense_full_scale: 4.0,
            tolerance: 1e-4,
            seed: 0,
        }
    }
}

impl TrainerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::InvalidParameter`] on out-of-domain fields.
    pub fn validate(&self) -> Result<()> {
        if !(self.learning_rate.is_finite() && self.learning_rate > 0.0) {
            return Err(TrainError::InvalidParameter {
                name: "learning_rate",
                requirement: "must be finite and positive",
            });
        }
        if !(self.sense_full_scale.is_finite() && self.sense_full_scale > 0.0) {
            return Err(TrainError::InvalidParameter {
                name: "sense_full_scale",
                requirement: "must be finite and positive",
            });
        }
        if !(self.tolerance.is_finite() && self.tolerance >= 0.0) {
            return Err(TrainError::InvalidParameter {
                name: "tolerance",
                requirement: "must be finite and non-negative",
            });
        }
        Ok(())
    }
}

/// One resumable on-device training run. See the module docs for the
/// determinism contract.
#[derive(Debug, Clone)]
pub struct DeltaStepper {
    config: TrainerConfig,
    adc: Option<Adc>,
    /// Per-cell achieved-update multipliers `clamp(e^θ, 0.05, 3.0)` of
    /// the fabricated array (re-derived on resume, never checkpointed).
    update_scale_variation: Matrix,
    w_max: f64,
    weights: Matrix,
    epoch: u64,
    samples_seen: u64,
    step_scale: f64,
    last_mse: f64,
    rng: Xoshiro256PlusPlus,
}

impl DeltaStepper {
    /// Derives the parts of the stepper that are functions of
    /// `(train, env, config)` rather than training progress: the ADC,
    /// the fabricated array's variation multipliers and the
    /// normalized-LMS step scale.
    fn derived(
        train: &Dataset,
        env: &HardwareEnv,
        config: &TrainerConfig,
    ) -> Result<(Option<Adc>, Matrix, f64)> {
        config.validate()?;
        if train.is_empty() {
            return Err(TrainError::InvalidParameter {
                name: "train",
                requirement: "must be non-empty",
            });
        }
        let adc = match config.sense_bits {
            Some(bits) => Some(
                Adc::new(bits, config.sense_full_scale).map_err(vortex_core::CoreError::Xbar)?,
            ),
            None => None,
        };
        // The fabricated array: a separate, domain-separated RNG stream
        // so that resuming (which re-runs this derivation) cannot shift
        // the training stream.
        let mut fab_rng = Xoshiro256PlusPlus::seed_from_u64(config.seed ^ VARIATION_STREAM);
        let theta = env.variation.sample_theta_matrix(
            train.num_features(),
            train.num_classes(),
            &mut fab_rng,
        );
        let update_scale_variation = theta.map(|t| t.exp().clamp(0.05, 3.0));
        // Normalized-LMS step: dividing by the mean input energy keeps
        // the per-cell effective rate inside the delta-rule stability
        // region regardless of the input dimension.
        let mean_energy = {
            let mut acc = 0.0;
            for i in 0..train.len() {
                acc += vortex_linalg::vector::dot(train.image(i), train.image(i));
            }
            (acc / train.len() as f64).max(1e-9)
        };
        let step_scale = config.learning_rate / mean_energy;
        Ok((adc, update_scale_variation, step_scale))
    }

    /// Starts a fresh run: zero weights, epoch 0, the training RNG at
    /// the start of the `config.seed` stream.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::InvalidParameter`] on an invalid
    /// configuration or an empty dataset; propagates ADC construction
    /// failures as [`TrainError::Core`].
    pub fn fresh(train: &Dataset, env: &HardwareEnv, config: TrainerConfig) -> Result<Self> {
        let (adc, update_scale_variation, step_scale) = Self::derived(train, env, &config)?;
        Ok(Self {
            adc,
            update_scale_variation,
            w_max: env.w_max,
            weights: Matrix::zeros(train.num_features(), train.num_classes()),
            epoch: 0,
            samples_seen: 0,
            step_scale,
            last_mse: f64::INFINITY,
            rng: Xoshiro256PlusPlus::seed_from_u64(config.seed),
            config,
        })
    }

    /// Restores a stepper from a checkpoint so that subsequent
    /// [`step`](Self::step) calls continue the interrupted run
    /// bit-identically.
    ///
    /// The checkpoint carries the training progress (weights, counters,
    /// RNG position); everything that is a pure function of
    /// `(train, env, config)` — the ADC, the variation matrix, the step
    /// scale — is re-derived, and the re-derived step scale must agree
    /// with the checkpointed one (a mismatch means the checkpoint was
    /// produced against different data or hyper-parameters).
    ///
    /// # Errors
    ///
    /// [`TrainError::CheckpointMismatch`] when the checkpoint does not
    /// belong to this job (wrong seed, wrong shape, inconsistent step
    /// scale, or an unrestorable RNG state).
    pub fn resume(
        train: &Dataset,
        env: &HardwareEnv,
        config: TrainerConfig,
        ck: &TrainingCheckpoint,
    ) -> Result<Self> {
        let (adc, update_scale_variation, step_scale) = Self::derived(train, env, &config)?;
        if ck.seed != config.seed {
            return Err(TrainError::CheckpointMismatch {
                context: "checkpoint seed differs from the job seed",
            });
        }
        if ck.weights.rows() != train.num_features() || ck.weights.cols() != train.num_classes() {
            return Err(TrainError::CheckpointMismatch {
                context: "checkpoint weight shape differs from the dataset",
            });
        }
        if ck.step_scale.to_bits() != step_scale.to_bits() {
            return Err(TrainError::CheckpointMismatch {
                context: "checkpoint step scale differs from the derived one",
            });
        }
        let rng = ck.rng().ok_or(TrainError::CheckpointMismatch {
            context: "checkpoint RNG state is unrestorable",
        })?;
        Ok(Self {
            adc,
            update_scale_variation,
            w_max: env.w_max,
            weights: ck.weights.clone(),
            epoch: ck.epoch,
            samples_seen: ck.samples_seen,
            step_scale,
            last_mse: ck.last_mse,
            rng,
            config,
        })
    }

    /// Runs one mini-epoch — a full shuffled pass of delta-rule updates
    /// against the simulated crossbar — and returns the mean squared
    /// *sensed* error of the pass.
    ///
    /// This is the serial unit of work the job engine schedules on the
    /// shared pool; determinism follows from the RNG being the only
    /// source of order.
    pub fn step(&mut self, train: &Dataset) -> f64 {
        let c = train.num_classes();
        let mut order: Vec<usize> = (0..train.len()).collect();
        self.rng.shuffle(&mut order);
        let mut sq_err = 0.0;
        for &i in &order {
            let x = train.image(i);
            let label = train.label(i);
            let y = self.weights.vecmat(x);
            let y_sensed: Vec<f64> = match &self.adc {
                Some(adc) => y.iter().map(|&v| adc.quantize_signed(v)).collect(),
                None => y,
            };
            for (j, &sensed) in y_sensed.iter().enumerate().take(c) {
                let target = if label as usize == j { 1.0 } else { -1.0 };
                let err = target - sensed;
                sq_err += err * err;
                if err == 0.0 {
                    continue;
                }
                let step = self.step_scale * err;
                for (q, &xq) in x.iter().enumerate() {
                    if xq == 0.0 {
                        continue;
                    }
                    // The achieved update is scaled by the device's e^θ.
                    let delta = step * xq * self.update_scale_variation[(q, j)];
                    self.weights[(q, j)] =
                        (self.weights[(q, j)] + delta).clamp(-self.w_max, self.w_max);
                }
            }
        }
        self.epoch += 1;
        self.samples_seen += train.len() as u64;
        self.last_mse = sq_err / (train.len() * c) as f64;
        self.last_mse
    }

    /// Freezes the complete training state at this epoch boundary.
    pub fn checkpoint(&self) -> TrainingCheckpoint {
        TrainingCheckpoint {
            weights: self.weights.clone(),
            epoch: self.epoch,
            samples_seen: self.samples_seen,
            seed: self.config.seed,
            step_scale: self.step_scale,
            last_mse: self.last_mse,
            rng_state: self.rng.state(),
        }
    }

    /// Whether the run has met the convergence criterion: at least one
    /// epoch completed and the sensed MSE below the tolerance.
    pub fn converged(&self) -> bool {
        self.epoch > 0 && self.last_mse < self.config.tolerance
    }

    /// The current weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Completed epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Samples consumed across all completed epochs.
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// Mean squared sensed error of the last completed epoch
    /// (`+inf` before the first).
    pub fn last_mse(&self) -> f64 {
        self.last_mse
    }

    /// The configuration this stepper runs under.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_nn::dataset::{DatasetConfig, SynthDigits};
    use vortex_nn::metrics::accuracy_of_weights;
    use vortex_nn::split::stratified_split;

    fn setup() -> Dataset {
        let d = SynthDigits::generate(&DatasetConfig::tiny(), 29).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(99);
        stratified_split(&d, 160, 40, &mut rng).unwrap().train
    }

    fn config() -> TrainerConfig {
        TrainerConfig {
            seed: 7,
            ..TrainerConfig::default()
        }
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let mut c = config();
        c.learning_rate = 0.0;
        assert!(c.validate().is_err());
        c = config();
        c.sense_full_scale = f64::NAN;
        assert!(c.validate().is_err());
        c = config();
        c.tolerance = -1.0;
        assert!(c.validate().is_err());
        assert!(config().validate().is_ok());
    }

    #[test]
    fn stepping_learns() {
        let train = setup();
        let env = HardwareEnv::ideal();
        let mut s = DeltaStepper::fresh(&train, &env, config()).unwrap();
        let first = s.step(&train);
        for _ in 0..11 {
            s.step(&train);
        }
        assert!(s.last_mse() < first, "{} !< {first}", s.last_mse());
        assert!(accuracy_of_weights(s.weights(), &train) > 0.6);
        assert_eq!(s.epoch(), 12);
        assert_eq!(s.samples_seen(), 12 * train.len() as u64);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let train = setup();
        let env = HardwareEnv::with_sigma(0.5).unwrap();
        let cfg = config();

        // Uninterrupted: 9 epochs straight through.
        let mut a = DeltaStepper::fresh(&train, &env, cfg).unwrap();
        for _ in 0..9 {
            a.step(&train);
        }

        // Interrupted: 4 epochs, freeze, thaw, 5 more.
        let mut b = DeltaStepper::fresh(&train, &env, cfg).unwrap();
        for _ in 0..4 {
            b.step(&train);
        }
        let ck = b.checkpoint();
        drop(b);
        let mut b = DeltaStepper::resume(&train, &env, cfg, &ck).unwrap();
        for _ in 0..5 {
            b.step(&train);
        }

        assert_eq!(a.weights().as_slice(), b.weights().as_slice());
        assert_eq!(a.last_mse().to_bits(), b.last_mse().to_bits());
        assert_eq!(a.checkpoint(), b.checkpoint());
    }

    #[test]
    fn resume_rejects_foreign_checkpoints() {
        let train = setup();
        let env = HardwareEnv::ideal();
        let mut s = DeltaStepper::fresh(&train, &env, config()).unwrap();
        s.step(&train);
        let ck = s.checkpoint();

        // Wrong seed.
        let other = TrainerConfig {
            seed: 8,
            ..config()
        };
        assert!(matches!(
            DeltaStepper::resume(&train, &env, other, &ck),
            Err(TrainError::CheckpointMismatch { .. })
        ));

        // Wrong hyper-parameters change the derived step scale.
        let other = TrainerConfig {
            learning_rate: 0.02,
            ..config()
        };
        assert!(matches!(
            DeltaStepper::resume(&train, &env, other, &ck),
            Err(TrainError::CheckpointMismatch { .. })
        ));

        // Wrong shape.
        let mut bad = ck.clone();
        bad.weights = Matrix::zeros(3, 3);
        assert!(matches!(
            DeltaStepper::resume(&train, &env, config(), &bad),
            Err(TrainError::CheckpointMismatch { .. })
        ));
    }

    #[test]
    fn convergence_requires_a_completed_epoch() {
        let train = setup();
        let env = HardwareEnv::ideal();
        let cfg = TrainerConfig {
            tolerance: f64::MAX,
            ..config()
        };
        let mut s = DeltaStepper::fresh(&train, &env, cfg).unwrap();
        assert!(!s.converged(), "no epoch has run yet");
        s.step(&train);
        assert!(s.converged());
    }

    #[test]
    fn variation_stream_is_independent_of_the_training_stream() {
        // Two steppers with the same seed see the same fabricated array,
        // and deriving it does not advance the training RNG: the first
        // shuffle of a fresh stepper matches a bare RNG's first shuffle.
        let train = setup();
        let env = HardwareEnv::with_sigma(0.5).unwrap();
        let s = DeltaStepper::fresh(&train, &env, config()).unwrap();
        let mut bare = Xoshiro256PlusPlus::seed_from_u64(config().seed);
        let mut expect: Vec<usize> = (0..4).collect();
        bare.shuffle(&mut expect);
        let mut got: Vec<usize> = (0..4).collect();
        s.rng.clone().shuffle(&mut got);
        assert_eq!(expect, got);
    }
}
