//! The supervised training-job engine: priority classes, a checkpoint
//! cadence, and a crash-recovery supervisor.
//!
//! A [`TrainingJob`] drives a [`DeltaStepper`] one mini-epoch at a time
//! on the shared [`WorkerPool`] — the *same* pool that serves inference
//! batches — under three production disciplines:
//!
//! * **Priority classes.** Inference outranks training. Between
//!   mini-epochs the job consults the serving [`Scheduler`]'s
//!   [`queue_depth`](Scheduler::queue_depth): at or above
//!   [`JobConfig::high_water`] it parks until the backlog drains below
//!   [`JobConfig::low_water`] (classic hysteresis, mirroring the
//!   scheduler's own admission watermarks). Training never preempts a
//!   pending prediction — it simply declines to enqueue its next unit.
//! * **Checkpoint/resume.** Every [`JobConfig::checkpoint_every`]
//!   epochs the stepper's full state is frozen into a
//!   [`TrainingCheckpoint`] and written **atomically** to one of two
//!   alternating slot files (`ckpt_a.vxck` / `ckpt_b.vxck`), so a crash
//!   mid-write can at worst lose the newest slot, never both.
//! * **Crash recovery.** Each mini-epoch runs inside `catch_unwind`
//!   *within* the submitted pool job, so a training fault is contained
//!   before the pool's own panic backstop can see it — the
//!   `pool.job_panics` counter (the signal serving alarms on) stays
//!   untouched, and inference jobs sharing the pool never observe a
//!   `WorkerCrashed`. The supervisor then restarts from the newest
//!   checkpoint that still decodes (falling back to the older slot,
//!   then to a fresh run), with bounded exponential backoff and a hard
//!   restart budget.
//!
//! Faults are injected from the same seeded [`ChaosPlan`] that drives
//! the serving chaos suite: `should_kill_training` panics the epoch's
//! pool job, and `corrupt_checkpoint` flips bits in the newest slot
//! file — and because resume is bit-identical (see
//! [`crate::stepper`]), a chaos-battered run must land on **exactly**
//! the weights of an undisturbed one, which the recovery tests pin at
//! several pool sizes.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{mpsc, Arc};
use std::time::Duration;

use vortex_core::amp::greedy::RowMapping;
use vortex_core::pipeline::HardwareEnv;
use vortex_linalg::Matrix;
use vortex_nn::dataset::Dataset;
use vortex_nn::pool::WorkerPool;
use vortex_runtime::TrainingCheckpoint;
use vortex_serve::chaos::ChaosPlan;
use vortex_serve::health::{HealthConfig, HealthMonitor, ProbeOutcome};
use vortex_serve::lifetime::{PolicyObservation, RecalibrationPolicy};
use vortex_serve::scheduler::Scheduler;

use crate::stepper::{DeltaStepper, TrainerConfig};
use crate::{Result, TrainError};

/// File names of the two alternating checkpoint slots.
const SLOT_FILES: [&str; 2] = ["ckpt_a.vxck", "ckpt_b.vxck"];

/// Configuration of a [`TrainingJob`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobConfig {
    /// Hyper-parameters of the underlying delta-rule stepper.
    pub trainer: TrainerConfig,
    /// Epoch budget: the job stops here even if unconverged.
    pub max_epochs: u64,
    /// Checkpoint cadence in epochs (deterministic: epoch counts, not
    /// wall clocks, decide when to persist).
    pub checkpoint_every: u64,
    /// Directory holding the two alternating checkpoint slots.
    pub checkpoint_dir: PathBuf,
    /// Restart budget: one more crash than this fails the job with
    /// [`TrainError::RestartsExhausted`].
    pub max_restarts: u32,
    /// Base of the exponential restart backoff.
    pub restart_base: Duration,
    /// Ceiling of the restart backoff.
    pub restart_cap: Duration,
    /// Scheduler queue depth at which training yields to inference.
    pub high_water: usize,
    /// Queue depth the backlog must drain below before training resumes.
    pub low_water: usize,
    /// Poll interval while parked behind the high-water mark.
    pub yield_poll: Duration,
}

impl JobConfig {
    /// A job configuration with production-flavored defaults, training
    /// under `trainer` and checkpointing into `checkpoint_dir`.
    pub fn new<P: Into<PathBuf>>(trainer: TrainerConfig, checkpoint_dir: P) -> Self {
        Self {
            trainer,
            max_epochs: 25,
            checkpoint_every: 4,
            checkpoint_dir: checkpoint_dir.into(),
            max_restarts: 8,
            restart_base: Duration::from_millis(2),
            restart_cap: Duration::from_millis(64),
            high_water: 64,
            low_water: 8,
            yield_poll: Duration::from_millis(1),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::InvalidParameter`] on out-of-domain fields.
    pub fn validate(&self) -> Result<()> {
        self.trainer.validate()?;
        if self.max_epochs == 0 {
            return Err(TrainError::InvalidParameter {
                name: "max_epochs",
                requirement: "must be positive",
            });
        }
        if self.checkpoint_every == 0 {
            return Err(TrainError::InvalidParameter {
                name: "checkpoint_every",
                requirement: "must be positive",
            });
        }
        if self.low_water > self.high_water {
            return Err(TrainError::InvalidParameter {
                name: "low_water",
                requirement: "must not exceed high_water",
            });
        }
        Ok(())
    }

    /// Paths of the two checkpoint slots.
    fn slot_paths(&self) -> [PathBuf; 2] {
        SLOT_FILES.map(|f| self.checkpoint_dir.join(f))
    }

    /// The slot a checkpoint at `epoch` lands in: alternating by
    /// checkpoint ordinal, so the newest write never clobbers the only
    /// other good copy.
    fn slot_for_epoch(&self, epoch: u64) -> PathBuf {
        let ordinal = epoch / self.checkpoint_every;
        self.checkpoint_dir.join(SLOT_FILES[(ordinal % 2) as usize])
    }
}

/// What a finished [`TrainingJob::run`] did and produced.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The trained weight matrix.
    pub weights: Matrix,
    /// Epochs completed (over the whole job, across restarts the epochs
    /// re-run after a crash are not double counted — this is the
    /// stepper's own epoch counter).
    pub epochs: u64,
    /// Whether the convergence criterion was met within the budget.
    pub converged: bool,
    /// Mean squared sensed error of the final epoch.
    pub final_mse: f64,
    /// Supervisor restarts performed (0 for an undisturbed run).
    pub restarts: u32,
    /// Chaos kills injected into this run.
    pub kills: u64,
    /// Checkpoint files that existed but were rejected during recovery
    /// (corrupt, foreign, or unrestorable).
    pub rejected_checkpoints: u64,
    /// Times the job parked behind the scheduler's high-water mark.
    pub yields: u64,
}

/// A fault-tolerant training job. See the module docs.
pub struct TrainingJob {
    config: JobConfig,
    train: Arc<Dataset>,
    env: HardwareEnv,
    scheduler: Option<Arc<Scheduler>>,
    chaos: Option<ChaosPlan>,
    pool: Arc<WorkerPool>,
}

impl TrainingJob {
    /// A job training on `train` under the hardware environment `env`,
    /// running its mini-epochs on the process-global pool.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::InvalidParameter`] on an invalid
    /// configuration.
    pub fn new(config: JobConfig, train: Arc<Dataset>, env: HardwareEnv) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            config,
            train,
            env,
            scheduler: None,
            chaos: None,
            pool: Arc::clone(WorkerPool::global()),
        })
    }

    /// Attaches the serving scheduler whose queue depth gates training
    /// (no scheduler = the job never yields).
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: Arc<Scheduler>) -> Self {
        self.scheduler = Some(scheduler);
        self
    }

    /// Attaches a seeded chaos plan injecting kills and checkpoint
    /// corruption.
    #[must_use]
    pub fn with_chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Runs the mini-epochs on an explicit pool instead of the global
    /// one (tests pin the recovery contract at several pool sizes).
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = pool;
        self
    }

    /// Runs the job to convergence or its epoch budget, surviving
    /// injected and organic crashes. See the module docs for the full
    /// discipline.
    ///
    /// # Errors
    ///
    /// [`TrainError::RestartsExhausted`] when crashes outrun
    /// [`JobConfig::max_restarts`]; checkpoint I/O failures surface as
    /// [`TrainError::Runtime`].
    pub fn run(&self) -> Result<JobReport> {
        std::fs::create_dir_all(&self.config.checkpoint_dir)
            .map_err(|e| TrainError::Runtime(vortex_runtime::RuntimeError::Artifact(e.into())))?;
        let mut restarts: u32 = 0;
        let mut kills: u64 = 0;
        let mut yields: u64 = 0;
        let mut rejected = 0u64;
        // A planned kill fires exactly once: `should_kill_training` says
        // *where* kills land, this set records which already did. Without
        // it the supervisor would re-inject the same kill after every
        // restart of the same epoch and never make progress.
        let mut fired_kills: BTreeSet<u64> = BTreeSet::new();
        let mut stepper = self.recover_or_fresh(&mut rejected)?;

        loop {
            if stepper.converged() || stepper.epoch() >= self.config.max_epochs {
                break;
            }
            self.yield_for_inference(&mut yields);
            let kill = self
                .chaos
                .as_ref()
                .is_some_and(|plan| plan.should_kill_training(stepper.epoch()))
                && fired_kills.insert(stepper.epoch());
            match self.step_on_pool(stepper, kill) {
                Ok(revived) => {
                    stepper = revived;
                    vortex_obs::counter!("train.epochs").incr();
                    vortex_obs::gauge!("train.mse").set(stepper.last_mse());
                    vortex_obs::gauge!("train.epoch").set(stepper.epoch() as f64);
                    if stepper.epoch() % self.config.checkpoint_every == 0 {
                        self.write_checkpoint(&stepper)?;
                    }
                }
                Err(()) => {
                    // The in-memory stepper died with the pool job; all
                    // that survives is what was checkpointed.
                    kills += 1;
                    vortex_obs::counter!("train.kills").incr();
                    restarts += 1;
                    if restarts > self.config.max_restarts {
                        return Err(TrainError::RestartsExhausted { restarts });
                    }
                    vortex_obs::counter!("train.restarts").incr();
                    self.maybe_corrupt_newest_checkpoint();
                    std::thread::sleep(backoff(
                        self.config.restart_base,
                        self.config.restart_cap,
                        restarts,
                    ));
                    stepper = self.recover_or_fresh(&mut rejected)?;
                }
            }
        }

        // Final checkpoint so a later job (or an operator) can pick the
        // run up exactly where it ended.
        self.write_checkpoint(&stepper)?;
        Ok(JobReport {
            weights: stepper.weights().clone(),
            epochs: stepper.epoch(),
            converged: stepper.converged(),
            final_mse: stepper.last_mse(),
            restarts,
            kills,
            rejected_checkpoints: rejected,
            yields,
        })
    }

    /// Compiles `weights` through the [`CompileRequest`] builder (seeded
    /// from the job seed, carrying `canary_inputs` as the new model's
    /// canary set) and offers it to the live scheduler through the
    /// [`HealthMonitor`] acceptance path: the replacement is judged on
    /// the *serving* primary's golden canaries and hot-swapped only if
    /// it is no worse.
    ///
    /// [`CompileRequest`]: vortex_core::pipeline::CompileRequest
    ///
    /// # Errors
    ///
    /// Compile failures surface as [`TrainError::Core`]; probe failures
    /// (for example a canary-free serving primary) as
    /// [`TrainError::Serve`]. A replacement judged worse is not an
    /// error — it reports as [`ProbeOutcome::RecompileFailed`] and the
    /// old model keeps serving.
    pub fn promote(
        &self,
        weights: &Matrix,
        scheduler: &Arc<Scheduler>,
        canary_inputs: Vec<Vec<f64>>,
        accuracy_floor: f64,
    ) -> Result<ProbeOutcome> {
        let mapping = RowMapping::identity(weights.rows());
        let compiler = self
            .env
            .compiler()
            .with_calibration(&self.train.mean_input());
        let model = Arc::new(
            compiler
                .request(weights, &mapping)
                .seed(self.config.trainer.seed)
                .canary_inputs(canary_inputs)
                .compile()?,
        );

        /// Promotion is an unconditional refresh offer: the *acceptance*
        /// check (no worse on the golden canaries) stays with the
        /// monitor, only the "when" is forced to "now".
        struct PromoteNow;
        impl RecalibrationPolicy for PromoteNow {
            fn name(&self) -> &'static str {
                "train-promotion"
            }
            fn decide(&mut self, _obs: &PolicyObservation) -> bool {
                true
            }
        }

        let monitor = HealthMonitor::with_policy(
            Arc::clone(scheduler),
            HealthConfig::new(accuracy_floor, Duration::from_secs(3600))?,
            move || Ok(Arc::clone(&model)),
            PromoteNow,
        );
        let outcome = monitor.probe()?;
        if matches!(outcome, ProbeOutcome::Recovered { .. }) {
            vortex_obs::counter!("train.promotions").incr();
        }
        Ok(outcome)
    }

    /// One mini-epoch as a preemptible unit on the shared pool. The
    /// stepper *moves into* the job and comes back over a channel — no
    /// shared mutable state, so a crash cannot poison anything.
    ///
    /// The `catch_unwind` lives **inside** the submitted closure: a
    /// training fault is contained before the pool's detached-job
    /// backstop sees it, so `pool.job_panics` — the counter serving
    /// alarms on — is never incremented by a training crash.
    fn step_on_pool(
        &self,
        mut stepper: DeltaStepper,
        kill: bool,
    ) -> std::result::Result<DeltaStepper, ()> {
        let (tx, rx) = mpsc::channel();
        let train = Arc::clone(&self.train);
        self.pool.submit(move || {
            let outcome = catch_unwind(AssertUnwindSafe(move || {
                if kill {
                    panic!("chaos: injected training kill");
                }
                stepper.step(&train);
                stepper
            }));
            // A dropped receiver just discards the result; never panic
            // out of the containment scope.
            let _ = tx.send(outcome.map_err(|_| ()));
        });
        rx.recv().map_err(|_| ())?
    }

    /// Parks the job while the serving backlog is above the high-water
    /// mark; resumes once it drains below the low-water mark.
    fn yield_for_inference(&self, yields: &mut u64) {
        let Some(scheduler) = &self.scheduler else {
            return;
        };
        if scheduler.queue_depth() < self.config.high_water.max(1) {
            return;
        }
        *yields += 1;
        vortex_obs::counter!("train.yields").incr();
        while scheduler.queue_depth() > self.config.low_water {
            std::thread::sleep(self.config.yield_poll);
        }
    }

    /// Atomically persists the stepper's state into this epoch's slot.
    fn write_checkpoint(&self, stepper: &DeltaStepper) -> Result<()> {
        let path = self.config.slot_for_epoch(stepper.epoch());
        stepper.checkpoint().save(&path)?;
        vortex_obs::counter!("train.checkpoints").incr();
        Ok(())
    }

    /// Applies the chaos plan's checkpoint bit flips to the
    /// newest-by-epoch slot file, simulating storage corruption striking
    /// between a crash and its recovery. Raw `fs::write` on purpose —
    /// corruption does not go through the atomic-rename path.
    fn maybe_corrupt_newest_checkpoint(&self) {
        let Some(plan) = &self.chaos else { return };
        let newest = self
            .config
            .slot_paths()
            .into_iter()
            .filter_map(|p| TrainingCheckpoint::load(&p).ok().map(|ck| (ck.epoch, p)))
            .max_by_key(|(epoch, _)| *epoch);
        let Some((_, path)) = newest else { return };
        let Ok(mut bytes) = std::fs::read(&path) else {
            return;
        };
        if plan.corrupt_checkpoint(&mut bytes) > 0 {
            let _ = std::fs::write(&path, &bytes);
            vortex_obs::counter!("train.checkpoints.corrupted").incr();
        }
    }

    /// Restarts from the newest slot that decodes *and* belongs to this
    /// job; a corrupt or foreign newest slot falls back to the older
    /// one, and an empty directory starts fresh. Rejections are counted
    /// (`train.checkpoint.rejected`) — silent fallback would mask
    /// storage rot.
    fn recover_or_fresh(&self, rejected: &mut u64) -> Result<DeltaStepper> {
        let mut best: Option<DeltaStepper> = None;
        for path in self.config.slot_paths() {
            if !path.exists() {
                continue;
            }
            let revived = TrainingCheckpoint::load(&path)
                .map_err(TrainError::from)
                .and_then(|ck| {
                    DeltaStepper::resume(&self.train, &self.env, self.config.trainer, &ck)
                });
            match revived {
                Ok(stepper) => {
                    // (`Option::is_none_or` needs 1.82; the workspace MSRV is 1.80.)
                    if best.as_ref().map_or(true, |b| stepper.epoch() > b.epoch()) {
                        best = Some(stepper);
                    }
                }
                Err(_) => {
                    *rejected += 1;
                    vortex_obs::counter!("train.checkpoint.rejected").incr();
                }
            }
        }
        match best {
            Some(stepper) => Ok(stepper),
            None => DeltaStepper::fresh(&self.train, &self.env, self.config.trainer),
        }
    }
}

/// Bounded exponential backoff: `min(base · 2^(restarts−1), cap)`.
fn backoff(base: Duration, cap: Duration, restarts: u32) -> Duration {
    let doubled = base.saturating_mul(1u32 << restarts.saturating_sub(1).min(16));
    doubled.min(cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_linalg::rng::Xoshiro256PlusPlus;
    use vortex_nn::dataset::{DatasetConfig, SynthDigits};
    use vortex_nn::split::stratified_split;

    fn dataset() -> Arc<Dataset> {
        let d = SynthDigits::generate(&DatasetConfig::tiny(), 29).unwrap();
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(99);
        Arc::new(stratified_split(&d, 160, 40, &mut rng).unwrap().train)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vortex-train-job-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config(tag: &str) -> JobConfig {
        JobConfig {
            max_epochs: 10,
            checkpoint_every: 3,
            ..JobConfig::new(
                TrainerConfig {
                    seed: 11,
                    ..TrainerConfig::default()
                },
                tmp_dir(tag),
            )
        }
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = config("validate");
        c.max_epochs = 0;
        assert!(c.validate().is_err());
        c = config("validate");
        c.checkpoint_every = 0;
        assert!(c.validate().is_err());
        c = config("validate");
        c.low_water = c.high_water + 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn undisturbed_run_trains_and_checkpoints() {
        let cfg = config("plain");
        let dir = cfg.checkpoint_dir.clone();
        let job = TrainingJob::new(cfg, dataset(), HardwareEnv::ideal()).unwrap();
        let report = job.run().unwrap();
        assert_eq!(report.restarts, 0);
        assert_eq!(report.kills, 0);
        assert!(report.epochs > 0);
        assert!(report.final_mse.is_finite());
        // The final checkpoint always lands.
        let slots: Vec<_> = SLOT_FILES.iter().filter(|f| dir.join(f).exists()).collect();
        assert!(!slots.is_empty(), "no checkpoint slot was written");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slots_alternate_by_checkpoint_ordinal() {
        let cfg = config("slots");
        assert_eq!(
            cfg.slot_for_epoch(3),
            cfg.checkpoint_dir.join("ckpt_b.vxck")
        );
        assert_eq!(
            cfg.slot_for_epoch(6),
            cfg.checkpoint_dir.join("ckpt_a.vxck")
        );
        assert_eq!(
            cfg.slot_for_epoch(9),
            cfg.checkpoint_dir.join("ckpt_b.vxck")
        );
    }

    #[test]
    fn backoff_is_bounded() {
        let base = Duration::from_millis(2);
        let cap = Duration::from_millis(10);
        assert_eq!(backoff(base, cap, 1), base);
        assert_eq!(backoff(base, cap, 2), base * 2);
        assert_eq!(backoff(base, cap, 30), cap);
    }

    #[test]
    fn restart_budget_is_enforced() {
        // A fresh-seeded plan with kills at more epochs than the budget
        // allows: since the stepper loses unchecked progress on every
        // kill and the kill epochs are dense, the job must give up.
        let mut cfg = config("budget");
        cfg.max_restarts = 1;
        cfg.checkpoint_every = 100; // never checkpoint: every kill restarts from scratch
        let plan = ChaosPlan::generate(
            &vortex_serve::chaos::ChaosConfig::new(5, 4, 4).with_train_kills(8, 8),
        );
        // Re-firing at epoch 0 forever requires > 1 distinct kill epochs;
        // dense kills guarantee the second restart trips the budget.
        let job = TrainingJob::new(cfg.clone(), dataset(), HardwareEnv::ideal())
            .unwrap()
            .with_chaos(plan)
            .with_pool(Arc::new(WorkerPool::new(1)));
        match job.run() {
            Err(TrainError::RestartsExhausted { restarts }) => assert_eq!(restarts, 2),
            other => panic!("expected RestartsExhausted, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&cfg.checkpoint_dir);
    }
}
