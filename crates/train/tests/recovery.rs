//! Crash-recovery acceptance suite: chaos-battered training jobs must
//! land on **exactly** the weights of an undisturbed run — at any pool
//! size — and training faults must be invisible to the serving path
//! that shares the pool.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use vortex_core::amp::greedy::RowMapping;
use vortex_core::pipeline::HardwareEnv;
use vortex_device::drift::RetentionModel;
use vortex_linalg::rng::Xoshiro256PlusPlus;
use vortex_nn::dataset::{Dataset, DatasetConfig, SynthDigits};
use vortex_nn::gdt::GdtTrainer;
use vortex_nn::pool::WorkerPool;
use vortex_nn::split::stratified_split;
use vortex_serve::chaos::{ChaosConfig, ChaosPlan};
use vortex_serve::health::ProbeOutcome;
use vortex_serve::scheduler::{Scheduler, SchedulerConfig};
use vortex_train::{JobConfig, JobReport, TrainerConfig, TrainingJob};

fn dataset() -> Arc<Dataset> {
    let d = SynthDigits::generate(&DatasetConfig::tiny(), 29).unwrap();
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(99);
    Arc::new(stratified_split(&d, 160, 40, &mut rng).unwrap().train)
}

fn job_config(tag: &str) -> JobConfig {
    let dir = std::env::temp_dir().join(format!("vortex-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    JobConfig {
        max_epochs: 12,
        checkpoint_every: 3,
        restart_base: Duration::from_millis(1),
        restart_cap: Duration::from_millis(4),
        ..JobConfig::new(
            TrainerConfig {
                seed: 21,
                ..TrainerConfig::default()
            },
            dir,
        )
    }
}

fn run_job(
    cfg: JobConfig,
    env: HardwareEnv,
    chaos: Option<ChaosPlan>,
    pool_size: usize,
) -> JobReport {
    let dir = cfg.checkpoint_dir.clone();
    let mut job = TrainingJob::new(cfg, dataset(), env)
        .unwrap()
        .with_pool(Arc::new(WorkerPool::new(pool_size)));
    if let Some(plan) = chaos {
        job = job.with_chaos(plan);
    }
    let report = job.run().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    report
}

fn assert_bit_identical(a: &JobReport, b: &JobReport, context: &str) {
    assert_eq!(a.epochs, b.epochs, "{context}: epoch counts differ");
    assert_eq!(
        a.final_mse.to_bits(),
        b.final_mse.to_bits(),
        "{context}: final MSE differs"
    );
    let (wa, wb) = (a.weights.as_slice(), b.weights.as_slice());
    assert_eq!(wa.len(), wb.len(), "{context}: weight shapes differ");
    for (k, (x, y)) in wa.iter().zip(wb).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{context}: weight {k} differs ({x} vs {y})"
        );
    }
}

#[test]
fn kill_recovery_is_bit_identical_at_pool_sizes_1_and_4() {
    let env = HardwareEnv::with_sigma(0.5).unwrap();
    let baseline = run_job(job_config("baseline"), env, None, 1);
    assert_eq!(baseline.kills, 0);
    assert_eq!(baseline.restarts, 0);

    let plan = ChaosPlan::generate(&ChaosConfig::new(7, 4, 4).with_train_kills(2, 10));
    for pool_size in [1usize, 4] {
        let tag = format!("kills-p{pool_size}");
        let report = run_job(job_config(&tag), env, Some(plan.clone()), pool_size);
        assert!(
            report.kills >= 1,
            "the plan must actually kill the job (kill epochs {:?})",
            plan.train_kill_epochs()
        );
        assert_eq!(report.kills as u32, report.restarts);
        assert_bit_identical(&baseline, &report, &tag);
    }
}

#[test]
fn corrupt_newest_checkpoint_falls_back_to_the_older_slot() {
    let env = HardwareEnv::with_sigma(0.5).unwrap();
    let baseline = run_job(job_config("flip-baseline"), env, None, 1);

    // A seed whose single kill lands late enough that *two* checkpoint
    // slots (epochs 3 and 6) already exist: corrupting the newest one
    // forces recovery through the older slot, replaying more epochs.
    let plan = (0..64)
        .map(|seed| {
            ChaosPlan::generate(
                &ChaosConfig::new(seed, 4, 4)
                    .with_train_kills(1, 12)
                    .with_checkpoint_bit_flips(6),
            )
        })
        .find(|plan| plan.train_kill_epochs()[0] >= 7)
        .expect("some seed in 0..64 draws a kill at epoch >= 7");

    let report = run_job(job_config("flip"), env, Some(plan), 1);
    assert!(report.kills >= 1);
    assert!(
        report.rejected_checkpoints >= 1,
        "the corrupted newest slot must be rejected during recovery"
    );
    assert_bit_identical(&baseline, &report, "bit-flip fallback");
}

#[test]
fn training_faults_are_invisible_to_serving() {
    // Serving and training share one pool; chaos kills the training job
    // while inference traffic flows. Serving must answer every request
    // (no `WorkerCrashed`), and the pool's own panic backstop — the
    // counter serving alarms on — must never fire for a training fault.
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(17);
    let data = SynthDigits::generate(&DatasetConfig::tiny(), 29).unwrap();
    let split = stratified_split(&data, 160, 80, &mut rng).unwrap();
    let weights = GdtTrainer::default().train(&split.train).unwrap();
    let mapping = RowMapping::identity(weights.rows());
    let env = HardwareEnv::with_sigma(0.3).unwrap();
    let primary = Arc::new(
        env.compiler()
            .with_calibration(&split.test.mean_input())
            .compile(&weights, &mapping, &mut rng)
            .unwrap(),
    );

    let pool = Arc::new(WorkerPool::new(4));
    let scheduler = Arc::new(
        Scheduler::on_pool(
            Arc::clone(&pool),
            primary,
            None,
            SchedulerConfig::deterministic(),
            None,
        )
        .unwrap(),
    );

    let panics_before = vortex_obs::counter("pool.job_panics").get();

    let plan = ChaosPlan::generate(&ChaosConfig::new(5, 4, 4).with_train_kills(3, 10));
    let job = TrainingJob::new(
        job_config("serve-shared"),
        Arc::new(split.train.clone()),
        env,
    )
    .unwrap()
    .with_scheduler(Arc::clone(&scheduler))
    .with_chaos(plan)
    .with_pool(Arc::clone(&pool));
    let trainer = std::thread::spawn(move || job.run().unwrap());

    // Pump inference through the shared pool until the job finishes,
    // then once more: not one request may error.
    let mut served = 0usize;
    loop {
        let finished = trainer.is_finished();
        for k in 0..split.test.len() {
            let p = scheduler
                .submit_wait(split.test.image(k).to_vec())
                .expect("serving must never observe a training fault");
            assert!(p.class < split.test.num_classes() as u8);
            served += 1;
        }
        if finished {
            break;
        }
    }
    let report = trainer.join().unwrap();
    let _ = std::fs::remove_dir_all(job_config("serve-shared").checkpoint_dir);

    assert!(report.kills >= 1, "chaos must have killed the job");
    assert!(served >= split.test.len() * 2);
    assert_eq!(
        vortex_obs::counter("pool.job_panics").get(),
        panics_before,
        "a contained training kill must not reach the pool's panic backstop"
    );
}

#[test]
fn converged_job_promotes_through_the_health_monitor() {
    // A drifted, stuck-celled primary serves; a training job converges
    // next to it and offers its compiled weights through the
    // HealthMonitor acceptance path. The swap happens only because the
    // trained model answers the golden canaries better than the
    // degraded incumbent.
    let mut rng = Xoshiro256PlusPlus::seed_from_u64(17);
    let data = SynthDigits::generate(
        &DatasetConfig {
            side: 7,
            samples_per_class: 60,
            ..DatasetConfig::paper()
        },
        7,
    )
    .unwrap();
    let split = stratified_split(&data, 400, 200, &mut rng).unwrap();
    let weights = GdtTrainer::default().train(&split.train).unwrap();
    let mapping = RowMapping::identity(weights.rows());
    let env = HardwareEnv::with_sigma(0.3).unwrap();
    let canaries: Vec<Vec<f64>> = (0..24).map(|k| split.test.image(k).to_vec()).collect();
    let fresh = env
        .compiler()
        .with_calibration(&split.test.mean_input())
        .compile(&weights, &mapping, &mut rng)
        .unwrap()
        .with_canary_inputs(canaries.clone())
        .unwrap();

    // Break the primary the way hardware breaks: retention drift plus
    // stuck-off devices.
    let plan = ChaosPlan::generate(
        &ChaosConfig::new(2024, fresh.rows(), fresh.classes())
            .with_stuck_cells(10, 0.0)
            .with_drift(1e8),
    );
    let (t_s, drift_seed) = plan.drift().unwrap();
    let retention = RetentionModel::new(0.6, 0.3, 1e-3).unwrap();
    let aged = fresh
        .age_with(&retention, t_s, drift_seed)
        .unwrap()
        .with_cell_faults(plan.cell_faults())
        .unwrap();
    let before_accuracy = aged.canary_accuracy().unwrap();
    assert!(
        before_accuracy < 1.0,
        "the incumbent must actually be degraded, got {before_accuracy}"
    );

    let scheduler =
        Arc::new(Scheduler::new(Arc::new(aged), None, SchedulerConfig::deterministic()).unwrap());

    let cfg = JobConfig {
        max_epochs: 15,
        ..job_config("promote")
    };
    let dir: PathBuf = cfg.checkpoint_dir.clone();
    let job = TrainingJob::new(cfg, Arc::new(split.train.clone()), env).unwrap();
    let report = job.run().unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    let outcome = job
        .promote(&report.weights, &scheduler, canaries, 0.9)
        .unwrap();
    match outcome {
        ProbeOutcome::Recovered { before, after } => {
            assert_eq!(before.to_bits(), before_accuracy.to_bits());
            assert!(after > before, "swap requires strict improvement");
        }
        other => panic!("expected a hot-swap, got {other:?}"),
    }
    // The new primary is the trained model, whose own canary set was
    // frozen at compile time: it answers those canaries perfectly.
    assert_eq!(scheduler.primary().canary_accuracy().unwrap(), 1.0);
}
