//! Pluggable request routing across fleet replicas.
//!
//! A [`Router`] is a pure decision function plus the minimum state each
//! policy needs (a round-robin cursor, a consistent-hash ring). It is
//! deliberately decoupled from the live [`Fleet`](crate::Fleet): the
//! caller passes the current *routable* mask and queue depths, so the
//! same router — the same code path — drives both live serving and the
//! deterministic virtual-time load simulations in `vortex-bench`.
//!
//! Determinism contract: [`RoutingPolicy::RoundRobin`] and
//! [`RoutingPolicy::ConsistentHash`] decide from the submission sequence
//! and the request key alone, so a serialized caller gets the identical
//! replica sequence whatever the scheduler pool sizes underneath
//! (asserted at pool sizes 1/4/8 in the crate tests).
//! [`RoutingPolicy::LeastLoaded`] intentionally reads live queue depths
//! and is therefore only as deterministic as the load it observes.

use std::sync::atomic::{AtomicU64, Ordering};

use vortex_linalg::rng::SplitMix64;

use crate::{FleetError, Result};

/// Virtual nodes per replica on the consistent-hash ring. 64 points per
/// replica keeps the keyspace share within a few percent of uniform
/// while the ring stays small enough to binary-search in cache.
const DEFAULT_VNODES: usize = 64;

/// How a [`Router`] picks the replica for a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RoutingPolicy {
    /// Strict rotation over routable replicas — the deterministic
    /// baseline: replica `(n mod N)` for the n-th submission.
    RoundRobin,
    /// Consistent hashing by request key: a key maps to a fixed point on
    /// a virtual-node ring, so the same key always lands on the same
    /// replica while that replica is routable, and draining one replica
    /// only moves *its* keys (cache affinity under membership change).
    ConsistentHash,
    /// Route to the routable replica with the shallowest queue
    /// ([`Scheduler::queue_depth`](vortex_serve::Scheduler::queue_depth)),
    /// ties broken by lowest index.
    LeastLoaded,
}

/// The stateless SplitMix64 finalizer as a pure `u64 -> u64` mix — the
/// one hash function of the fleet layer (ring points and request keys go
/// through the same mill).
fn mix(x: u64) -> u64 {
    SplitMix64::new(x).next_u64()
}

/// Routes requests to replica indices under a [`RoutingPolicy`]. See the
/// module docs for the determinism contract.
#[derive(Debug)]
pub struct Router {
    policy: RoutingPolicy,
    replicas: usize,
    /// Round-robin cursor (submission sequence number).
    cursor: AtomicU64,
    /// Consistent-hash ring: `(point, replica)` sorted by point.
    ring: Vec<(u64, usize)>,
}

impl Router {
    /// A router over `replicas` targets.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidParameter`] for an empty fleet.
    pub fn new(policy: RoutingPolicy, replicas: usize) -> Result<Self> {
        if replicas == 0 {
            return Err(FleetError::InvalidParameter {
                name: "replicas",
                requirement: "a router needs at least one replica",
            });
        }
        let ring = match policy {
            RoutingPolicy::ConsistentHash => {
                let mut ring: Vec<(u64, usize)> = (0..replicas)
                    .flat_map(|replica| {
                        (0..DEFAULT_VNODES).map(move |v| {
                            // Ring points must be stable per (replica, vnode)
                            // pair so membership changes never reshuffle
                            // other replicas' arcs.
                            let point = mix((replica as u64) << 32 | v as u64);
                            (point, replica)
                        })
                    })
                    .collect();
                ring.sort_unstable();
                ring
            }
            _ => Vec::new(),
        };
        Ok(Self {
            policy,
            replicas,
            cursor: AtomicU64::new(0),
            ring,
        })
    }

    /// The policy this router runs.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Number of replicas routed over.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Picks the replica for a request.
    ///
    /// `routable[i]` masks replicas in rotation (false = draining or
    /// removed); `depths[i]` is replica i's current queue depth (only
    /// [`RoutingPolicy::LeastLoaded`] reads it). Both slices must be
    /// `replicas` long.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::NoRoutableReplica`] when the mask is all
    /// false, and [`FleetError::InvalidParameter`] on a slice length
    /// mismatch.
    pub fn route(&self, key: u64, routable: &[bool], depths: &[usize]) -> Result<usize> {
        if routable.len() != self.replicas || depths.len() != self.replicas {
            return Err(FleetError::InvalidParameter {
                name: "routable",
                requirement: "mask and depths must cover every replica",
            });
        }
        if !routable.iter().any(|&r| r) {
            return Err(FleetError::NoRoutableReplica);
        }
        let picked = match self.policy {
            RoutingPolicy::RoundRobin => {
                // Claim sequence numbers until one lands on a routable
                // replica; the mask test keeps rotation fair (a drained
                // replica's turns are skipped, not reassigned).
                loop {
                    let n = self.cursor.fetch_add(1, Ordering::Relaxed);
                    let idx = (n % self.replicas as u64) as usize;
                    if routable[idx] {
                        break idx;
                    }
                }
            }
            RoutingPolicy::ConsistentHash => {
                let h = mix(key);
                // First ring point at or after the key's hash, wrapping.
                let start = self.ring.partition_point(|&(p, _)| p < h) % self.ring.len();
                let mut idx = None;
                for step in 0..self.ring.len() {
                    let (_, replica) = self.ring[(start + step) % self.ring.len()];
                    if routable[replica] {
                        idx = Some(replica);
                        break;
                    }
                }
                idx.expect("some replica is routable, and every replica owns ring points")
            }
            RoutingPolicy::LeastLoaded => {
                let mut best = usize::MAX;
                let mut best_depth = usize::MAX;
                for (i, (&ok, &depth)) in routable.iter().zip(depths).enumerate() {
                    if ok && depth < best_depth {
                        best = i;
                        best_depth = depth;
                    }
                }
                best
            }
        };
        Ok(picked)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_fleet_is_rejected() {
        assert!(Router::new(RoutingPolicy::RoundRobin, 0).is_err());
    }

    #[test]
    fn round_robin_rotates_and_skips_drained() {
        let r = Router::new(RoutingPolicy::RoundRobin, 3).unwrap();
        let all = [true, true, true];
        let depths = [0, 0, 0];
        let picks: Vec<usize> = (0..6).map(|k| r.route(k, &all, &depths).unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        let masked = [true, false, true];
        let picks: Vec<usize> = (0..4)
            .map(|k| r.route(k, &masked, &depths).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn consistent_hash_is_stable_and_sticky() {
        let r = Router::new(RoutingPolicy::ConsistentHash, 4).unwrap();
        let all = [true; 4];
        let depths = [0; 4];
        for key in 0..256u64 {
            let a = r.route(key, &all, &depths).unwrap();
            let b = r.route(key, &all, &depths).unwrap();
            assert_eq!(a, b, "same key must route to the same replica");
        }
        // Draining one replica moves only that replica's keys.
        let victim = r.route(7, &all, &depths).unwrap();
        let mut masked = [true; 4];
        masked[victim] = false;
        for key in 0..256u64 {
            let before = r.route(key, &all, &depths).unwrap();
            let after = r.route(key, &masked, &depths).unwrap();
            if before != victim {
                assert_eq!(before, after, "unrelated keys must not move");
            } else {
                assert_ne!(after, victim, "the drained replica takes no traffic");
            }
        }
    }

    #[test]
    fn consistent_hash_spreads_keys() {
        let n = 5;
        let r = Router::new(RoutingPolicy::ConsistentHash, n).unwrap();
        let all = vec![true; n];
        let depths = vec![0usize; n];
        let mut counts = vec![0usize; n];
        for key in 0..4000u64 {
            counts[r.route(key, &all, &depths).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > 4000 / (n * 4),
                "replica {i} starved: {c} of 4000 ({counts:?})"
            );
        }
    }

    #[test]
    fn least_loaded_follows_depths_with_deterministic_ties() {
        let r = Router::new(RoutingPolicy::LeastLoaded, 3).unwrap();
        let all = [true; 3];
        assert_eq!(r.route(0, &all, &[5, 2, 9]).unwrap(), 1);
        assert_eq!(r.route(0, &all, &[4, 4, 4]).unwrap(), 0, "tie → lowest");
        assert_eq!(r.route(0, &[false, true, true], &[0, 7, 7]).unwrap(), 1);
    }

    #[test]
    fn all_drained_is_a_typed_error() {
        let r = Router::new(RoutingPolicy::RoundRobin, 2).unwrap();
        assert_eq!(
            r.route(0, &[false, false], &[0, 0]),
            Err(FleetError::NoRoutableReplica)
        );
    }

    #[test]
    fn slice_mismatch_is_rejected() {
        let r = Router::new(RoutingPolicy::LeastLoaded, 2).unwrap();
        assert!(matches!(
            r.route(0, &[true], &[0]),
            Err(FleetError::InvalidParameter { .. })
        ));
    }
}
