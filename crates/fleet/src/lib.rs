//! # vortex-fleet — sharded multi-replica serving with ensemble voting
//!
//! The paper's central observation is that device variation makes every
//! programmed crossbar a *different* chip: two replicas compiled from
//! distinct variation seeds carry different conductance errors and
//! therefore different per-sample mistakes. This crate turns that from a
//! liability into the scale-out architecture:
//!
//! * A [`Fleet`] owns N replicas, each a frozen
//!   [`CompiledModel`] behind its own
//!   [`Scheduler`] (bounded queue, micro-batching,
//!   deadlines — everything `vortex-serve` provides), all pumping the
//!   one process-wide worker pool.
//! * A pluggable [`Router`] spreads traffic across the
//!   replicas: [`RoutingPolicy::RoundRobin`](routing::RoutingPolicy) is
//!   the deterministic baseline, consistent hashing pins a request key
//!   to a stable replica (cache affinity under membership change), and
//!   least-loaded follows live [`Scheduler::queue_depth`] — the same
//!   number the `fleet.replica.*.queue_depth` gauges export, so routing
//!   and dashboards share one source of truth.
//! * Replicas **drain** instead of dying: marking a replica draining
//!   routes new traffic around it while its queue empties
//!   ([`Scheduler::drain`]), so a canary-breached chip can be
//!   recompiled and hot-swapped ([`Fleet::heal_replica`]) without a
//!   caller ever noticing.
//! * The optional **ensemble read** ([`Fleet::ensemble_submit`]) fans
//!   one request to k replicas and majority-votes the label — the
//!   paper's Fig 9 row-redundancy idea lifted to whole crossbars.
//!   Because each chip's variation errors are independent, the vote
//!   measurably beats any single chip's accuracy at high sigma (gated
//!   in CI by the `fleet` bench experiment).
//!
//! ```no_run
//! use std::sync::Arc;
//! use vortex_fleet::prelude::*;
//!
//! # fn replicas() -> Vec<(u64, Arc<CompiledModel>)> { unimplemented!() }
//! let fleet = Fleet::new(
//!     replicas(), // (variation seed, compiled chip) pairs
//!     FleetConfig::new(RoutingPolicy::LeastLoaded),
//! )?;
//! let prediction = fleet.submit_wait(0x5EED, vec![0.0; 49])?;
//! println!("class {}", prediction.class);
//! let verdict = fleet.ensemble_submit(vec![0.0; 49], 5)?.wait()?;
//! println!("5-chip vote: {}", verdict.class);
//! # Ok::<(), vortex_fleet::FleetError>(())
//! ```
//!
//! Like the rest of the workspace the crate is zero-dependency: hashing
//! is SplitMix64 from `vortex-linalg`, queues live in `vortex-serve`,
//! and every routed/rejected/drained/voted event is recorded through
//! `vortex-obs` under the `fleet.*` namespace.

#![warn(missing_docs)]

pub mod ensemble;
pub mod fleet;
pub mod routing;

pub use ensemble::{ensemble_accuracy, majority_vote, EnsembleTicket, EnsembleVerdict};
pub use fleet::{Fleet, FleetConfig, ReplicaStatus};
pub use routing::{Router, RoutingPolicy};

// Re-export what callers need to configure and drive a fleet.
pub use vortex_nn::executor::Parallelism;
pub use vortex_runtime::CompiledModel;
pub use vortex_serve::{
    HealthConfig, ProbeOutcome, Recompile, Scheduler, SchedulerConfig, ServeError, Ticket,
};

/// Canonical imports for fleet serving: `use vortex_fleet::prelude::*;`.
pub mod prelude {
    pub use crate::{
        majority_vote, CompiledModel, EnsembleTicket, EnsembleVerdict, Fleet, FleetConfig,
        FleetError, HealthConfig, Parallelism, ProbeOutcome, ReplicaStatus, Router, RoutingPolicy,
        Scheduler, SchedulerConfig, ServeError, Ticket,
    };
}

/// Convenient result alias for fleet operations.
pub type Result<T> = std::result::Result<T, FleetError>;

/// Errors produced by the fleet layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FleetError {
    /// Every replica is draining (or the fleet is empty) — no routable
    /// target exists for this request.
    NoRoutableReplica,
    /// The routed replica rejected or failed the request; `replica` is
    /// its fleet index.
    Replica {
        /// Fleet index of the failing replica.
        replica: usize,
        /// The underlying serving error.
        source: ServeError,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The violated requirement.
        requirement: &'static str,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoRoutableReplica => write!(f, "no routable replica (all draining or empty)"),
            Self::Replica { replica, source } => {
                write!(f, "replica {replica}: {source}")
            }
            Self::InvalidParameter { name, requirement } => {
                write!(f, "invalid parameter `{name}`: {requirement}")
            }
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Replica { source, .. } => Some(source),
            _ => None,
        }
    }
}
